"""Unit tests for constraint type checking and symbol resolution."""

from __future__ import annotations

import pytest

from repro.constraints import Constraint, SymbolTable
from repro.constraints.texpr import EqMode, Kind, TEq, TNot, TOr, variables_used
from repro.errors import ConstraintError


@pytest.fixture
def symbols():
    table = SymbolTable()
    for label in ("SUBJ", "ROOT", "DET"):
        table.labels.intern(label)
    for cat in ("det", "noun", "verb"):
        table.categories.intern(cat)
    for role in ("governor", "needs"):
        table.roles.intern(role)
    return table


class TestArity:
    def test_unary_constraint(self, symbols):
        c = Constraint.parse("(if (eq (lab x) SUBJ) (eq (mod x) nil))", symbols)
        assert c.is_unary and c.arity == 1

    def test_binary_constraint(self, symbols):
        c = Constraint.parse("(if (eq (lab x) SUBJ) (lt (pos x) (pos y)))", symbols)
        assert c.is_binary and c.arity == 2

    def test_only_y_rejected(self, symbols):
        with pytest.raises(ConstraintError, match="must use variable x"):
            Constraint.parse("(if (eq (lab y) SUBJ) (eq (mod y) nil))", symbols)

    def test_unknown_variable_rejected(self, symbols):
        with pytest.raises(ConstraintError):
            Constraint.parse("(if (eq (lab z) SUBJ) (eq (mod z) nil))", symbols)

    def test_no_variables_rejected(self, symbols):
        with pytest.raises(ConstraintError, match="no role-value variable"):
            Constraint.parse("(if (eq 1 1) (eq 2 2))", symbols)


class TestStructure:
    def test_top_level_must_be_if(self, symbols):
        with pytest.raises(ConstraintError, match=r"\(if antecedent consequent\)"):
            Constraint.parse("(and (eq (lab x) SUBJ) (eq (mod x) nil))", symbols)

    def test_if_needs_two_parts(self, symbols):
        with pytest.raises(ConstraintError):
            Constraint.parse("(if (eq (lab x) SUBJ))", symbols)

    def test_permitted_form_is_not_ante_or_cons(self, symbols):
        c = Constraint.parse("(if (eq (lab x) SUBJ) (eq (mod x) nil))", symbols)
        expr = c.typed.expr
        assert isinstance(expr, TOr)
        assert isinstance(expr.parts[0], TNot)

    def test_nary_and(self, symbols):
        c = Constraint.parse(
            "(if (and (eq (lab x) SUBJ) (eq (role x) governor) (gt (pos x) 1))"
            "    (eq (mod x) nil))",
            symbols,
        )
        assert c.is_unary

    def test_and_needs_two_args(self, symbols):
        with pytest.raises(ConstraintError, match="at least two"):
            Constraint.parse("(if (and (eq (lab x) SUBJ)) (eq (mod x) nil))", symbols)

    def test_not_single_arg(self, symbols):
        with pytest.raises(ConstraintError, match="exactly one"):
            Constraint.parse(
                "(if (not (eq (lab x) SUBJ) (eq (lab x) DET)) (eq (mod x) nil))", symbols
            )

    def test_unknown_predicate(self, symbols):
        with pytest.raises(ConstraintError, match="unknown predicate"):
            Constraint.parse("(if (xor (eq (lab x) SUBJ) 1) (eq (mod x) nil))", symbols)

    def test_unknown_access_function(self, symbols):
        with pytest.raises(ConstraintError, match="unknown access function"):
            Constraint.parse("(if (eq (head x) SUBJ) (eq (mod x) nil))", symbols)


class TestSymbolResolution:
    def test_label_namespace(self, symbols):
        c = Constraint.parse("(if (eq (lab x) ROOT) (eq (mod x) nil))", symbols)
        eq = c.typed.expr.parts[0].part  # (not ante) -> ante
        assert isinstance(eq, TEq)
        assert eq.right.kind == Kind.LABEL
        assert eq.right.value == symbols.labels.code("ROOT")

    def test_category_namespace_via_cat(self, symbols):
        c = Constraint.parse(
            "(if (eq (cat (word (pos x))) verb) (eq (mod x) nil))", symbols
        )
        eq = c.typed.expr.parts[0].part
        assert eq.right.kind == Kind.CAT
        assert eq.right.value == symbols.categories.code("verb")

    def test_role_namespace(self, symbols):
        c = Constraint.parse("(if (eq (role x) needs) (eq (mod x) nil))", symbols)
        eq = c.typed.expr.parts[0].part
        assert eq.right.kind == Kind.ROLE

    def test_unknown_symbol_raises(self, symbols):
        with pytest.raises(ConstraintError, match="unknown label"):
            Constraint.parse("(if (eq (lab x) OBJ) (eq (mod x) nil))", symbols)

    def test_symbol_order_does_not_matter(self, symbols):
        c = Constraint.parse("(if (eq SUBJ (lab x)) (eq (mod x) nil))", symbols)
        assert c.is_unary

    def test_two_bare_symbols_rejected(self, symbols):
        with pytest.raises(ConstraintError, match="two bare symbols"):
            Constraint.parse("(if (eq SUBJ ROOT) (eq (mod x) nil))", symbols)


class TestComparisonTyping:
    def test_label_vs_position_rejected(self, symbols):
        with pytest.raises(ConstraintError, match="cannot eq"):
            Constraint.parse("(if (eq (lab x) (pos x)) (eq (mod x) nil))", symbols)

    def test_label_vs_role_rejected(self, symbols):
        with pytest.raises(ConstraintError, match="cannot eq"):
            Constraint.parse("(if (eq (lab x) (role x)) (eq (mod x) nil))", symbols)

    def test_gt_on_labels_rejected(self, symbols):
        with pytest.raises(ConstraintError, match="integer operands"):
            Constraint.parse("(if (gt (lab x) (lab y)) (eq (mod x) nil))", symbols)

    def test_gt_on_bare_symbol_rejected(self, symbols):
        with pytest.raises(ConstraintError, match="not ordered"):
            Constraint.parse("(if (gt (pos x) SUBJ) (eq (mod x) nil))", symbols)

    def test_mod_vs_pos_allowed(self, symbols):
        c = Constraint.parse("(if (eq (mod x) (pos y)) (lt (pos x) (pos y)))", symbols)
        assert c.is_binary

    def test_pos_vs_int_allowed(self, symbols):
        c = Constraint.parse("(if (eq (pos x) 1) (eq (mod x) nil))", symbols)
        assert c.is_unary

    def test_eq_pos_nil_is_statically_false(self, symbols):
        c = Constraint.parse("(if (eq (pos x) nil) (eq (mod x) nil))", symbols)
        eq = c.typed.expr.parts[0].part
        assert eq.mode == EqMode.CONST_FALSE

    def test_eq_nil_nil_rejected(self, symbols):
        with pytest.raises(ConstraintError, match="vacuous"):
            Constraint.parse("(if (eq nil nil) (eq (mod x) nil))", symbols)

    def test_gt_with_nil_is_statically_false(self, symbols):
        c = Constraint.parse("(if (gt (mod x) nil) (eq (mod x) nil))", symbols)
        eq = c.typed.expr.parts[0].part
        assert isinstance(eq, TEq) and eq.mode == EqMode.CONST_FALSE


class TestWordAndCat:
    def test_cat_of_pos_is_own_category_field(self, symbols):
        c = Constraint.parse(
            "(if (eq (cat (word (pos x))) noun) (eq (mod x) nil))", symbols
        )
        eq = c.typed.expr.parts[0].part
        assert eq.mode == EqMode.CODE  # per-role-value cat field, not a set

    def test_cat_of_mod_is_a_category_set(self, symbols):
        c = Constraint.parse(
            "(if (eq (cat (word (mod x))) noun) (eq (mod x) nil))", symbols
        )
        eq = c.typed.expr.parts[0].part
        assert eq.mode == EqMode.CATSET_CODE

    def test_cat_of_literal_position(self, symbols):
        c = Constraint.parse("(if (eq (cat (word 1)) det) (eq (mod x) nil))", symbols)
        eq = c.typed.expr.parts[0].part
        assert eq.mode == EqMode.CATSET_CODE

    def test_two_category_sets_intersect(self, symbols):
        c = Constraint.parse(
            "(if (eq (cat (word (mod x))) (cat (word (mod y)))) (lt (pos x) (pos y)))",
            symbols,
        )
        eq = c.typed.expr.parts[0].part
        assert eq.mode == EqMode.CATSET_CATSET

    def test_word_outside_cat_rejected(self, symbols):
        with pytest.raises(ConstraintError, match="inside"):
            Constraint.parse("(if (eq (word (pos x)) 1) (eq (mod x) nil))", symbols)

    def test_cat_of_non_word_rejected(self, symbols):
        with pytest.raises(ConstraintError, match=r"\(cat ...\) must be applied"):
            Constraint.parse("(if (eq (cat (pos x)) noun) (eq (mod x) nil))", symbols)

    def test_word_of_label_rejected(self, symbols):
        with pytest.raises(ConstraintError, match="needs a position"):
            Constraint.parse("(if (eq (cat (word (lab x))) noun) (eq (mod x) nil))", symbols)

    def test_catset_vs_label_rejected(self, symbols):
        with pytest.raises(ConstraintError, match="category set"):
            Constraint.parse(
                "(if (eq (cat (word (mod x))) (lab x)) (eq (mod x) nil))", symbols
            )


class TestVariablesUsed:
    def test_variables_used_walks_everything(self, symbols):
        c = Constraint.parse(
            "(if (and (eq (lab x) SUBJ) (eq (cat (word (mod y))) noun))"
            "    (or (lt (pos x) (pos y)) (not (eq (mod x) nil))))",
            symbols,
        )
        assert variables_used(c.typed.expr) == frozenset({"x", "y"})
