"""The incremental streaming core, end to end.

The load-bearing invariant: for every prefix length k of a sentence,
``StreamingParse.extend`` (word at a time) produces a settled network,
verdict, and statistics **bit-identical** to a fresh
``ParserSession.parse`` of the same k words.  The streamed parse rides
the prefix-extended template (masks extended incrementally, never
rebuilt) and reconstructs the pre-fixpoint state by re-applying them —
the explicit embedding form (``ConstraintNetwork.extend_from`` +
``resume_propagation``) must reach the same settled network, which is
the equivalence that proves carrying state across words loses nothing.

Also covered here: prefix template extension (one cumulative build per
stream), broken-stream semantics, the service-level streaming API
(``ParseService.submit_stream``) with its owner-affinity scheduling and
metrics conservation, and the ``repro stream`` CLI.
"""

from __future__ import annotations

import io
import time

import numpy as np
import pytest

from repro import ParserSession
from repro.cli import main as cli_main
from repro.errors import LexiconError, StreamError
from repro.grammar.builtin import english_grammar, program_grammar
from repro.serve import ParseService
from repro.workloads import sentence_of_length

#: EngineStats fields that must match a fresh parse exactly (wall time
#: and memory extras are environment-dependent and excluded).
DETERMINISTIC_STATS = (
    "engine",
    "unary_checks",
    "pair_checks",
    "role_values_killed",
    "matrix_entries_zeroed",
    "consistency_passes",
    "filtering_iterations",
)


def assert_prefix_identical(streamed, fresh, k: int) -> None:
    assert np.array_equal(
        streamed.network.alive_bits, fresh.network.alive_bits
    ), f"alive bits diverge at prefix {k}"
    assert np.array_equal(
        streamed.network.matrix_bits, fresh.network.matrix_bits
    ), f"matrix bits diverge at prefix {k}"
    assert streamed.locally_consistent == fresh.locally_consistent
    assert streamed.ambiguous == fresh.ambiguous
    for field in DETERMINISTIC_STATS:
        assert getattr(streamed.stats, field) == getattr(fresh.stats, field), (
            f"stats.{field} diverges at prefix {k}: "
            f"{getattr(streamed.stats, field)} != {getattr(fresh.stats, field)}"
        )


class TestPrefixEquivalence:
    @pytest.mark.parametrize("engine", ["vector", "vector-interleaved"])
    def test_every_prefix_bit_identical_to_fresh_parse(self, engine):
        grammar = english_grammar()
        words = sentence_of_length(10)
        streaming = ParserSession(grammar, engine=engine)
        reference = ParserSession(grammar, engine=engine)
        stream = streaming.stream()
        for k, word in enumerate(words, start=1):
            streamed = stream.extend(word)
            fresh = reference.parse(words[:k])
            assert_prefix_identical(streamed, fresh, k)
        assert stream.words == tuple(words)
        assert stream.result() is streamed

    def test_fast_path_marks_streamed_and_reference_does_not(self):
        session = ParserSession(english_grammar(), engine="vector")
        stream = session.stream()
        result = stream.extend("the")
        assert result.stats.extra.get("streamed") is True
        assert "streamed" not in session.parse(["the"]).stats.extra

    def test_program_grammar_stream_matches(self):
        grammar = program_grammar()
        words = ["The", "program", "runs"]
        stream = ParserSession(grammar, engine="vector").stream(words)
        fresh = ParserSession(grammar, engine="vector").parse(words)
        assert_prefix_identical(stream.result(), fresh, len(words))

    def test_filter_limited_session_still_matches_via_fallback(self):
        grammar = english_grammar()
        words = sentence_of_length(6)
        streaming = ParserSession(grammar, engine="vector", filter_limit=1)
        reference = ParserSession(grammar, engine="vector", filter_limit=1)
        stream = streaming.stream()
        for k, word in enumerate(words, start=1):
            streamed = stream.extend(word)
            fresh = reference.parse(words[:k])
            assert_prefix_identical(streamed, fresh, k)
            assert "streamed" not in streamed.stats.extra  # fallback path

    @pytest.mark.sanitize
    @pytest.mark.parametrize("engine", ["vector", "vector-interleaved"])
    def test_streaming_under_sanitizer(self, sanitized, engine):
        grammar = english_grammar()
        words = sentence_of_length(7)
        streaming = ParserSession(grammar, engine=engine)
        reference = ParserSession(grammar, engine=engine)
        stream = streaming.stream()
        for k, word in enumerate(words, start=1):
            assert_prefix_identical(stream.extend(word), reference.parse(words[:k]), k)


class TestResumablePropagation:
    """The explicit embedding form of the resume.

    ``ConstraintNetwork.extend_from`` + the mask/fixpoint split in
    ``repro.propagation.incremental`` exist for carried state that is
    *not* recomputable from grammar masks (a network refined by staged
    extra constraints).  On plain grammar state the embedded resume must
    settle bit-identical to a fresh parse — the equivalence the
    streaming fast path's bind-and-remask shortcut rests on.
    """

    def test_embedded_prefix_state_settles_bit_identical(self):
        from repro.network.network import ConstraintNetwork
        from repro.pipeline.compiled import compile_grammar
        from repro.pipeline.template import NetworkTemplate
        from repro.propagation.incremental import apply_masks, run_filtering

        grammar = english_grammar()
        compiled = compile_grammar(grammar)
        words = sentence_of_length(8)
        reference = ParserSession(grammar, engine="vector")
        template = None
        carried = None  # pre-fixpoint network of the previous prefix
        for k in range(1, len(words) + 1):
            sent = grammar.tokenize(words[:k])
            if template is None:
                template = NetworkTemplate.build(grammar, sent.category_sets)
                network = template.bind(sent)
            else:
                template.vector_masks(compiled)
                template = template.extend(sent.category_sets[-1], compiled=compiled)
                network = ConstraintNetwork.extend_from(carried, template, sent)
            masks = template.vector_masks(compiled)
            apply_masks(network, masks.unary, masks.fused)
            carried = network.clone()
            run_filtering(network)
            fresh = reference.parse(words[:k])
            assert np.array_equal(network.alive_bits, fresh.network.alive_bits), k
            assert np.array_equal(network.matrix_bits, fresh.network.matrix_bits), k


class TestTemplateExtension:
    def test_one_cumulative_build_per_stream(self):
        session = ParserSession(english_grammar(), engine="vector")
        words = sentence_of_length(8)
        session.stream(words)
        builds = session.template_builds()
        assert builds == {"full": 1, "extended": len(words) - 1}

    def test_second_stream_hits_the_template_cache(self):
        session = ParserSession(english_grammar(), engine="vector")
        words = sentence_of_length(5)
        session.stream(words)
        before = session.template_builds()
        session.stream(words)  # same shapes: all cache hits
        assert session.template_builds() == before

    def test_extended_template_is_bit_identical_to_full_build(self):
        from repro.pipeline.compiled import compile_grammar
        from repro.pipeline.template import NetworkTemplate

        grammar = english_grammar()
        compiled = compile_grammar(grammar)
        words = sentence_of_length(6)
        previous = None
        for k in range(1, len(words) + 1):
            sent = grammar.tokenize(words[:k])
            if previous is None:
                template = NetworkTemplate.build(grammar, sent.category_sets)
            else:
                previous.vector_masks(compiled)
                template = previous.extend(sent.category_sets[-1], compiled=compiled)
            full = NetworkTemplate.build(grammar, sent.category_sets)
            assert np.array_equal(template.base_bits, full.base_bits)
            mine, theirs = template.vector_masks(compiled), full.vector_masks(compiled)
            for a, b in zip(mine.unary, theirs.unary, strict=True):
                assert np.array_equal(a, b)
            for a, b in zip(mine.binary, theirs.binary, strict=True):
                assert np.array_equal(a, b)
            if theirs.fused is not None:
                assert np.array_equal(mine.fused, theirs.fused)
            previous = template


class TestStreamLifecycle:
    def test_result_before_any_word_raises(self):
        stream = ParserSession(english_grammar()).stream()
        with pytest.raises(StreamError):
            stream.result()

    def test_unknown_word_rejects_at_the_door(self):
        stream = ParserSession(english_grammar()).stream(["the"])
        with pytest.raises(LexiconError):
            stream.extend("zzz-not-a-word")
        # nothing was applied: the stream is still usable
        assert not stream.broken
        stream.extend("dog")
        assert stream.n_words == 2

    def test_internal_failure_breaks_the_stream(self, monkeypatch):
        session = ParserSession(english_grammar(), engine="vector")
        stream = session.stream(["the"])

        def boom(*args, **kwargs):
            raise RuntimeError("injected template failure")

        monkeypatch.setattr(session, "template_for", boom)
        with pytest.raises(RuntimeError):
            stream.extend("dog")
        assert stream.broken
        monkeypatch.undo()
        with pytest.raises(StreamError):
            stream.extend("dog")
        # the last good prefix survives for inspection
        assert stream.n_words == 1
        assert stream.result() is not None

    def test_streams_share_a_session_sequentially(self):
        session = ParserSession(english_grammar(), engine="vector")
        first = session.stream(["the", "dog"])
        second = session.stream(["the", "cat"])
        assert first.n_words == 2 and second.n_words == 2


class TestServiceStreaming:
    def test_service_stream_bit_identical_and_metrics_conserve(self):
        grammar = english_grammar()
        words = sentence_of_length(6)
        reference = ParserSession(grammar, engine="vector")
        with ParseService(grammar, engine="vector", workers=2) as service:
            first = service.submit_stream()
            second = service.submit_stream()
            futures = []
            for word in words:
                futures.append((first.feed(word), second.feed(word)))
                service.submit(["the", "dog", "runs"])  # interleaved plain traffic
            for k, (f1, f2) in enumerate(futures, start=1):
                fresh = reference.parse(words[:k])
                assert_prefix_identical(f1.result(timeout=30), fresh, k)
                assert_prefix_identical(f2.result(timeout=30), fresh, k)
            # each stream has exactly one owner worker for its lifetime
            assert first.owner is not None and second.owner is not None
            first.close()
            second.close()
            assert service.drain(timeout=30)
            counters = service.snapshot()["counters"]
        assert counters["submitted"] == counters["accepted"] + counters["rejected"]
        assert counters["accepted"] == (
            counters["completed"] + counters["failed"]
            + counters["expired"] + counters["cancelled"]
        )
        assert counters["stream_opened"] == 2
        assert counters["stream_closed"] == 2
        assert counters["stream_tokens"] == 2 * len(words)
        assert counters["stream_failed"] == 0

    def test_expired_token_poisons_the_stream(self):
        grammar = english_grammar()
        with ParseService(grammar, engine="vector", workers=1) as service:
            stream = service.submit_stream()
            stream.feed("the").result(timeout=30)
            future = stream.feed("dog", timeout=-1.0)  # expired on arrival
            from repro.serve import DeadlineExceeded

            with pytest.raises(DeadlineExceeded):
                future.result(timeout=30)
            deadline = time.monotonic() + 10
            while not stream.broken and time.monotonic() < deadline:
                time.sleep(0.01)
            assert stream.broken
            with pytest.raises(StreamError):
                stream.feed("runs")
            counters = service.snapshot()["counters"]
            assert counters["stream_failed"] == 1
            assert counters["submitted"] == counters["accepted"] + counters["rejected"]

    def test_close_releases_retained_state(self):
        grammar = english_grammar()
        with ParseService(grammar, engine="vector", workers=1) as service:
            stream = service.submit_stream()
            stream.feed("the").result(timeout=30)
            assert stream.parse is not None
            stream.close()
            deadline = time.monotonic() + 10
            while stream.parse is not None and time.monotonic() < deadline:
                time.sleep(0.01)
            assert stream.parse is None
            with pytest.raises(StreamError):
                stream.feed("dog")

    def test_process_mode_streams_run_in_thread(self):
        grammar = english_grammar()
        words = sentence_of_length(5)
        reference = ParserSession(grammar, engine="vector")
        with ParseService(
            grammar, engine="vector", workers=2, workers_mode="process"
        ) as service:
            stream = service.submit_stream()
            futures = [stream.feed(word) for word in words]
            for k, future in enumerate(futures, start=1):
                assert_prefix_identical(
                    future.result(timeout=60), reference.parse(words[:k]), k
                )
            stream.close()

    def test_submit_stream_requires_running_service(self):
        from repro.serve import ServiceUnavailable

        service = ParseService(english_grammar(), engine="vector", workers=1)
        with pytest.raises(ServiceUnavailable):
            service.submit_stream()


class TestStreamCli:
    def test_stream_words_as_arguments(self):
        out = io.StringIO()
        code = cli_main(["stream", "the", "dog", "runs"], out=out)
        text = out.getvalue()
        assert code == 0
        assert "prefix-extended template build" in text
        assert "[  3] runs" in text

    def test_stream_rejected_sentence_exits_nonzero(self):
        out = io.StringIO()
        code = cli_main(["stream", "dog", "dog"], out=out)
        assert code == 1

    def test_serve_bench_streaming_smoke(self):
        out = io.StringIO()
        code = cli_main(
            ["serve-bench", "--streaming", "--shapes", "2", "--workers", "2"],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "stream_tokens" in text
        assert "tokens/s" in text
