"""The networked cluster: wire protocol, routing, e2e bit-identity.

The load-bearing invariants:

* the wire codec round-trips exactly the types the protocol needs and
  raises :class:`WireError` on everything else — malformed bytes never
  execute code and never produce a wrong value silently;
* one bad frame never poisons a connection: oversized (boundedly),
  malformed, unknown-type, and expired-budget frames each get a typed
  error reply and the *next* frame on the same socket still works;
* placement is deterministic and canonical — the same shape routes to
  the same shard across processes, and shard-count changes remap only
  ~1/n of the keys;
* cluster results are bit-identical to an in-process
  :class:`ParserSession` — packed alive/matrix words, verdicts, and
  deterministic stats — including word-at-a-time streams;
* deadlines count once: the budget is measured at frame-write time, an
  already-spent budget fails locally, and ``drain``/``close(wait=True)``
  never orphan an in-flight verdict;
* the bench numbers come from the merged shard logs, parsed with
  earliest-timestamp-wins semantics.
"""

from __future__ import annotations

import asyncio
import socket
import struct
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.cluster.errors import ClusterError, ConnectionClosed, FrameTooLarge, WireError
from repro.cluster.launcher import ClusterLauncher
from repro.cluster.loadgen import LoadReport, _percentile, closed_loop, open_loop, seeded_corpus
from repro.cluster.logs import ClusterLogParser, MergedTimeline, parse_log_text
from repro.cluster.ring import HashRing, hash_key
from repro.cluster.router import ClusterClient, ShardRouter
from repro.cluster.server import ParseServer
from repro.cluster.wire import (
    decode,
    encode,
    frame_bytes,
    pack_stats,
    read_frame,
    unpack_stats,
)
from repro.engines.base import EngineStats
from repro.errors import LexiconError, StreamError
from repro.grammar.builtin import english_grammar
from repro.pipeline.session import ParserSession
from repro.serve import DeadlineExceeded, ServiceUnavailable
from repro.workloads import sentence_of_length
from tests.test_pipeline import DETERMINISTIC_STATS, assert_same_network

WAIT = 30.0  # generous upper bound for every blocking wait in this file


# -- the codec ---------------------------------------------------------------


class TestCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            2**62,
            -(2**63),
            3.5,
            "",
            "héllo wörld",
            b"",
            b"\x00\xff raw",
            [],
            [1, "two", None, [True, 2.5]],
            {},
            {"a": 1, "nested": {"b": [None, "x"]}},
        ],
    )
    def test_scalar_and_container_round_trip(self, value):
        assert decode(encode(value)) == value

    def test_tuples_decode_as_lists(self):
        assert decode(encode((1, 2, 3))) == [1, 2, 3]

    @pytest.mark.parametrize(
        "array",
        [
            np.arange(7, dtype=np.uint64),
            np.array([], dtype=np.uint64),
            np.array([[True, False], [False, True]]),
            np.arange(-3, 3, dtype=np.int64).reshape(2, 3),
            np.linspace(0.0, 1.0, 5),
        ],
    )
    def test_array_round_trip(self, array):
        back = decode(encode(array))
        assert back.dtype == array.dtype
        assert back.shape == array.shape
        assert np.array_equal(back, array)

    def test_decoded_arrays_are_writable_copies(self):
        back = decode(encode(np.arange(4, dtype=np.uint64)))
        back[0] = 99  # frombuffer views would raise here

    def test_numpy_scalars_encode_as_python_scalars(self):
        assert decode(encode(np.uint64(7))) == 7
        assert decode(encode(np.float64(2.5))) == 2.5
        assert decode(encode(np.bool_(True))) is True

    def test_rejects_unencodable_type(self):
        with pytest.raises(WireError):
            encode({1, 2, 3})

    def test_rejects_oversized_int(self):
        with pytest.raises(WireError):
            encode(2**63)

    def test_rejects_non_string_dict_key(self):
        with pytest.raises(WireError):
            encode({1: "x"})

    def test_rejects_unlisted_dtype(self):
        with pytest.raises(WireError):
            encode(np.arange(3, dtype=np.uint8))

    def test_rejects_truncated_payload(self):
        payload = encode("hello")
        with pytest.raises(WireError):
            decode(payload[:-2])

    def test_rejects_trailing_bytes(self):
        with pytest.raises(WireError):
            decode(encode(1) + b"junk")

    def test_rejects_unknown_tag(self):
        with pytest.raises(WireError):
            decode(b"Z")

    def test_rejects_invalid_utf8_string(self):
        with pytest.raises(WireError):
            decode(b"s" + struct.pack("!I", 2) + b"\xff\xfe")

    def test_rejects_unknown_dtype_code(self):
        with pytest.raises(WireError):
            decode(b"a" + b"X" + bytes([1]) + struct.pack("!I", 0))


class TestPackedStats:
    def test_round_trip_preserves_deterministic_fields(self):
        stats = ParserSession(english_grammar(), engine="vector").parse(
            sentence_of_length(4)
        ).stats
        back = unpack_stats(pack_stats(stats))
        for name in DETERMINISTIC_STATS:
            assert getattr(back, name) == getattr(stats, name), name

    def test_non_scalar_extras_are_dropped(self):
        stats = EngineStats(engine="vector")
        stats.extra["note"] = "kept"
        stats.extra["trace"] = [1, 2, 3]  # not codec-scalar: dropped
        packed = pack_stats(stats)
        assert packed["extra"] == {"note": "kept"}
        assert decode(encode(packed)) == packed  # and the rest is codec-safe

    def test_unpack_rejects_non_dict(self):
        with pytest.raises(WireError):
            unpack_stats("nope")


# -- framing -----------------------------------------------------------------


def _feed(*chunks: bytes, eof: bool = True) -> asyncio.StreamReader:
    """A StreamReader pre-loaded with *chunks* (call inside the loop)."""
    reader = asyncio.StreamReader()
    for chunk in chunks:
        reader.feed_data(chunk)
    if eof:
        reader.feed_eof()
    return reader


def _read(*chunks: bytes, eof: bool = True, **kwargs) -> bytes:
    async def scenario():
        return await read_frame(_feed(*chunks, eof=eof), **kwargs)

    return asyncio.run(scenario())


class TestReadFrame:
    def test_round_trip(self):
        message = {"type": "ping", "id": 1}
        assert decode(_read(frame_bytes(message))) == message

    def test_eof_before_header_is_connection_closed(self):
        with pytest.raises(ConnectionClosed):
            _read()

    def test_partial_header_then_eof_is_connection_closed(self):
        with pytest.raises(ConnectionClosed):
            _read(b"\x00\x00")

    def test_eof_mid_frame_is_connection_closed(self):
        frame = frame_bytes({"type": "ping", "id": 1})
        with pytest.raises(ConnectionClosed):
            _read(frame[:-3])

    def test_zero_length_frame_is_wire_error_and_recoverable(self):
        async def scenario():
            reader = _feed(struct.pack("!I", 0), frame_bytes("after"))
            with pytest.raises(WireError):
                await read_frame(reader)
            return await read_frame(reader)

        assert decode(asyncio.run(scenario())) == "after"

    def test_bounded_oversize_is_drained_and_recoverable(self):
        async def scenario():
            big = frame_bytes(b"x" * 200)  # 200 < 4 * 64: drainable
            reader = _feed(big, frame_bytes("after"))
            with pytest.raises(FrameTooLarge) as info:
                await read_frame(reader, max_frame=64)
            assert info.value.recoverable
            return await read_frame(reader, max_frame=64)

        assert decode(asyncio.run(scenario())) == "after"

    def test_absurd_length_is_unrecoverable(self):
        with pytest.raises(FrameTooLarge) as info:
            _read(struct.pack("!I", 64 * 4 + 1), eof=False, max_frame=64)
        assert not info.value.recoverable


# -- consistent hashing ------------------------------------------------------


class TestHashRing:
    def test_placement_is_deterministic_across_instances(self):
        nodes = ["10.0.0.1:7001", "10.0.0.2:7001", "10.0.0.3:7001"]
        first, second = HashRing(nodes), HashRing(list(reversed(nodes)))
        for key in range(200):
            assert first.node_for(key) == second.node_for(key)

    def test_shape_keys_canonicalize_set_order(self):
        shape_a = (frozenset({"det", "noun"}), frozenset({"verb"}))
        shape_b = (frozenset({"noun", "det"}), frozenset({"verb"}))
        assert hash_key(shape_a) == hash_key(shape_b)

    def test_spread_touches_every_node(self):
        ring = HashRing([f"h{i}:70{i:02d}" for i in range(3)])
        counts = ring.spread(list(range(300)))
        assert sum(counts.values()) == 300
        assert all(count > 0 for count in counts.values())

    def test_adding_a_node_remaps_a_minority_of_keys(self):
        nodes = [f"h{i}:7000" for i in range(4)]
        before, after = HashRing(nodes), HashRing([*nodes, "h4:7000"])
        keys = list(range(1000))
        moved = sum(1 for key in keys if before.node_for(key) != after.node_for(key))
        # Ideal is 1/5 of the keys; consistent hashing should stay well
        # under the 4/5 a modulo rehash would move.
        assert 0 < moved < 500

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing(["a:1", "a:1"])
        with pytest.raises(ValueError):
            HashRing(["a:1"], replicas=0)


# -- raw-socket edge cases against a live shard ------------------------------


@pytest.fixture(scope="module")
def raw_server():
    grammar = english_grammar()
    with ParseServer(grammar, "vector", shard_id=9) as server:
        yield server


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    data = b""
    while len(data) < n:
        chunk = sock.recv(n - len(data))
        if not chunk:
            raise ConnectionError("server closed the connection")
        data += chunk
    return data


def _recv_message(sock: socket.socket) -> dict:
    (length,) = struct.unpack("!I", _recv_exact(sock, 4))
    return decode(_recv_exact(sock, length))


def _connect(server: ParseServer) -> socket.socket:
    sock = socket.create_connection((server.host, server.port), timeout=WAIT)
    sock.settimeout(WAIT)
    return sock


class TestWireEdgeCases:
    """The satellite contract: a bad frame answers typed, the wire survives."""

    def _assert_still_usable(self, sock):
        sock.sendall(frame_bytes({"type": "ping", "id": 99}))
        pong = _recv_message(sock)
        assert pong["type"] == "pong" and pong["id"] == 99

    def test_garbage_payload_gets_error_then_connection_works(self, raw_server):
        with _connect(raw_server) as sock:
            sock.sendall(struct.pack("!I", 4) + b"\xde\xad\xbe\xef")
            error = _recv_message(sock)
            assert error["type"] == "error" and error["kind"] == "wire"
            self._assert_still_usable(sock)

    def test_non_dict_payload_gets_error_then_connection_works(self, raw_server):
        with _connect(raw_server) as sock:
            sock.sendall(frame_bytes([1, 2, 3]))
            error = _recv_message(sock)
            assert error["type"] == "error" and error["kind"] == "wire"
            self._assert_still_usable(sock)

    def test_unknown_message_type_echoes_id(self, raw_server):
        with _connect(raw_server) as sock:
            sock.sendall(frame_bytes({"type": "teleport", "id": 5}))
            error = _recv_message(sock)
            assert error["type"] == "error"
            assert error["kind"] == "wire"
            assert error["id"] == 5
            self._assert_still_usable(sock)

    def test_bad_field_type_is_wire_error(self, raw_server):
        with _connect(raw_server) as sock:
            sock.sendall(frame_bytes({"type": "parse", "id": 1, "words": "not-a-list"}))
            error = _recv_message(sock)
            assert error["kind"] == "wire"
            self._assert_still_usable(sock)

    def test_bool_is_not_an_int_id(self, raw_server):
        with _connect(raw_server) as sock:
            sock.sendall(frame_bytes({"type": "ping", "id": True}))
            error = _recv_message(sock)
            assert error["kind"] == "wire"
            self._assert_still_usable(sock)

    def test_expired_budget_rejects_without_poisoning(self, raw_server):
        with _connect(raw_server) as sock:
            sock.sendall(frame_bytes({
                "type": "parse", "id": 7,
                "words": list(sentence_of_length(3)), "budget": -0.25,
            }))
            error = _recv_message(sock)
            assert error["type"] == "error"
            assert error["kind"] == "deadline"
            assert error["id"] == 7
            # The same connection still parses.
            sock.sendall(frame_bytes({
                "type": "parse", "id": 8,
                "words": list(sentence_of_length(3)), "budget": None,
            }))
            result = _recv_message(sock)
            assert result["type"] == "result" and result["id"] == 8

    def test_unknown_word_is_a_lexicon_error(self, raw_server):
        with _connect(raw_server) as sock:
            sock.sendall(frame_bytes({
                "type": "parse", "id": 3,
                "words": ["zzz-not-a-word-zzz"], "budget": None,
            }))
            error = _recv_message(sock)
            assert error["type"] == "error"
            assert error["kind"] == "lexicon"
            self._assert_still_usable(sock)

    def test_feed_on_unopened_stream_is_a_stream_error(self, raw_server):
        with _connect(raw_server) as sock:
            sock.sendall(frame_bytes({
                "type": "stream_feed", "id": 4, "stream": 42,
                "word": "the", "budget": None,
            }))
            error = _recv_message(sock)
            assert error["kind"] == "stream"
            self._assert_still_usable(sock)

    def test_partial_header_then_close_leaves_server_healthy(self, raw_server):
        sock = _connect(raw_server)
        sock.sendall(b"\x00\x00")
        sock.close()
        # A fresh connection is served as if nothing happened.
        with _connect(raw_server) as sock:
            self._assert_still_usable(sock)

    def test_oversized_frame_is_answered_and_absurd_one_drops(self):
        grammar = english_grammar()
        with ParseServer(grammar, "vector", shard_id=8, max_frame=512) as server:
            with _connect(server) as sock:
                # Boundedly oversized: drained, answered, connection lives.
                sock.sendall(frame_bytes(b"x" * 1000))  # 512 < len <= 4*512
                error = _recv_message(sock)
                assert error["type"] == "error" and error["kind"] == "wire"
                self._assert_still_usable(sock)
            with _connect(server) as sock:
                # Absurd length: corruption, the connection is dropped.
                sock.sendall(struct.pack("!I", 4 * 512 + 1))
                with pytest.raises(ConnectionError):
                    _recv_message(sock)
            with _connect(server) as sock:  # but the server itself survives
                self._assert_still_usable(sock)


# -- end-to-end: router + two shards vs one in-process session ---------------


@pytest.fixture(scope="module")
def cluster():
    grammar = english_grammar()
    servers = [
        ParseServer(grammar, "vector", shard_id=index).start_background()
        for index in range(2)
    ]
    client = ClusterClient(grammar, [server.address for server in servers])
    yield grammar, servers, client
    client.close()
    for server in servers:
        server.stop()


def assert_bit_identical(ours, theirs):
    assert ours.locally_consistent == theirs.locally_consistent
    assert ours.ambiguous == theirs.ambiguous
    assert_same_network(ours.network, theirs.network)
    for name in DETERMINISTIC_STATS:
        assert getattr(ours.stats, name) == getattr(theirs.stats, name), name


class TestClusterE2E:
    def test_parse_many_is_bit_identical_and_in_order(self, cluster):
        grammar, _, client = cluster
        sentences = seeded_corpus(seed=3, size=16)
        reference = ParserSession(grammar, engine="vector").parse_many(sentences)
        clustered = client.parse_many(sentences, timeout=WAIT)
        assert len(clustered) == len(reference)
        for ours, theirs in zip(clustered, reference):
            assert_bit_identical(ours, theirs)

    def test_corpus_actually_spans_both_shards(self, cluster):
        grammar, _, client = cluster
        sentences = [grammar.tokenize(words) for words in seeded_corpus(seed=3, size=16)]
        spread = client.router.spread(sentences)
        assert len(spread) == 2
        assert all(count > 0 for count in spread.values())

    def test_same_shape_routes_to_one_shard(self, cluster):
        grammar, _, client = cluster
        shard = {
            client.router.shard_for(grammar.tokenize(sentence_of_length(4)))
            for _ in range(5)
        }
        assert len(shard) == 1

    def test_stream_is_bit_identical_word_by_word(self, cluster):
        grammar, _, client = cluster
        words = sentence_of_length(5)
        local = ParserSession(grammar, engine="vector").stream()
        with client.submit_stream() as stream:
            for word in words:
                ours = stream.feed(word, timeout=WAIT).result(WAIT)
                theirs = local.extend(word)
                assert_bit_identical(ours, theirs)
            assert stream.words == tuple(words)

    def test_feeding_a_closed_stream_raises(self, cluster):
        _, _, client = cluster
        stream = client.submit_stream()
        stream.close()
        with pytest.raises(StreamError):
            stream.feed("the")

    def test_ping_and_snapshot_reach_every_shard(self, cluster):
        _, servers, client = cluster
        pongs = client.ping(timeout=WAIT)
        assert sorted(p["shard"] for p in pongs.values()) == [0, 1]
        snaps = client.snapshot(timeout=WAIT)
        for address in (server.address for server in servers):
            assert "counters" in snaps[address]

    def test_lexicon_error_surfaces_at_the_door(self, cluster):
        _, _, client = cluster
        with pytest.raises(LexiconError):
            client.submit(["zzz-not-a-word-zzz"])

    def test_spent_deadline_fails_locally_before_the_wire(self, cluster):
        _, _, client = cluster
        future = client.submit(sentence_of_length(3), timeout=0.0)
        with pytest.raises(DeadlineExceeded):
            future.result(WAIT)

    def test_generous_deadline_is_not_double_counted(self, cluster):
        # Queue + wire + parse fit easily in the budget; a client that
        # also ran its own timer against shard queue time would be the
        # bug this guards against.
        _, _, client = cluster
        result = client.submit(sentence_of_length(4), timeout=WAIT).result(WAIT)
        assert result.network is not None

    def test_drain_resolves_all_in_flight_work(self, cluster):
        _, _, client = cluster
        futures = [client.submit(sentence_of_length(3)) for _ in range(8)]
        assert client.drain(timeout=WAIT)
        assert all(future.done() for future in futures)

    def test_rebind_cache_reuses_shapes(self, cluster):
        _, _, client = cluster
        client.parse_many([sentence_of_length(4)] * 3, timeout=WAIT)
        info = client.cache_info()
        assert info["hits"] >= 2

    def test_closed_client_refuses_new_work(self, cluster):
        grammar, servers, _ = cluster
        extra = ClusterClient(grammar, [servers[0].address])
        extra.close()
        with pytest.raises(ServiceUnavailable):
            extra.submit(sentence_of_length(3))


class TestShardRouterUnit:
    def test_shape_is_the_category_signature(self):
        grammar = english_grammar()
        router = ShardRouter(["a:1", "b:2"])
        sentence = grammar.tokenize(sentence_of_length(4))
        assert router.shape_of(sentence) == sentence.category_sets
        assert router.shard_for(sentence) in {"a:1", "b:2"}


# -- launcher + log harness over real subprocesses ---------------------------


class TestLauncherEndToEnd:
    def test_subprocess_cluster_parses_and_logs(self, tmp_path):
        grammar = english_grammar()
        sentences = seeded_corpus(seed=1, size=6)
        reference = ParserSession(grammar, engine="vector").parse_many(sentences)
        with ClusterLauncher("english", shards=2, run_dir=tmp_path) as launcher:
            assert launcher.alive() == [True, True]
            with launcher.client(grammar) as client:
                clustered = client.parse_many(sentences, timeout=WAIT)
                for ours, theirs in zip(clustered, reference):
                    assert_bit_identical(ours, theirs)
        # Shards have exited: logs are complete, flushed, and parseable.
        summary = ClusterLogParser.from_directory(tmp_path, pool=False).summary()
        assert summary["completed"] >= len(sentences)
        assert summary["shards"] == [0, 1]
        assert launcher.alive() == []

    def test_launcher_refuses_zero_shards(self):
        with pytest.raises(ClusterError):
            ClusterLauncher("english", shards=0)


# -- the load generator and the log harness ----------------------------------


class _FakeClient:
    """Resolves every submit immediately (loadgen accounting tests)."""

    def __init__(self, fail_every: int = 0):
        self.calls = 0
        self.fail_every = fail_every

    def submit(self, sentence, *, timeout=None) -> Future:
        self.calls += 1
        future: Future = Future()
        if self.fail_every and self.calls % self.fail_every == 0:
            future.set_exception(DeadlineExceeded("synthetic"))
        else:
            future.set_result(object())
        return future


class TestLoadgen:
    def test_seeded_corpus_is_deterministic_and_multi_shape(self):
        first, second = seeded_corpus(seed=5, size=12), seeded_corpus(seed=5, size=12)
        assert first == second
        assert len(first) == 12
        assert len({len(words) for words in first}) > 1

    def test_percentile_is_nearest_rank(self):
        values = [float(v) for v in range(101)]
        assert _percentile(values, 50) == 50.0
        assert _percentile(values, 99) == 99.0
        assert _percentile(values, 100) == 100.0
        assert _percentile([], 50) == 0.0

    def test_closed_loop_accounts_for_every_request(self):
        client = _FakeClient(fail_every=4)
        report = closed_loop(client, [["a"]], requests=16, concurrency=3)
        assert report.completed + report.failed == 16
        assert report.failed == 4
        assert report.errors == {"DeadlineExceeded": 4}
        assert len(report.latencies_ms) == report.completed

    def test_open_loop_offers_the_configured_rate(self):
        client = _FakeClient()
        report = open_loop(client, [["a"]], rate=200.0, duration=0.2)
        assert report.mode == "open"
        assert report.offered_rate == 200.0
        # ~40 scheduled sends; allow generous scheduling slop.
        assert 20 <= report.requests <= 60
        assert report.completed == report.requests

    def test_open_loop_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            open_loop(_FakeClient(), [["a"]], rate=0.0)

    def test_report_record_shape(self):
        report = LoadReport(mode="closed", requests=2, completed=2,
                            elapsed_seconds=1.0, latencies_ms=[1.0, 3.0])
        record = report.to_record()
        assert record["throughput_rps"] == 2.0
        assert record["p50_ms"] == 1.0 and record["p95_ms"] == 3.0
        assert "offered_rate_rps" not in record


def _log_line(ts: str, shard: int, event: str, rest: str) -> str:
    return f"{ts} shard={shard} event={event} {rest}"


class TestLogHarness:
    def test_recv_done_pairing_and_latency(self):
        text = "\n".join([
            _log_line("2026-08-08T10:00:00+00:00", 0, "recv", "conn=1 id=1 kind=parse n=3"),
            _log_line("2026-08-08T10:00:00.250000+00:00", 0, "done", "conn=1 id=1 ok=1"),
            _log_line("2026-08-08T10:00:01+00:00", 0, "recv", "conn=1 id=2 kind=parse n=3"),
        ])
        parsed = parse_log_text(text)
        assert set(parsed["recv"]) == {(0, 1, 1), (0, 1, 2)}
        timeline = MergedTimeline()
        timeline.merge(parsed)
        assert timeline.latencies_ms() == [pytest.approx(250.0)]

    def test_duplicate_lines_keep_the_earliest_timestamp(self):
        text = "\n".join([
            _log_line("2026-08-08T10:00:05+00:00", 0, "done", "conn=1 id=1 ok=1"),
            _log_line("2026-08-08T10:00:02+00:00", 0, "done", "conn=1 id=1 ok=1"),
        ])
        parsed = parse_log_text(text)
        stamp = parsed["done"][(0, 1, 1)]
        assert time.gmtime(stamp).tm_sec == 2

    def test_rejects_tally_with_and_without_ids(self):
        text = "\n".join([
            _log_line("2026-08-08T10:00:00+00:00", 1, "reject", "conn=1 id=4 kind=deadline"),
            _log_line("2026-08-08T10:00:01+00:00", 1, "reject", "conn=1 kind=frame-oversized"),
        ])
        parsed = parse_log_text(text)
        assert parsed["rejects"] == {"deadline": 1, "frame-oversized": 1}
        assert parsed["shards"] == [1]

    def test_merged_summary_spans_shards(self):
        shard0 = "\n".join([
            _log_line("2026-08-08T10:00:00+00:00", 0, "recv", "conn=1 id=1 kind=parse n=3"),
            _log_line("2026-08-08T10:00:00.100000+00:00", 0, "done", "conn=1 id=1 ok=1"),
        ])
        shard1 = "\n".join([
            _log_line("2026-08-08T10:00:01+00:00", 1, "recv", "conn=1 id=1 kind=parse n=4"),
            _log_line("2026-08-08T10:00:01.300000+00:00", 1, "done", "conn=1 id=1 ok=1"),
        ])
        summary = ClusterLogParser.from_texts([shard0, shard1], pool=False).summary()
        assert summary["shards"] == [0, 1]
        assert summary["completed"] == 2
        assert summary["window_seconds"] == pytest.approx(1.3)
        assert summary["latency"]["max_ms"] == pytest.approx(300.0)

    def test_pooled_and_serial_parsing_agree(self):
        texts = [
            _log_line("2026-08-08T10:00:00+00:00", s, "recv", "conn=1 id=1 kind=parse n=2")
            + "\n"
            + _log_line("2026-08-08T10:00:00.050000+00:00", s, "done", "conn=1 id=1 ok=1")
            for s in range(2)
        ]
        serial = ClusterLogParser.from_texts(texts, pool=False).summary()
        pooled = ClusterLogParser.from_texts(texts, pool=True).summary()
        assert serial == pooled

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(ClusterError):
            ClusterLogParser.from_directory(tmp_path)
