"""The packed-bitset execution core: kernels and engine bit-identity.

Two layers of guarantees:

* kernel level — every :mod:`repro.network.bitset` primitive agrees
  with the obvious boolean-array reference, over layouts with odd
  segment widths, empty roles, and NV % 64 != 0;
* engine level — the packed vector engine settles to networks
  bit-identical to the byte-per-bool :class:`SerialEngine` oracle (and
  to the unpacked ``vector-bool`` engine, stat for stat) over a seeded
  sweep of random grammars x random sentences.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro import ConstraintNetwork, SerialEngine, VectorEngine
from repro.engines.registry import create_engine
from repro.grammar.builtin import english_grammar, program_grammar
from repro.kernels import bitops
from repro.network import bitset
from repro.network.bitset import BitLayout
from repro.workloads.random_grammars import random_grammar, random_sentence_for

#: Layouts that exercise the packing corners: single tiny role, odd
#: widths straddling byte boundaries, an empty role between non-empty
#: ones, segment widths over one word, NV not a multiple of 64.
LAYOUT_SLICES = [
    (slice(0, 3),),
    (slice(0, 8), slice(8, 16)),
    (slice(0, 5), slice(5, 5), slice(5, 17)),
    (slice(0, 1), slice(1, 14), slice(14, 14), slice(14, 21), slice(21, 90)),
    (slice(0, 30), slice(30, 61), slice(61, 130)),
]


def random_bools(rng: np.random.Generator, shape) -> np.ndarray:
    return rng.random(shape) < 0.5


@pytest.fixture(params=range(len(LAYOUT_SLICES)), ids=lambda i: f"layout{i}")
def slices(request):
    return LAYOUT_SLICES[request.param]


@pytest.fixture
def layout(slices):
    return BitLayout(slices)


class TestKernels:
    def test_pack_unpack_roundtrip(self, layout):
        rng = np.random.default_rng(0)
        for shape in ((layout.nv,), (7, layout.nv)):
            bools = random_bools(rng, shape)
            words = bitset.pack_rows(bools, layout)
            assert words.dtype == bitset.WORD_DTYPE
            assert words.shape == shape[:-1] + (layout.n_words,)
            np.testing.assert_array_equal(bitset.unpack_rows(words, layout), bools)

    def test_padding_and_slack_bits_stay_zero(self, layout):
        words = bitset.pack_rows(np.ones(layout.nv, dtype=bool), layout)
        # Popcount over the raw words must equal NV exactly: any set
        # slack bit would break every popcount-delta computation.
        assert bitops.count_ones(words) == layout.nv
        np.testing.assert_array_equal(words, layout.full_words)

    def test_get_bit(self, layout):
        rng = np.random.default_rng(1)
        bools = random_bools(rng, layout.nv)
        words = bitset.pack_rows(bools, layout)
        for index in range(layout.nv):
            assert bitset.get_bit(words, index, layout) == bools[index]

    def test_count_ones_matches_sum(self, layout):
        rng = np.random.default_rng(2)
        bools = random_bools(rng, (5, layout.nv))
        assert bitops.count_ones(bitset.pack_rows(bools, layout)) == int(bools.sum())

    def test_segment_counts_match_boolean_reference(self, slices, layout):
        rng = np.random.default_rng(3)
        bools = random_bools(rng, layout.nv)
        counts = bitops.segment_counts(bitset.pack_rows(bools, layout), layout.seg_byte_starts)
        expected = [int(bools[sl].sum()) for sl in slices if sl.stop > sl.start]
        np.testing.assert_array_equal(counts, expected)

    def test_or_segments_matches_boolean_reference(self, slices, layout):
        rng = np.random.default_rng(4)
        bools = random_bools(rng, (layout.nv, layout.nv)) & (rng.random((layout.nv, 1)) < 0.7)
        words = bitset.pack_rows(bools, layout)
        has = bitops.or_segments(words, layout.seg_byte_starts) != 0
        nonempty = [sl for sl in slices if sl.stop > sl.start]
        for j, sl in enumerate(nonempty):
            np.testing.assert_array_equal(
                has[:, j], bools[:, sl].any(axis=1), err_msg=f"segment {j}"
            )

    def test_member_mask(self, layout):
        rng = np.random.default_rng(5)
        indices = np.unique(rng.integers(0, layout.nv, size=max(1, layout.nv // 3)))
        mask = bitset.member_mask(indices, layout)
        expected = np.zeros(layout.nv, dtype=bool)
        expected[indices] = True
        np.testing.assert_array_equal(bitset.unpack_rows(mask, layout), expected)

    def test_and_accumulate_counts_cleared_bits(self, layout):
        rng = np.random.default_rng(6)
        target_bools = random_bools(rng, (layout.nv, layout.nv))
        mask_bools = random_bools(rng, (layout.nv, layout.nv))
        target = bitset.pack_rows(target_bools, layout)
        mask = bitset.pack_rows(mask_bools, layout)
        cleared = bitops.and_accumulate(target, mask)
        assert cleared == int((target_bools & ~mask_bools).sum())
        np.testing.assert_array_equal(
            bitset.unpack_rows(target, layout), target_bools & mask_bools
        )

    def test_clear_rows_and_columns(self, layout):
        rng = np.random.default_rng(7)
        alive_bools = np.ones(layout.nv, dtype=bool)
        matrix_bools = random_bools(rng, (layout.nv, layout.nv))
        alive = bitset.pack_rows(alive_bools, layout)
        matrix = bitset.pack_rows(matrix_bools, layout)
        indices = np.unique(rng.integers(0, layout.nv, size=max(1, layout.nv // 4)))
        bitops.clear_rows_and_columns(
            alive, matrix, indices, bitset.keep_mask(indices, layout)
        )
        alive_bools[indices] = False
        matrix_bools[indices, :] = False
        matrix_bools[:, indices] = False
        np.testing.assert_array_equal(bitset.unpack_rows(alive, layout), alive_bools)
        np.testing.assert_array_equal(bitset.unpack_rows(matrix, layout), matrix_bools)


class TestNetworkModes:
    def network(self, words=("the", "dog", "runs")):
        grammar = english_grammar()
        return ConstraintNetwork(grammar, grammar.tokenize(list(words)))

    def test_networks_start_packed_with_frozen_views(self):
        net = self.network()
        assert net.packed_active
        with pytest.raises(ValueError):
            net.alive[0] = False
        with pytest.raises(ValueError):
            net.matrix[0, 0] = False

    def test_materialize_and_repack_roundtrip(self):
        net = self.network()
        before_alive = net.alive.copy()
        before_matrix = net.matrix.copy()
        net.materialize_bool()
        assert not net.packed_active
        net.alive[0] = False  # writable now; authoritative
        net.alive[0] = True
        net.repack()
        assert net.packed_active
        np.testing.assert_array_equal(net.alive, before_alive)
        np.testing.assert_array_equal(net.matrix, before_matrix)

    def test_kill_dispatches_identically_in_both_modes(self):
        packed = self.network()
        boolean = packed.clone()
        boolean.materialize_bool()
        victims = np.array([0, 3, packed.nv - 1])
        packed.kill(victims)
        boolean.kill(victims)
        np.testing.assert_array_equal(packed.alive, boolean.alive)
        np.testing.assert_array_equal(packed.matrix, boolean.matrix)
        assert packed.alive_count() == boolean.alive_count()
        np.testing.assert_array_equal(packed.domain_sizes(), boolean.domain_sizes())

    def test_apply_pair_mask_dispatches_identically_in_both_modes(self):
        packed = self.network()
        boolean = packed.clone()
        boolean.materialize_bool()
        rng = np.random.default_rng(8)
        permitted = random_bools(rng, (packed.nv, packed.nv))
        assert packed.apply_pair_mask(permitted) == boolean.apply_pair_mask(permitted)
        np.testing.assert_array_equal(packed.matrix, boolean.matrix)

    def test_packed_state_is_at_least_4x_smaller(self):
        net = self.network(("the", "old", "dog", "sees", "the", "old", "cat"))
        packed_bytes = net.state_nbytes()
        net.materialize_bool()
        assert net.state_nbytes() >= 4 * packed_bytes


class TestEngineBitIdentity:
    """Seeded property sweep: packed vector == serial oracle, bit for bit."""

    SEEDS = range(40)

    def test_packed_vector_matches_serial_oracle(self):
        serial = SerialEngine()
        # The interleaved engine replays the oracle's per-constraint
        # trajectory, so even the mutation *counts* must match; the fused
        # engine takes a different route to the same fixpoint, so it is
        # held to final-state bit identity (the fixpoint is unique).
        interleaved = VectorEngine(fused=False)
        fused = VectorEngine()
        odd_widths = 0
        for seed in self.SEEDS:
            rng = random.Random(seed)
            grammar = random_grammar(rng)
            sentence = random_sentence_for(grammar, rng, max_len=4)
            with pytest.warns(DeprecationWarning):
                oracle = serial.parse(grammar, sentence)
                packed = interleaved.parse(grammar, sentence)
                fast = fused.parse(grammar, sentence)
            if packed.network.nv % 64 != 0:
                odd_widths += 1
            assert packed.network.packed_active
            context = f"seed {seed}, sentence {sentence}"
            np.testing.assert_array_equal(
                packed.network.alive, oracle.network.alive, err_msg=context
            )
            np.testing.assert_array_equal(
                packed.network.matrix, oracle.network.matrix, err_msg=context
            )
            assert packed.stats.role_values_killed == oracle.stats.role_values_killed, context
            assert (
                packed.stats.matrix_entries_zeroed == oracle.stats.matrix_entries_zeroed
            ), context
            assert packed.locally_consistent == oracle.locally_consistent, context
            assert packed.ambiguous == oracle.ambiguous, context
            np.testing.assert_array_equal(
                fast.network.alive, oracle.network.alive, err_msg=context
            )
            np.testing.assert_array_equal(
                fast.network.matrix, oracle.network.matrix, err_msg=context
            )
            assert fast.locally_consistent == oracle.locally_consistent, context
            assert fast.ambiguous == oracle.ambiguous, context
        # The sweep is only convincing if it hits rows the word padding
        # actually matters for.
        assert odd_widths > 0, "sweep never produced NV % 64 != 0"

    def test_packed_vector_matches_unpacked_vector_stat_for_stat(self):
        # Stat-for-stat only holds on the interleaved path: the fused
        # kernel compresses the binary sweep into one pass by design.
        packed_engine = create_engine("vector-interleaved")
        assert packed_engine.name == "vector-interleaved"
        bool_engine = create_engine("vector-bool")
        assert bool_engine.name == "vector-bool"
        for seed in (0, 7, 13, 29):
            rng = random.Random(seed)
            grammar = random_grammar(rng)
            sentence = random_sentence_for(grammar, rng, max_len=4)
            with pytest.warns(DeprecationWarning):
                packed = packed_engine.parse(grammar, sentence)
                unpacked = bool_engine.parse(grammar, sentence)
            assert packed.network.packed_active
            # The byte engine works in boolean mode but repacks on exit.
            assert unpacked.network.packed_active
            np.testing.assert_array_equal(packed.network.alive, unpacked.network.alive)
            np.testing.assert_array_equal(packed.network.matrix, unpacked.network.matrix)
            for stat in (
                "unary_checks",
                "pair_checks",
                "role_values_killed",
                "matrix_entries_zeroed",
                "consistency_passes",
                "filtering_iterations",
            ):
                assert getattr(packed.stats, stat) == getattr(unpacked.stats, stat), stat

    def test_english_grammar_end_to_end(self):
        grammar = english_grammar()
        words = ["the", "old", "dog", "sees", "the", "cat"]
        with pytest.warns(DeprecationWarning):
            oracle = SerialEngine().parse(grammar, words)
            packed = VectorEngine().parse(grammar, words)
        np.testing.assert_array_equal(packed.network.alive, oracle.network.alive)
        np.testing.assert_array_equal(packed.network.matrix, oracle.network.matrix)
        assert packed.locally_consistent and oracle.locally_consistent

    def test_program_grammar_acceptance(self):
        grammar = program_grammar()
        with pytest.warns(DeprecationWarning):
            oracle = SerialEngine().parse(grammar, ["The", "program", "runs"])
            packed = VectorEngine().parse(grammar, ["The", "program", "runs"])
        assert packed.locally_consistent == oracle.locally_consistent
        np.testing.assert_array_equal(packed.network.alive, oracle.network.alive)
