"""Filtering is confluent: the fixpoint is unique, however kills are ordered.

The engines rely on this silently — the serial engine kills values one
consistency sweep at a time, the parallel engines kill whole waves
simultaneously, and the MasPar bounds its sweeps.  Support elimination
is a monotone closure, so the greatest locally-consistent subnetwork is
unique; this file property-tests exactly that on random synthetic
networks, including adversarially ordered single-kill schedules.
"""

from __future__ import annotations

import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.synthetic import SyntheticNetwork
from repro.propagation.consistency import (
    consistency_step_serial,
    consistency_step_vector,
    unsupported_vector,
)
from repro.propagation.filtering import filter_network


def random_network(rng: random.Random) -> SyntheticNetwork:
    n_roles = rng.randint(2, 5)
    sizes = [rng.randint(1, 4) for _ in range(n_roles)]
    net = SyntheticNetwork(sizes)
    # Randomly zero a fraction of the cross-role pairs.
    density = rng.uniform(0.2, 0.9)
    for a in range(net.nv):
        for b in range(a + 1, net.nv):
            if net.role_index[a] != net.role_index[b] and rng.random() > density:
                net.forbid(a, b)
    return net


def one_at_a_time_fixpoint(net: SyntheticNetwork, rng: random.Random) -> np.ndarray:
    """Kill ONE random unsupported value per step, until quiescent."""
    while True:
        unsupported = unsupported_vector(net)
        if len(unsupported) == 0:
            return net.alive.copy()
        victim = rng.choice(list(unsupported))
        net.kill(np.array([victim]))


class TestConfluence:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 10**6), order_seed=st.integers(0, 10**6))
    def test_single_kill_order_does_not_matter(self, seed, order_seed):
        rng = random.Random(seed)
        net = random_network(rng)

        wave = SyntheticNetwork.__new__(SyntheticNetwork)
        wave.__dict__.update(net.__dict__)
        wave.alive = net.alive.copy()
        wave.matrix = net.matrix.copy()

        sequential = one_at_a_time_fixpoint(net, random.Random(order_seed))
        filter_network(wave, consistency_step_vector)
        np.testing.assert_array_equal(sequential, wave.alive)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_serial_and_vector_steps_reach_same_fixpoint(self, seed):
        rng = random.Random(seed)
        a = random_network(rng)
        b = SyntheticNetwork.__new__(SyntheticNetwork)
        b.__dict__.update(a.__dict__)
        b.alive = a.alive.copy()
        b.matrix = a.matrix.copy()

        filter_network(a, consistency_step_vector)
        filter_network(b, consistency_step_serial)
        np.testing.assert_array_equal(a.alive, b.alive)
        np.testing.assert_array_equal(a.matrix, b.matrix)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_fixpoint_is_locally_consistent(self, seed):
        net = random_network(random.Random(seed))
        filter_network(net, consistency_step_vector)
        assert len(unsupported_vector(net)) == 0

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10**6), limit=st.integers(0, 3))
    def test_bounded_filtering_overapproximates(self, seed, limit):
        """Design decision 5: a bounded run keeps a superset of the fixpoint."""
        rng = random.Random(seed)
        full = random_network(rng)
        bounded = SyntheticNetwork.__new__(SyntheticNetwork)
        bounded.__dict__.update(full.__dict__)
        bounded.alive = full.alive.copy()
        bounded.matrix = full.matrix.copy()

        filter_network(full, consistency_step_vector)
        filter_network(bounded, consistency_step_vector, limit=limit)
        assert (full.alive <= bounded.alive).all()
