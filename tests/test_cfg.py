"""Unit + property tests for the CFG substrate (Figure-8 baselines)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GrammarError
from repro.cfg import (
    CFG,
    anbn_cfg,
    balanced_brackets_cfg,
    cyk_accepts,
    cyk_parse,
    cyk_parse_sets,
    earley_accepts,
    english_cfg,
    mesh_cyk,
    palindrome_cfg,
    random_corpus,
    random_derivation,
    to_cnf,
    typed_brackets_cfg,
)
from repro.workloads import sentence_of_length


class TestCFGBasics:
    def test_terminals_and_nonterminals(self):
        grammar = CFG("S", [("S", ("a", "S")), ("S", ("b",))])
        assert grammar.nonterminals == {"S"}
        assert grammar.terminals == {"a", "b"}

    def test_size_counts_rhs_symbols(self):
        grammar = CFG("S", [("S", ("a", "S")), ("S", ())])
        assert grammar.size == 3  # 2 + 1 (epsilon counts as 1)

    def test_unknown_start_rejected(self):
        with pytest.raises(GrammarError, match="start"):
            CFG("X", [("S", ("a",))])

    def test_empty_grammar_rejected(self):
        with pytest.raises(GrammarError):
            CFG("S", [])

    def test_nullable(self):
        grammar = CFG("S", [("S", ("A", "B")), ("A", ()), ("B", ("b",)), ("B", ("A",))])
        assert grammar.nullable() == {"A", "B", "S"}

    def test_is_cnf(self):
        assert CFG("S", [("S", ("A", "B")), ("A", ("a",)), ("B", ("b",))]).is_cnf()
        assert not CFG("S", [("S", ("a", "b"))]).is_cnf()


class TestCNF:
    def test_anbn_round_trip(self):
        cnf = to_cnf(anbn_cfg())
        assert cnf.is_cnf()
        assert cyk_accepts(cnf, ["a", "b"])
        assert cyk_accepts(cnf, ["a", "a", "b", "b"])
        assert not cyk_accepts(cnf, ["a", "b", "b"])

    def test_epsilon_language_preserved(self):
        cnf = to_cnf(balanced_brackets_cfg())
        assert cyk_accepts(cnf, [])
        assert cyk_accepts(cnf, list("()"))
        assert cyk_accepts(cnf, list("(()())"))
        assert not cyk_accepts(cnf, list(")("))

    def test_unit_chains_removed(self):
        grammar = CFG("S", [("S", ("A",)), ("A", ("B",)), ("B", ("b",))])
        cnf = to_cnf(grammar)
        assert cyk_accepts(cnf, ["b"])
        assert not cyk_accepts(cnf, ["a"])

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_cnf_equals_earley_on_random_sentences(self, seed):
        """CNF+CYK must agree with Earley-on-the-original everywhere."""
        rng = random.Random(seed)
        grammar = english_cfg()
        cnf = to_cnf(grammar)
        words = random_derivation(grammar, rng, max_symbols=10)
        assert cyk_accepts(cnf, words)
        assert earley_accepts(grammar, words)
        rng.shuffle(words)
        assert cyk_accepts(cnf, words) == earley_accepts(grammar, words)


class TestCYK:
    def test_requires_cnf(self):
        with pytest.raises(GrammarError, match="CNF"):
            cyk_parse(anbn_cfg(), ["a", "b"])

    def test_chart_spans(self):
        cnf = to_cnf(anbn_cfg())
        result = cyk_parse(cnf, ["a", "a", "b", "b"])
        assert result.accepted
        # The inner span (a b) derives from the original S.
        inner = result.chart_sets[1][2]
        assert any("S" in nt or nt.startswith("_") for nt in inner)

    def test_operation_count_is_cubic_ish(self):
        cnf = to_cnf(english_cfg())
        ops = [cyk_parse(cnf, sentence_of_length(n)).split_operations for n in (4, 8)]
        # Doubling n should multiply the work by about 2^3.
        assert 4 < ops[1] / ops[0] < 16

    def test_empty_sentence(self):
        cnf = to_cnf(balanced_brackets_cfg())
        assert cyk_parse(cnf, []).accepted

    def test_records_kernel_backend(self, monkeypatch):
        from repro.kernels.backend import ENV_VAR

        monkeypatch.delenv(ENV_VAR, raising=False)
        cnf = to_cnf(anbn_cfg())
        assert cyk_parse(cnf, ["a", "b"]).kernel_backend == "packed"
        assert cyk_parse(cnf, ["a", "b"], backend="numpy").kernel_backend == "numpy"
        assert cyk_parse_sets(cnf, ["a", "b"]).kernel_backend is None


class TestCYKPackedVsSetOracle:
    """Seeded sweep: the packed BMM chart must agree with the set-based
    oracle bit for bit — accepted flag, every chart cell, and the
    operation count — on every builtin CFG, for both kernel backends."""

    GRAMMARS = {
        "anbn": anbn_cfg,
        "brackets": balanced_brackets_cfg,
        "typed": typed_brackets_cfg,
        "palindrome": palindrome_cfg,
        "english": english_cfg,
    }

    @pytest.mark.parametrize("name", sorted(GRAMMARS))
    @pytest.mark.parametrize("backend", ["packed", "numpy"])
    def test_sweep_matches_oracle(self, name, backend):
        grammar = self.GRAMMARS[name]()
        cnf = to_cnf(grammar)
        rng = random.Random(name)
        cases: list[list[str]] = [[]]
        for words in random_corpus(grammar, seed=13, size=6, max_symbols=14):
            sentence = list(words)
            if len(sentence) <= 10:
                cases.append(sentence)
            # A shuffled positive is usually a negative: both paths
            # must agree on rejections too.
            shuffled = sentence[:]
            rng.shuffle(shuffled)
            if len(shuffled) <= 10:
                cases.append(shuffled)
        assert len(cases) >= 3
        for sentence in cases:
            packed = cyk_parse(cnf, sentence, backend=backend)
            oracle = cyk_parse_sets(cnf, sentence)
            assert packed.accepted == oracle.accepted, sentence
            assert packed.chart_sets == oracle.chart_sets, sentence
            assert packed.split_operations == oracle.split_operations, sentence


class TestEarley:
    def test_accepts_with_epsilon_rules(self):
        grammar = balanced_brackets_cfg()
        assert earley_accepts(grammar, [])
        assert earley_accepts(grammar, list("()()"))
        assert not earley_accepts(grammar, list("(("))

    def test_nullable_prediction(self):
        # A -> ε in the middle of a rule (Aycock-Horspool case).
        grammar = CFG("S", [("S", ("A", "b")), ("A", ())])
        assert earley_accepts(grammar, ["b"])

    def test_english_sentences(self):
        grammar = english_cfg()
        assert earley_accepts(grammar, "the dog sees the cat".split())
        assert not earley_accepts(grammar, "dog the sees".split())


class TestMeshCYK:
    def test_agrees_with_sequential_cyk(self):
        cnf = to_cnf(english_cfg())
        for n in (2, 3, 5, 8):
            words = sentence_of_length(n)
            assert mesh_cyk(cnf, words).accepted == cyk_accepts(cnf, words)

    def test_rejections_agree_too(self):
        cnf = to_cnf(english_cfg())
        words = "dog the sees cat the".split()
        assert mesh_cyk(cnf, words).accepted == cyk_accepts(cnf, words) == False

    def test_linear_wavefront_steps(self):
        cnf = to_cnf(english_cfg())
        for n in (3, 6, 12):
            assert mesh_cyk(cnf, sentence_of_length(n)).wavefront_steps == n - 1

    def test_quadratic_cells(self):
        cnf = to_cnf(english_cfg())
        result = mesh_cyk(cnf, sentence_of_length(8))
        assert result.cells == 8 * 9 // 2

    @settings(max_examples=25, deadline=None)
    @given(words=st.lists(st.sampled_from(["a", "b"]), min_size=1, max_size=8))
    def test_property_matches_cyk_on_anbn(self, words):
        cnf = to_cnf(anbn_cfg())
        assert mesh_cyk(cnf, words).accepted == cyk_accepts(cnf, words)


class TestGenerator:
    def test_derivations_are_in_the_language(self):
        grammar = english_cfg()
        for words in random_corpus(grammar, seed=3, size=10, max_symbols=12):
            assert earley_accepts(grammar, words)

    def test_deterministic_with_seed(self):
        a = random_corpus(english_cfg(), seed=11, size=5)
        b = random_corpus(english_cfg(), seed=11, size=5)
        assert a == b

    def test_budget_error(self):
        # A grammar with no terminating derivation must raise, not spin.
        grammar = CFG("S", [("S", ("S", "S")), ("S", ("S",))])
        with pytest.raises(GrammarError, match="derivation"):
            random_derivation(grammar, random.Random(0), max_symbols=5, max_attempts=3)
