"""The serial engine's exhaustive mode: same answers, O(n^4) work profile."""

from __future__ import annotations

import numpy as np
import pytest

from repro import SerialEngine, VectorEngine
from repro.grammar.builtin import program_grammar
from repro.workloads import toy_sentence


class TestExhaustiveMode:
    @pytest.mark.parametrize("sentence", ["The program runs", "program the runs", "a program"])
    def test_same_final_network(self, sentence):
        pruned = SerialEngine().parse(program_grammar(), sentence)
        exhaustive = SerialEngine(exhaustive=True).parse(program_grammar(), sentence)
        vector = VectorEngine().parse(program_grammar(), sentence)
        np.testing.assert_array_equal(pruned.network.alive, exhaustive.network.alive)
        np.testing.assert_array_equal(pruned.network.matrix, exhaustive.network.matrix)
        np.testing.assert_array_equal(vector.network.alive, exhaustive.network.alive)

    def test_exhaustive_checks_every_cross_role_pair(self):
        grammar = program_grammar()
        result = SerialEngine(exhaustive=True).parse(grammar, "The program runs")
        nv = result.network.nv
        # Same-role pairs (including self) are excluded from the sweep.
        per_role = nv // result.network.n_roles
        cross_pairs = nv * nv - result.network.n_roles * per_role * per_role
        expected = cross_pairs * len(grammar.binary_constraints)
        assert result.stats.pair_checks == expected

    def test_pruned_does_strictly_less_work(self):
        grammar = program_grammar()
        sentence = toy_sentence(5)
        pruned = SerialEngine().parse(grammar, sentence)
        exhaustive = SerialEngine(exhaustive=True).parse(grammar, sentence)
        assert pruned.stats.pair_checks < exhaustive.stats.pair_checks

    def test_exhaustive_work_independent_of_rejection(self):
        """The O(n^4) sweep costs the same whether the sentence parses."""
        grammar = program_grammar()
        good = SerialEngine(exhaustive=True).parse(grammar, ["the", "program", "runs"])
        bad = SerialEngine(exhaustive=True).parse(grammar, ["program", "the", "runs"])
        assert good.stats.pair_checks == bad.stats.pair_checks
