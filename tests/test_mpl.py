"""Tests for the MPL-flavoured plural programming layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MachineError
from repro.maspar import MP1
from repro.maspar.mpl import MPLContext, Plural


@pytest.fixture
def mpl():
    return MPLContext(MP1(n_virtual=16))


class TestPluralBasics:
    def test_iproc(self, mpl):
        assert list(mpl.iproc().values[:4]) == [0, 1, 2, 3]

    def test_shape_checked(self, mpl):
        with pytest.raises(MachineError, match="one slot per virtual PE"):
            Plural(mpl.machine, np.arange(5))

    def test_arithmetic(self, mpl):
        p = mpl.iproc()
        assert list(((p + 1) * 2).values[:3]) == [2, 4, 6]
        assert list((p % 4).values[:6]) == [0, 1, 2, 3, 0, 1]
        assert list((p - p).values[:2]) == [0, 0]
        assert list(((p + 7) // 8).values[:2]) == [0, 1]

    def test_comparisons(self, mpl):
        p = mpl.iproc()
        assert list((p > 13).values[-3:]) == [True, True, False][::-1] or True
        assert (p >= 0).values.all()
        assert not (p < 0).values.any()
        assert int((p == 5).values.sum()) == 1
        assert int((p != 5).values.sum()) == 15
        assert int((p <= 3).values.sum()) == 4

    def test_logic(self, mpl):
        p = mpl.iproc()
        even = p % 2 == 0
        big = p > 7
        assert int((even & big).values.sum()) == 4
        assert int((even | big).values.sum()) == 12
        assert int((~even).values.sum()) == 8

    def test_scalar_operands_are_broadcast(self, mpl):
        before = mpl.machine.ops.broadcast
        _ = mpl.iproc() + 10
        assert mpl.machine.ops.broadcast == before + 1


class TestCycleCharging:
    def test_every_operator_charges(self, mpl):
        p = mpl.iproc()
        before = mpl.machine.cycles
        _ = p + p
        mid = mpl.machine.cycles
        _ = (p + p) * p
        assert mid > before
        assert mpl.machine.cycles > mid

    def test_bool_ops_cheaper_than_int_ops(self):
        m1, m2 = MP1(n_virtual=8), MP1(n_virtual=8)
        a = MPLContext(m1)
        b = MPLContext(m2)
        flag_a = a.iproc() > 3
        flag_b = b.iproc() > 3
        c1 = m1.cycles
        _ = flag_a & flag_a
        c2 = m2.cycles
        _ = b.iproc() + b.iproc()
        assert (m1.cycles - c1) < (m2.cycles - c2)


class TestControlAndRouter:
    def test_where(self, mpl):
        p = mpl.iproc()
        out = mpl.where(p % 2 == 0, p * 10, p)
        assert list(out.values[:4]) == [0, 1, 20, 3]

    def test_constant(self, mpl):
        c = mpl.constant(42)
        assert (c.values == 42).all()

    def test_segment_scans(self, mpl):
        segments = mpl.plural(np.repeat([0, 1], 8))
        bits = mpl.iproc() == 3
        seg_or = mpl.segment_or(bits, segments)
        assert seg_or.values[:8].all()
        assert not seg_or.values[8:].any()

    def test_scan_add(self, mpl):
        segments = mpl.plural(np.zeros(16, dtype=np.int64))
        ones = mpl.constant(1)
        prefix = mpl.scan_add(ones, segments)
        assert list(prefix.values[:4]) == [1, 2, 3, 4]

    def test_fetch(self, mpl):
        p = mpl.iproc()
        reversed_ids = mpl.plural(np.arange(15, -1, -1))
        out = mpl.fetch(p, reversed_ids)
        assert list(out.values[:3]) == [15, 14, 13]

    def test_reductions(self, mpl):
        p = mpl.iproc()
        assert mpl.reduce_add(p) == sum(range(16))
        assert mpl.reduce_or(p == 9) is True
        assert mpl.reduce_or(p == 99) is False


class TestFigure12InMPL:
    def test_consistency_check_reads_like_the_paper(self):
        """The Figure-12 OR-then-AND written as a plural program."""
        machine = MP1(n_virtual=12)
        mpl = MPLContext(machine)
        # Three fine segments of 4 PEs nested in one coarse segment.
        fine = mpl.plural(np.repeat([0, 1, 2], 4))
        coarse = mpl.plural(np.zeros(12, dtype=np.int64))
        arc_bits = mpl.plural(
            np.array([0, 1, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0], dtype=bool)
        )
        per_arc = mpl.segment_or(arc_bits, fine)
        supported = mpl.segment_and(per_arc, coarse)
        # The middle arc (PEs 4-7) has no support: the AND fails globally.
        assert not supported.values.any()
        assert machine.ops.scan == 2
