"""Three roles per word (q = 3): the a^n b^n c^n d^n grammar.

The paper only ever uses two roles; these tests exercise the whole
stack — network construction, every engine, and the MasPar PE layout —
at q = 3, where the processor count becomes q^2 n^4 = 9 n^4.
"""

from __future__ import annotations

import itertools
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ConstraintNetwork,
    MasParEngine,
    MeshEngine,
    SerialEngine,
    VectorEngine,
    accepts,
    extract_parses,
)
from repro.grammar.builtin import abcd_grammar, abcd_oracle
from repro.parsec import build_layout

ENGINE = VectorEngine()


def cdg_accepts(words) -> bool:
    return accepts(ENGINE.parse(abcd_grammar(), list(words)).network)


class TestLanguage:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_accepts_members(self, n):
        assert cdg_accepts(["a"] * n + ["b"] * n + ["c"] * n + ["d"] * n)

    @pytest.mark.parametrize(
        "text",
        ["a", "abcd" * 2, "abdc", "aabbccd", "abc", "aabcd", "dcba", "aabbbccdd"],
    )
    def test_rejects_non_members(self, text):
        # NB: "abcdabcd" (= "abcd"*2) interleaves the blocks, so it is out.
        assert not cdg_accepts(list(text))

    def test_exhaustive_up_to_length_4(self):
        for n in range(1, 5):
            for s in itertools.product("abcd", repeat=n):
                assert cdg_accepts(s) == abcd_oracle(list(s)), s

    @settings(max_examples=30, deadline=None)
    @given(words=st.lists(st.sampled_from(list("abcd")), min_size=1, max_size=8))
    def test_matches_oracle(self, words):
        assert cdg_accepts(words) == abcd_oracle(words)

    def test_parse_structure(self):
        result = ENGINE.parse(abcd_grammar(), list("abcd"))
        parses = extract_parses(result.network, limit=None)
        assert len(parses) == 1
        mapping = parses[0].pretty_assignment(abcd_grammar().symbols)
        assert mapping[(1, "governor")] == "MB-2"
        assert mapping[(1, "needs")] == "MC-3"
        assert mapping[(1, "extra")] == "MD-4"
        assert mapping[(4, "needs")] == "BD-1"


class TestThreeRoleMachinery:
    def test_network_has_three_roles_per_word(self):
        grammar = abcd_grammar()
        net = ConstraintNetwork(grammar, grammar.tokenize(list("abcd")))
        assert net.n_roles_per_word == 3
        assert net.n_roles == 12

    def test_maspar_layout_is_9n4(self):
        grammar = abcd_grammar()
        net = ConstraintNetwork(grammar, grammar.tokenize(list("abcd")))
        layout = build_layout(net)
        assert layout.n_pes == 9 * 4**4

    def test_all_engines_agree_at_q3(self):
        grammar = abcd_grammar()
        rng = random.Random(7)
        cases = [list("aabbccdd"), list("abcd"), list("abdc")]
        cases += [[rng.choice("abcd") for _ in range(6)] for _ in range(3)]
        for words in cases:
            reference = ENGINE.parse(grammar, words)
            for engine in (SerialEngine(), MasParEngine(), MeshEngine()):
                result = engine.parse(grammar, words)
                np.testing.assert_array_equal(
                    result.network.alive,
                    reference.network.alive,
                    err_msg=f"{engine.name} differs on {''.join(words)}",
                )
                np.testing.assert_array_equal(
                    result.network.matrix, reference.network.matrix
                )

    def test_pram_at_q3(self):
        grammar = abcd_grammar()
        words = list("abcd")
        from repro import PRAMEngine

        result = PRAMEngine().parse(grammar, words)
        reference = ENGINE.parse(grammar, words)
        np.testing.assert_array_equal(result.network.alive, reference.network.alive)
