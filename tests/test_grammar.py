"""Unit tests for grammar construction, loading and validation."""

from __future__ import annotations

import pytest

from repro import GrammarBuilder
from repro.errors import GrammarError, LexiconError
from repro.grammar import dump_grammar, load_grammar
from repro.grammar.builtin import program_grammar

MINI_GRAMMAR = """
(grammar mini
  (labels SUBJ ROOT)
  (roles governor)
  (categories noun verb)
  (table (governor SUBJ ROOT))
  (lexicon (dogs noun) (bark verb noun))
  (constraint verbs-are-roots
    (if (and (eq (cat (word (pos x))) verb)
             (eq (role x) governor))
        (and (eq (lab x) ROOT) (eq (mod x) nil)))))
"""


class TestBuilder:
    def test_basic_build(self):
        grammar = (
            GrammarBuilder("t")
            .labels("A", "B")
            .roles("governor")
            .categories("noun")
            .table("governor", "A", "B")
            .word("dog", "noun")
            .constraint("c1", "(if (eq (lab x) A) (eq (mod x) nil))")
            .build()
        )
        assert grammar.n_labels == 2
        assert grammar.n_roles == 1
        assert grammar.k == 1

    def test_duplicate_constraint_name_rejected(self):
        builder = (
            GrammarBuilder("t").labels("A").roles("g").categories("n").word("w", "n")
        )
        builder.constraint("c", "(if (eq (lab x) A) (eq (mod x) nil))")
        with pytest.raises(GrammarError, match="duplicate"):
            builder.constraint("c", "(if (eq (lab x) A) (eq (mod x) nil))")

    def test_empty_lexicon_rejected(self):
        builder = GrammarBuilder("t").labels("A").roles("g").categories("n")
        with pytest.raises(GrammarError, match="lexicon is empty"):
            builder.build()

    def test_table_accumulates(self):
        grammar = (
            GrammarBuilder("t")
            .labels("A", "B")
            .roles("g")
            .categories("n")
            .table("g", "A")
            .table("g", "B")
            .word("w", "n")
            .build()
        )
        assert grammar.allowed_labels(0) == frozenset({0, 1})

    def test_lexical_table_refines(self):
        grammar = (
            GrammarBuilder("t")
            .labels("A", "B")
            .roles("g")
            .categories("n", "v")
            .table("g", "A", "B")
            .lexical("g", "n", "A")
            .word("w", "n")
            .build()
        )
        noun = grammar.symbols.categories.code("n")
        verb = grammar.symbols.categories.code("v")
        assert grammar.allowed_labels(0, noun) == frozenset({grammar.symbols.labels.code("A")})
        # No lexical entry for verbs: falls back to the full table.
        assert grammar.allowed_labels(0, verb) == frozenset({0, 1})

    def test_word_with_no_category_rejected(self):
        builder = GrammarBuilder("t").labels("A").roles("g").categories("n")
        with pytest.raises(LexiconError):
            builder.word("w")


class TestTokenize:
    def test_tokenize_string(self, toy_grammar):
        sentence = toy_grammar.tokenize("The program runs.")
        assert sentence.words == ("The", "program", "runs")

    def test_tokenize_list(self, toy_grammar):
        sentence = toy_grammar.tokenize(["the", "program", "runs"])
        assert len(sentence) == 3

    def test_unknown_word(self, toy_grammar):
        with pytest.raises(LexiconError, match="flies"):
            toy_grammar.tokenize("the program flies")

    def test_empty_sentence(self, toy_grammar):
        with pytest.raises(GrammarError, match="empty"):
            toy_grammar.tokenize("")

    def test_case_insensitive_lexicon(self, toy_grammar):
        sentence = toy_grammar.tokenize("THE PROGRAM RUNS")
        det = toy_grammar.symbols.categories.code("det")
        assert sentence.category_sets[0] == frozenset({det})

    def test_canbe_array_row0_empty(self, toy_grammar):
        sentence = toy_grammar.tokenize("the program runs")
        table = sentence.canbe_array(len(toy_grammar.symbols.categories))
        assert not table[0].any()
        assert table.shape == (4, 3)


class TestLoader:
    def test_load_mini_grammar(self):
        grammar = load_grammar(MINI_GRAMMAR)
        assert grammar.name == "mini"
        assert grammar.n_labels == 2
        assert grammar.k == 1
        assert grammar.lexicon.category_names_of("bark") == {"verb", "noun"}

    def test_loaded_grammar_parses(self):
        from repro import VectorEngine

        grammar = load_grammar(MINI_GRAMMAR)
        result = VectorEngine().parse(grammar, "bark")
        assert result.locally_consistent

    def test_round_trip(self):
        grammar = load_grammar(MINI_GRAMMAR)
        text = dump_grammar(grammar)
        again = load_grammar(text)
        assert again.name == grammar.name
        assert again.labels == grammar.labels
        assert again.roles == grammar.roles
        assert len(again.constraints) == len(grammar.constraints)
        assert dump_grammar(again) == text

    def test_round_trip_toy_grammar(self):
        grammar = program_grammar()
        again = load_grammar(dump_grammar(grammar))
        assert again.labels == grammar.labels
        assert [c.source for c in again.constraints] == [
            c.source for c in grammar.constraints
        ]

    def test_bad_top_form(self):
        with pytest.raises(GrammarError, match="grammar NAME"):
            load_grammar("(labels A)")

    def test_unknown_section(self):
        with pytest.raises(GrammarError, match="unknown grammar section"):
            load_grammar("(grammar g (labls A) (lexicon (w n)))")

    def test_sections_order_free(self):
        # The lexicon and constraints may appear before the namespaces.
        grammar = load_grammar(
            """
            (grammar g
              (lexicon (w n))
              (constraint c (if (eq (lab x) A) (eq (mod x) nil)))
              (labels A)
              (roles governor)
              (categories n))
            """
        )
        assert grammar.k == 1

    def test_numeric_word_forms_round_trip(self):
        """Regression: lexicon words that look like integers ("3")."""
        grammar = (
            GrammarBuilder("digits")
            .labels("A")
            .roles("g")
            .categories("num")
            .table("g", "A")
            .word("3", "num")
            .word("42", "num")
            .build()
        )
        again = load_grammar(dump_grammar(grammar))
        assert "3" in again.lexicon and "42" in again.lexicon
        assert dump_grammar(again) == dump_grammar(grammar)

    def test_bad_constraint_section(self):
        with pytest.raises(GrammarError, match="constraint NAME"):
            load_grammar(
                "(grammar g (labels A) (roles r) (categories n) (lexicon (w n)) (constraint c))"
            )


class TestToyGrammarShape:
    def test_counts_match_paper(self, toy_grammar):
        assert toy_grammar.n_labels == 6
        assert toy_grammar.n_roles == 2
        assert len(toy_grammar.unary_constraints) == 6
        assert len(toy_grammar.binary_constraints) == 4
        assert toy_grammar.k == 10

    def test_table_matches_paper(self, toy_grammar):
        symbols = toy_grammar.symbols
        governor = symbols.roles.code("governor")
        needs = symbols.roles.code("needs")
        gov_labels = {symbols.labels.name(code) for code in toy_grammar.table[governor]}
        needs_labels = {symbols.labels.name(code) for code in toy_grammar.table[needs]}
        assert gov_labels == {"SUBJ", "ROOT", "DET"}
        assert needs_labels == {"NP", "S", "BLANK"}

    def test_grammar_is_cached(self):
        assert program_grammar() is program_grammar()
