"""The flow layer: CFG/reaching-definitions, call graph, locks, blocking.

These are the builders behind the whole-project rules (RPR014..RPR016);
each gets direct structural tests here, separate from the rule-level
fixtures in ``test_lint.py`` — including the acceptance scenarios the
ISSUE names: a seeded known-cycle lock graph and a known-blocking
cluster coroutine.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.flow import (
    BlockingAnalysis,
    CallGraph,
    ControlFlowGraph,
    LockGraph,
    ReachingDefinitions,
    module_name_for,
)
from repro.analysis.flow.blocking import blocking_sites
from repro.analysis.lint import Project, SourceModule


def project(*files: tuple[str, str]) -> Project:
    return Project([SourceModule(Path(rel), source) for rel, source in files])


def graph_of(*files: tuple[str, str]) -> CallGraph:
    return CallGraph(project(*files))


def first_function(source: str) -> ast.FunctionDef:
    node = ast.parse(source).body[0]
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    return node


def stmt_with_call(func: ast.AST, name: str) -> ast.stmt:
    """The statement containing the call ``name(...)``."""
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Expr)
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Name)
            and node.value.func.id == name
        ):
            return node
    raise AssertionError(f"no call to {name}() in fixture")


class TestModuleNames:
    def test_repo_layout_paths(self):
        assert module_name_for("src/repro/serve/service.py") == "repro.serve.service"
        assert module_name_for("src/repro/serve/__init__.py") == "repro.serve"

    def test_bare_fixture_path(self):
        assert module_name_for("fixture.py") == "fixture"


class TestControlFlowGraph:
    def test_linear_body_is_one_block(self):
        func = first_function("def f():\n    a = 1\n    b = 2\n    use(a, b)\n")
        cfg = ControlFlowGraph(func)
        entry = cfg.blocks[0]
        assert len(entry.stmts) == 3
        assert cfg.exit_index in entry.succs

    def test_if_branches_and_join(self):
        func = first_function(
            "def f(c):\n"
            "    if c:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    use(a)\n"
        )
        cfg = ControlFlowGraph(func)
        header_block, _ = cfg.stmt_site[id(func.body[0])]
        join_block, _ = cfg.stmt_site[id(stmt_with_call(func, "use"))]
        assert len(cfg.blocks[header_block].succs) == 2
        assert len(cfg.blocks[join_block].preds) == 2

    def test_while_has_back_edge(self):
        func = first_function(
            "def f(c):\n"
            "    while c:\n"
            "        step()\n"
            "    done()\n"
        )
        cfg = ControlFlowGraph(func)
        header_block, _ = cfg.stmt_site[id(func.body[0])]
        body_block, _ = cfg.stmt_site[id(stmt_with_call(func, "step"))]
        assert header_block in cfg.blocks[body_block].succs

    def test_return_edges_to_exit(self):
        func = first_function(
            "def f(c):\n"
            "    if c:\n"
            "        return 1\n"
            "    return 2\n"
        )
        cfg = ControlFlowGraph(func)
        for stmt in ast.walk(func):
            if isinstance(stmt, ast.Return):
                block, _ = cfg.stmt_site[id(stmt)]
                assert cfg.exit_index in cfg.blocks[block].succs

    def test_every_statement_is_recorded(self):
        func = first_function(
            "def f(items):\n"
            "    total = 0\n"
            "    for item in items:\n"
            "        total += item\n"
            "    try:\n"
            "        emit(total)\n"
            "    except ValueError:\n"
            "        total = -1\n"
            "    return total\n"
        )
        cfg = ControlFlowGraph(func)
        assert id(func.body[0]) in cfg.stmt_site
        assert id(func.body[1]) in cfg.stmt_site  # the for header
        assert id(func.body[3]) in cfg.stmt_site  # the return


class TestReachingDefinitions:
    def _reaching(self, source: str, at_call: str) -> dict:
        func = first_function(source)
        analysis = ReachingDefinitions(ControlFlowGraph(func))
        return analysis.reaching_at(stmt_with_call(func, at_call))

    def test_straight_line_kill(self):
        live = self._reaching(
            "def f():\n    x = 1\n    x = 2\n    use(x)\n", "use"
        )
        assert len(live["x"]) == 1
        (site,) = live["x"]
        assert isinstance(site, ast.Assign)
        assert site.value.value == 2

    def test_branch_merge_keeps_both(self):
        live = self._reaching(
            "def f(c):\n"
            "    if c:\n"
            "        x = 1\n"
            "    else:\n"
            "        x = 2\n"
            "    use(x)\n",
            "use",
        )
        assert len(live["x"]) == 2

    def test_loop_def_flows_around_back_edge(self):
        live = self._reaching(
            "def f(items):\n"
            "    x = 0\n"
            "    for item in items:\n"
            "        use(x)\n"
            "        x = item\n"
            "    done(x)\n",
            "use",
        )
        # Both the initial binding and the previous iteration's reach here.
        assert len(live["x"]) == 2

    def test_parameters_seed_the_entry(self):
        func = first_function("def f(a, *rest, key=None):\n    use(a)\n")
        analysis = ReachingDefinitions(ControlFlowGraph(func))
        live = analysis.reaching_at(stmt_with_call(func, "use"))
        assert live["a"] == {func}
        assert live["rest"] == {func}
        assert live["key"] == {func}

    def test_try_body_def_reaches_handler(self):
        live = self._reaching(
            "def f(c):\n"
            "    try:\n"
            "        x = risky()\n"
            "        if c:\n"
            "            x = refine(x)\n"
            "    except ValueError:\n"
            "        use(x)\n"
            "    return x\n",
            "use",
        )
        # Any block of the protected body may raise into the handler, so
        # defs from both branches of the body must be visible there.
        assert len(live["x"]) == 2


CALLER = (
    "src/repro/pipeline/caller.py",
    "from repro.pipeline.helper import helper\n"
    "def top():\n"
    "    return helper()\n",
)
HELPER = (
    "src/repro/pipeline/helper.py",
    "def helper():\n    return 1\n",
)


class TestCallGraph:
    def test_direct_import_edge(self):
        graph = graph_of(CALLER, HELPER)
        edges = graph.edges["repro.pipeline.caller.top"]
        assert [e.callee for e in edges] == ["repro.pipeline.helper.helper"]

    def test_reexport_through_package_init(self):
        graph = graph_of(
            ("src/repro/pkg/__init__.py", "from repro.pkg.impl import helper\n"),
            ("src/repro/pkg/impl.py", "def helper():\n    return 1\n"),
            (
                "src/repro/use.py",
                "from repro.pkg import helper\n"
                "def top():\n"
                "    return helper()\n",
            ),
        )
        edges = graph.edges["repro.use.top"]
        assert [e.callee for e in edges] == ["repro.pkg.impl.helper"]

    def test_self_attribute_typed_by_constructor_assignment(self):
        graph = graph_of(
            (
                "src/repro/serve/w.py",
                "class Worker:\n"
                "    def run(self):\n"
                "        return 1\n",
            ),
            (
                "src/repro/serve/s.py",
                "from repro.serve.w import Worker\n"
                "class Service:\n"
                "    def __init__(self):\n"
                "        self.worker = Worker()\n"
                "    def go(self):\n"
                "        return self.worker.run()\n",
            ),
        )
        edges = graph.edges["repro.serve.s.Service.go"]
        assert [e.callee for e in edges] == ["repro.serve.w.Worker.run"]

    def test_unresolved_attribute_is_not_name_matched(self):
        # `writer.write` must NOT weld onto ShardLog.write just because
        # the method name matches — it stays unresolved.
        graph = graph_of(
            (
                "src/repro/cluster/log.py",
                "class ShardLog:\n"
                "    def write(self, line):\n"
                "        pass\n",
            ),
            (
                "src/repro/cluster/use.py",
                "def send(writer, line):\n"
                "    writer.write(line)\n",
            ),
        )
        assert graph.edges["repro.cluster.use.send"] == []
        unresolved = graph.unresolved["repro.cluster.use.send"]
        assert len(unresolved) == 1

    def test_lambda_body_attributed_to_enclosing_function(self):
        graph = graph_of(
            (
                "src/repro/serve/s.py",
                "def helper():\n"
                "    return 1\n"
                "def top(register):\n"
                "    register(lambda: helper())\n",
            ),
        )
        callees = [e.callee for e in graph.edges["repro.serve.s.top"]]
        assert "repro.serve.s.helper" in callees

    def test_lambda_passed_to_executor_contributes_no_edges(self):
        graph = graph_of(
            (
                "src/repro/serve/s.py",
                "def helper():\n"
                "    return 1\n"
                "async def top(loop):\n"
                "    await loop.run_in_executor(None, lambda: helper())\n",
            ),
        )
        callees = [e.callee for e in graph.edges["repro.serve.s.top"]]
        assert "repro.serve.s.helper" not in callees

    def test_transitive_callees(self):
        graph = graph_of(
            CALLER,
            (
                "src/repro/pipeline/helper.py",
                "def helper():\n"
                "    return deeper()\n"
                "def deeper():\n"
                "    return 1\n",
            ),
        )
        assert graph.transitive_callees("repro.pipeline.caller.top") == {
            "repro.pipeline.helper.helper",
            "repro.pipeline.helper.deeper",
        }


CYCLE_A = (
    "src/repro/serve/a.py",
    "import threading\n"
    "from repro.serve.b import B\n"
    "class A:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self.b = B()\n"
    "    def outer(self):\n"
    "        with self._lock:\n"
    "            self.b.inner()\n"
    "    def poke(self):\n"
    "        with self._lock:\n"
    "            pass\n",
)
CYCLE_B = (
    "src/repro/serve/b.py",
    "import threading\n"
    "from repro.serve.a import A\n"
    "class B:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "    def inner(self):\n"
    "        with self._lock:\n"
    "            pass\n"
    "    def back(self, a: A):\n"
    "        with self._lock:\n"
    "            a.poke()\n",
)


class TestLockGraph:
    def test_seeded_cross_module_cycle_is_found(self):
        locks = LockGraph(graph_of(CYCLE_A, CYCLE_B))
        cycles = locks.cycles()
        assert len(cycles) == 1
        nodes = {edge.outer for edge in cycles[0]}
        assert nodes == {
            "repro.serve.a.A._lock",
            "repro.serve.b.B._lock",
        }
        # Both hops are interprocedural: each names the callee it rides.
        assert all(edge.via for edge in cycles[0])

    def test_one_directional_nesting_is_no_cycle(self):
        locks = LockGraph(graph_of(CYCLE_A))  # only A -> B's module absent
        assert locks.cycles() == []

    def test_condition_aliases_its_mutex(self):
        locks = LockGraph(
            graph_of(
                (
                    "src/repro/serve/s.py",
                    "import threading\n"
                    "class S:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n"
                    "        self._work = threading.Condition(self._lock)\n"
                    "    def one(self):\n"
                    "        with self._lock:\n"
                    "            pass\n"
                    "    def two(self):\n"
                    "        with self._work:\n"
                    "            pass\n",
                )
            )
        )
        lock_id = "repro.serve.s.S._lock"
        assert locks.own_acquires["repro.serve.s.S.one"] == {lock_id}
        assert locks.own_acquires["repro.serve.s.S.two"] == {lock_id}

    def test_asyncio_locks_are_excluded(self):
        locks = LockGraph(
            graph_of(
                (
                    "src/repro/cluster/s.py",
                    "import asyncio\n"
                    "class S:\n"
                    "    def __init__(self):\n"
                    "        self._lock = asyncio.Lock()\n"
                    "    def grab(self):\n"
                    "        with self._lock:\n"
                    "            pass\n",
                )
            )
        )
        assert locks.own_acquires["repro.cluster.s.S.grab"] == set()

    def test_lock_order_declaration_resolves_qualified_entries(self):
        locks = LockGraph(
            graph_of(
                (
                    "src/repro/serve/s.py",
                    "import threading\n"
                    "LOCK_ORDER = ('S._lock', 'T._lock')\n"
                    "class S:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n"
                    "class T:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n",
                )
            )
        )
        (declaration,) = locks.declarations
        assert declaration.resolved == (
            "repro.serve.s.S._lock",
            "repro.serve.s.T._lock",
        )
        before = locks.declared_before()
        assert ("repro.serve.s.S._lock", "repro.serve.s.T._lock") in before


PUMP_BLOCKING = (
    "src/repro/cluster/pump.py",
    "import time\n"
    "async def pump():\n"
    "    step()\n"
    "def step():\n"
    "    time.sleep(0.1)\n",
)


class TestBlocking:
    def test_known_blocking_coroutine_with_witness_path(self):
        graph = graph_of(PUMP_BLOCKING)
        findings = BlockingAnalysis(graph).findings()
        assert len(findings) == 1
        site, coroutine, path = findings[0]
        assert site.reason == "time.sleep()"
        assert coroutine == "repro.cluster.pump.pump"
        assert path == ("repro.cluster.pump.pump", "repro.cluster.pump.step")

    def test_executor_wrapped_work_is_clean(self):
        graph = graph_of(
            (
                "src/repro/cluster/pump.py",
                "import asyncio\n"
                "import time\n"
                "async def pump():\n"
                "    loop = asyncio.get_running_loop()\n"
                "    await loop.run_in_executor(None, lambda: time.sleep(0.1))\n",
            )
        )
        assert BlockingAnalysis(graph).findings() == []

    def test_awaited_acquire_is_the_asyncio_primitive(self):
        graph = graph_of(
            (
                "src/repro/cluster/pump.py",
                "async def pump(lock):\n"
                "    await lock.acquire()\n",
            )
        )
        assert BlockingAnalysis(graph).findings() == []

    def test_non_cluster_coroutines_are_out_of_scope(self):
        graph = graph_of(
            (
                "src/repro/serve/pump.py",
                "import time\n"
                "async def pump():\n"
                "    time.sleep(0.1)\n",
            )
        )
        assert BlockingAnalysis(graph).findings() == []

    def test_str_join_shape_is_not_thread_join(self):
        graph = graph_of(
            (
                "src/repro/cluster/fmt.py",
                "def render(parts, thread):\n"
                "    text = ' '.join(parts)\n"
                "    thread.join()\n"
                "    return text\n",
            )
        )
        function = graph.functions["repro.cluster.fmt.render"]
        sites = blocking_sites(graph, function)
        assert [s.reason for s in sites] == ["thread .join()"]

    def test_file_methods_need_an_open_typed_receiver(self):
        graph = graph_of(
            (
                "src/repro/cluster/log.py",
                "def log(path, line, sink):\n"
                "    handle = open(path, 'a')\n"
                "    handle.write(line)\n"
                "    sink.write(line)\n",
            )
        )
        function = graph.functions["repro.cluster.log.log"]
        reasons = sorted(s.reason for s in blocking_sites(graph, function))
        # open() itself blocks, the handle write blocks; the untyped
        # sink.write is unknown and deliberately not guessed at.
        assert reasons == ["file I/O (.write() on an open() handle)", "open()"]

    def test_resolved_project_calls_are_not_primitives(self):
        graph = graph_of(
            (
                "src/repro/cluster/srv.py",
                "class Conn:\n"
                "    def send(self, data):\n"
                "        return len(data)\n"
                "class Server:\n"
                "    def __init__(self):\n"
                "        self.conn = Conn()\n"
                "    async def push(self, data):\n"
                "        self.conn.send(data)\n",
            )
        )
        function = graph.functions["repro.cluster.srv.Server.push"]
        assert blocking_sites(graph, function) == []
