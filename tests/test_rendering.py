"""Tests for arc-matrix rendering (paper Figures 4 and 9)."""

from __future__ import annotations

import pytest

from repro import SerialEngine
from repro.network import ConstraintNetwork, render_arc_matrix


@pytest.fixture
def settled(toy_grammar):
    recorder = {}

    def trace(event, net):
        if event == "binary:subj-governed-by-root-to-right":
            recorder["after-binary-1"] = net.clone()

    result = SerialEngine().parse(toy_grammar, "The program runs", trace=trace)
    return recorder["after-binary-1"], result.network


class TestRendering:
    def test_figure4_matrix(self, settled):
        after_binary_1, _ = settled
        text = render_arc_matrix(after_binary_1, 2, "governor", 3, "governor")
        lines = text.splitlines()
        assert "program[2].governor" in lines[0] and "runs[3].governor" in lines[0]
        # Rows SUBJ-1 / SUBJ-3 against column ROOT-nil: 0 then 1 (Figure 4).
        assert "ROOT-nil" in lines[1]
        subj1_row = next(line for line in lines if line.strip().startswith("SUBJ-1"))
        subj3_row = next(line for line in lines if line.strip().startswith("SUBJ-3"))
        assert subj1_row.strip().endswith("0")
        assert subj3_row.strip().endswith("1")

    def test_figure9_full_grid(self, toy_grammar):
        net = ConstraintNetwork(toy_grammar, toy_grammar.tokenize("The program runs"))
        text = render_arc_matrix(net, 3, "governor", 2, "governor", alive_only=False)
        lines = text.splitlines()
        # 9 rows x 9 columns, all ones before any propagation (Figure 9).
        assert len(lines) == 2 + 9
        for line in lines[2:]:
            cells = line.split()[1:]
            assert cells.count("1") == 9

    def test_alive_only_hides_dead_values(self, settled):
        _, final = settled
        text = render_arc_matrix(final, 2, "governor", 3, "governor")
        assert "SUBJ-1" not in text
        assert "SUBJ-3" in text

    def test_symmetric_views_agree(self, settled):
        _, final = settled
        ab = render_arc_matrix(final, 2, "governor", 3, "needs")
        ba = render_arc_matrix(final, 3, "needs", 2, "governor")
        # Transposed views: same single surviving entry.
        assert ab.splitlines()[-1].strip().endswith("1")
        assert ba.splitlines()[-1].strip().endswith("1")
