"""Unit tests for the PARSEC kernels, below the engine level."""

from __future__ import annotations

import numpy as np
import pytest

from repro.grammar.builtin import program_grammar
from repro.maspar import MP1
from repro.network import ConstraintNetwork
from repro.parsec import build_layout
from repro.parsec.kernels import (
    apply_binary,
    apply_unary,
    consistency_step,
    initialize,
    read_back,
)


@pytest.fixture
def setup():
    grammar = program_grammar()
    network = ConstraintNetwork(grammar, grammar.tokenize("The program runs"))
    layout = build_layout(network)
    machine = MP1(n_virtual=layout.n_pes)
    state = initialize(machine, layout, network)
    return grammar, network, layout, machine, state


class TestInitialize:
    def test_submatrix_shape(self, setup):
        _, _, layout, _, state = setup
        assert state.submat.shape == (324, 3, 3)

    def test_disabled_pes_hold_zeros(self, setup):
        _, _, layout, _, state = setup
        assert not state.submat[~layout.enabled].any()

    def test_enabled_pes_start_all_ones(self, setup):
        _, _, layout, _, state = setup
        # Unambiguous words, no padding: every enabled PE is all ones.
        assert state.submat[layout.enabled].all()

    def test_matches_network_initial_matrix(self, setup):
        _, network, layout, _, state = setup
        clone = network.clone()
        read_back(layout, state, clone)
        np.testing.assert_array_equal(clone.matrix, network.matrix)
        np.testing.assert_array_equal(clone.alive, network.alive)

    def test_rv_alive_starts_full(self, setup):
        _, _, layout, _, state = setup
        assert state.rv_alive.all()  # no padding slots in the toy grammar


class TestApplyUnary:
    def test_first_unary_constraint_counts(self, setup):
        grammar, network, layout, machine, state = setup
        constraint = grammar.unary_constraints[0]  # verbs-are-ungoverned-roots
        killed = apply_unary(machine, layout, state, constraint, network.canbe_array)
        assert killed == 8  # Figure 2: runs.governor goes from 9 to 1

    def test_eliminations_zero_rows_and_columns(self, setup):
        grammar, network, layout, machine, state = setup
        apply_unary(machine, layout, state, grammar.unary_constraints[0], network.canbe_array)
        clone = network.clone()
        read_back(layout, state, clone)
        dead = np.nonzero(~clone.alive)[0]
        assert len(dead) == 8
        assert not clone.matrix[dead, :].any()
        assert not clone.matrix[:, dead].any()

    def test_idempotent(self, setup):
        grammar, network, layout, machine, state = setup
        constraint = grammar.unary_constraints[0]
        apply_unary(machine, layout, state, constraint, network.canbe_array)
        assert apply_unary(machine, layout, state, constraint, network.canbe_array) == 0


class TestApplyBinary:
    def test_first_binary_zeroes_one_pair_both_copies(self, setup):
        grammar, network, layout, machine, state = setup
        for constraint in grammar.unary_constraints:
            apply_unary(machine, layout, state, constraint, network.canbe_array)
        zeroed = apply_binary(
            machine, layout, state, grammar.binary_constraints[0], network.canbe_array
        )
        # Figure 4: SUBJ-1 x ROOT-nil dies; the matrix is stored twice
        # (both arc directions), so 2 entries go.
        assert zeroed == 2

    def test_consistency_removes_unsupported(self, setup):
        grammar, network, layout, machine, state = setup
        for constraint in grammar.unary_constraints:
            apply_unary(machine, layout, state, constraint, network.canbe_array)
        apply_binary(machine, layout, state, grammar.binary_constraints[0], network.canbe_array)
        killed = consistency_step(machine, layout, state)
        assert killed == 1  # Figure 5: SUBJ-1 eliminated

    def test_consistency_quiescent_on_fresh_network(self, setup):
        _, _, layout, machine, state = setup
        assert consistency_step(machine, layout, state) == 0


class TestCostAccounting:
    def test_operations_charge_cycles(self, setup):
        grammar, network, layout, machine, state = setup
        before = machine.cycles
        apply_unary(machine, layout, state, grammar.unary_constraints[0], network.canbe_array)
        after_unary = machine.cycles
        consistency_step(machine, layout, state)
        assert after_unary > before
        assert machine.cycles > after_unary

    def test_consistency_uses_two_scans_per_slot(self, setup):
        _, _, layout, machine, state = setup
        scans_before = machine.ops.scan
        consistency_step(machine, layout, state)
        # scanOr + scanAnd per label slot (Figure 12).
        assert machine.ops.scan - scans_before == 2 * layout.n_slots
