"""The DFA -> CDG compiler accepts exactly the DFA's language.

This realizes the regular case of Maruyama's generative-capacity claim
concretely: every regular language has a CDG grammar with two roles and
binary constraints, produced mechanically from its automaton.
"""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import VectorEngine, accepts, extract_parses
from repro.errors import ReproError
from repro.reductions import DFA, dfa_to_cdg

ENGINE = VectorEngine()


def even_as() -> DFA:
    return DFA(
        states=2,
        alphabet=("a", "b"),
        delta={(0, "a"): 1, (0, "b"): 0, (1, "a"): 0, (1, "b"): 1},
        accepting=frozenset({0}),
    )


def ends_in_ab() -> DFA:
    return DFA(
        states=3,
        alphabet=("a", "b"),
        delta={
            (0, "a"): 1, (0, "b"): 0,
            (1, "a"): 1, (1, "b"): 2,
            (2, "a"): 1, (2, "b"): 0,
        },
        accepting=frozenset({2}),
    )


def random_dfa(rng: random.Random) -> DFA:
    n_states = rng.randint(1, 4)
    alphabet = ("a", "b", "c")[: rng.randint(1, 3)]
    delta = {
        (q, s): rng.randrange(n_states) for q in range(n_states) for s in alphabet
    }
    accepting = frozenset(q for q in range(n_states) if rng.random() < 0.5)
    return DFA(n_states, alphabet, delta, accepting)


class TestDFA:
    def test_simulation(self):
        dfa = even_as()
        assert dfa.accepts([])
        assert dfa.accepts(list("aa"))
        assert not dfa.accepts(list("ab"))
        assert dfa.accepts(list("abab"))

    def test_unknown_symbol_rejected(self):
        assert not even_as().accepts(["z"])

    def test_validation(self):
        with pytest.raises(ReproError, match="not total"):
            DFA(2, ("a",), {(0, "a"): 1}, frozenset())
        with pytest.raises(ReproError, match="out of range"):
            DFA(1, ("a",), {(0, "a"): 3}, frozenset())
        with pytest.raises(ReproError, match="accepting"):
            DFA(1, ("a",), {(0, "a"): 0}, frozenset({5}))
        with pytest.raises(ReproError, match="at least one state"):
            DFA(0, ("a",), {}, frozenset())


class TestCompiledGrammars:
    @pytest.mark.parametrize("factory", [even_as, ends_in_ab], ids=["even-a", "ends-ab"])
    def test_exhaustive_agreement(self, factory):
        dfa = factory()
        grammar = dfa_to_cdg(dfa)
        for n in range(1, 6):
            for s in itertools.product(dfa.alphabet, repeat=n):
                words = list(s)
                assert (
                    accepts(ENGINE.parse(grammar, words).network) == dfa.accepts(words)
                ), words

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10**6), word_seed=st.integers(0, 10**6))
    def test_random_dfas_agree(self, seed, word_seed):
        dfa = random_dfa(random.Random(seed))
        grammar = dfa_to_cdg(dfa)
        rng = random.Random(word_seed)
        for _ in range(8):
            words = [rng.choice(dfa.alphabet) for _ in range(rng.randint(1, 6))]
            assert (
                accepts(ENGINE.parse(grammar, words).network) == dfa.accepts(words)
            ), words

    def test_no_accepting_states_rejects_everything(self):
        dfa = DFA(1, ("a",), {(0, "a"): 0}, frozenset())
        grammar = dfa_to_cdg(dfa)
        for n in (1, 2, 3):
            assert not accepts(ENGINE.parse(grammar, ["a"] * n).network)

    def test_single_word(self):
        grammar = dfa_to_cdg(ends_in_ab())
        assert not accepts(ENGINE.parse(grammar, ["a"]).network)
        assert not accepts(ENGINE.parse(grammar, ["b"]).network)

    def test_parse_exhibits_the_run(self):
        """The surviving labels spell out the DFA's state sequence."""
        dfa = ends_in_ab()
        grammar = dfa_to_cdg(dfa)
        result = ENGINE.parse(grammar, list("aab"))
        parses = extract_parses(result.network, limit=None)
        assert len(parses) == 1
        mapping = parses[0].pretty_assignment(grammar.symbols)
        # run: 0 -a-> 1 -a-> 1 -b-> 2(accept)
        assert mapping[(1, "governor")] == "NEXT1-2"
        assert mapping[(2, "governor")] == "NEXT1-3"
        assert mapping[(3, "governor")] == "END2-nil"

    def test_chain_is_forced(self):
        """Hall's condition: the pointers must form the successor chain."""
        grammar = dfa_to_cdg(even_as())
        result = ENGINE.parse(grammar, list("abab"))
        for parse in extract_parses(result.network, limit=None):
            heads = parse.heads(0)
            for pos in range(1, 4):
                assert heads[pos] == pos + 1
            assert heads[4] == 0

    def test_constraint_count_is_linear_in_table(self):
        dfa = ends_in_ab()
        grammar = dfa_to_cdg(dfa)
        # 5 structural + |Sigma| initial + |Q| * |Sigma| transitions.
        assert grammar.k == 5 + 2 + 3 * 2
