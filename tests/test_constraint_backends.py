"""Scalar and vector constraint backends must agree bit-for-bit.

The scalar closures drive the sequential and per-PE engines; the numpy
evaluators drive the data-parallel ones.  Any disagreement would silently
break the cross-engine equivalence the reproduction rests on, so this is
property-tested over randomly generated constraints and role values.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import Constraint, EvalEnv, SymbolTable, VectorEnv

N_WORDS = 4
N_LABELS = 3
N_CATS = 3
N_ROLES = 2


@pytest.fixture(scope="module")
def symbols() -> SymbolTable:
    table = SymbolTable()
    for i in range(N_LABELS):
        table.labels.intern(f"L{i}")
    for i in range(N_CATS):
        table.categories.intern(f"c{i}")
    table.roles.intern("governor")
    table.roles.intern("needs")
    return table


class RV:
    """Minimal role-value record for the scalar backend."""

    __slots__ = ("pos", "role", "cat", "lab", "mod")

    def __init__(self, pos, role, cat, lab, mod):
        self.pos = pos
        self.role = role
        self.cat = cat
        self.lab = lab
        self.mod = mod


# -- strategies ------------------------------------------------------------

fields = st.tuples(
    st.integers(1, N_WORDS),  # pos
    st.integers(0, N_ROLES - 1),  # role
    st.integers(0, N_CATS - 1),  # cat
    st.integers(0, N_LABELS - 1),  # lab
    st.integers(0, N_WORDS),  # mod (0 = nil)
)


def value_exprs(var: str) -> st.SearchStrategy[str]:
    return st.sampled_from(
        [
            f"(pos {var})",
            f"(mod {var})",
            f"(lab {var})",
            f"(role {var})",
            f"(cat (word (pos {var})))",
            f"(cat (word (mod {var})))",
        ]
    )


def comparisons(var_pool: tuple[str, ...]) -> st.SearchStrategy[str]:
    """Random well-typed (eq ...) / (gt ...) / (lt ...) forms."""

    def build(draw_tuple):
        kind, var1, var2, label, cat, integer, op = draw_tuple
        if kind == "lab_const":
            return f"(eq (lab {var1}) L{label})"
        if kind == "cat_const":
            return f"(eq (cat (word (pos {var1}))) c{cat})"
        if kind == "catset_const":
            return f"(eq (cat (word (mod {var1}))) c{cat})"
        if kind == "role_const":
            role = "governor" if label % 2 == 0 else "needs"
            return f"(eq (role {var1}) {role})"
        if kind == "mod_nil":
            return f"(eq (mod {var1}) nil)"
        if kind == "mod_pos":
            return f"(eq (mod {var1}) (pos {var2}))"
        if kind == "pos_int":
            return f"(eq (pos {var1}) {integer})"
        if kind == "cmp_pos":
            return f"({op} (pos {var1}) (pos {var2}))"
        if kind == "cmp_mod":
            return f"({op} (mod {var1}) (pos {var2}))"
        if kind == "lab_lab":
            return f"(eq (lab {var1}) (lab {var2}))"
        if kind == "catset_catset":
            return f"(eq (cat (word (mod {var1}))) (cat (word (mod {var2}))))"
        raise AssertionError(kind)

    return st.tuples(
        st.sampled_from(
            [
                "lab_const",
                "cat_const",
                "catset_const",
                "role_const",
                "mod_nil",
                "mod_pos",
                "pos_int",
                "cmp_pos",
                "cmp_mod",
                "lab_lab",
                "catset_catset",
            ]
        ),
        st.sampled_from(var_pool),
        st.sampled_from(var_pool),
        st.integers(0, N_LABELS - 1),
        st.integers(0, N_CATS - 1),
        st.integers(0, N_WORDS),
        st.sampled_from(["gt", "lt"]),
    ).map(build)


def predicates(var_pool: tuple[str, ...], depth: int = 2) -> st.SearchStrategy[str]:
    base = comparisons(var_pool)
    return st.recursive(
        base,
        lambda inner: st.one_of(
            st.tuples(inner, inner).map(lambda ab: f"(and {ab[0]} {ab[1]})"),
            st.tuples(inner, inner).map(lambda ab: f"(or {ab[0]} {ab[1]})"),
            inner.map(lambda a: f"(not {a})"),
        ),
        max_leaves=4,
    )


unary_constraints = st.tuples(predicates(("x",)), predicates(("x",))).map(
    lambda ac: f"(if {ac[0]} {ac[1]})"
)
binary_constraints = st.tuples(predicates(("x", "y")), predicates(("x", "y"))).map(
    lambda ac: f"(if {ac[0]} {ac[1]})"
)

canbe_tables = st.lists(
    st.lists(st.integers(0, N_CATS - 1), min_size=1, max_size=N_CATS).map(frozenset),
    min_size=N_WORDS,
    max_size=N_WORDS,
)


def make_envs(rvs, canbe_sets):
    """Build matching scalar and vector environments."""
    canbe_list = [frozenset()] + list(canbe_sets)
    canbe_arr = np.zeros((N_WORDS + 1, N_CATS), dtype=bool)
    for position, cats in enumerate(canbe_list):
        for code in cats:
            canbe_arr[position, code] = True
    arrays = {
        "pos": np.array([rv.pos for rv in rvs], dtype=np.int32),
        "role": np.array([rv.role for rv in rvs], dtype=np.int32),
        "cat": np.array([rv.cat for rv in rvs], dtype=np.int32),
        "lab": np.array([rv.lab for rv in rvs], dtype=np.int32),
        "mod": np.array([rv.mod for rv in rvs], dtype=np.int32),
    }
    return canbe_list, canbe_arr, arrays


@settings(max_examples=150, deadline=None)
@given(source=unary_constraints, raw=st.lists(fields, min_size=1, max_size=8), canbe=canbe_tables)
def test_unary_backends_agree(symbols, source, raw, canbe):
    try:
        constraint = Constraint.parse(source, symbols)
    except Exception:
        # The generator can produce (eq (mod x) nil)-only constraints that
        # use no variable after simplification — those are rejected by
        # validation identically in both backends, nothing to compare.
        return
    rvs = [RV(*t) for t in raw]
    canbe_list, canbe_arr, arrays = make_envs(rvs, canbe)

    scalar_out = [
        constraint.scalar(EvalEnv(x=rv, y=None, canbe=canbe_list)) for rv in rvs
    ]
    vector_out = constraint.vector(VectorEnv(x=arrays, y=None, canbe=canbe_arr))
    assert list(vector_out) == scalar_out, source


@settings(max_examples=150, deadline=None)
@given(source=binary_constraints, raw=st.lists(fields, min_size=1, max_size=5), canbe=canbe_tables)
def test_binary_backends_agree(symbols, source, raw, canbe):
    try:
        constraint = Constraint.parse(source, symbols)
    except Exception:
        return
    if constraint.is_unary:
        return
    rvs = [RV(*t) for t in raw]
    canbe_list, canbe_arr, arrays = make_envs(rvs, canbe)

    nv = len(rvs)
    scalar_out = np.zeros((nv, nv), dtype=bool)
    for i, rx in enumerate(rvs):
        for j, ry in enumerate(rvs):
            scalar_out[i, j] = constraint.scalar(EvalEnv(x=rx, y=ry, canbe=canbe_list))

    x_fields = {k: v[:, None] for k, v in arrays.items()}
    y_fields = {k: v[None, :] for k, v in arrays.items()}
    vector_out = constraint.vector(VectorEnv(x=x_fields, y=y_fields, canbe=canbe_arr))
    assert vector_out.shape == (nv, nv)
    np.testing.assert_array_equal(vector_out, scalar_out, err_msg=source)


def test_unary_result_shape(symbols):
    constraint = Constraint.parse("(if (eq (lab x) L0) (eq (mod x) nil))", symbols)
    rvs = [RV(1, 0, 0, 0, 0), RV(2, 1, 1, 1, 1), RV(3, 0, 2, 2, 0)]
    canbe_list, canbe_arr, arrays = make_envs(rvs, [frozenset({0})] * N_WORDS)
    out = constraint.vector(VectorEnv(x=arrays, y=None, canbe=canbe_arr))
    assert out.shape == (3,)
    assert out.dtype == bool


def test_nil_mod_makes_gt_false(symbols):
    constraint = Constraint.parse("(if (gt (mod x) 0) (eq (pos x) 1))", symbols)
    # mod = nil (0): gt is false because nil is not an integer, so the
    # antecedent fails and the role value is permitted.
    rv = RV(2, 0, 0, 0, 0)
    canbe_list, canbe_arr, arrays = make_envs([rv], [frozenset({0})] * N_WORDS)
    assert constraint.scalar(EvalEnv(x=rv, y=None, canbe=canbe_list)) is True


def test_catset_nil_position_has_no_category(symbols):
    constraint = Constraint.parse(
        "(if (eq (cat (word (mod x))) c0) (eq (pos x) 1))", symbols
    )
    rv = RV(2, 0, 0, 0, 0)  # mod = nil
    canbe_list, canbe_arr, arrays = make_envs([rv], [frozenset({0})] * N_WORDS)
    # antecedent false (nil word has no category) => permitted.
    assert constraint.scalar(EvalEnv(x=rv, y=None, canbe=canbe_list)) is True
    out = constraint.vector(VectorEnv(x=arrays, y=None, canbe=canbe_arr))
    assert bool(out[0]) is True
