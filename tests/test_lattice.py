"""Word-lattice (n-best hypothesis) parsing — the speech interface."""

from __future__ import annotations

import pytest

from repro import VectorEngine, accepts, extract_parses
from repro.errors import GrammarError, LexiconError
from repro.grammar.builtin.english import english_grammar

ENGINE = VectorEngine()


@pytest.fixture(scope="module")
def grammar():
    return english_grammar()


class TestLatticeConstruction:
    def test_union_of_categories(self, grammar):
        sentence = grammar.tokenize_lattice([["the"], ["dog", "runs"]])
        noun = grammar.symbols.categories.code("noun")
        verb = grammar.symbols.categories.code("verb")
        assert sentence.category_sets[1] == frozenset({noun, verb})

    def test_words_rendered_with_alternatives(self, grammar):
        sentence = grammar.tokenize_lattice([["the"], ["dog", "duck"], ["runs"]])
        assert sentence.words == ("the", "dog|duck", "runs")

    def test_empty_lattice_rejected(self, grammar):
        with pytest.raises(GrammarError, match="empty lattice"):
            grammar.tokenize_lattice([])

    def test_empty_position_rejected(self, grammar):
        with pytest.raises(GrammarError, match="no hypotheses"):
            grammar.tokenize_lattice([["the"], []])

    def test_unknown_hypothesis_rejected(self, grammar):
        with pytest.raises(LexiconError):
            grammar.tokenize_lattice([["the"], ["zorp"]])


class TestLatticeParsing:
    def test_grammar_selects_the_consistent_hypothesis(self, grammar):
        """Recognizer confusion between a noun and a verb at position 3:
        after a subject only the verb reading survives."""
        lattice = grammar.tokenize_lattice([["the"], ["dog"], ["runs", "dogs"]])
        result = ENGINE.parse(grammar, lattice)
        parses = extract_parses(result.network, limit=None)
        assert len(parses) == 1
        verb = grammar.symbols.categories.code("verb")
        assert parses[0].role_value(3, 0).cat == verb

    def test_ambiguous_lattice_keeps_both_readings(self, grammar):
        # "saw" the noun vs the verb, genuinely ambiguous in this frame:
        # the|*, saw|duck as pure confusion of two noun/verb words.
        lattice = grammar.tokenize_lattice(
            [["the"], ["man"], ["saw"], ["the"], ["duck"]]
        )
        result = ENGINE.parse(grammar, lattice)
        assert accepts(result.network)

    def test_inconsistent_lattice_rejected(self, grammar):
        lattice = grammar.tokenize_lattice([["the"], ["the", "a"], ["runs"]])
        result = ENGINE.parse(grammar, lattice)
        assert not accepts(result.network)

    def test_lattice_equals_best_path_parse(self, grammar):
        """A lattice whose extra hypotheses are all ungrammatical parses
        exactly like the clean sentence."""
        clean = ENGINE.parse(grammar, "the dog runs")
        lattice = grammar.tokenize_lattice(
            [["the"], ["dog", "the"], ["runs", "in"]]
        )
        noisy = ENGINE.parse(grammar, lattice)
        clean_parse = extract_parses(clean.network, limit=None)
        noisy_parse = extract_parses(noisy.network, limit=None)
        assert len(clean_parse) == len(noisy_parse) == 1
        assert (
            clean_parse[0].pretty_assignment(grammar.symbols)
            == noisy_parse[0].pretty_assignment(grammar.symbols)
        )

    def test_all_engines_handle_lattices(self, grammar):
        import numpy as np

        from repro import MasParEngine, MeshEngine, SerialEngine

        lattice = grammar.tokenize_lattice([["the"], ["dog", "duck"], ["runs"]])
        reference = ENGINE.parse(grammar, lattice)
        for engine in (SerialEngine(), MasParEngine(), MeshEngine()):
            result = engine.parse(grammar, lattice)
            np.testing.assert_array_equal(result.network.alive, reference.network.alive)
