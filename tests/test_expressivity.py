"""CLAIM-E: CDG expressivity is strictly greater than CFG (section 1.5).

Two concrete demonstrations, both property-tested against oracles:

* ``a^n b^n`` — a context-free language, recognized by a CDG grammar
  *and* by the CFG machinery (CYK/Earley agree with the CDG parser);
* ``ww`` — not context-free, recognized by a CDG grammar; the nearest
  CFL (even palindromes, w w^R) provably disagrees with it, which the
  tests exhibit on concrete strings.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import VectorEngine, accepts, extract_parses
from repro.cfg import (
    anbn_cfg,
    cyk_accepts,
    earley_accepts,
    palindrome_cfg,
    to_cnf,
    typed_brackets_cfg,
)
from repro.grammar.builtin import (
    anbn_grammar,
    anbn_oracle,
    copy_language_grammar,
    copy_oracle,
    dyck_grammar,
    dyck_oracle,
)

ENGINE = VectorEngine()

letter_strings = st.lists(st.sampled_from(["a", "b"]), min_size=1, max_size=8)


def cdg_accepts(grammar, words) -> bool:
    return accepts(ENGINE.parse(grammar, list(words)).network)


class TestAnBn:
    @pytest.mark.parametrize("n", range(1, 6))
    def test_accepts_anbn(self, n):
        assert cdg_accepts(anbn_grammar(), ["a"] * n + ["b"] * n)

    @pytest.mark.parametrize(
        "words",
        [
            ["a"],
            ["b"],
            ["b", "a"],
            ["a", "b", "a", "b"],
            ["a", "a", "b"],
            ["a", "b", "b"],
            ["a", "a", "b", "b", "b"],
        ],
    )
    def test_rejects_non_members(self, words):
        assert not cdg_accepts(anbn_grammar(), words)

    @settings(max_examples=60, deadline=None)
    @given(words=letter_strings)
    def test_matches_oracle(self, words):
        assert cdg_accepts(anbn_grammar(), words) == anbn_oracle(words)

    @settings(max_examples=40, deadline=None)
    @given(words=letter_strings)
    def test_cdg_and_cfg_agree(self, words):
        """The same CFL through both formalisms: CDG == CYK == Earley."""
        cdg = cdg_accepts(anbn_grammar(), words)
        assert cdg == cyk_accepts(to_cnf(anbn_cfg()), words)
        assert cdg == earley_accepts(anbn_cfg(), words)

    def test_parses_are_the_two_bijections(self):
        """The grammar does not impose monotonicity (a^n b^n does not need
        it), so aabb has exactly the two a<->b matchings."""
        result = ENGINE.parse(anbn_grammar(), ["a", "a", "b", "b"])
        parses = extract_parses(result.network, limit=None)
        matchings = {tuple(sorted(p.heads(0).items())) for p in parses}
        assert matchings == {
            ((1, 3), (2, 4), (3, 0), (4, 0)),
            ((1, 4), (2, 3), (3, 0), (4, 0)),
        }


class TestCopyLanguage:
    @pytest.mark.parametrize(
        "w",
        [["a"], ["b"], ["a", "b"], ["b", "a"], ["a", "a", "b"], ["a", "b", "b", "a"]],
    )
    def test_accepts_ww(self, w):
        assert cdg_accepts(copy_language_grammar(), w + w)

    @pytest.mark.parametrize(
        "words",
        [
            ["a"],
            ["a", "b"],
            ["a", "a", "b", "b"],  # palindrome-ish but not ww
            ["a", "b", "b", "a"],  # w w^R, not w w
            ["a", "a", "a"],
            ["b", "a", "a", "b", "a", "b"],
        ],
    )
    def test_rejects_non_members(self, words):
        assert not cdg_accepts(copy_language_grammar(), words)

    def test_exhaustive_up_to_length_6(self):
        for n in range(1, 7):
            for s in itertools.product("ab", repeat=n):
                words = list(s)
                assert cdg_accepts(copy_language_grammar(), words) == copy_oracle(
                    words
                ), words

    @settings(max_examples=60, deadline=None)
    @given(words=letter_strings)
    def test_matches_oracle(self, words):
        assert cdg_accepts(copy_language_grammar(), words) == copy_oracle(words)

    def test_beyond_cfg_separation(self):
        """ww and its CFL lookalike w w^R genuinely differ — and the CDG
        grammar tracks the non-context-free one."""
        palindromes = to_cnf(palindrome_cfg())
        # abba: palindrome yes, copy no.
        assert cyk_accepts(palindromes, list("abba"))
        assert not cdg_accepts(copy_language_grammar(), list("abba"))
        # abab: copy yes, palindrome no.
        assert cdg_accepts(copy_language_grammar(), list("abab"))
        assert not cyk_accepts(palindromes, list("abab"))

    def test_copy_parse_is_unique(self):
        result = ENGINE.parse(copy_language_grammar(), list("abab"))
        parses = extract_parses(result.network, limit=None)
        assert len(parses) == 1
        heads = parses[0].heads(0)
        assert heads[1] == 3 and heads[2] == 4


class TestDyck:
    """Nested matching (D2) — the third structural idiom, context-free."""

    @pytest.mark.parametrize(
        "text", ["()", "[]", "([])", "()[]", "(()())", "[()]()", "((((()))))"]
    )
    def test_accepts_balanced(self, text):
        assert cdg_accepts(dyck_grammar(), list(text))

    @pytest.mark.parametrize(
        "text", ["(", ")", ")(", "(]", "([)]", "(()", "())", "[](", "[[]"]
    )
    def test_rejects_unbalanced(self, text):
        assert not cdg_accepts(dyck_grammar(), list(text))

    def test_exhaustive_up_to_length_5(self):
        for n in range(1, 6):
            for s in itertools.product("()[]", repeat=n):
                words = list(s)
                assert cdg_accepts(dyck_grammar(), words) == dyck_oracle(words), words

    @settings(max_examples=40, deadline=None)
    @given(words=st.lists(st.sampled_from(list("()[]")), min_size=1, max_size=8))
    def test_cdg_and_cfg_agree(self, words):
        cdg = cdg_accepts(dyck_grammar(), words)
        assert cdg == dyck_oracle(words)
        assert cdg == cyk_accepts(to_cnf(typed_brackets_cfg()), words)
        assert cdg == earley_accepts(typed_brackets_cfg(), words)

    def test_nesting_structure_recovered(self):
        result = ENGINE.parse(dyck_grammar(), list("(())"))
        parses = extract_parses(result.network, limit=None)
        assert len(parses) == 1
        heads = parses[0].heads(0)
        assert heads[1] == 4 and heads[2] == 3  # outer pair wraps inner

    def test_crossing_parse_excluded(self):
        # "()()" could in principle match 1->4, 2<-3 (crossing); the
        # no-crossing constraint leaves only the sequential matching.
        result = ENGINE.parse(dyck_grammar(), list("()()"))
        parses = extract_parses(result.network, limit=None)
        assert len(parses) == 1
        heads = parses[0].heads(0)
        assert heads[1] == 2 and heads[3] == 4
