"""Tests for the 2-D mesh substrate and the mesh CDG engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro import MeshEngine, VectorEngine
from repro.errors import MachineError
from repro.grammar.builtin import dyck_grammar, program_grammar
from repro.grammar.builtin.english import english_grammar
from repro.mesh import MeshMachine
from repro.workloads import sentence_of_length, toy_sentence


class TestMeshMachine:
    def test_alloc_and_plane(self):
        mesh = MeshMachine(2, 3)
        plane = mesh.alloc("x", tail=(4,))
        assert plane.shape == (2, 3, 4)
        assert mesh.plane("x") is plane

    def test_double_alloc_rejected(self):
        mesh = MeshMachine(2, 2)
        mesh.alloc("x")
        with pytest.raises(MachineError):
            mesh.alloc("x")

    def test_missing_plane_rejected(self):
        with pytest.raises(MachineError):
            MeshMachine(2, 2).plane("nope")

    def test_bad_dimensions(self):
        with pytest.raises(MachineError):
            MeshMachine(0, 4)

    def test_compute_counts_steps_and_work(self):
        mesh = MeshMachine(3, 3)
        mesh.alloc("x")
        mesh.compute(lambda x: None, "x", work_per_cell=7)
        assert mesh.stats.compute_steps == 1
        assert mesh.stats.local_work == 7 * 9

    def test_row_reduce_broadcast(self):
        mesh = MeshMachine(2, 3)
        values = np.array([[1, 0, 0], [0, 0, 0]], dtype=bool)
        out = mesh.row_reduce_broadcast(values, "or")
        assert out[0].all() and not out[1].any()
        assert mesh.stats.comm_steps == 2 * 2  # 2 (C - 1)

    def test_col_reduce_broadcast(self):
        mesh = MeshMachine(3, 2)
        values = np.array([[5, 1], [2, 8], [3, 3]])
        out = mesh.col_reduce_broadcast(values, "max")
        assert (out == np.array([[5, 8]] * 3)).all()
        assert mesh.stats.comm_steps == 2 * 2  # 2 (R - 1)

    def test_reduce_ops(self):
        mesh = MeshMachine(1, 4)
        values = np.array([[1, 2, 3, 4]])
        assert mesh.row_reduce_broadcast(values, "add")[0, 0] == 10
        with pytest.raises(MachineError):
            mesh.row_reduce_broadcast(values, "xor")

    def test_shift(self):
        mesh = MeshMachine(2, 2)
        values = np.array([[1, 2], [3, 4]])
        out = mesh.shift(values, 0, 1)
        assert (out == np.array([[0, 1], [0, 3]])).all()
        with pytest.raises(MachineError):
            mesh.shift(values, 2, 0)


class TestMeshEngine:
    @pytest.mark.parametrize(
        "grammar,sentence",
        [
            (program_grammar(), "The program runs"),
            (program_grammar(), "runs"),
            (program_grammar(), "the the program runs"),
            (english_grammar(), "the dog runs in the park"),
            (english_grammar(), "dog the runs"),
            (dyck_grammar(), list("([])")),
        ],
        ids=["toy", "one-word", "reject", "english-pp", "english-reject", "dyck"],
    )
    def test_settles_identically_to_vector(self, grammar, sentence):
        mesh = MeshEngine().parse(grammar, sentence)
        vector = VectorEngine().parse(grammar, sentence)
        np.testing.assert_array_equal(mesh.network.alive, vector.network.alive)
        np.testing.assert_array_equal(mesh.network.matrix, vector.network.matrix)

    def test_uses_quadratic_cells(self):
        result = MeshEngine().parse(english_grammar(), sentence_of_length(8))
        assert result.stats.processors == (8 * 2) ** 2  # (q n)^2 cells

    def test_mesh_time_reported(self):
        result = MeshEngine().parse(program_grammar(), "The program runs")
        extra = result.stats.extra
        assert extra["mesh_time"] == extra["local_work"] // extra["cells"] + extra["comm_steps"]
        assert extra["compute_steps"] > 0 and extra["comm_steps"] > 0

    def test_mesh_time_grows_quadratically(self):
        """The Figure-8 claim: O(n^2) time on O(n^2) PEs for constant k."""
        from repro.analysis import fit_power_law

        grammar = program_grammar()
        ns = [3, 6, 9, 12]
        times = [
            MeshEngine().parse(grammar, toy_sentence(n)).stats.extra["mesh_time"]
            for n in ns
        ]
        fit = fit_power_law(ns, times)
        assert 1.6 < fit.exponent < 2.4, fit

    def test_filter_limit(self):
        bounded = MeshEngine().parse(
            english_grammar(), "the dog sees the cat", filter_limit=0
        )
        assert bounded.stats.filtering_iterations == 0

    def test_trace_events(self):
        events = []
        MeshEngine().parse(
            program_grammar(), "The program runs", trace=lambda e, n: events.append(e)
        )
        assert "unary-done" in events and "filtering-done" in events
