"""The repro-lint framework, the rule catalogue, and the CLI.

Each rule gets one triggering and one passing fixture (the ISSUE's
acceptance bar), the framework's suppression/skip machinery is covered,
and the whole ``src`` tree must lint clean — the same gate CI enforces.
"""

from __future__ import annotations

import io
import json
import re
import shutil
import subprocess
from pathlib import Path

import pytest

from repro.analysis.lint import (
    Project,
    SourceModule,
    all_rules,
    lint_paths,
    lint_project,
    lint_source,
)
from repro.analysis.lint.cli import main as lint_main

REPO_SRC = Path(__file__).resolve().parent.parent / "src"


def codes(findings) -> list[str]:
    return [f.code for f in findings]


class TestRuleCatalogue:
    def test_at_least_eight_rules(self):
        assert len(all_rules()) >= 8

    def test_codes_are_unique_and_well_formed(self):
        seen = [rule.code for rule in all_rules()]
        assert len(seen) == len(set(seen))
        for code in seen:
            assert re.fullmatch(r"RPR\d{3}", code)

    def test_every_rule_has_name_and_description(self):
        for rule in all_rules():
            assert rule.name
            assert rule.description


class TestFramework:
    def test_suppression_comment_silences_one_code(self):
        source = (
            "def f(net):\n"
            "    net.alive[0] = False  # repro-lint: ignore[RPR001]\n"
        )
        assert lint_source(source, select={"RPR001"}) == []

    def test_suppression_is_per_code(self):
        source = (
            "def f(net):\n"
            "    net.alive[0] = False  # repro-lint: ignore[RPR005]\n"
        )
        assert codes(lint_source(source, select={"RPR001"})) == ["RPR001"]

    def test_skip_file_pragma(self):
        source = (
            "# repro-lint: skip-file\n"
            "def f(net):\n"
            "    net.alive[0] = False\n"
        )
        assert lint_source(source) == []

    def test_findings_sorted_and_located(self):
        source = (
            "import warnings\n"
            "def f(net):\n"
            "    warnings.warn('x')\n"
            "    net.alive[0] = False\n"
        )
        findings = lint_source(source, path="mod.py")
        assert [f.line for f in findings] == sorted(f.line for f in findings)
        assert all(f.path == "mod.py" for f in findings)
        rendered = findings[0].render()
        assert rendered.startswith("mod.py:") and findings[0].code in rendered

    def test_unparseable_source_raises(self):
        with pytest.raises(SyntaxError):
            lint_source("def f(:\n")


class TestFrozenViewWriteRPR001:
    def test_trigger_unbracketed_write(self):
        source = "def f(net):\n    net.matrix[0, 1] = False\n"
        assert codes(lint_source(source, select={"RPR001"})) == ["RPR001"]

    def test_trigger_inplace_method(self):
        source = "def f(net):\n    net.alive.fill(False)\n"
        assert codes(lint_source(source, select={"RPR001"})) == ["RPR001"]

    def test_pass_inside_materialize_bracket(self):
        source = (
            "def f(net):\n"
            "    net.materialize_bool()\n"
            "    try:\n"
            "        net.alive[0] = False\n"
            "    finally:\n"
            "        net.repack()\n"
        )
        assert lint_source(source, select={"RPR001"}) == []

    def test_pass_nested_function_inherits_bracket(self):
        source = (
            "def f(net):\n"
            "    net.materialize_bool()\n"
            "    try:\n"
            "        def sync():\n"
            "            net.alive[0] = False\n"
            "        sync()\n"
            "    finally:\n"
            "        net.repack()\n"
        )
        assert lint_source(source, select={"RPR001"}) == []

    def test_pass_duck_typed_owner_class(self):
        source = (
            "class SyntheticNetwork:\n"
            "    def __init__(self, n):\n"
            "        self.alive = make(n)\n"
            "        self.matrix = make2(n)\n"
            "    def kill(self, i):\n"
            "        self.alive[i] = False\n"
            "        self.matrix[i, :] = False\n"
        )
        assert lint_source(source, select={"RPR001"}) == []

    def test_pass_network_py_owns_the_representation(self):
        source = "def f(self):\n    self.matrix[0, 1] = False\n"
        assert (
            lint_source(source, path="src/repro/network/network.py", select={"RPR001"})
            == []
        )


class TestMaterializeRepackRPR002:
    def test_trigger_materialize_without_repack(self):
        source = "def run(net):\n    net.materialize_bool()\n"
        findings = lint_source(source, select={"RPR002"})
        assert codes(findings) == ["RPR002"]
        assert "without a matching repack" in findings[0].message

    def test_trigger_repack_not_in_finally(self):
        source = (
            "def run(net):\n"
            "    net.materialize_bool()\n"
            "    work(net)\n"
            "    net.repack()\n"
        )
        findings = lint_source(source, select={"RPR002"})
        assert codes(findings) == ["RPR002"]
        assert "try/finally" in findings[0].message

    def test_trigger_repack_without_materialize(self):
        source = "def run(net):\n    net.repack()\n"
        findings = lint_source(source, select={"RPR002"})
        assert codes(findings) == ["RPR002"]
        assert "without a visible materialize_bool" in findings[0].message

    def test_pass_balanced_finally_bracket(self):
        source = (
            "def run(net):\n"
            "    net.materialize_bool()\n"
            "    try:\n"
            "        work(net)\n"
            "    finally:\n"
            "        net.repack()\n"
        )
        assert lint_source(source, select={"RPR002"}) == []


class TestInplaceOnSharedRPR003:
    def test_trigger_augassign_on_accessor_result(self):
        source = (
            "def f(template, compiled, other):\n"
            "    masks = template.vector_masks(compiled)\n"
            "    masks &= other\n"
        )
        assert codes(lint_source(source, select={"RPR003"})) == ["RPR003"]

    def test_trigger_out_kwarg_targets_shared(self):
        source = (
            "import numpy as np\n"
            "def f(template, other):\n"
            "    base = template.base_matrix\n"
            "    np.logical_and(base, other, out=base)\n"
        )
        assert codes(lint_source(source, select={"RPR003"})) == ["RPR003"]

    def test_pass_copy_breaks_the_taint(self):
        source = (
            "def f(template, compiled, other):\n"
            "    masks = template.vector_masks(compiled).copy\n"
            "    masks &= other\n"
        )
        assert lint_source(source, select={"RPR003"}) == []

    def test_pass_scalar_attribute_reads_do_not_taint(self):
        source = (
            "def nbytes(self):\n"
            "    total = self.base_bits.nbytes + self.canbe_array.nbytes\n"
            "    total += self.base_bits.nbytes\n"
            "    return total\n"
        )
        assert lint_source(source, select={"RPR003"}) == []


class TestNestedLockRPR004:
    def test_trigger_nested_acquisition_without_order(self):
        source = (
            "def f(self):\n"
            "    with self._lock:\n"
            "        with self._other_lock:\n"
            "            pass\n"
        )
        assert codes(lint_source(source, select={"RPR004"})) == ["RPR004"]

    def test_pass_declared_lock_order(self):
        source = (
            "LOCK_ORDER = ('_lock', '_other_lock')\n"
            "def f(self):\n"
            "    with self._lock:\n"
            "        with self._other_lock:\n"
            "            pass\n"
        )
        assert lint_source(source, select={"RPR004"}) == []

    def test_pass_sequential_acquisition(self):
        source = (
            "def f(self):\n"
            "    with self._lock:\n"
            "        pass\n"
            "    with self._other_lock:\n"
            "        pass\n"
        )
        assert lint_source(source, select={"RPR004"}) == []


class TestWarnStacklevelRPR005:
    def test_trigger_missing_stacklevel(self):
        source = "import warnings\ndef f():\n    warnings.warn('careful')\n"
        assert codes(lint_source(source, select={"RPR005"})) == ["RPR005"]

    def test_trigger_bare_imported_warn(self):
        source = "from warnings import warn\ndef f():\n    warn('careful')\n"
        assert codes(lint_source(source, select={"RPR005"})) == ["RPR005"]

    def test_pass_with_stacklevel(self):
        source = "import warnings\ndef f():\n    warnings.warn('careful', stacklevel=2)\n"
        assert lint_source(source, select={"RPR005"}) == []


class TestKernelWallclockRPR006:
    def test_trigger_perf_counter_in_engines(self):
        source = "import time\ndef run():\n    t = time.perf_counter()\n"
        findings = lint_source(
            source, path="src/repro/engines/fast.py", select={"RPR006"}
        )
        assert codes(findings) == ["RPR006"]

    def test_trigger_from_import_in_mesh(self):
        source = "from time import monotonic\ndef run():\n    return monotonic()\n"
        findings = lint_source(source, path="src/repro/mesh/sim.py", select={"RPR006"})
        assert codes(findings) == ["RPR006"]

    def test_pass_outside_kernel_dirs(self):
        source = "import time\ndef run():\n    t = time.perf_counter()\n"
        assert (
            lint_source(source, path="src/repro/pipeline/session.py", select={"RPR006"})
            == []
        )

    def test_pass_timing_module_is_exempt(self):
        source = "import time\ndef now():\n    return time.perf_counter()\n"
        assert (
            lint_source(source, path="src/repro/parsec/timing.py", select={"RPR006"})
            == []
        )


class TestEngineContractRPR007:
    REGISTRY_PATH = "src/repro/engines/registry.py"

    def _project(self, engine_source: str) -> Project:
        registry_source = (
            "from repro.engines.custom import CustomEngine\n"
            "_REGISTRY = {}\n"
            "_REGISTRY.setdefault('custom', CustomEngine)\n"
        )
        return Project(
            [
                SourceModule(Path(self.REGISTRY_PATH), registry_source),
                SourceModule(Path("src/repro/engines/custom.py"), engine_source),
            ]
        )

    def test_trigger_missing_contract(self):
        project = self._project(
            "class CustomEngine:\n"
            "    def run(self, network, compiled=None):\n"
            "        return None\n"
        )
        findings = lint_project(project, select={"RPR007"})
        assert codes(findings) == ["RPR007"]
        message = findings[0].message
        assert "filter_limit" in message and "'name'" in message

    def test_pass_full_contract(self):
        project = self._project(
            "class CustomEngine:\n"
            "    name = 'custom'\n"
            "    def run(self, network, *, compiled=None, filter_limit=None, trace=None):\n"
            "        return None\n"
        )
        assert lint_project(project, select={"RPR007"}) == []


class TestSilentExceptRPR008:
    def test_trigger_bare_except(self):
        source = "def f():\n    try:\n        g()\n    except:\n        pass\n"
        assert codes(lint_source(source, select={"RPR008"})) == ["RPR008"]

    def test_trigger_swallowing_broad_except(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        assert codes(lint_source(source, select={"RPR008"})) == ["RPR008"]

    def test_pass_broad_except_that_handles(self):
        source = (
            "def f(future):\n"
            "    try:\n"
            "        g()\n"
            "    except BaseException as error:\n"
            "        future.set_exception(error)\n"
        )
        assert lint_source(source, select={"RPR008"}) == []

    def test_pass_narrow_swallow(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except KeyError:\n"
            "        pass\n"
        )
        assert lint_source(source, select={"RPR008"}) == []


class TestThawFrozenRPR009:
    def test_trigger_setflags_write_true(self):
        source = "def f(arr):\n    arr.setflags(write=True)\n"
        assert codes(lint_source(source, select={"RPR009"})) == ["RPR009"]

    def test_pass_freezing_is_fine(self):
        source = "def f(arr):\n    arr.setflags(write=False)\n"
        assert lint_source(source, select={"RPR009"}) == []


class TestWriteThroughAttachedRPR010:
    def test_trigger_item_write_through_attach_result(self):
        source = (
            "def f(handle, grammar, compiled):\n"
            "    template, shm = attach_template(handle, grammar, compiled)\n"
            "    template.base_bits[0, 0] = 0\n"
        )
        assert codes(lint_source(source, select={"RPR010"})) == ["RPR010"]

    def test_trigger_augassign_through_tuple_entry(self):
        source = (
            "def f(handle, grammar, compiled, mask):\n"
            "    entry = attach_template(handle, grammar, compiled)\n"
            "    entry[0].base_bits &= mask\n"
        )
        assert codes(lint_source(source, select={"RPR010"})) == ["RPR010"]

    def test_trigger_out_kwarg_targets_attached(self):
        source = (
            "import numpy as np\n"
            "def f(store, handle, other):\n"
            "    view = store.attach(handle)\n"
            "    np.bitwise_and(view, other, out=view)\n"
        )
        assert codes(lint_source(source, select={"RPR010"})) == ["RPR010"]

    def test_pass_reads_and_copies(self):
        source = (
            "def f(handle, grammar, compiled, mask):\n"
            "    template, shm = attach_template(handle, grammar, compiled)\n"
            "    network = template.bind(mask)\n"
            "    scratch = template.base_bits.copy()\n"
            "    scratch &= mask\n"
            "    return network, template.nbytes()\n"
        )
        assert lint_source(source, select={"RPR010"}) == []

    def test_pass_unrelated_writes(self):
        source = (
            "def f(handle, grammar, compiled, buffer):\n"
            "    entry = attach_template(handle, grammar, compiled)\n"
            "    buffer[0] = entry[0].nv\n"
        )
        assert lint_source(source, select={"RPR010"}) == []


class TestExtendMustNotThawRPR011:
    def test_trigger_item_write_to_predecessor_array(self):
        source = (
            "def extend_from(prev, template, sentence):\n"
            "    prev.alive_bits[0] = 0\n"
        )
        assert codes(lint_source(source, select={"RPR011"})) == ["RPR011"]

    def test_trigger_augassign_through_alias_chain(self):
        source = (
            "def extend(self, category_set):\n"
            "    bits = self.base_bits\n"
            "    bits &= 0\n"
        )
        assert codes(lint_source(source, select={"RPR011"})) == ["RPR011"]

    def test_trigger_out_kwarg_and_view_laundering(self):
        source = (
            "import numpy as np\n"
            "def _extend_masks(self, prefix, compiled):\n"
            "    rows = prefix.matrix_bits.view()\n"
            "    np.bitwise_or(rows, rows, out=rows)\n"
        )
        assert codes(lint_source(source, select={"RPR011"})) == ["RPR011"]

    def test_pass_scatter_into_fresh_arrays(self):
        source = (
            "import numpy as np\n"
            "def extend_from(prev, template, sentence):\n"
            "    network = template.bind(sentence)\n"
            "    base = np.zeros((template.nv, template.nv), dtype=bool)\n"
            "    base[prev.prefix_map] = prev.alive_bits\n"
            "    network.alive_bits = base\n"
            "    network.matrix_bits[0] = 0\n"
            "    return network\n"
        )
        assert lint_source(source, select={"RPR011"}) == []

    def test_pass_outside_extend_methods(self):
        source = (
            "def apply(prev):\n"
            "    prev.alive_bits[0] = 0\n"
        )
        assert lint_source(source, select={"RPR011"}) == []


class TestSocketLifecycleRPR012:
    CLUSTER = "src/repro/cluster/conn.py"

    def test_trigger_assigned_socket_never_closed(self):
        source = (
            "import asyncio\n"
            "async def connect(host, port):\n"
            "    reader, writer = await asyncio.open_connection(host, port)\n"
            "    return reader\n"
        )
        findings = lint_source(source, path=self.CLUSTER, select={"RPR012"})
        assert codes(findings) == ["RPR012"]

    def test_trigger_bare_server_call(self):
        source = (
            "import asyncio\n"
            "async def serve(handler, host, port):\n"
            "    await asyncio.start_server(handler, host, port)\n"
        )
        findings = lint_source(source, path=self.CLUSTER, select={"RPR012"})
        assert codes(findings) == ["RPR012"]

    def test_pass_context_managed_socket(self):
        source = (
            "import socket\n"
            "def probe(address):\n"
            "    with socket.create_connection(address) as sock:\n"
            "        return sock.recv(4)\n"
        )
        assert lint_source(source, path=self.CLUSTER, select={"RPR012"}) == []

    def test_pass_names_closed_in_function(self):
        source = (
            "import asyncio\n"
            "async def connect(host, port):\n"
            "    reader, writer = await asyncio.open_connection(host, port)\n"
            "    try:\n"
            "        return await reader.read(4)\n"
            "    finally:\n"
            "        writer.close()\n"
            "        await writer.wait_closed()\n"
        )
        assert lint_source(source, path=self.CLUSTER, select={"RPR012"}) == []

    def test_pass_self_attribute_closed_elsewhere_in_class(self):
        source = (
            "import asyncio\n"
            "class Server:\n"
            "    async def start(self, host, port):\n"
            "        self._server = await asyncio.start_server(None, host, port)\n"
            "    async def stop(self):\n"
            "        self._server.close()\n"
            "        await self._server.wait_closed()\n"
        )
        assert lint_source(source, path=self.CLUSTER, select={"RPR012"}) == []

    def test_pass_handed_to_lifecycle_registrar(self):
        source = (
            "import asyncio\n"
            "async def connect(self, host, port):\n"
            "    reader, writer = await asyncio.open_connection(host, port)\n"
            "    self._register_socket(reader, writer)\n"
        )
        assert lint_source(source, path=self.CLUSTER, select={"RPR012"}) == []

    def test_rule_is_scoped_to_the_cluster_package(self):
        source = (
            "import asyncio\n"
            "async def connect(host, port):\n"
            "    reader, writer = await asyncio.open_connection(host, port)\n"
            "    return reader\n"
        )
        outside = lint_source(source, path="src/repro/serve/conn.py", select={"RPR012"})
        assert outside == []


class TestKernelBitArithRPR013:
    OUTSIDE = "src/repro/serve/metrics.py"

    def test_trigger_np_bitwise_outside_kernels(self):
        source = (
            "import numpy as np\n"
            "def delta(a, b):\n"
            "    return np.bitwise_and(a, np.bitwise_not(b))\n"
        )
        findings = lint_source(source, path=self.OUTSIDE, select={"RPR013"})
        assert codes(findings) == ["RPR013"]
        assert "bitwise_and" in findings[0].message

    def test_trigger_unpackbits_and_ufunc_method_chain(self):
        source = (
            "import numpy as np\n"
            "def scatter(bytes_, offs, masks):\n"
            "    np.bitwise_or.at(bytes_, offs, masks)\n"
            "    return np.unpackbits(bytes_, bitorder='little')\n"
        )
        findings = lint_source(source, path=self.OUTSIDE, select={"RPR013"})
        assert sorted(codes(findings)) == ["RPR013", "RPR013"]

    def test_trigger_from_import_alias(self):
        source = (
            "from numpy import packbits as pb\n"
            "def pack(rows):\n"
            "    return pb(rows, axis=1, bitorder='little')\n"
        )
        findings = lint_source(source, path=self.OUTSIDE, select={"RPR013"})
        assert codes(findings) == ["RPR013"]

    def test_pass_inside_kernels_package(self):
        source = (
            "import numpy as np\n"
            "def bmm_accumulate(out, table, a8, t):\n"
            "    np.bitwise_or(out, table[a8[:, t]], out=out)\n"
        )
        assert (
            lint_source(source, path="src/repro/kernels/bmm.py", select={"RPR013"})
            == []
        )

    def test_pass_inside_bitset_layout_layer(self):
        source = (
            "import numpy as np\n"
            "def pack_rows(rows):\n"
            "    return np.packbits(rows, axis=-1, bitorder='little')\n"
        )
        assert (
            lint_source(
                source, path="src/repro/network/bitset.py", select={"RPR013"}
            )
            == []
        )

    def test_pass_non_bit_numpy_calls_outside(self):
        source = (
            "import numpy as np\n"
            "def stats(a, b):\n"
            "    return np.logical_and(a, b).sum() + np.count_nonzero(a)\n"
        )
        assert lint_source(source, path=self.OUTSIDE, select={"RPR013"}) == []


def cluster_fixture(body: str) -> list:
    """Lint *body* as a ``repro.cluster`` module (RPR015's scope)."""
    return lint_source(body, path="src/repro/cluster/pump.py", select={"RPR015"})


class TestCrossModuleLockCycleRPR014:
    CYCLE_A = (
        "src/repro/serve/a.py",
        "import threading\n"
        "from repro.serve.b import B\n"
        "class A:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.b = B()\n"
        "    def outer(self):\n"
        "        with self._lock:\n"
        "            self.b.inner()\n"
        "    def poke(self):\n"
        "        with self._lock:\n"
        "            pass\n",
    )
    CYCLE_B = (
        "src/repro/serve/b.py",
        "import threading\n"
        "from repro.serve.a import A\n"
        "class B:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "    def inner(self):\n"
        "        with self._lock:\n"
        "            pass\n"
        "    def back(self, a: A):\n"
        "        with self._lock:\n"
        "            a.poke()\n",
    )

    @staticmethod
    def _project(*files):
        return Project([SourceModule(Path(rel), source) for rel, source in files])

    def test_trigger_interprocedural_cycle(self):
        findings = lint_project(
            self._project(self.CYCLE_A, self.CYCLE_B), select={"RPR014"}
        )
        assert codes(findings) == ["RPR014"]
        message = findings[0].message
        assert "lock-order cycle" in message
        assert "A._lock" in message and "B._lock" in message

    def test_pass_one_directional_hierarchy(self):
        findings = lint_project(self._project(self.CYCLE_A), select={"RPR014"})
        assert findings == []

    def test_trigger_conflicting_declarations(self):
        one = (
            "src/repro/serve/m1.py",
            "import threading\n"
            "alpha_lock = threading.Lock()\n"
            "beta_lock = threading.Lock()\n"
            "LOCK_ORDER = ('alpha_lock', 'beta_lock')\n",
        )
        # The second module declares the same two locks in reverse.
        two = (
            "src/repro/serve/m2.py",
            "LOCK_ORDER = ('m1.beta_lock', 'm1.alpha_lock')\n",
        )
        findings = lint_project(self._project(one, two), select={"RPR014"})
        assert codes(findings) == ["RPR014"]
        assert "declarations disagree" in findings[0].message

    def test_trigger_code_contradicts_declaration(self):
        module = (
            "src/repro/serve/m.py",
            "import threading\n"
            "alpha_lock = threading.Lock()\n"
            "beta_lock = threading.Lock()\n"
            "LOCK_ORDER = ('beta_lock', 'alpha_lock')\n"
            "def nest():\n"
            "    with alpha_lock:\n"
            "        with beta_lock:\n"
            "            pass\n",
        )
        findings = lint_project(self._project(module), select={"RPR014"})
        assert codes(findings) == ["RPR014"]
        assert "contradicts the declared global order" in findings[0].message

    def test_pass_code_matching_declaration(self):
        module = (
            "src/repro/serve/m.py",
            "import threading\n"
            "alpha_lock = threading.Lock()\n"
            "beta_lock = threading.Lock()\n"
            "LOCK_ORDER = ('alpha_lock', 'beta_lock')\n"
            "def nest():\n"
            "    with alpha_lock:\n"
            "        with beta_lock:\n"
            "            pass\n",
        )
        assert lint_project(self._project(module), select={"RPR014"}) == []


class TestBlockingInAsyncRPR015:
    def test_trigger_sleep_behind_a_helper(self):
        findings = cluster_fixture(
            "import time\n"
            "async def pump():\n"
            "    step()\n"
            "def step():\n"
            "    time.sleep(0.1)\n"
        )
        assert codes(findings) == ["RPR015"]
        message = findings[0].message
        assert "time.sleep" in message and "pump" in message

    def test_trigger_unresolved_socket_recv(self):
        findings = cluster_fixture(
            "async def pump(sock):\n"
            "    data = sock.recv(4)\n"
            "    return data\n"
        )
        assert codes(findings) == ["RPR015"]
        assert "socket I/O" in findings[0].message

    def test_pass_executor_wrapped_work(self):
        findings = cluster_fixture(
            "import asyncio\n"
            "import time\n"
            "async def pump():\n"
            "    loop = asyncio.get_running_loop()\n"
            "    await loop.run_in_executor(None, lambda: time.sleep(0.1))\n"
        )
        assert findings == []

    def test_pass_awaited_primitive(self):
        findings = cluster_fixture(
            "async def pump(lock):\n"
            "    await lock.acquire()\n"
        )
        assert findings == []

    def test_pass_outside_the_cluster_package(self):
        findings = lint_source(
            "import time\nasync def pump():\n    time.sleep(0.1)\n",
            path="src/repro/serve/pump.py",
            select={"RPR015"},
        )
        assert findings == []


class TestEscapingFrozenRefRPR016:
    def test_trigger_mutation_of_returned_frozen_ref(self):
        source = (
            "def get_masks(template, compiled):\n"
            "    masks = template.vector_masks(compiled)\n"
            "    return masks\n"
            "def consumer(template, compiled, other):\n"
            "    m = get_masks(template, compiled)\n"
            "    m &= other\n"
        )
        findings = lint_source(source, select={"RPR016"})
        assert codes(findings) == ["RPR016"]
        assert "escaped its owner" in findings[0].message
        assert "get_masks" in findings[0].message

    def test_trigger_mutation_of_frozen_self_attribute(self):
        source = (
            "class Holder:\n"
            "    def __init__(self, template):\n"
            "        self.masks = template.base_matrix\n"
            "    def clobber(self):\n"
            "        self.masks[0] = 0\n"
        )
        findings = lint_source(source, select={"RPR016"})
        assert codes(findings) == ["RPR016"]
        assert "stored on self" in findings[0].message

    def test_pass_rebind_kills_the_frozen_def(self):
        source = (
            "import numpy as np\n"
            "def fresh(template, compiled):\n"
            "    return template.vector_masks(compiled)\n"
            "def consumer(template, compiled):\n"
            "    m = fresh(template, compiled)\n"
            "    m = np.zeros(4)\n"
            "    m[0] = 1\n"
        )
        assert lint_source(source, select={"RPR016"}) == []

    def test_pass_copy_breaks_the_escape(self):
        source = (
            "def get_masks(template, compiled):\n"
            "    return template.vector_masks(compiled)\n"
            "def consumer(template, compiled, other):\n"
            "    m = get_masks(template, compiled).copy()\n"
            "    m &= other\n"
        )
        assert lint_source(source, select={"RPR016"}) == []

    def test_pass_reads_of_escaped_refs(self):
        source = (
            "def get_masks(template, compiled):\n"
            "    return template.vector_masks(compiled)\n"
            "def consumer(template, compiled):\n"
            "    m = get_masks(template, compiled)\n"
            "    return m.sum()\n"
        )
        assert lint_source(source, select={"RPR016"}) == []


class TestSuppressionEdgeCases:
    # One line tripping two rules: an extend method aliasing a shared
    # attribute, then mutating through the alias (RPR003 + RPR011).
    TWO_RULE_LINE = (
        "def extend(self, category_set):\n"
        "    masks = self.base_matrix\n"
        "    masks &= 0{pragma}\n"
    )

    def test_one_pragma_silences_multiple_codes(self):
        source = self.TWO_RULE_LINE.format(
            pragma="  # repro-lint: ignore[RPR003,RPR011]"
        )
        assert lint_source(source, select={"RPR003", "RPR011"}) == []

    def test_unlisted_code_still_fires(self):
        source = self.TWO_RULE_LINE.format(pragma="  # repro-lint: ignore[RPR003]")
        assert codes(lint_source(source, select={"RPR003", "RPR011"})) == ["RPR011"]

    def test_both_codes_fire_without_pragma(self):
        source = self.TWO_RULE_LINE.format(pragma="")
        assert codes(lint_source(source, select={"RPR003", "RPR011"})) == [
            "RPR003",
            "RPR011",
        ]

    def test_skip_file_makes_the_cli_exit_zero(self, tmp_path):
        bad = tmp_path / "skipped.py"
        bad.write_text(
            "# repro-lint: skip-file\n"
            "def f(net):\n"
            "    net.alive[0] = False\n"
        )
        out = io.StringIO()
        assert lint_main([str(bad)], out=out) == 0
        assert "0 findings" in out.getvalue()

    def test_unknown_suppression_code_warns(self):
        source = "x = 1  # repro-lint: ignore[RPR999]\n"
        with pytest.warns(UserWarning, match=r"unknown rule code\(s\) RPR999"):
            lint_source(source)

    def test_known_suppression_codes_do_not_warn(self, recwarn):
        source = "def f(net):\n    net.alive[0] = False  # repro-lint: ignore[RPR001]\n"
        lint_source(source)
        assert not [w for w in recwarn if "unknown rule code" in str(w.message)]


class TestRepoIsClean:
    def test_src_tree_lints_clean(self):
        findings = lint_paths([REPO_SRC])
        assert findings == [], "\n".join(f.render() for f in findings)


class TestCli:
    def test_clean_tree_exits_zero(self):
        out = io.StringIO()
        assert lint_main([str(REPO_SRC)], out=out) == 0
        assert "0 findings" in out.getvalue()

    def test_findings_exit_one(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(net):\n    net.alive[0] = False\n")
        out = io.StringIO()
        assert lint_main([str(bad)], out=out) == 1
        assert "RPR001" in out.getvalue()

    def test_json_format(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import warnings\ndef f():\n    warnings.warn('x')\n")
        out = io.StringIO()
        assert lint_main([str(bad), "--format=json"], out=out) == 1
        payload = json.loads(out.getvalue())
        assert payload["counts"] == {"RPR005": 1}
        assert payload["findings"][0]["code"] == "RPR005"
        assert len(payload["rules"]) >= 8

    def test_select_filters(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import warnings\ndef f():\n    warnings.warn('x')\n")
        out = io.StringIO()
        assert lint_main([str(bad), "--select", "RPR001"], out=out) == 0

    def test_unknown_select_exits_two(self):
        assert lint_main(["--select", "RPR999"], out=io.StringIO()) == 2

    def test_list_rules(self):
        out = io.StringIO()
        assert lint_main(["--list-rules"], out=out) == 0
        listing = out.getvalue()
        for rule in all_rules():
            assert rule.code in listing

    def test_syntax_error_exits_two(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        assert lint_main([str(bad)], out=io.StringIO()) == 2


BAD_WARN = "import warnings\ndef f():\n    warnings.warn('x')\n"


class TestCliBaseline:
    def test_write_baseline_requires_the_file_argument(self):
        assert lint_main(["--write-baseline"], out=io.StringIO()) == 2

    def test_baseline_absorbs_recorded_findings(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_WARN)
        baseline = tmp_path / "baseline.json"

        out = io.StringIO()
        assert (
            lint_main(
                [str(bad), "--baseline", str(baseline), "--write-baseline"], out=out
            )
            == 0
        )
        assert baseline.exists()

        out = io.StringIO()
        assert lint_main([str(bad), "--baseline", str(baseline)], out=out) == 0
        assert "absorbed by baseline" in out.getvalue()

    def test_new_findings_still_fail_against_a_baseline(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_WARN)
        baseline = tmp_path / "baseline.json"
        lint_main(
            [str(bad), "--baseline", str(baseline), "--write-baseline"],
            out=io.StringIO(),
        )

        bad.write_text(BAD_WARN + "def g():\n    warnings.warn('y')\n")
        out = io.StringIO()
        assert lint_main([str(bad), "--baseline", str(baseline)], out=out) == 1
        # Only the new finding is reported; the recorded one is absorbed.
        assert out.getvalue().count("RPR005") == 1
        assert "warnings.warn" not in out.getvalue() or "1 finding " in out.getvalue()

    def test_fixing_a_finding_never_breaks_the_build(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_WARN)
        baseline = tmp_path / "baseline.json"
        lint_main(
            [str(bad), "--baseline", str(baseline), "--write-baseline"],
            out=io.StringIO(),
        )
        bad.write_text("def f():\n    return 1\n")  # the finding is fixed
        assert (
            lint_main([str(bad), "--baseline", str(baseline)], out=io.StringIO()) == 0
        )

    def test_garbage_baseline_exits_two(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_WARN)
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{\"version\": 99}")
        assert (
            lint_main([str(bad), "--baseline", str(baseline)], out=io.StringIO()) == 2
        )


class TestCliSarif:
    def test_sarif_document_shape(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_WARN)
        out = io.StringIO()
        assert lint_main([str(bad), "--format=sarif"], out=out) == 1
        document = json.loads(out.getvalue())
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        assert {rule["id"] for rule in driver["rules"]} == {
            rule.code for rule in all_rules()
        }
        (result,) = run["results"]
        assert result["ruleId"] == "RPR005"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("bad.py")
        assert location["region"]["startLine"] == 3

    def test_clean_tree_sarif_has_no_results(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("def f():\n    return 1\n")
        out = io.StringIO()
        assert lint_main([str(clean), "--format=sarif"], out=out) == 0
        document = json.loads(out.getvalue())
        assert document["runs"][0]["results"] == []


class TestCliChangedOnly:
    @pytest.fixture()
    def git_repo(self, tmp_path, monkeypatch):
        if shutil.which("git") is None:
            pytest.skip("git not available")
        monkeypatch.chdir(tmp_path)
        env = {"GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
               "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t"}
        for key, value in env.items():
            monkeypatch.setenv(key, value)
        subprocess.run(["git", "init", "-q"], check=True)
        return tmp_path

    def test_untracked_file_is_reported(self, git_repo):
        (git_repo / "seed.py").write_text("def f():\n    return 1\n")
        subprocess.run(["git", "add", "seed.py"], check=True)
        subprocess.run(["git", "commit", "-qm", "seed"], check=True)
        bad = git_repo / "bad.py"
        bad.write_text(BAD_WARN)
        out = io.StringIO()
        assert lint_main([str(git_repo), "--changed-only"], out=out) == 1
        assert "RPR005" in out.getvalue()

    def test_committed_findings_are_filtered_out(self, git_repo):
        bad = git_repo / "bad.py"
        bad.write_text(BAD_WARN)
        subprocess.run(["git", "add", "bad.py"], check=True)
        subprocess.run(["git", "commit", "-qm", "seed"], check=True)
        # Unchanged vs HEAD: the finding exists but is out of scope.
        assert lint_main([str(git_repo)], out=io.StringIO()) == 1
        assert lint_main([str(git_repo), "--changed-only"], out=io.StringIO()) == 0

    def test_outside_a_repo_exits_two(self, tmp_path, monkeypatch):
        if shutil.which("git") is None:
            pytest.skip("git not available")
        monkeypatch.chdir(tmp_path)
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_WARN)
        monkeypatch.setenv("GIT_CEILING_DIRECTORIES", str(tmp_path.parent))
        assert lint_main([str(bad), "--changed-only"], out=io.StringIO()) == 2


class TestNativeBoundaryHygieneRPR017:
    INSIDE = "src/repro/kernels/native/backend.py"

    def test_trigger_raw_argument_handed_to_c(self):
        source = (
            "def call(lib, words):\n"
            "    lib.kernel(words.ctypes.data_as(None), words.size)\n"
        )
        findings = lint_source(source, path=self.INSIDE, select={"RPR017"})
        assert codes(findings) == ["RPR017"]
        assert "unvalidated" in findings[0].message

    def test_trigger_asarray_is_not_enough(self):
        # np.asarray preserves dtype and strides — a transposed float
        # view sails through it straight into C.
        source = (
            "import numpy as np\n"
            "def call(lib, words):\n"
            "    arr = np.asarray(words)\n"
            "    lib.kernel(arr.ctypes.data_as(None), arr.size)\n"
        )
        findings = lint_source(source, path=self.INSIDE, select={"RPR017"})
        assert codes(findings) == ["RPR017"]

    def test_pass_validated_names_and_direct_validator_call(self):
        source = (
            "import numpy as np\n"
            "def call(lib, words, target):\n"
            "    arr = np.ascontiguousarray(words)\n"
            "    out = np.empty((3, 4), dtype='<u8')\n"
            "    a, b = _check_operands(words, words)\n"
            "    target = _require_words(target)\n"
            "    lib.kernel(arr.ctypes.data_as(None),\n"
            "               out.ctypes.data_as(None),\n"
            "               a.ctypes.data_as(None),\n"
            "               b.ctypes.data_as(None),\n"
            "               target.ctypes.data_as(None),\n"
            "               np.ascontiguousarray(words).ctypes.data_as(None))\n"
        )
        assert lint_source(source, path=self.INSIDE, select={"RPR017"}) == []

    def test_pass_rebind_in_place_idiom(self):
        source = (
            "import numpy as np\n"
            "def call(lib, mask):\n"
            "    mask = np.ascontiguousarray(mask)\n"
            "    lib.kernel(mask.ctypes.data_as(None), mask.size)\n"
        )
        assert lint_source(source, path=self.INSIDE, select={"RPR017"}) == []

    def test_out_of_scope_modules_are_ignored(self):
        source = (
            "def call(lib, words):\n"
            "    lib.kernel(words.ctypes.data_as(None))\n"
        )
        assert (
            lint_source(source, path="src/repro/kernels/bmm.py", select={"RPR017"})
            == []
        )

    def test_real_native_wrappers_lint_clean(self):
        path = REPO_SRC / "repro" / "kernels" / "native" / "backend.py"
        findings = lint_source(
            path.read_text(), path=str(path), select={"RPR017"}
        )
        assert findings == []
