"""The repro-lint framework, the rule catalogue, and the CLI.

Each rule gets one triggering and one passing fixture (the ISSUE's
acceptance bar), the framework's suppression/skip machinery is covered,
and the whole ``src`` tree must lint clean — the same gate CI enforces.
"""

from __future__ import annotations

import io
import json
import re
from pathlib import Path

import pytest

from repro.analysis.lint import (
    Project,
    SourceModule,
    all_rules,
    lint_paths,
    lint_project,
    lint_source,
)
from repro.analysis.lint.cli import main as lint_main

REPO_SRC = Path(__file__).resolve().parent.parent / "src"


def codes(findings) -> list[str]:
    return [f.code for f in findings]


class TestRuleCatalogue:
    def test_at_least_eight_rules(self):
        assert len(all_rules()) >= 8

    def test_codes_are_unique_and_well_formed(self):
        seen = [rule.code for rule in all_rules()]
        assert len(seen) == len(set(seen))
        for code in seen:
            assert re.fullmatch(r"RPR\d{3}", code)

    def test_every_rule_has_name_and_description(self):
        for rule in all_rules():
            assert rule.name
            assert rule.description


class TestFramework:
    def test_suppression_comment_silences_one_code(self):
        source = (
            "def f(net):\n"
            "    net.alive[0] = False  # repro-lint: ignore[RPR001]\n"
        )
        assert lint_source(source, select={"RPR001"}) == []

    def test_suppression_is_per_code(self):
        source = (
            "def f(net):\n"
            "    net.alive[0] = False  # repro-lint: ignore[RPR005]\n"
        )
        assert codes(lint_source(source, select={"RPR001"})) == ["RPR001"]

    def test_skip_file_pragma(self):
        source = (
            "# repro-lint: skip-file\n"
            "def f(net):\n"
            "    net.alive[0] = False\n"
        )
        assert lint_source(source) == []

    def test_findings_sorted_and_located(self):
        source = (
            "import warnings\n"
            "def f(net):\n"
            "    warnings.warn('x')\n"
            "    net.alive[0] = False\n"
        )
        findings = lint_source(source, path="mod.py")
        assert [f.line for f in findings] == sorted(f.line for f in findings)
        assert all(f.path == "mod.py" for f in findings)
        rendered = findings[0].render()
        assert rendered.startswith("mod.py:") and findings[0].code in rendered

    def test_unparseable_source_raises(self):
        with pytest.raises(SyntaxError):
            lint_source("def f(:\n")


class TestFrozenViewWriteRPR001:
    def test_trigger_unbracketed_write(self):
        source = "def f(net):\n    net.matrix[0, 1] = False\n"
        assert codes(lint_source(source, select={"RPR001"})) == ["RPR001"]

    def test_trigger_inplace_method(self):
        source = "def f(net):\n    net.alive.fill(False)\n"
        assert codes(lint_source(source, select={"RPR001"})) == ["RPR001"]

    def test_pass_inside_materialize_bracket(self):
        source = (
            "def f(net):\n"
            "    net.materialize_bool()\n"
            "    try:\n"
            "        net.alive[0] = False\n"
            "    finally:\n"
            "        net.repack()\n"
        )
        assert lint_source(source, select={"RPR001"}) == []

    def test_pass_nested_function_inherits_bracket(self):
        source = (
            "def f(net):\n"
            "    net.materialize_bool()\n"
            "    try:\n"
            "        def sync():\n"
            "            net.alive[0] = False\n"
            "        sync()\n"
            "    finally:\n"
            "        net.repack()\n"
        )
        assert lint_source(source, select={"RPR001"}) == []

    def test_pass_duck_typed_owner_class(self):
        source = (
            "class SyntheticNetwork:\n"
            "    def __init__(self, n):\n"
            "        self.alive = make(n)\n"
            "        self.matrix = make2(n)\n"
            "    def kill(self, i):\n"
            "        self.alive[i] = False\n"
            "        self.matrix[i, :] = False\n"
        )
        assert lint_source(source, select={"RPR001"}) == []

    def test_pass_network_py_owns_the_representation(self):
        source = "def f(self):\n    self.matrix[0, 1] = False\n"
        assert (
            lint_source(source, path="src/repro/network/network.py", select={"RPR001"})
            == []
        )


class TestMaterializeRepackRPR002:
    def test_trigger_materialize_without_repack(self):
        source = "def run(net):\n    net.materialize_bool()\n"
        findings = lint_source(source, select={"RPR002"})
        assert codes(findings) == ["RPR002"]
        assert "without a matching repack" in findings[0].message

    def test_trigger_repack_not_in_finally(self):
        source = (
            "def run(net):\n"
            "    net.materialize_bool()\n"
            "    work(net)\n"
            "    net.repack()\n"
        )
        findings = lint_source(source, select={"RPR002"})
        assert codes(findings) == ["RPR002"]
        assert "try/finally" in findings[0].message

    def test_trigger_repack_without_materialize(self):
        source = "def run(net):\n    net.repack()\n"
        findings = lint_source(source, select={"RPR002"})
        assert codes(findings) == ["RPR002"]
        assert "without a visible materialize_bool" in findings[0].message

    def test_pass_balanced_finally_bracket(self):
        source = (
            "def run(net):\n"
            "    net.materialize_bool()\n"
            "    try:\n"
            "        work(net)\n"
            "    finally:\n"
            "        net.repack()\n"
        )
        assert lint_source(source, select={"RPR002"}) == []


class TestInplaceOnSharedRPR003:
    def test_trigger_augassign_on_accessor_result(self):
        source = (
            "def f(template, compiled, other):\n"
            "    masks = template.vector_masks(compiled)\n"
            "    masks &= other\n"
        )
        assert codes(lint_source(source, select={"RPR003"})) == ["RPR003"]

    def test_trigger_out_kwarg_targets_shared(self):
        source = (
            "import numpy as np\n"
            "def f(template, other):\n"
            "    base = template.base_matrix\n"
            "    np.logical_and(base, other, out=base)\n"
        )
        assert codes(lint_source(source, select={"RPR003"})) == ["RPR003"]

    def test_pass_copy_breaks_the_taint(self):
        source = (
            "def f(template, compiled, other):\n"
            "    masks = template.vector_masks(compiled).copy\n"
            "    masks &= other\n"
        )
        assert lint_source(source, select={"RPR003"}) == []

    def test_pass_scalar_attribute_reads_do_not_taint(self):
        source = (
            "def nbytes(self):\n"
            "    total = self.base_bits.nbytes + self.canbe_array.nbytes\n"
            "    total += self.base_bits.nbytes\n"
            "    return total\n"
        )
        assert lint_source(source, select={"RPR003"}) == []


class TestNestedLockRPR004:
    def test_trigger_nested_acquisition_without_order(self):
        source = (
            "def f(self):\n"
            "    with self._lock:\n"
            "        with self._other_lock:\n"
            "            pass\n"
        )
        assert codes(lint_source(source, select={"RPR004"})) == ["RPR004"]

    def test_pass_declared_lock_order(self):
        source = (
            "LOCK_ORDER = ('_lock', '_other_lock')\n"
            "def f(self):\n"
            "    with self._lock:\n"
            "        with self._other_lock:\n"
            "            pass\n"
        )
        assert lint_source(source, select={"RPR004"}) == []

    def test_pass_sequential_acquisition(self):
        source = (
            "def f(self):\n"
            "    with self._lock:\n"
            "        pass\n"
            "    with self._other_lock:\n"
            "        pass\n"
        )
        assert lint_source(source, select={"RPR004"}) == []


class TestWarnStacklevelRPR005:
    def test_trigger_missing_stacklevel(self):
        source = "import warnings\ndef f():\n    warnings.warn('careful')\n"
        assert codes(lint_source(source, select={"RPR005"})) == ["RPR005"]

    def test_trigger_bare_imported_warn(self):
        source = "from warnings import warn\ndef f():\n    warn('careful')\n"
        assert codes(lint_source(source, select={"RPR005"})) == ["RPR005"]

    def test_pass_with_stacklevel(self):
        source = "import warnings\ndef f():\n    warnings.warn('careful', stacklevel=2)\n"
        assert lint_source(source, select={"RPR005"}) == []


class TestKernelWallclockRPR006:
    def test_trigger_perf_counter_in_engines(self):
        source = "import time\ndef run():\n    t = time.perf_counter()\n"
        findings = lint_source(
            source, path="src/repro/engines/fast.py", select={"RPR006"}
        )
        assert codes(findings) == ["RPR006"]

    def test_trigger_from_import_in_mesh(self):
        source = "from time import monotonic\ndef run():\n    return monotonic()\n"
        findings = lint_source(source, path="src/repro/mesh/sim.py", select={"RPR006"})
        assert codes(findings) == ["RPR006"]

    def test_pass_outside_kernel_dirs(self):
        source = "import time\ndef run():\n    t = time.perf_counter()\n"
        assert (
            lint_source(source, path="src/repro/pipeline/session.py", select={"RPR006"})
            == []
        )

    def test_pass_timing_module_is_exempt(self):
        source = "import time\ndef now():\n    return time.perf_counter()\n"
        assert (
            lint_source(source, path="src/repro/parsec/timing.py", select={"RPR006"})
            == []
        )


class TestEngineContractRPR007:
    REGISTRY_PATH = "src/repro/engines/registry.py"

    def _project(self, engine_source: str) -> Project:
        registry_source = (
            "from repro.engines.custom import CustomEngine\n"
            "_REGISTRY = {}\n"
            "_REGISTRY.setdefault('custom', CustomEngine)\n"
        )
        return Project(
            [
                SourceModule(Path(self.REGISTRY_PATH), registry_source),
                SourceModule(Path("src/repro/engines/custom.py"), engine_source),
            ]
        )

    def test_trigger_missing_contract(self):
        project = self._project(
            "class CustomEngine:\n"
            "    def run(self, network, compiled=None):\n"
            "        return None\n"
        )
        findings = lint_project(project, select={"RPR007"})
        assert codes(findings) == ["RPR007"]
        message = findings[0].message
        assert "filter_limit" in message and "'name'" in message

    def test_pass_full_contract(self):
        project = self._project(
            "class CustomEngine:\n"
            "    name = 'custom'\n"
            "    def run(self, network, *, compiled=None, filter_limit=None, trace=None):\n"
            "        return None\n"
        )
        assert lint_project(project, select={"RPR007"}) == []


class TestSilentExceptRPR008:
    def test_trigger_bare_except(self):
        source = "def f():\n    try:\n        g()\n    except:\n        pass\n"
        assert codes(lint_source(source, select={"RPR008"})) == ["RPR008"]

    def test_trigger_swallowing_broad_except(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        assert codes(lint_source(source, select={"RPR008"})) == ["RPR008"]

    def test_pass_broad_except_that_handles(self):
        source = (
            "def f(future):\n"
            "    try:\n"
            "        g()\n"
            "    except BaseException as error:\n"
            "        future.set_exception(error)\n"
        )
        assert lint_source(source, select={"RPR008"}) == []

    def test_pass_narrow_swallow(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except KeyError:\n"
            "        pass\n"
        )
        assert lint_source(source, select={"RPR008"}) == []


class TestThawFrozenRPR009:
    def test_trigger_setflags_write_true(self):
        source = "def f(arr):\n    arr.setflags(write=True)\n"
        assert codes(lint_source(source, select={"RPR009"})) == ["RPR009"]

    def test_pass_freezing_is_fine(self):
        source = "def f(arr):\n    arr.setflags(write=False)\n"
        assert lint_source(source, select={"RPR009"}) == []


class TestWriteThroughAttachedRPR010:
    def test_trigger_item_write_through_attach_result(self):
        source = (
            "def f(handle, grammar, compiled):\n"
            "    template, shm = attach_template(handle, grammar, compiled)\n"
            "    template.base_bits[0, 0] = 0\n"
        )
        assert codes(lint_source(source, select={"RPR010"})) == ["RPR010"]

    def test_trigger_augassign_through_tuple_entry(self):
        source = (
            "def f(handle, grammar, compiled, mask):\n"
            "    entry = attach_template(handle, grammar, compiled)\n"
            "    entry[0].base_bits &= mask\n"
        )
        assert codes(lint_source(source, select={"RPR010"})) == ["RPR010"]

    def test_trigger_out_kwarg_targets_attached(self):
        source = (
            "import numpy as np\n"
            "def f(store, handle, other):\n"
            "    view = store.attach(handle)\n"
            "    np.bitwise_and(view, other, out=view)\n"
        )
        assert codes(lint_source(source, select={"RPR010"})) == ["RPR010"]

    def test_pass_reads_and_copies(self):
        source = (
            "def f(handle, grammar, compiled, mask):\n"
            "    template, shm = attach_template(handle, grammar, compiled)\n"
            "    network = template.bind(mask)\n"
            "    scratch = template.base_bits.copy()\n"
            "    scratch &= mask\n"
            "    return network, template.nbytes()\n"
        )
        assert lint_source(source, select={"RPR010"}) == []

    def test_pass_unrelated_writes(self):
        source = (
            "def f(handle, grammar, compiled, buffer):\n"
            "    entry = attach_template(handle, grammar, compiled)\n"
            "    buffer[0] = entry[0].nv\n"
        )
        assert lint_source(source, select={"RPR010"}) == []


class TestExtendMustNotThawRPR011:
    def test_trigger_item_write_to_predecessor_array(self):
        source = (
            "def extend_from(prev, template, sentence):\n"
            "    prev.alive_bits[0] = 0\n"
        )
        assert codes(lint_source(source, select={"RPR011"})) == ["RPR011"]

    def test_trigger_augassign_through_alias_chain(self):
        source = (
            "def extend(self, category_set):\n"
            "    bits = self.base_bits\n"
            "    bits &= 0\n"
        )
        assert codes(lint_source(source, select={"RPR011"})) == ["RPR011"]

    def test_trigger_out_kwarg_and_view_laundering(self):
        source = (
            "import numpy as np\n"
            "def _extend_masks(self, prefix, compiled):\n"
            "    rows = prefix.matrix_bits.view()\n"
            "    np.bitwise_or(rows, rows, out=rows)\n"
        )
        assert codes(lint_source(source, select={"RPR011"})) == ["RPR011"]

    def test_pass_scatter_into_fresh_arrays(self):
        source = (
            "import numpy as np\n"
            "def extend_from(prev, template, sentence):\n"
            "    network = template.bind(sentence)\n"
            "    base = np.zeros((template.nv, template.nv), dtype=bool)\n"
            "    base[prev.prefix_map] = prev.alive_bits\n"
            "    network.alive_bits = base\n"
            "    network.matrix_bits[0] = 0\n"
            "    return network\n"
        )
        assert lint_source(source, select={"RPR011"}) == []

    def test_pass_outside_extend_methods(self):
        source = (
            "def apply(prev):\n"
            "    prev.alive_bits[0] = 0\n"
        )
        assert lint_source(source, select={"RPR011"}) == []


class TestSocketLifecycleRPR012:
    CLUSTER = "src/repro/cluster/conn.py"

    def test_trigger_assigned_socket_never_closed(self):
        source = (
            "import asyncio\n"
            "async def connect(host, port):\n"
            "    reader, writer = await asyncio.open_connection(host, port)\n"
            "    return reader\n"
        )
        findings = lint_source(source, path=self.CLUSTER, select={"RPR012"})
        assert codes(findings) == ["RPR012"]

    def test_trigger_bare_server_call(self):
        source = (
            "import asyncio\n"
            "async def serve(handler, host, port):\n"
            "    await asyncio.start_server(handler, host, port)\n"
        )
        findings = lint_source(source, path=self.CLUSTER, select={"RPR012"})
        assert codes(findings) == ["RPR012"]

    def test_pass_context_managed_socket(self):
        source = (
            "import socket\n"
            "def probe(address):\n"
            "    with socket.create_connection(address) as sock:\n"
            "        return sock.recv(4)\n"
        )
        assert lint_source(source, path=self.CLUSTER, select={"RPR012"}) == []

    def test_pass_names_closed_in_function(self):
        source = (
            "import asyncio\n"
            "async def connect(host, port):\n"
            "    reader, writer = await asyncio.open_connection(host, port)\n"
            "    try:\n"
            "        return await reader.read(4)\n"
            "    finally:\n"
            "        writer.close()\n"
            "        await writer.wait_closed()\n"
        )
        assert lint_source(source, path=self.CLUSTER, select={"RPR012"}) == []

    def test_pass_self_attribute_closed_elsewhere_in_class(self):
        source = (
            "import asyncio\n"
            "class Server:\n"
            "    async def start(self, host, port):\n"
            "        self._server = await asyncio.start_server(None, host, port)\n"
            "    async def stop(self):\n"
            "        self._server.close()\n"
            "        await self._server.wait_closed()\n"
        )
        assert lint_source(source, path=self.CLUSTER, select={"RPR012"}) == []

    def test_pass_handed_to_lifecycle_registrar(self):
        source = (
            "import asyncio\n"
            "async def connect(self, host, port):\n"
            "    reader, writer = await asyncio.open_connection(host, port)\n"
            "    self._register_socket(reader, writer)\n"
        )
        assert lint_source(source, path=self.CLUSTER, select={"RPR012"}) == []

    def test_rule_is_scoped_to_the_cluster_package(self):
        source = (
            "import asyncio\n"
            "async def connect(host, port):\n"
            "    reader, writer = await asyncio.open_connection(host, port)\n"
            "    return reader\n"
        )
        outside = lint_source(source, path="src/repro/serve/conn.py", select={"RPR012"})
        assert outside == []


class TestKernelBitArithRPR013:
    OUTSIDE = "src/repro/serve/metrics.py"

    def test_trigger_np_bitwise_outside_kernels(self):
        source = (
            "import numpy as np\n"
            "def delta(a, b):\n"
            "    return np.bitwise_and(a, np.bitwise_not(b))\n"
        )
        findings = lint_source(source, path=self.OUTSIDE, select={"RPR013"})
        assert codes(findings) == ["RPR013"]
        assert "bitwise_and" in findings[0].message

    def test_trigger_unpackbits_and_ufunc_method_chain(self):
        source = (
            "import numpy as np\n"
            "def scatter(bytes_, offs, masks):\n"
            "    np.bitwise_or.at(bytes_, offs, masks)\n"
            "    return np.unpackbits(bytes_, bitorder='little')\n"
        )
        findings = lint_source(source, path=self.OUTSIDE, select={"RPR013"})
        assert sorted(codes(findings)) == ["RPR013", "RPR013"]

    def test_trigger_from_import_alias(self):
        source = (
            "from numpy import packbits as pb\n"
            "def pack(rows):\n"
            "    return pb(rows, axis=1, bitorder='little')\n"
        )
        findings = lint_source(source, path=self.OUTSIDE, select={"RPR013"})
        assert codes(findings) == ["RPR013"]

    def test_pass_inside_kernels_package(self):
        source = (
            "import numpy as np\n"
            "def bmm_accumulate(out, table, a8, t):\n"
            "    np.bitwise_or(out, table[a8[:, t]], out=out)\n"
        )
        assert (
            lint_source(source, path="src/repro/kernels/bmm.py", select={"RPR013"})
            == []
        )

    def test_pass_inside_bitset_layout_layer(self):
        source = (
            "import numpy as np\n"
            "def pack_rows(rows):\n"
            "    return np.packbits(rows, axis=-1, bitorder='little')\n"
        )
        assert (
            lint_source(
                source, path="src/repro/network/bitset.py", select={"RPR013"}
            )
            == []
        )

    def test_pass_non_bit_numpy_calls_outside(self):
        source = (
            "import numpy as np\n"
            "def stats(a, b):\n"
            "    return np.logical_and(a, b).sum() + np.count_nonzero(a)\n"
        )
        assert lint_source(source, path=self.OUTSIDE, select={"RPR013"}) == []


class TestRepoIsClean:
    def test_src_tree_lints_clean(self):
        findings = lint_paths([REPO_SRC])
        assert findings == [], "\n".join(f.render() for f in findings)


class TestCli:
    def test_clean_tree_exits_zero(self):
        out = io.StringIO()
        assert lint_main([str(REPO_SRC)], out=out) == 0
        assert "0 findings" in out.getvalue()

    def test_findings_exit_one(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(net):\n    net.alive[0] = False\n")
        out = io.StringIO()
        assert lint_main([str(bad)], out=out) == 1
        assert "RPR001" in out.getvalue()

    def test_json_format(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import warnings\ndef f():\n    warnings.warn('x')\n")
        out = io.StringIO()
        assert lint_main([str(bad), "--format=json"], out=out) == 1
        payload = json.loads(out.getvalue())
        assert payload["counts"] == {"RPR005": 1}
        assert payload["findings"][0]["code"] == "RPR005"
        assert len(payload["rules"]) >= 8

    def test_select_filters(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import warnings\ndef f():\n    warnings.warn('x')\n")
        out = io.StringIO()
        assert lint_main([str(bad), "--select", "RPR001"], out=out) == 0

    def test_unknown_select_exits_two(self):
        assert lint_main(["--select", "RPR999"], out=io.StringIO()) == 2

    def test_list_rules(self):
        out = io.StringIO()
        assert lint_main(["--list-rules"], out=out) == 0
        listing = out.getvalue()
        for rule in all_rules():
            assert rule.code in listing

    def test_syntax_error_exits_two(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        assert lint_main([str(bad)], out=io.StringIO()) == 2
