"""Tests for the MasPar engine: instrumentation, timing model, memory."""

from __future__ import annotations

import numpy as np
import pytest

from repro import MasParEngine, VectorEngine
from repro.grammar.builtin import program_grammar
from repro.grammar.builtin.english import english_grammar
from repro.maspar import CostModel
from repro.parsec.timing import (
    PAPER_TOY_PARSE_SECONDS,
    calibration_factor,
    step_function_seconds,
    virtualization_units,
)
from repro.workloads import toy_sentence


@pytest.fixture(scope="module")
def toy_result():
    return MasParEngine().parse(program_grammar(), "The program runs")


class TestInstrumentation:
    def test_processor_count_is_q2n4(self, toy_result):
        assert toy_result.stats.processors == 324

    def test_cycles_positive_and_reported(self, toy_result):
        assert toy_result.stats.extra["cycles"] > 0
        assert toy_result.stats.extra["virtualization_factor"] == 1

    def test_per_constraint_cycles_one_entry_per_binary(self, toy_result):
        cycles = toy_result.stats.extra["constraint_cycles"]
        assert len(cycles) == len(program_grammar().binary_constraints)
        assert all(c > 0 for c in cycles)

    def test_memory_within_pe_limits(self, toy_result):
        assert 0 < toy_result.stats.extra["bytes_per_pe"] <= 16 * 1024

    def test_op_counts_recorded(self, toy_result):
        ops = toy_result.stats.extra["ops"]
        assert ops.scan > 0  # scanOr/scanAnd ran
        assert ops.broadcast >= program_grammar().k  # one per constraint
        assert ops.router > 0

    def test_parallel_steps_total(self, toy_result):
        assert toy_result.stats.parallel_steps == toy_result.stats.extra["ops"].total()


class TestTimingModel:
    def test_calibrated_anchor(self, toy_result):
        assert toy_result.stats.simulated_seconds == pytest.approx(
            PAPER_TOY_PARSE_SECONDS, rel=1e-6
        )

    def test_calibration_factor_cached_and_positive(self):
        f1 = calibration_factor()
        f2 = calibration_factor()
        assert f1 == f2 > 0

    def test_uncalibrated_engine(self):
        raw = MasParEngine(calibrate=False).parse(program_grammar(), "The program runs")
        assert raw.stats.extra["calibration_factor"] == 1.0
        assert raw.stats.simulated_seconds != pytest.approx(PAPER_TOY_PARSE_SECONDS)

    def test_step_function_formula(self):
        assert step_function_seconds(3) == pytest.approx(0.15)
        assert step_function_seconds(10) == pytest.approx(0.45)
        assert step_function_seconds(9) == pytest.approx(0.30)

    def test_virtualization_units_monotone(self):
        units = [virtualization_units(n) for n in range(1, 20)]
        assert units == sorted(units)

    def test_virtualized_sentence_costs_more(self):
        engine = MasParEngine()
        small = engine.parse(program_grammar(), toy_sentence(8))
        big = engine.parse(program_grammar(), toy_sentence(9))
        assert big.stats.extra["virtualization_factor"] == 2
        assert big.stats.simulated_seconds > 1.5 * small.stats.simulated_seconds

    def test_custom_cost_model(self):
        slow = CostModel(scan_cycles_per_stage=320)
        result = MasParEngine(cost=slow, calibrate=False).parse(
            program_grammar(), "The program runs"
        )
        base = MasParEngine(calibrate=False).parse(program_grammar(), "The program runs")
        assert result.stats.extra["cycles"] > base.stats.extra["cycles"]


class TestBehaviour:
    def test_filter_limit_zero_skips_final_filtering(self):
        engine = MasParEngine()
        bounded = engine.parse(program_grammar(), "The program runs", filter_limit=0)
        assert bounded.stats.filtering_iterations == 0

    def test_ambiguous_words_settle_identically(self):
        grammar = english_grammar()
        sentence = "the saw sees the duck"
        a = MasParEngine().parse(grammar, sentence)
        b = VectorEngine().parse(grammar, sentence)
        np.testing.assert_array_equal(a.network.alive, b.network.alive)
        np.testing.assert_array_equal(a.network.matrix, b.network.matrix)

    def test_rejected_sentence(self):
        result = MasParEngine().parse(program_grammar(), "program the runs")
        assert not result.locally_consistent

    def test_single_word(self):
        result = MasParEngine().parse(program_grammar(), "program")
        ref = VectorEngine().parse(program_grammar(), "program")
        np.testing.assert_array_equal(result.network.alive, ref.network.alive)
