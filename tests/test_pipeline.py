"""The compile/bind/execute pipeline: sessions, templates, caches.

The load-bearing invariants:

* a network bound from a *cached* template is bit-identical to one
  built cold by ``ConstraintNetwork(grammar, sentence)``;
* ``parse_many`` equals a loop of one-shot ``ParserEngine.parse`` calls
  (networks and every deterministic stat);
* the template LRU stays bounded and evicts oldest-first;
* back-to-back parses through one session share no mutable state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ConstraintNetwork,
    ParserSession,
    VectorEngine,
    available_engines,
    compile_grammar,
    create_engine,
    register_engine,
)
from repro.engines.base import EngineStats, ParserEngine
from repro.errors import ReproError
from repro.grammar.builtin import english_grammar, program_grammar
from repro.pipeline.cache import LRUCache
from repro.workloads import sentence_of_length

DETERMINISTIC_STATS = (
    "engine",
    "unary_checks",
    "pair_checks",
    "role_values_killed",
    "matrix_entries_zeroed",
    "consistency_passes",
    "filtering_iterations",
    "parallel_steps",
    "processors",
)


def assert_same_network(a: ConstraintNetwork, b: ConstraintNetwork) -> None:
    assert np.array_equal(a.alive, b.alive)
    assert np.array_equal(a.matrix, b.matrix)
    for field in ("pos", "role_kind", "cat", "lab", "mod", "role_index"):
        assert np.array_equal(getattr(a, field), getattr(b, field)), field
    assert a.role_values == b.role_values
    assert a.role_slices == b.role_slices


class TestTemplateCache:
    def test_cached_template_binds_bit_identical_networks(self):
        grammar = english_grammar()
        session = ParserSession(grammar, engine="vector")
        words = ["the", "dog", "sees", "the", "cat"]

        session.parse(words)  # populate the template cache
        assert session.cache_info()["misses"] == 1

        warm = session.network(words)  # bound from the cached template
        assert session.cache_info()["hits"] >= 1
        cold = ConstraintNetwork(grammar, grammar.tokenize(words))
        assert_same_network(warm, cold)

    def test_shapes_share_templates_but_not_sentences(self):
        grammar = english_grammar()
        session = ParserSession(grammar, engine="vector")
        # Same length, same category signature, different words.
        a = session.network(["the", "dog", "runs"])
        b = session.network(["the", "cat", "sleeps"])
        assert a.template is b.template
        assert a.sentence.words != b.sentence.words
        # Per-sentence state is freshly allocated, never aliased.
        assert a.alive is not b.alive
        assert a.matrix is not b.matrix

    def test_hit_counting(self):
        session = ParserSession(english_grammar(), engine="vector")
        for _ in range(3):
            session.parse(["the", "dog", "runs"])
        info = session.cache_info()
        assert info["misses"] == 1
        assert info["hits"] == 2

    def test_template_arrays_are_frozen(self):
        session = ParserSession(english_grammar(), engine="vector")
        template = session.template_for(["the", "dog", "runs"])
        with pytest.raises(ValueError):
            template.base_matrix[0, 0] = False
        with pytest.raises(ValueError):
            template.pos[0] = 99


class TestLRUBounds:
    def test_eviction_bounds_cache_size(self):
        session = ParserSession(english_grammar(), engine="vector", template_cache_size=2)
        for n in (3, 5, 7, 8):  # four distinct shapes through a 2-slot cache
            session.parse(sentence_of_length(n))
        info = session.cache_info()
        assert info["size"] <= 2
        assert info["evictions"] == 2
        assert session.cached_bytes() > 0

    def test_lru_cache_evicts_oldest_first(self):
        cache: LRUCache[int] = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a"; "b" is now oldest
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache
        info = cache.info()
        assert info == {"size": 2, "maxsize": 2, "hits": 1, "misses": 0, "evictions": 1}

    def test_clear_caches(self):
        session = ParserSession(english_grammar(), engine="vector")
        session.parse(["the", "dog", "runs"])
        assert session.cache_info()["size"] == 1
        session.clear_caches()
        assert session.cache_info()["size"] == 0

    def test_eviction_order_is_lru_not_fifo(self):
        cache: LRUCache[int] = LRUCache(3)
        for key in ("a", "b", "c"):
            cache.put(key, 1)
        cache.get("a")  # access order is now b < c < a
        cache.put("b", 2)  # refresh b: c is now least recent
        cache.put("d", 4)
        assert "c" not in cache
        assert all(key in cache for key in ("a", "b", "d"))

    def test_maxsize_one_keeps_only_newest(self):
        cache: LRUCache[int] = LRUCache(1)
        cache.put("a", 1)
        cache.put("b", 2)
        assert "a" not in cache and cache.get("b") == 2
        assert cache.info()["evictions"] == 1

    def test_maxsize_zero_disables_caching(self):
        cache: LRUCache[int] = LRUCache(0)
        cache.put("a", 1)
        assert len(cache) == 0
        assert cache.get("a") is None
        info = cache.info()
        assert info["misses"] == 1 and info["hits"] == 0 and info["evictions"] == 0
        # A session with caching disabled still parses correctly.
        session = ParserSession(english_grammar(), engine="vector", template_cache_size=0)
        for _ in range(2):
            assert session.parse(["the", "dog", "runs"]).locally_consistent
        assert session.cache_info() == {
            "size": 0, "maxsize": 0, "hits": 0, "misses": 2, "evictions": 0,
        }

    def test_negative_maxsize_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_counters_for_service_metrics_reuse(self):
        """hits/misses/evictions are public — the service snapshot sums them."""
        cache: LRUCache[int] = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert (cache.hits, cache.misses, cache.evictions) == (1, 1, 0)

    def test_parse_many_groups_shapes_before_parsing(self):
        """Shape pre-sort: a shape-interleaved batch through a 1-slot
        template cache misses once per *distinct* shape, not once per
        alternation — and results still come back in arrival order."""
        session = ParserSession(english_grammar(), engine="vector", template_cache_size=1)
        sentences = [sentence_of_length(3 if i % 2 == 0 else 5) for i in range(8)]
        results = session.parse_many(sentences)
        info = session.cache_info()
        assert info["misses"] == 2  # one per distinct shape, not 8
        assert info["evictions"] == 1
        # Arrival order is restored after grouped execution.
        for result, sentence in zip(results, sentences, strict=True):
            assert result.network.n_words == len(sentence)

    def test_on_evict_fires_on_displacement_and_clear(self):
        evicted: list[int] = []
        cache: LRUCache[int] = LRUCache(2, on_evict=evicted.append)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # LRU eviction of "a"
        assert evicted == [1]
        cache.put("b", 20)  # displacement of the old value
        assert evicted == [1, 2]
        cache.clear()
        assert sorted(evicted) == [1, 2, 3, 20]

    def test_pickled_cache_starts_empty(self):
        """Fork/pickle contract: a cache crossing a process boundary
        arrives empty (entries may hold process-local resources)."""
        import pickle

        cache: LRUCache[int] = LRUCache(4, on_evict=lambda v: None)
        cache.put("a", 1)
        cache.get("a")
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.maxsize == 4
        assert len(clone) == 0
        assert (clone.hits, clone.misses, clone.evictions) == (0, 0, 0)
        clone.put("b", 2)  # still a working cache after the round-trip
        assert clone.get("b") == 2


class TestSessionEquivalence:
    @pytest.mark.parametrize("engine", ["serial", "vector", "pram"])
    def test_parse_many_equals_loop_of_one_shot_parses(self, engine):
        grammar = english_grammar()
        sentences = [
            ["the", "dog", "runs"],
            ["the", "cat", "sleeps"],  # same shape: exercises the warm path
            ["dogs", "bark"],
            ["the", "dog", "sees", "the", "cat"],
        ]
        batch = ParserSession(grammar, engine=engine).parse_many(sentences)
        for sentence, warm in zip(sentences, batch, strict=True):
            cold = create_engine(engine).parse(grammar, sentence)
            assert_same_network(warm.network, cold.network)
            assert warm.locally_consistent == cold.locally_consistent
            assert warm.ambiguous == cold.ambiguous
            for stat in DETERMINISTIC_STATS:
                assert getattr(warm.stats, stat) == getattr(cold.stats, stat), stat

    def test_no_state_leaks_between_parses(self):
        session = ParserSession(english_grammar(), engine="vector")
        first = session.parse(["the", "dog", "runs"])
        session.parse(["the", "old", "cat", "sleeps"])  # different shape in between
        session.parse(["dogs", "bark"])
        again = session.parse(["the", "dog", "runs"])
        assert_same_network(first.network, again.network)
        for stat in DETERMINISTIC_STATS:
            assert getattr(first.stats, stat) == getattr(again.stats, stat), stat

    def test_engine_parse_wrapper_matches_session(self):
        grammar = program_grammar()
        words = ["The", "program", "runs"]
        wrapped = VectorEngine().parse(grammar, words)
        direct = ParserSession(grammar, engine="vector").parse(words)
        assert_same_network(wrapped.network, direct.network)

    def test_engine_parse_wrapper_warns_deprecated(self):
        grammar = program_grammar()
        with pytest.warns(DeprecationWarning, match="ParserSession"):
            VectorEngine().parse(grammar, ["The", "program", "runs"])

    def test_session_filter_limit_default_and_override(self):
        session = ParserSession(english_grammar(), engine="vector", filter_limit=0)
        limited = session.parse(["the", "dog", "runs"])
        assert limited.stats.filtering_iterations == 0
        # An explicit argument overrides the session default (None = to
        # fixpoint, which must match the unlimited one-shot path).
        unlimited = session.parse(["the", "dog", "runs"], filter_limit=None)
        cold = VectorEngine().parse(english_grammar(), ["the", "dog", "runs"])
        assert np.array_equal(unlimited.network.alive, cold.network.alive)
        assert np.array_equal(unlimited.network.matrix, cold.network.matrix)


class TestCompiledGrammar:
    def test_compile_is_cached_per_grammar_object(self):
        english = english_grammar()
        program = program_grammar()
        assert compile_grammar(english) is compile_grammar(english)
        assert compile_grammar(program) is not compile_grammar(english)
        # Sessions share the per-grammar compilation.
        assert ParserSession(english).compiled is compile_grammar(english)

    def test_partition_matches_grammar(self):
        grammar = english_grammar()
        compiled = compile_grammar(grammar)
        assert [c.name for c in compiled.unary] == [
            c.name for c in grammar.unary_constraints
        ]
        assert [c.name for c in compiled.binary] == [
            c.name for c in grammar.binary_constraints
        ]
        assert all(c.arity == 1 for c in compiled.unary)
        assert all(c.arity == 2 for c in compiled.binary)


class TestRegistry:
    def test_builtin_engines_resolve(self):
        names = available_engines()
        for expected in ("serial", "serial-exhaustive", "vector", "pram", "maspar", "mesh"):
            assert expected in names
        assert create_engine("vector").name == "vector"

    def test_instance_passes_through(self):
        engine = VectorEngine()
        assert create_engine(engine) is engine

    def test_unknown_engine_raises(self):
        with pytest.raises(ReproError, match="unknown engine"):
            create_engine("quantum")

    def test_register_custom_engine(self):
        class NullEngine(ParserEngine):
            name = "null-test"

            def run(self, network, *, compiled=None, filter_limit=None, trace=None):
                return EngineStats()

        register_engine("null-test", NullEngine)
        try:
            assert isinstance(create_engine("null-test"), NullEngine)
            assert "null-test" in available_engines()
        finally:
            from repro.engines import registry

            registry._REGISTRY.pop("null-test", None)
