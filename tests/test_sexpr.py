"""Unit tests for the s-expression tokenizer and reader."""

from __future__ import annotations

import pytest

from repro.errors import SexprSyntaxError
from repro.sexpr import Atom, SList, parse_all, parse_one, tokenize
from repro.sexpr.nodes import sexpr_to_str
from repro.sexpr.tokenizer import tokenize_all


class TestTokenizer:
    def test_simple_tokens(self):
        tokens = tokenize_all("(eq x 3)")
        assert [t.kind for t in tokens] == ["(", "symbol", "symbol", "int", ")"]
        assert tokens[3].as_int() == 3

    def test_negative_integer(self):
        tokens = tokenize_all("-42")
        assert tokens[0].kind == "int"
        assert tokens[0].as_int() == -42

    def test_plus_prefixed_integer(self):
        assert tokenize_all("+7")[0].as_int() == 7

    def test_lone_sign_is_a_symbol(self):
        assert tokenize_all("-")[0].kind == "symbol"

    def test_symbols_keep_case(self):
        tokens = tokenize_all("SUBJ governor Root")
        assert [t.text for t in tokens] == ["SUBJ", "governor", "Root"]

    def test_line_and_column_tracking(self):
        tokens = tokenize_all("(a\n  bcd)")
        bcd = [t for t in tokens if t.text == "bcd"][0]
        assert (bcd.line, bcd.column) == (2, 3)

    def test_comments_are_skipped(self):
        tokens = tokenize_all("; header\n(a ; inline\n b)")
        assert [t.text for t in tokens] == ["(", "a", "b", ")"]

    def test_quote_is_ignored(self):
        tokens = tokenize_all("'SUBJ")
        assert [t.text for t in tokens] == ["SUBJ"]

    def test_string_literals_rejected(self):
        with pytest.raises(SexprSyntaxError):
            tokenize_all('(eq x "noun")')

    def test_as_int_on_symbol_raises(self):
        with pytest.raises(SexprSyntaxError):
            tokenize_all("abc")[0].as_int()

    def test_empty_input(self):
        assert tokenize_all("") == []

    def test_tokenize_is_lazy(self):
        stream = tokenize("(a b)")
        assert next(stream).kind == "("


class TestReader:
    def test_parse_atom(self):
        node = parse_one("SUBJ")
        assert isinstance(node, Atom)
        assert node.symbol() == "SUBJ"

    def test_parse_integer_atom(self):
        node = parse_one("17")
        assert isinstance(node, Atom)
        assert node.value == 17

    def test_parse_nested_list(self):
        node = parse_one("(if (eq (lab x) SUBJ) (gt (pos x) 1))")
        assert isinstance(node, SList)
        assert node.head_symbol == "if"
        assert len(node) == 3
        inner = node[1]
        assert isinstance(inner, SList)
        assert inner.head_symbol == "eq"

    def test_head_symbol_is_lowercased(self):
        node = parse_one("(IF a b)")
        assert isinstance(node, SList)
        assert node.head_symbol == "if"

    def test_empty_list(self):
        node = parse_one("()")
        assert isinstance(node, SList)
        assert len(node) == 0
        assert node.head_symbol is None

    def test_unbalanced_open_raises(self):
        with pytest.raises(SexprSyntaxError, match="missing"):
            parse_one("(a (b c)")

    def test_unbalanced_close_raises(self):
        with pytest.raises(SexprSyntaxError, match="unbalanced"):
            parse_one(")")

    def test_trailing_content_raises(self):
        with pytest.raises(SexprSyntaxError, match="trailing"):
            parse_one("(a) (b)")

    def test_empty_source_raises(self):
        with pytest.raises(SexprSyntaxError):
            parse_one("   ; just a comment")

    def test_parse_all_multiple_forms(self):
        nodes = parse_all("(a) b (c d)")
        assert len(nodes) == 3

    def test_parse_all_empty(self):
        assert parse_all("") == []

    def test_round_trip(self):
        source = "(if (and (eq (lab x) SUBJ) (lt (pos x) 3)) (eq (mod x) nil))"
        assert sexpr_to_str(parse_one(source)) == source

    def test_positions_recorded(self):
        node = parse_one("\n  (a)")
        assert isinstance(node, SList)
        assert node.line == 2
        assert node.column == 3
