"""Smoke tests: every example script must run clean as a subprocess."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), f"{script.name} produced no output"


def test_examples_are_discovered():
    names = {path.stem for path in EXAMPLES}
    assert {
        "quickstart",
        "english_ambiguity",
        "copy_language",
        "maspar_demo",
        "incremental_speech",
        "formal_languages",
    } <= names
