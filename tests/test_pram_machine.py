"""Unit tests for the CRCW P-RAM simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MachineError
from repro.pram import CRCWPram


class TestBasics:
    def test_alloc_and_host_io(self):
        pram = CRCWPram()
        pram.alloc("a", (4,))
        pram.host_write("a", np.array([1, 2, 3, 4]))
        assert list(pram.host_read("a")) == [1, 2, 3, 4]

    def test_double_alloc_rejected(self):
        pram = CRCWPram()
        pram.alloc("a", (1,))
        with pytest.raises(MachineError, match="already"):
            pram.alloc("a", (1,))

    def test_step_counts(self):
        pram = CRCWPram()
        pram.alloc("a", (8,))
        pram.step(8, lambda ctx: ctx.write("a", ctx.pid, ctx.pid))
        pram.step(4, lambda ctx: None)
        assert pram.stats.steps == 2
        assert pram.stats.peak_processors == 8
        assert pram.stats.total_work == 12

    def test_zero_processors_rejected(self):
        pram = CRCWPram()
        with pytest.raises(MachineError):
            pram.step(0, lambda ctx: None)

    def test_read_unallocated_rejected(self):
        pram = CRCWPram()
        with pytest.raises(MachineError, match="unallocated"):
            pram.step(1, lambda ctx: ctx.read("nope", 0))

    def test_write_unallocated_rejected(self):
        pram = CRCWPram()
        with pytest.raises(MachineError, match="unallocated"):
            pram.step(1, lambda ctx: ctx.write("nope", 0, 1))


class TestSynchronousSemantics:
    def test_reads_see_prestep_state(self):
        """The classic parallel swap: a[i] <- a[i ^ 1] works in one step."""
        pram = CRCWPram()
        pram.alloc("a", (4,))
        pram.host_write("a", np.array([10, 20, 30, 40]))

        def swap(ctx):
            ctx.write("a", ctx.pid, ctx.read("a", ctx.pid ^ 1))

        pram.step(4, swap)
        assert list(pram.host_read("a")) == [20, 10, 40, 30]

    def test_writes_not_visible_within_step(self):
        pram = CRCWPram()
        pram.alloc("a", (2,))

        seen = []

        def program(ctx):
            if ctx.pid == 0:
                ctx.write("a", 1, 99)
            else:
                seen.append(ctx.read("a", 1))

        pram.step(2, program)
        assert seen == [0]
        assert pram.host_read("a")[1] == 99


class TestWritePolicies:
    def test_common_accepts_agreeing_writers(self):
        pram = CRCWPram(policy="common")
        pram.alloc("flag", (1,))
        pram.step(16, lambda ctx: ctx.write("flag", 0, 1))
        assert pram.host_read("flag")[0] == 1

    def test_common_rejects_conflicting_writers(self):
        pram = CRCWPram(policy="common")
        pram.alloc("c", (1,))
        with pytest.raises(MachineError, match="COMMON"):
            pram.step(2, lambda ctx: ctx.write("c", 0, ctx.pid))

    def test_arbitrary_picks_one_writer(self):
        pram = CRCWPram(policy="arbitrary", seed=7)
        pram.alloc("c", (1,))
        pram.step(4, lambda ctx: ctx.write("c", 0, ctx.pid * 10))
        assert pram.host_read("c")[0] in (0, 10, 20, 30)

    def test_arbitrary_is_reproducible(self):
        outcomes = []
        for _ in range(2):
            pram = CRCWPram(policy="arbitrary", seed=123)
            pram.alloc("c", (1,))
            pram.step(8, lambda ctx: ctx.write("c", 0, ctx.pid))
            outcomes.append(int(pram.host_read("c")[0]))
        assert outcomes[0] == outcomes[1]

    def test_unknown_policy_rejected(self):
        with pytest.raises(MachineError, match="policy"):
            CRCWPram(policy="priority-ish")


class TestConstantTimeIdioms:
    def test_parallel_or_in_one_step(self):
        """The paper's O(1) OR: every 1-holder writes 1 to the result cell."""
        pram = CRCWPram(policy="common")
        bits = np.array([0, 0, 1, 0, 1, 0, 0, 0])
        pram.alloc("bits", (8,))
        pram.alloc("result", (1,))
        pram.host_write("bits", bits)

        def par_or(ctx):
            if ctx.read("bits", ctx.pid):
                ctx.write("result", 0, 1)

        pram.step(8, par_or)
        assert pram.stats.steps == 1
        assert pram.host_read("result")[0] == 1

    def test_parallel_and_in_one_step(self):
        """AND via De Morgan: any 0-holder clears the (preset) result."""
        pram = CRCWPram(policy="common")
        bits = np.array([1, 1, 0, 1])
        pram.alloc("bits", (4,))
        pram.alloc("result", (1,), fill=1)
        pram.host_write("bits", bits)

        def par_and(ctx):
            if not ctx.read("bits", ctx.pid):
                ctx.write("result", 0, 0)

        pram.step(4, par_and)
        assert pram.host_read("result")[0] == 0
