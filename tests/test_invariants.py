"""Regression tests for the packed-core discipline repro-lint enforces.

The linter (RPR001/RPR002) demands that byte-mutating engines bracket
their work with ``materialize_bool()``/``repack()``; these tests pin the
*runtime* consequences: every engine hands the network back packed (even
when the parse raises), frozen views reject writes, and the
materialize/repack round trip is bit-exact under interleaved mutation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ParserSession, create_engine
from repro.grammar.builtin import program_grammar

ALL_ENGINES = ["serial", "serial-exhaustive", "vector", "vector-bool", "pram", "maspar", "mesh"]


@pytest.fixture(scope="module")
def grammar():
    return program_grammar()


class TestEnginesLeaveNetworksPacked:
    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_parse_returns_packed_network(self, grammar, engine):
        session = ParserSession(grammar, engine=create_engine(engine))
        result = session.parse("The program runs")
        assert result.network.packed_active, (
            f"{engine} left the network in boolean mode; every engine must "
            "repack before returning (RPR002)"
        )

    @pytest.mark.parametrize("engine", ["serial", "vector-bool", "pram"])
    def test_raising_trace_hook_still_repacks(self, grammar, engine):
        """The repack bracket must be a finally, not a tail call."""
        session = ParserSession(grammar, engine=create_engine(engine))

        class Boom(RuntimeError):
            pass

        captured = {}

        def exploding_trace(event, network):
            captured["network"] = network
            if event == "unary-done":
                raise Boom(event)

        with pytest.raises(Boom):
            session.parse("The program runs", trace=exploding_trace)
        assert captured["network"].packed_active, (
            f"{engine} left the network in boolean mode after a mid-parse "
            "exception; the materialize/repack bracket must be try/finally"
        )

    def test_byte_engine_reports_boolean_footprint(self, grammar):
        """The memory benchmark's contract: vector-bool reports the bytes
        of its *working* representation, not the packed hand-back."""
        packed = ParserSession(grammar, engine="vector").parse("The program runs")
        unpacked = ParserSession(grammar, engine="vector-bool").parse("The program runs")
        ratio = unpacked.stats.extra["network_bytes"] / packed.stats.extra["network_bytes"]
        # Were vector-bool reporting its post-repack (packed) state the
        # ratio would be 1.0; >2x proves it reported the byte working set.
        # (bench_memory asserts >=4x at n=10, where padding amortizes.)
        assert ratio > 2.0, f"expected byte-vs-bit footprint ratio > 2, got {ratio:.2f}x"


class TestFrozenViews:
    def test_alive_view_write_raises(self, grammar):
        network = ParserSession(grammar, engine="vector").parse("The program runs").network
        assert network.packed_active
        with pytest.raises(ValueError, match="read-only"):
            network.alive[0] = False

    def test_matrix_view_write_raises(self, grammar):
        network = ParserSession(grammar, engine="vector").parse("The program runs").network
        with pytest.raises(ValueError, match="read-only"):
            network.matrix[0, 0] = True

    def test_views_thaw_in_bool_mode_and_refreeze_after(self, grammar):
        network = ParserSession(grammar, engine="vector").parse("The program runs").network
        network.materialize_bool()
        network.alive[0] = network.alive[0]  # writable: no raise
        network.repack()
        assert not network.alive.flags.writeable
        assert not network.matrix.flags.writeable


class TestMaterializeRepackRoundTrip:
    def test_roundtrip_bit_identical_after_interleaved_mutations(self, grammar):
        """Clear bits through byte writes, helpers, and reads in any
        interleaving: repack must reproduce exactly the boolean state."""
        network = ParserSession(grammar, engine="vector").parse("The program runs").network
        rng = np.random.default_rng(7)

        network.materialize_bool()
        alive, matrix = network.alive, network.matrix
        for _ in range(5):
            ones = np.argwhere(matrix)
            if len(ones):
                a, b = ones[rng.integers(len(ones))]
                matrix[a, b] = False  # byte-level clear
                matrix[b, a] = False
            live = np.nonzero(alive)[0]
            if len(live) > 1:
                network.kill(live[-1:])  # helper-level clear
            _ = network.alive_count()  # interleaved reads
            _ = network.domain_sizes()
        expected_alive = alive.copy()
        expected_matrix = matrix.copy()

        network.repack()
        assert network.packed_active
        np.testing.assert_array_equal(network.alive, expected_alive)
        np.testing.assert_array_equal(network.matrix, expected_matrix)

        # A second round trip is stable bit-for-bit.
        alive_bits = network.alive_bits.copy()
        matrix_bits = network.matrix_bits.copy()
        network.materialize_bool()
        network.repack()
        np.testing.assert_array_equal(network.alive_bits, alive_bits)
        np.testing.assert_array_equal(network.matrix_bits, matrix_bits)
