"""Tests for incremental (contextual) constraint application — section 1.5."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Constraint, VectorEngine, count_parses, extract_parses
from repro.grammar.builtin.english import english_grammar
from repro.propagation import apply_constraint, apply_constraints

SENTENCE = "the man sees the woman with the telescope"


@pytest.fixture
def ambiguous_network():
    grammar = english_grammar()
    return grammar, VectorEngine().parse(grammar, SENTENCE).network


def pp_to_root(grammar) -> Constraint:
    return Constraint.parse(
        """
        (if (and (eq (lab x) PP)
                 (eq (role y) governor)
                 (eq (pos y) (mod x)))
            (eq (lab y) ROOT))
        """,
        grammar.symbols,
        name="pp-to-root",
    )


class TestApplyConstraint:
    def test_binary_collapses_ambiguity(self, ambiguous_network):
        grammar, network = ambiguous_network
        assert count_parses(network) == 3
        apply_constraint(network, pp_to_root(grammar))
        parses = extract_parses(network, limit=None)
        assert len(parses) == 1
        assert parses[0].heads(0)[6] == 3  # "with" -> "sees"

    def test_unary_constraint(self, ambiguous_network):
        grammar, network = ambiguous_network
        # Force the PP's modifiee directly (a unary contextual cue).
        cue = Constraint.parse(
            "(if (eq (lab x) PP) (eq (mod x) 5))", grammar.symbols, name="cue"
        )
        eliminated = apply_constraint(network, cue)
        assert eliminated > 0
        parses = extract_parses(network, limit=None)
        assert len(parses) == 1
        assert parses[0].heads(0)[6] == 5

    def test_returns_total_eliminations(self, ambiguous_network):
        grammar, network = ambiguous_network
        before = int(network.alive.sum())
        eliminated = apply_constraint(network, pp_to_root(grammar))
        assert eliminated == before - int(network.alive.sum())

    def test_equivalent_to_reparse_with_extended_grammar(self, ambiguous_network):
        """Applying C incrementally == parsing with grammar + C."""
        grammar, network = ambiguous_network
        apply_constraint(network, pp_to_root(grammar))

        from repro.grammar.builtin.english import english_grammar as build

        extended = build.__wrapped__()  # fresh, uncached grammar instance
        extended.constraints.append(pp_to_root(extended))
        reference = VectorEngine().parse(extended, SENTENCE).network
        np.testing.assert_array_equal(network.alive, reference.alive)
        np.testing.assert_array_equal(network.matrix, reference.matrix)

    def test_contradictory_constraint_rejects(self, ambiguous_network):
        grammar, network = ambiguous_network
        impossible = Constraint.parse(
            "(if (eq (role x) governor) (eq (pos x) 99))",
            grammar.symbols,
            name="impossible",
        )
        apply_constraint(network, impossible)
        assert not network.all_domains_nonempty()
        assert count_parses(network) == 0

    def test_idempotent(self, ambiguous_network):
        grammar, network = ambiguous_network
        constraint = pp_to_root(grammar)
        apply_constraint(network, constraint)
        again = apply_constraint(network, constraint)
        assert again == 0


class TestApplyConstraints:
    def test_staged_sets_accumulate(self, ambiguous_network):
        grammar, network = ambiguous_network
        stage = [
            pp_to_root(grammar),
            Constraint.parse(
                "(if (eq (lab x) PP) (gt (mod x) 1))", grammar.symbols, name="extra"
            ),
        ]
        total = apply_constraints(network, stage)
        assert total >= 1
        assert count_parses(network) == 1

    def test_empty_set_is_noop(self, ambiguous_network):
        _, network = ambiguous_network
        assert apply_constraints(network, []) == 0
