"""PE-allocation tests against paper Figures 9-13."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network import ConstraintNetwork
from repro.parsec import build_layout, virtualization_units
from repro.parsec.layout import PELayout


@pytest.fixture
def layout(toy_grammar) -> PELayout:
    net = ConstraintNetwork(toy_grammar, toy_grammar.tokenize("The program runs"))
    return build_layout(net)


class TestFigure11:
    def test_324_pes_total(self, layout):
        """"324 PEs total" for The program runs (q=2, n=3)."""
        assert layout.n_pes == 324
        assert layout.n_pes == (2 * 3) ** 2 * 3**2  # (qn)^2 * n^2

    def test_pes_per_word_and_role(self, layout):
        """"PEs number 0 thru 107" belong to The; 0-53 to its governor."""
        # Column role 0 = (The, governor) owns PEs 0..53.
        assert set(layout.col_role[:54]) == {0}
        # Column roles of word "The" (roles 0 and 1) own PEs 0..107.
        assert set(layout.col_role[:108]) == {0, 1}
        assert layout.col_role[108] == 2  # program's governor starts at 108

    def test_self_arc_pes_disabled(self, layout):
        """"processors 0, 1, and 2 are disabled because they represent an
        arc from a role to itself"."""
        assert not layout.enabled[0:3].any()
        # And in general: disabled exactly when row role == column role.
        np.testing.assert_array_equal(
            layout.enabled, layout.row_role != layout.col_role
        )
        # 1/R of all PEs are disabled.
        assert int((~layout.enabled).sum()) == layout.n_pes // layout.n_roles

    def test_processor_9_assignment(self, layout):
        """Paper: PE 9's column role values belong to The (id < 107), role
        governor, modifiee nil; its row role values belong to program's
        needs."""
        assert layout.col_role[9] == 0  # The, governor
        assert layout.col_mod_idx[9] == 0  # nil comes first
        assert layout.mod_value[0, 0] == 0  # nil
        assert layout.role_pos[layout.row_role[9]] == 2  # program
        assert layout.role_kind[layout.row_role[9]] == 1  # needs

    def test_pe_index_round_trip(self, layout):
        for pe in (0, 9, 107, 108, 323):
            again = layout.pe_index(
                int(layout.col_role[pe]),
                int(layout.col_mod_idx[pe]),
                int(layout.row_role[pe]),
                int(layout.row_mod_idx[pe]),
            )
            assert again == pe


class TestFigure12Segments:
    def test_fine_segments_span_n_pes(self, layout):
        """scanOr segments: one per (col role, col mod, row role), n PEs."""
        _, counts = np.unique(layout.fine_seg, return_counts=True)
        assert (counts == 3).all()
        assert len(counts) == 6 * 3 * 6

    def test_coarse_segments_span_rn_pes(self, layout):
        """scanAnd segments: one per column role value group, R*n PEs."""
        _, counts = np.unique(layout.coarse_seg, return_counts=True)
        assert (counts == 18).all()
        assert len(counts) == 6 * 3

    def test_segments_are_contiguous(self, layout):
        assert (np.diff(layout.fine_seg) >= 0).all()
        assert (np.diff(layout.coarse_seg) >= 0).all()

    def test_fine_nests_in_coarse(self, layout):
        # Every fine segment lies inside exactly one coarse segment.
        for fine in np.unique(layout.fine_seg):
            mask = layout.fine_seg == fine
            assert len(np.unique(layout.coarse_seg[mask])) == 1


class TestFigure13Submatrix:
    def test_slots_are_labels_of_the_role(self, layout, toy_grammar):
        """Each PE processes an l x l label submatrix (l = 3 here)."""
        assert layout.n_slots == 3
        governor = toy_grammar.symbols.roles.code("governor")
        gov_labels = {
            toy_grammar.symbols.labels.name(code)
            for code in layout.slot_lab[0]
        }
        assert gov_labels == {"SUBJ", "ROOT", "DET"}
        assert layout.role_kind[0] == governor

    def test_rv_id_matches_network_enumeration(self, toy_grammar):
        net = ConstraintNetwork(toy_grammar, toy_grammar.tokenize("The program runs"))
        layout = build_layout(net)
        for role in range(layout.n_roles):
            for mod_idx in range(layout.n_mods):
                for s in range(layout.n_slots):
                    rv = layout.rv_id[role, mod_idx, s]
                    if rv < 0:
                        continue
                    value = net.role_values[rv]
                    assert value.lab == layout.slot_lab[role, s]
                    assert value.cat == layout.slot_cat[role, s]
                    assert value.mod == layout.mod_value[role, mod_idx]
                    assert net.role_index[rv] == role

    def test_rv_id_covers_network(self, toy_grammar):
        net = ConstraintNetwork(toy_grammar, toy_grammar.tokenize("The program runs"))
        layout = build_layout(net)
        ids = layout.rv_id[layout.rv_id >= 0]
        assert sorted(ids) == list(range(net.nv))


class TestPaddingWithAmbiguity:
    def test_english_layout_pads_slots(self):
        from repro.grammar.builtin.english import english_grammar

        grammar = english_grammar()
        net = ConstraintNetwork(grammar, grammar.tokenize("the saw runs"))
        layout = build_layout(net)
        # "saw" is noun|verb: governor slots = SUBJ, OBJ, POBJ + ROOT = 4.
        assert layout.n_slots == 4
        # Padded slots carry no role value.
        assert (layout.rv_id[~layout.slot_valid.repeat(layout.n_mods, 0).reshape(
            layout.n_roles, layout.n_mods, layout.n_slots
        )] == -1).all()


class TestVirtualizationUnits:
    def test_paper_step_points(self):
        assert virtualization_units(3) == 1
        assert virtualization_units(7) == 1
        assert virtualization_units(8) == 1  # 4 * 8^4 = 16384 exactly
        assert virtualization_units(9) == 2
        assert virtualization_units(10) == 3  # the paper's 0.45 s point

    def test_layout_agrees_with_formula(self, layout):
        assert layout.virtualization_units == virtualization_units(3)
