"""Unit tests for constraint-network construction and state."""

from __future__ import annotations

import numpy as np
import pytest

from repro import GrammarBuilder
from repro.errors import NetworkError
from repro.network import ConstraintNetwork

from tests.conftest import find_rv


@pytest.fixture
def toy_network(toy_grammar):
    return ConstraintNetwork(toy_grammar, toy_grammar.tokenize("the program runs"))


class TestConstruction:
    def test_role_value_count_is_q_p_n_per_word(self, toy_network):
        # q=2 roles x 3 labels per role x 3 modifiees = 18 per word.
        assert toy_network.nv == 54

    def test_no_self_modification(self, toy_network):
        for rv in toy_network.role_values:
            assert rv.mod != rv.pos

    def test_role_slices_partition(self, toy_network):
        covered = []
        for sl in toy_network.role_slices:
            covered.extend(range(sl.start, sl.stop))
        assert covered == list(range(toy_network.nv))

    def test_field_arrays_match_role_values(self, toy_network):
        for i, rv in enumerate(toy_network.role_values):
            assert toy_network.pos[i] == rv.pos
            assert toy_network.lab[i] == rv.lab
            assert toy_network.mod[i] == rv.mod
            assert toy_network.role_kind[i] == rv.role
            assert toy_network.cat[i] == rv.cat

    def test_same_role_block_is_zero(self, toy_network):
        sl = toy_network.role_slices[0]
        assert not toy_network.matrix[sl, sl].any()

    def test_cross_role_blocks_start_all_ones(self, toy_network):
        a = toy_network.role_slices[0]
        b = toy_network.role_slices[3]
        assert toy_network.matrix[a, b].all()

    def test_matrix_is_symmetric(self, toy_network):
        assert (toy_network.matrix == toy_network.matrix.T).all()

    def test_single_word_sentence(self, toy_grammar):
        net = ConstraintNetwork(toy_grammar, toy_grammar.tokenize("runs"))
        # Only modifiee nil is available.
        assert all(rv.mod == 0 for rv in net.role_values)
        assert net.nv == 6  # 3 labels x 1 modifiee x 2 roles


class TestAmbiguousLexicon:
    @pytest.fixture
    def ambiguous_net(self):
        grammar = (
            GrammarBuilder("amb")
            .labels("A")
            .roles("g")
            .categories("noun", "verb")
            .table("g", "A")
            .word("duck", "noun", "verb")
            .word("a", "noun")
            .build()
        )
        return ConstraintNetwork(grammar, grammar.tokenize("a duck"))

    def test_role_values_split_per_category(self, ambiguous_net):
        duck_values = [rv for rv in ambiguous_net.role_values if rv.pos == 2]
        cats = {rv.cat for rv in duck_values}
        assert len(cats) == 2

    def test_category_coherence_blocks_cross_category_pairs(self):
        grammar = (
            GrammarBuilder("amb2")
            .labels("A")
            .roles("g", "n")
            .categories("noun", "verb")
            .table("g", "A")
            .table("n", "A")
            .word("duck", "noun", "verb")
            .build()
        )
        net = ConstraintNetwork(grammar, grammar.tokenize("duck"))
        noun = grammar.symbols.categories.code("noun")
        verb = grammar.symbols.categories.code("verb")
        for a, rva in enumerate(net.role_values):
            for b, rvb in enumerate(net.role_values):
                if rva.role != rvb.role and rva.cat != rvb.cat:
                    assert not net.matrix[a, b], (
                        "same word, different assumed categories must be incompatible"
                    )
        assert noun != verb


class TestQueries:
    def test_role_of(self, toy_network):
        assert toy_network.role_of(1, "governor") == 0
        assert toy_network.role_of(3, "needs") == 5

    def test_role_of_bad_position(self, toy_network):
        with pytest.raises(NetworkError):
            toy_network.role_of(4, "governor")

    def test_role_ref_round_trip(self, toy_network):
        for index in range(toy_network.n_roles):
            ref = toy_network.role_ref(index)
            assert ref.index(toy_network.n_roles_per_word) == index

    def test_domain_rendering(self, toy_network):
        assert "DET-nil" in toy_network.domain(1, "governor")
        assert "DET-1" not in toy_network.domain(1, "governor")

    def test_arc_matrix_self_arc_rejected(self, toy_network):
        with pytest.raises(NetworkError, match="itself"):
            toy_network.arc_matrix(0, 0)

    def test_describe_contains_words(self, toy_network):
        text = toy_network.describe()
        assert "program" in text and "governor" in text


class TestMutation:
    def test_kill_zeroes_rows_and_columns(self, toy_network):
        target = find_rv(toy_network, 1, "governor", "DET-2")
        toy_network.kill(np.array([target]))
        assert not toy_network.alive[target]
        assert not toy_network.matrix[target, :].any()
        assert not toy_network.matrix[:, target].any()

    def test_kill_empty_is_noop(self, toy_network):
        before = toy_network.alive_count()
        toy_network.kill(np.array([], dtype=np.int64))
        assert toy_network.alive_count() == before

    def test_apply_pair_mask_counts_zeroed(self, toy_network):
        mask = np.ones((toy_network.nv, toy_network.nv), dtype=bool)
        a = find_rv(toy_network, 1, "governor", "DET-2")
        b = find_rv(toy_network, 2, "needs", "NP-1")
        mask[a, b] = False
        zeroed = toy_network.apply_pair_mask(mask)
        assert zeroed == 2  # both orientations
        assert not toy_network.entry(a, b)
        assert not toy_network.entry(b, a)

    def test_apply_pair_mask_shape_check(self, toy_network):
        with pytest.raises(NetworkError, match="shape"):
            toy_network.apply_pair_mask(np.ones((2, 2), dtype=bool))

    def test_clone_is_independent(self, toy_network):
        clone = toy_network.clone()
        toy_network.kill(np.array([0]))
        assert clone.alive[0]
        assert clone.matrix[0].any()

    def test_empty_roles_reported(self, toy_network):
        sl = toy_network.role_slices[0]
        toy_network.kill(np.arange(sl.start, sl.stop))
        refs = toy_network.empty_roles()
        assert len(refs) == 1
        assert refs[0].pos == 1 and refs[0].role == 0
        assert not toy_network.all_domains_nonempty()
