"""The extracted kernel core: bitops, BMM, and the backend registry.

Three layers:

* :mod:`repro.kernels.bitops` — dense pack/unpack, single-bit access,
  and the word-level primitives, checked against plain boolean numpy
  over shapes with NV % 64 != 0 trailing words;
* :mod:`repro.kernels.bmm` — the four-Russians product and the
  bit-plane product agree with the broadcast-any reference over
  non-square, empty, and padding-heavy operands;
* :mod:`repro.kernels.backend` — registry resolution (env var,
  explicit name, instance passthrough), the unavailable-backend
  fallback contract, and end-to-end bit-identity of ``packed`` vs
  ``numpy`` across every registered engine, plus the deprecation shims
  left behind in :mod:`repro.network.bitset`.
"""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

from repro.engines.registry import available_engines
from repro.errors import ReproError
from repro.grammar.builtin import program_grammar
from repro.kernels import bitops
from repro.kernels.backend import (
    DEFAULT_BACKEND,
    ENV_VAR,
    KernelBackend,
    KernelBackendUnavailable,
    PackedBackend,
    PlanesBackend,
    available_backends,
    create_backend,
    default_backend,
    probe_backend,
    register_backend,
    reset_backend_cache,
    resolve_backend_name,
)
from repro.kernels.bmm import bmm_four_russians, bmm_planes, bmm_reference
from repro.kernels import autotune
from repro.kernels.native import build as native_build
from repro.network import bitset
from repro.network.bitset import BitLayout
from repro.pipeline.session import ParserSession


def random_bools(rng: np.random.Generator, shape) -> np.ndarray:
    return rng.random(shape) < 0.5


# ---------------------------------------------------------------------------
# bitops


class TestBitops:
    @pytest.mark.parametrize("n_bits", [1, 7, 63, 64, 65, 127, 128, 200])
    def test_pack_unpack_roundtrip_odd_widths(self, n_bits):
        rng = np.random.default_rng(n_bits)
        for shape in ((n_bits,), (5, n_bits), (3, 4, n_bits)):
            bools = random_bools(rng, shape)
            words = bitops.pack_bits(bools)
            assert words.dtype == bitops.WORD_DTYPE
            # Trailing-word padding must stay clear: popcount over the
            # raw words is exact.
            assert bitops.count_ones(words) == int(bools.sum())
            np.testing.assert_array_equal(bitops.unpack_bits(words, n_bits), bools)

    def test_set_and_test_bit_trailing_word(self):
        row = np.zeros(2, dtype=bitops.WORD_DTYPE)
        for index in (0, 63, 64, 70):
            assert not bitops.test_bit(row, index)
            bitops.set_bit(row, index)
            assert bitops.test_bit(row, index)
        assert bitops.count_ones(row) == 4

    def test_and_accumulate_returns_popcount_delta(self):
        rng = np.random.default_rng(3)
        target_bools = random_bools(rng, 130)
        mask_bools = random_bools(rng, 130)
        target = bitops.pack_bits(target_bools)
        mask = bitops.pack_bits(mask_bools)
        removed = bitops.and_accumulate(target, mask)
        assert removed == int((target_bools & ~mask_bools).sum())
        np.testing.assert_array_equal(
            bitops.unpack_bits(target, 130), target_bools & mask_bools
        )

    def test_empty_operands(self):
        empty = np.zeros(0, dtype=bitops.WORD_DTYPE)
        assert bitops.count_ones(empty) == 0
        assert bitops.and_accumulate(empty, empty) == 0
        assert bitops.pack_bits(np.zeros((0, 5), dtype=bool)).shape == (0, 1)


# ---------------------------------------------------------------------------
# bmm


BMM_SHAPES = [
    (1, 1, 1),
    (3, 70, 5),  # k spans two words; m, n tiny
    (17, 129, 66),  # every dimension straddles a word boundary
    (64, 64, 64),
    (100, 200, 130),
    (0, 10, 4),  # empty m
    (4, 0, 7),  # empty k
    (5, 3, 0),  # empty n
]


class TestBMM:
    @pytest.mark.parametrize("shape", BMM_SHAPES, ids=str)
    @pytest.mark.parametrize("kernel", [bmm_four_russians, bmm_planes])
    def test_matches_reference(self, shape, kernel):
        m, k, n = shape
        rng = np.random.default_rng(m * 1000 + k * 10 + n)
        a_plane = random_bools(rng, (m, k))
        b_plane = random_bools(rng, (k, n))
        a_bits = bitops.pack_bits(a_plane)
        b_bits = bitops.pack_bits(b_plane)
        out = kernel(a_bits, b_bits)
        expected = bmm_reference(a_plane, b_plane)
        np.testing.assert_array_equal(bitops.unpack_bits(out, n), expected)
        # Non-square + NV % 64 != 0: padding in the product must stay
        # clear, or downstream popcounts drift.
        assert bitops.count_ones(out) == int(expected.sum())

    def test_rejects_mismatched_inner_dimension(self):
        a = np.zeros((2, 1), dtype=bitops.WORD_DTYPE)
        b = np.zeros((100, 1), dtype=bitops.WORD_DTYPE)
        with pytest.raises(ValueError):
            bmm_four_russians(a, b)

    def test_rejects_non_2d(self):
        a = np.zeros(1, dtype=bitops.WORD_DTYPE)
        with pytest.raises(ValueError):
            bmm_four_russians(a, a)


# ---------------------------------------------------------------------------
# backend registry


class TestBackendRegistry:
    def test_builtins_registered(self):
        names = available_backends()
        assert "packed" in names
        assert "numpy" in names
        assert "cupy" in names

    def test_unknown_name_raises_and_lists_available(self):
        with pytest.raises(ReproError, match="packed"):
            create_backend("no-such-backend")

    def test_instance_passes_through(self):
        instance = PlanesBackend()
        assert create_backend(instance) is instance

    def test_default_is_packed(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert create_backend(None).name == DEFAULT_BACKEND

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        assert create_backend(None).name == "numpy"
        assert default_backend().name == "numpy"

    def test_unavailable_backend_falls_back_with_warning(self):
        # CuPy is not installed in this environment, so the scaffold
        # exercises the real fallback path.
        reset_backend_cache("cupy")
        with pytest.warns(RuntimeWarning, match="falling back"):
            backend = create_backend("cupy")
        assert backend.name == DEFAULT_BACKEND
        # The fallback instance is memoized under the requested name:
        # exactly one warning per process, later calls are silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert create_backend("cupy") is backend
        reset_backend_cache("cupy")

    def test_registered_unavailable_backend_falls_back(self):
        def factory() -> KernelBackend:
            raise KernelBackendUnavailable("test backend never available")

        register_backend("always-unavailable", factory)
        try:
            with pytest.warns(RuntimeWarning, match="always-unavailable"):
                backend = create_backend("always-unavailable")
            assert backend.name == DEFAULT_BACKEND
        finally:
            from repro.kernels import backend as backend_mod

            backend_mod._REGISTRY.pop("always-unavailable", None)
            backend_mod._INSTANCES.pop("always-unavailable", None)

    def test_resolution_order_explicit_env_default(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        assert resolve_backend_name("packed") == "packed"  # explicit wins
        assert resolve_backend_name(None) == "numpy"  # then env
        monkeypatch.delenv(ENV_VAR)
        assert resolve_backend_name(None) == DEFAULT_BACKEND  # then default

    def test_create_and_default_share_one_resolution(self, monkeypatch):
        # Regression: create_backend re-read the environment while
        # default_backend memoized, so the two could answer differently
        # in one process.  Both now go through resolve_backend_name and
        # the same per-name instance memo.
        monkeypatch.setenv(ENV_VAR, "numpy")
        assert create_backend(None) is default_backend()
        assert default_backend().name == "numpy"
        monkeypatch.delenv(ENV_VAR)
        assert create_backend(None) is default_backend()
        assert default_backend().name == DEFAULT_BACKEND

    def test_available_backends_deterministic_sorted(self):
        names = available_backends()
        assert names == tuple(sorted(names))
        assert names == available_backends()
        assert "native" in names
        assert "auto" in names

    def test_probe_returns_none_without_fallback(self):
        reset_backend_cache("cupy")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert probe_backend("cupy") is None
            assert probe_backend("no-such-backend") is None
        assert probe_backend(DEFAULT_BACKEND) is not None

    def test_support_any_backends_agree(self):
        role_slices = (slice(0, 5), slice(5, 17), slice(17, 90))
        layout = BitLayout(role_slices)
        rng = np.random.default_rng(11)
        matrix_bools = random_bools(rng, (layout.nv, layout.nv))
        alive_bools = random_bools(rng, layout.nv)
        matrix = bitset.pack_rows(matrix_bools, layout)
        alive = bitset.pack_rows(alive_bools, layout)
        packed = PackedBackend().support_any(
            matrix, alive, layout.seg_byte_starts
        )
        planes = PlanesBackend().support_any(
            matrix, alive, layout.seg_byte_starts
        )
        np.testing.assert_array_equal(packed, planes)
        # And both match the set-level truth: segment s of row a holds
        # an alive partner.
        live = matrix_bools & alive_bools[None, :]
        expected = np.stack(
            [live[:, sl].any(axis=1) for sl in role_slices], axis=1
        )
        np.testing.assert_array_equal(packed, expected)


# ---------------------------------------------------------------------------
# deprecation shims


class TestBitsetShims:
    def test_moved_kernels_warn_and_delegate(self):
        layout = BitLayout((slice(0, 5), slice(5, 70)))
        rng = np.random.default_rng(4)
        bools = random_bools(rng, layout.nv)
        words = bitset.pack_rows(bools, layout)
        with pytest.warns(DeprecationWarning, match="repro.kernels.bitops"):
            assert bitset.count_ones(words) == int(bools.sum())
        with pytest.warns(DeprecationWarning):
            np.testing.assert_array_equal(
                bitset.segment_counts(words, layout),
                bitops.segment_counts(words, layout.seg_byte_starts),
            )
        matrix = bitset.pack_rows(random_bools(rng, (3, layout.nv)), layout)
        with pytest.warns(DeprecationWarning):
            np.testing.assert_array_equal(
                bitset.or_segments(matrix, layout),
                bitops.or_segments(matrix, layout.seg_byte_starts),
            )

    def test_and_accumulate_and_clear_shims(self):
        layout = BitLayout((slice(0, 66),))
        rng = np.random.default_rng(5)
        target = bitset.pack_rows(random_bools(rng, layout.nv), layout)
        mask = bitset.pack_rows(random_bools(rng, layout.nv), layout)
        oracle_target = target.copy()
        with pytest.warns(DeprecationWarning):
            removed = bitset.and_accumulate(target, mask)
        assert removed == bitops.and_accumulate(oracle_target, mask)
        np.testing.assert_array_equal(target, oracle_target)

        alive = bitset.pack_rows(np.ones(layout.nv, dtype=bool), layout)
        matrix = bitset.pack_rows(
            random_bools(rng, (layout.nv, layout.nv)), layout
        )
        oracle_alive = alive.copy()
        oracle_matrix = matrix.copy()
        indices = np.array([1, 64, 65], dtype=np.intp)
        with pytest.warns(DeprecationWarning):
            bitset.clear_rows_and_columns(alive, matrix, indices, layout)
        bitops.clear_rows_and_columns(
            oracle_alive, oracle_matrix, indices, bitset.keep_mask(indices, layout)
        )
        np.testing.assert_array_equal(alive, oracle_alive)
        np.testing.assert_array_equal(matrix, oracle_matrix)


# ---------------------------------------------------------------------------
# end-to-end bit-identity across engines


class TestSessionBackendIdentity:
    SENTENCES = [["the", "program", "runs"], ["a", "program", "runs"]]

    @pytest.mark.parametrize("engine", available_engines())
    def test_packed_and_numpy_backends_bit_identical(self, engine):
        grammar = program_grammar()
        for words in self.SENTENCES:
            results = {}
            for backend in ("packed", "numpy"):
                session = ParserSession(grammar, engine=engine, backend=backend)
                result = session.parse(words)
                assert result.stats.extra["kernel_backend"] == backend
                results[backend] = result
            a, b = results["packed"], results["numpy"]
            assert a.locally_consistent == b.locally_consistent
            assert a.ambiguous == b.ambiguous
            np.testing.assert_array_equal(
                a.network.alive_bits, b.network.alive_bits
            )
            np.testing.assert_array_equal(
                a.network.matrix_bits, b.network.matrix_bits
            )

    def test_session_records_backend_name(self):
        session = ParserSession(program_grammar(), backend="numpy")
        result = session.parse(["the", "program", "runs"])
        assert result.stats.extra["kernel_backend"] == "numpy"
        assert isinstance(session.kernel_backend, PlanesBackend)


# ---------------------------------------------------------------------------
# native compiled backend

requires_compiler = pytest.mark.skipif(
    native_build.find_compiler() is None,
    reason="no C compiler on this host (native backend falls back)",
)


@pytest.fixture
def no_toolchain(monkeypatch, tmp_path):
    """Simulate a compiler-less host: bogus CC, empty build cache.

    Both knobs matter — a previously built .so in the real cache would
    load fine without any compiler, hiding the path under test.
    """
    monkeypatch.setenv(native_build.ENV_CC, str(tmp_path / "no-such-cc"))
    monkeypatch.setenv(native_build.ENV_CACHE, str(tmp_path / "native-cache"))
    reset_backend_cache()
    yield
    reset_backend_cache()


@requires_compiler
class TestNativeBackend:
    @pytest.mark.parametrize("shape", BMM_SHAPES, ids=str)
    def test_bmm_matches_reference(self, shape):
        m, k, n = shape
        rng = np.random.default_rng(m * 1000 + k * 10 + n)
        a_plane = random_bools(rng, (m, k))
        b_plane = random_bools(rng, (k, n))
        a_bits = bitops.pack_bits(a_plane)
        b_bits = bitops.pack_bits(b_plane)
        native = create_backend("native")
        out = native.bmm(a_bits, b_bits)
        np.testing.assert_array_equal(out, bmm_four_russians(a_bits, b_bits))
        expected = bmm_reference(a_plane, b_plane)
        np.testing.assert_array_equal(bitops.unpack_bits(out, n), expected)
        # Product padding must stay clear or downstream popcounts drift.
        assert bitops.count_ones(out) == int(expected.sum())

    def test_support_any_matches_packed(self):
        role_slices = (slice(0, 5), slice(5, 17), slice(17, 90))
        layout = BitLayout(role_slices)
        rng = np.random.default_rng(23)
        matrix = bitset.pack_rows(random_bools(rng, (layout.nv, layout.nv)), layout)
        alive = bitset.pack_rows(random_bools(rng, layout.nv), layout)
        native = create_backend("native")
        expected = PackedBackend().support_any(matrix, alive, layout.seg_byte_starts)
        got = native.support_any(matrix, alive, layout.seg_byte_starts)
        assert got.dtype == np.dtype(bool)
        np.testing.assert_array_equal(got, expected)

    def test_and_accumulate_matches_packed(self):
        rng = np.random.default_rng(31)
        target_bools = random_bools(rng, (37, 130))
        mask_bools = random_bools(rng, (37, 130))
        a = bitops.pack_bits(target_bools)
        b = a.copy()
        mask = bitops.pack_bits(mask_bools)
        native = create_backend("native")
        delta_packed = PackedBackend().and_accumulate(a, mask)
        delta_native = native.and_accumulate(b, mask)
        assert delta_native == delta_packed
        np.testing.assert_array_equal(a, b)
        assert native.count_ones(b) == bitops.count_ones(a)

    def test_in_place_target_must_be_writable_words(self):
        native = create_backend("native")
        mask = np.zeros((2, 2), dtype=bitops.WORD_DTYPE)
        with pytest.raises(ReproError, match="'<u8'"):
            native.and_accumulate(np.zeros((2, 2), dtype=np.uint32), mask)
        frozen = np.zeros((2, 2), dtype=bitops.WORD_DTYPE)
        frozen.setflags(write=False)
        with pytest.raises(ReproError, match="writable"):
            native.and_accumulate(frozen, mask)

    def test_session_parse_bit_identical_to_packed(self):
        grammar = program_grammar()
        words = ["the", "program", "runs"]
        ref = ParserSession(grammar, backend="packed").parse(words)
        got = ParserSession(grammar, backend="native").parse(words)
        assert got.stats.extra["kernel_backend"] == "native"
        assert got.locally_consistent == ref.locally_consistent
        np.testing.assert_array_equal(got.network.alive_bits, ref.network.alive_bits)
        np.testing.assert_array_equal(got.network.matrix_bits, ref.network.matrix_bits)


class TestNativeFallback:
    def test_no_compiler_degrades_to_packed_with_one_warning(self, no_toolchain):
        with pytest.warns(RuntimeWarning, match="falling back"):
            backend = create_backend("native")
        assert backend.name == DEFAULT_BACKEND
        # Warn once per process: the fallback instance is memoized.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert create_backend("native") is backend

    def test_no_compiler_session_still_parses(self, no_toolchain):
        with pytest.warns(RuntimeWarning, match="falling back"):
            session = ParserSession(program_grammar(), backend="native")
        result = session.parse(["the", "program", "runs"])
        assert result.locally_consistent
        assert result.stats.extra["kernel_backend"] == DEFAULT_BACKEND

    def test_find_compiler_env_override_must_exist(self, no_toolchain):
        assert native_build.find_compiler() is None


# ---------------------------------------------------------------------------
# profile-guided auto backend


@pytest.fixture
def fresh_auto(monkeypatch, tmp_path):
    """An AutoBackend with its persisted table isolated to tmp_path."""
    monkeypatch.setenv(autotune.ENV_CACHE, str(tmp_path / "autotune.json"))
    reset_backend_cache("auto")
    yield autotune.AutoBackend()
    reset_backend_cache("auto")


class TestAutoBackend:
    def test_bmm_identity_and_single_calibration_per_bucket(self, fresh_auto):
        rng = np.random.default_rng(5)
        a = bitops.pack_bits(random_bools(rng, (100, 100)))
        b = bitops.pack_bits(random_bools(rng, (100, 130)))
        expected = bmm_four_russians(a, b)
        np.testing.assert_array_equal(fresh_auto.bmm(a, b), expected)
        assert fresh_auto.calibrations == 1
        np.testing.assert_array_equal(fresh_auto.bmm(a, b), expected)
        assert fresh_auto.calibrations == 1  # same bucket: dispatch, no re-race

    def test_empty_operands_skip_calibration(self, fresh_auto):
        a = bitops.pack_bits(np.zeros((0, 5), dtype=bool))
        b = bitops.pack_bits(np.zeros((5, 3), dtype=bool))
        out = fresh_auto.bmm(a, b)
        assert out.shape == (0, 1)
        assert fresh_auto.calibrations == 0

    def test_and_accumulate_race_preserves_in_place_contract(self, fresh_auto):
        rng = np.random.default_rng(13)
        target = bitops.pack_bits(random_bools(rng, (20, 100)))
        mask = bitops.pack_bits(random_bools(rng, (20, 100)))
        reference = target.copy()
        delta_ref = PackedBackend().and_accumulate(reference, mask)
        delta = fresh_auto.and_accumulate(target, mask)
        assert delta == delta_ref
        np.testing.assert_array_equal(target, reference)

    def test_dispatch_table_round_trips_through_cache_file(self, fresh_auto):
        rng = np.random.default_rng(3)
        a = bitops.pack_bits(random_bools(rng, (64, 64)))
        b = bitops.pack_bits(random_bools(rng, (64, 64)))
        fresh_auto.bmm(a, b)
        fresh_auto.count_ones(a)
        assert fresh_auto.calibrations == 2
        table = fresh_auto.dispatch_snapshot()
        record = json.loads(autotune.cache_path().read_text())
        assert record["version"] == autotune.CACHE_VERSION
        assert record["host"] == autotune.host_fingerprint()
        assert record["table"] == table
        # A second "process" (fresh instance, same cache file) loads
        # the table and never re-races.
        second = autotune.AutoBackend()
        assert second.dispatch_snapshot() == table
        np.testing.assert_array_equal(second.bmm(a, b), fresh_auto.bmm(a, b))
        assert second.calibrations == 0

    def test_foreign_host_table_is_ignored(self, fresh_auto, monkeypatch, tmp_path):
        path = tmp_path / "foreign.json"
        path.write_text(json.dumps({
            "version": autotune.CACHE_VERSION,
            "host": {"platform": "elsewhere", "machine": "pdp11", "cpu_count": 1},
            "table": {"bmm:20": "numpy"},
        }))
        monkeypatch.setenv(autotune.ENV_CACHE, str(path))
        assert autotune.AutoBackend().dispatch_snapshot() == {}

    def test_disagreeing_candidate_is_excluded(self, fresh_auto):
        class LyingBackend(KernelBackend):
            name = "lying"

            def bmm(self, a_bits, b_bits):
                out = PackedBackend().bmm(a_bits, b_bits)
                out[...] = 0  # fast and wrong
                return out

        register_backend("lying", LyingBackend)
        try:
            rng = np.random.default_rng(17)
            a = bitops.pack_bits(random_bools(rng, (80, 80)))
            b = bitops.pack_bits(random_bools(rng, (80, 80)))
            expected = bmm_four_russians(a, b)
            with pytest.warns(RuntimeWarning, match="lying.*disagreed"):
                out = fresh_auto.bmm(a, b)
            np.testing.assert_array_equal(out, expected)
            table = fresh_auto.dispatch_snapshot()
            assert all(winner != "lying" for winner in table.values())
            # Excluded for good: later buckets never race it again.
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                big_a = bitops.pack_bits(random_bools(rng, (160, 160)))
                big_b = bitops.pack_bits(random_bools(rng, (160, 160)))
                np.testing.assert_array_equal(
                    fresh_auto.bmm(big_a, big_b), bmm_four_russians(big_a, big_b)
                )
        finally:
            from repro.kernels import backend as backend_mod

            backend_mod._REGISTRY.pop("lying", None)
            backend_mod._INSTANCES.pop("lying", None)

    def test_session_surfaces_dispatch_table(self, monkeypatch, tmp_path):
        monkeypatch.setenv(autotune.ENV_CACHE, str(tmp_path / "autotune.json"))
        reset_backend_cache("auto")
        try:
            session = ParserSession(program_grammar(), backend="auto")
            result = session.parse(["the", "program", "runs"])
            assert result.stats.extra["kernel_backend"] == "auto"
            dispatch = result.stats.extra["kernel_dispatch"]
            assert isinstance(dispatch, dict)
            known = set(available_backends())
            assert all(winner in known for winner in dispatch.values())
        finally:
            reset_backend_cache("auto")
