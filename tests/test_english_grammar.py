"""Acceptance, rejection and disambiguation tests for the English grammar."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import VectorEngine, accepts, extract_parses
from repro.grammar.builtin.english import english_grammar
from repro.workloads import random_sentence, sentence_of_length

ENGINE = VectorEngine()


@pytest.fixture(scope="module")
def grammar():
    return english_grammar()


def parse(grammar, text):
    return ENGINE.parse(grammar, text)


ACCEPTED = [
    "dogs bark",
    "the dog runs",
    "a big dog runs",
    "the big red dog runs quickly",
    "the dog sees the cat",
    "every student likes the computer",
    "the dog runs in the park",
    "the man sees the woman with the telescope",
    "the bird sleeps under the old tree",
    "dogs chase cats",
]

REJECTED = [
    "dog the runs",  # determiner after its noun
    "the runs",  # determiner with nothing to govern
    "runs the dog",  # subject must precede the verb
    "the dog cat runs",  # two nouns cannot share the subject slot
    "the dog the cat",  # no verb
    "dogs bark cats bark",  # two main verbs (single-root constraint)
    "quickly runs",  # adverb plus verb without a subject
    "the in dog runs",  # preposition with no object
    "big the dog runs",  # adjective before the determiner
    "the dog sees the cat the bird",  # two objects for one verb
]


class TestAcceptance:
    @pytest.mark.parametrize("text", ACCEPTED)
    def test_accepted(self, grammar, text):
        result = parse(grammar, text)
        assert result.locally_consistent, text
        assert accepts(result.network), text

    @pytest.mark.parametrize("text", REJECTED)
    def test_rejected(self, grammar, text):
        result = parse(grammar, text)
        assert not accepts(result.network), text


class TestDisambiguation:
    def test_simple_sentences_are_unambiguous(self, grammar):
        for text in ("the dog runs", "dogs bark", "the dog sees the cat"):
            result = parse(grammar, text)
            assert len(extract_parses(result.network, limit=None)) == 1, text

    def test_pp_attachment_is_ambiguous(self, grammar):
        """The classic case: PP may attach to the verb or the object noun."""
        result = parse(grammar, "the man sees the woman with the telescope")
        parses = extract_parses(result.network, limit=None)
        assert len(parses) == 3  # attach to sees, woman, or man
        prep_heads = {
            parse.heads(0)[6] for parse in parses  # "with" is word 6's... position 6
        }
        # "with" is at position 6: its PP attaches to sees(3), woman(5) or man(2).
        assert prep_heads == {2, 3, 5}

    def test_ambiguity_flag_matches_extraction(self, grammar):
        ambiguous = parse(grammar, "the dog runs in the park")
        assert ambiguous.ambiguous
        unambiguous = parse(grammar, "the dog runs")
        assert not unambiguous.ambiguous

    def test_lexical_ambiguity_resolved_by_context(self, grammar):
        """'saw' is noun|verb; after a determiner it must be the noun."""
        result = parse(grammar, "the saw runs")
        parses = extract_parses(result.network, limit=None)
        assert len(parses) == 1
        noun = grammar.symbols.categories.code("noun")
        saw_value = parses[0].role_value(2, 0)
        assert saw_value.cat == noun

    def test_duck_as_verb(self, grammar):
        result = parse(grammar, "dogs duck")
        parses = extract_parses(result.network, limit=None)
        assert len(parses) == 1
        verb = grammar.symbols.categories.code("verb")
        assert parses[0].role_value(2, 0).cat == verb


class TestParseStructure:
    def test_transitive_clause_heads(self, grammar):
        result = parse(grammar, "the dog sees the cat")
        parse_graph = extract_parses(result.network)[0]
        heads = parse_graph.heads(0)
        assert heads == {1: 2, 2: 3, 3: 0, 4: 5, 5: 3}

    def test_pp_object_heads(self, grammar):
        result = parse(grammar, "the dog sleeps in the park")
        for parse_graph in extract_parses(result.network, limit=None):
            heads = parse_graph.heads(0)
            assert heads[5] == 6  # "the" -> park
            assert heads[6] == 4  # park -> in (POBJ)
            assert heads[4] in (2, 3)  # in -> dog or sleeps


class TestWorkloads:
    @pytest.mark.parametrize("n", range(2, 15))
    def test_sentence_of_length_accepted(self, grammar, n):
        words = sentence_of_length(n)
        assert len(words) == n
        assert accepts(parse(grammar, words).network)

    def test_length_one_is_rejected_but_parses(self, grammar):
        result = parse(grammar, sentence_of_length(1))
        assert not result.locally_consistent

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            sentence_of_length(0)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_random_sentences_accepted(self, grammar, seed):
        words = random_sentence(random.Random(seed))
        assert accepts(parse(grammar, words).network), " ".join(words)
