"""Unit tests for parse extraction and precedence graphs."""

from __future__ import annotations

import pytest

from repro import (
    ConstraintNetwork,
    GrammarBuilder,
    SerialEngine,
    VectorEngine,
    accepts,
    count_parses,
    extract_parses,
)
from repro.errors import ExtractionError
from repro.search.extraction import iter_assignments


@pytest.fixture
def unconstrained():
    """A grammar with no constraints: every assignment is consistent."""
    return (
        GrammarBuilder("free")
        .labels("A", "B")
        .roles("g")
        .categories("n")
        .table("g", "A", "B")
        .word("w", "n")
        .build()
    )


class TestEnumeration:
    def test_unconstrained_counts(self, unconstrained):
        # One word: 2 labels x 1 modifiee (nil) = 2 assignments.
        net = ConstraintNetwork(unconstrained, unconstrained.tokenize("w"))
        assert count_parses(net) == 2

    def test_unconstrained_two_words(self, unconstrained):
        # Each of 2 roles has 2 labels x 2 modifiees = 4 values; 16 pairs.
        net = ConstraintNetwork(unconstrained, unconstrained.tokenize("w w"))
        assert count_parses(net, limit=100) == 16

    def test_limit_respected(self, unconstrained):
        net = ConstraintNetwork(unconstrained, unconstrained.tokenize("w w"))
        assert len(extract_parses(net, limit=5)) == 5

    def test_limit_none_returns_all(self, unconstrained):
        net = ConstraintNetwork(unconstrained, unconstrained.tokenize("w w"))
        assert len(extract_parses(net, limit=None)) == 16

    def test_bad_limit(self, unconstrained):
        net = ConstraintNetwork(unconstrained, unconstrained.tokenize("w"))
        with pytest.raises(ExtractionError):
            extract_parses(net, limit=0)

    def test_assignments_are_pairwise_consistent(self, toy_grammar):
        result = VectorEngine().parse(toy_grammar, "the program runs")
        net = result.network
        for indices in iter_assignments(net):
            for a in indices:
                for b in indices:
                    if net.role_index[a] != net.role_index[b]:
                        assert net.entry(a, b)

    def test_empty_domain_yields_nothing(self, unconstrained):
        import numpy as np

        net = ConstraintNetwork(unconstrained, unconstrained.tokenize("w"))
        net.kill(np.arange(net.nv))
        assert not accepts(net)
        assert extract_parses(net) == []


class TestAcceptance:
    def test_toy_sentence_accepted(self, toy_grammar):
        result = VectorEngine().parse(toy_grammar, "the program runs")
        assert accepts(result.network)

    def test_bad_sentence_rejected(self, toy_grammar):
        # "program the runs" violates the ordering constraints: the DET
        # needs a noun to its right, but the noun precedes it.
        result = VectorEngine().parse(toy_grammar, "program the runs")
        assert not result.locally_consistent
        assert not accepts(result.network)

    def test_two_determiners_rejected(self, toy_grammar):
        result = VectorEngine().parse(toy_grammar, "the the program runs")
        assert not accepts(result.network)

    def test_verb_only_accepted(self, toy_grammar):
        # "runs" needs an S modifiee but there is no other word; the needs
        # role value S-x requires mod != nil, impossible for n=1.
        result = VectorEngine().parse(toy_grammar, "runs")
        assert not result.locally_consistent

    def test_extraction_agrees_with_serial_engine(self, toy_grammar):
        serial = SerialEngine().parse(toy_grammar, "the program runs")
        vector = VectorEngine().parse(toy_grammar, "the program runs")
        p1 = [p.assignment for p in extract_parses(serial.network, limit=None)]
        p2 = [p.assignment for p in extract_parses(vector.network, limit=None)]
        assert sorted(p1) == sorted(p2)


class TestPrecedenceGraph:
    def test_mapping_round_trip(self, toy_grammar):
        result = VectorEngine().parse(toy_grammar, "the program runs")
        parse = extract_parses(result.network)[0]
        mapping = parse.mapping()
        assert parse.role_value(2, 0) is mapping[(2, 0)]

    def test_describe_mentions_all_words(self, toy_grammar):
        result = VectorEngine().parse(toy_grammar, "the program runs")
        parse = extract_parses(result.network)[0]
        text = parse.describe(toy_grammar.symbols)
        for word in ("the", "program", "runs"):
            assert word in text

    def test_networkx_nodes_carry_words(self, toy_grammar):
        result = VectorEngine().parse(toy_grammar, "the program runs")
        graph = extract_parses(result.network)[0].to_networkx(toy_grammar.symbols)
        assert graph.nodes[2]["word"] == "program"
        assert graph.number_of_nodes() == 3
