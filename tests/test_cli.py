"""Tests for the command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import main


def run_cli(argv) -> tuple[int, str]:
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParseCommand:
    def test_accepted_sentence(self):
        code, text = run_cli(["parse", "the", "dog", "runs"])
        assert code == 0
        assert "locally consistent: True" in text
        assert "parses (1)" in text
        assert "SUBJ-3" in text

    def test_quoted_sentence_is_split(self):
        code, text = run_cli(["parse", "the dog runs"])
        assert code == 0
        assert "parses (1)" in text

    def test_strict_exit_code_on_rejection(self):
        code, _ = run_cli(["parse", "dog", "the", "runs", "--strict"])
        assert code == 1

    def test_non_strict_rejection_exits_zero(self):
        code, text = run_cli(["parse", "dog", "the", "runs"])
        assert code == 0
        assert "locally consistent: False" in text

    def test_network_flag(self):
        _, text = run_cli(["parse", "the", "dog", "runs", "--network"])
        assert "governor" in text and "[1]" in text

    def test_stats_flag(self):
        _, text = run_cli(["parse", "the", "dog", "runs", "--stats"])
        assert "pair checks" in text and "wall time" in text

    def test_stats_include_memory_columns(self):
        _, text = run_cli(["parse", "the", "dog", "runs", "--stats"])
        assert "bytes/network" in text
        assert "template cache bytes" in text

    def test_maspar_engine_stats_include_simulated_time(self):
        _, text = run_cli(
            ["parse", "The program runs", "-g", "program", "-e", "maspar", "--stats"]
        )
        assert "simulated MP-1 time" in text
        assert "processors" in text

    @pytest.mark.parametrize("grammar,sentence,accepted", [
        ("anbn", ["a", "a", "b", "b"], True),
        ("anbn", ["a", "b", "b"], False),
        ("copy", ["a", "b", "a", "b"], True),
        ("dyck", ["(", "[", "]", ")"], True),
    ])
    def test_builtin_grammars(self, grammar, sentence, accepted):
        _, text = run_cli(["parse", *sentence, "-g", grammar])
        assert f"locally consistent:" in text
        assert (f"parses (0)" not in text) == accepted

    def test_grammar_file(self, tmp_path):
        from repro.grammar import dump_grammar
        from repro.grammar.builtin import program_grammar

        path = tmp_path / "toy.cdg"
        path.write_text(dump_grammar(program_grammar()))
        code, text = run_cli(["parse", "the", "program", "runs", "-g", str(path)])
        assert code == 0
        assert "parses (1)" in text

    def test_unknown_grammar_errors(self):
        code, _ = run_cli(["parse", "x", "-g", "nope"])
        assert code == 2

    def test_max_parses(self):
        _, text = run_cli(
            ["parse", "the dog runs in the park", "--max-parses", "1"]
        )
        assert "parses (1+" in text


class TestConllAndExplain:
    def test_conll_output(self):
        _, text = run_cli(["parse", "the dog runs", "--conll"])
        assert "1\tthe\tdet\t2\tDET" in text
        assert "3\truns\tverb\t0\tROOT" in text

    def test_explain_shows_eliminations(self):
        code, text = run_cli(["explain", "the saw runs"])
        assert code == 0
        assert "eliminated" in text
        assert "saw[2].governor" in text
        assert "locally consistent: True" in text

    def test_explain_all_phases(self):
        _, quiet = run_cli(["explain", "the dog runs"])
        _, loud = run_cli(["explain", "the dog runs", "--all-phases"])
        assert len(loud) > len(quiet)

    def test_explain_toy_grammar(self):
        _, text = run_cli(["explain", "The program runs", "-g", "program"])
        assert "[unary:verbs-are-ungoverned-roots] eliminated 8:" in text


class TestVersionAndEngineValidation:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out

    def test_unknown_engine_lists_registered_engines(self, capsys):
        code, _ = run_cli(["parse", "the dog runs", "-e", "warp-drive"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown engine 'warp-drive'" in err
        # The message must enumerate what *is* registered.
        for name in ("serial", "vector", "pram", "maspar", "mesh"):
            assert name in err

    def test_runtime_registered_engine_is_accepted(self):
        """Validation is against the live registry, not a frozen list."""
        from repro import register_engine
        from repro.engines.vector import VectorEngine

        register_engine("cli-test-engine", VectorEngine)
        try:
            code, text = run_cli(["parse", "the dog runs", "-e", "cli-test-engine"])
            assert code == 0 and "parses (1)" in text
        finally:
            from repro.engines import registry

            registry._REGISTRY.pop("cli-test-engine", None)


class TestKernelBackendFlag:
    def test_parse_accepts_backend_name(self):
        code, text = run_cli(
            ["parse", "the dog runs", "--kernel-backend", "numpy"]
        )
        assert code == 0 and "parses (1)" in text

    def test_unknown_backend_lists_registered_backends(self, capsys):
        code, _ = run_cli(["parse", "the dog runs", "--kernel-backend", "abacus"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown kernel backend 'abacus'" in err
        for name in ("packed", "numpy", "cupy"):
            assert name in err

    def test_bench_bmm_quick_writes_record(self, tmp_path):
        out_path = tmp_path / "BENCH_bmm.json"
        code, text = run_cli(["bench-bmm", "--quick", "--out", str(out_path)])
        assert code == 0
        assert "BMM microbench" in text
        import json

        record = json.loads(out_path.read_text())
        assert record["bit_identity"]["ok"]
        assert record["host"]["cpu_count"] >= 1


class TestServeBench:
    def test_serve_bench_prints_metrics_snapshot(self):
        code, text = run_cli(
            ["serve-bench", "-n", "12", "-w", "2", "--shapes", "2", "--linger-ms", "1"]
        )
        assert code == 0
        assert "12 requests" in text and "req/s" in text
        assert "Service metrics" in text
        assert "submitted" in text and "queue_wait_seconds" in text
        assert "template cache over 2 worker(s)" in text

    def test_serve_bench_prints_memory_line(self):
        code, text = run_cli(
            ["serve-bench", "-n", "8", "-w", "1", "--shapes", "1", "--linger-ms", "1"]
        )
        assert code == 0
        assert "bytes/network" in text
        assert "shape(s) profiled" in text


class TestOtherCommands:
    def test_grammars_lists_all(self):
        code, text = run_cli(["grammars"])
        assert code == 0
        for name in ("program", "english", "anbn", "copy", "dyck"):
            assert name in text

    def test_timing_table(self):
        code, text = run_cli(["timing", "--max-n", "4"])
        assert code == 0
        assert "virtual PEs" in text
        assert "150.00 ms" in text  # the calibrated n=3 anchor

    def test_figures_replay(self):
        code, text = run_cli(["figures"])
        assert code == 0
        for figure in ("Figure 1", "Figure 3", "Figure 6", "Figure 7"):
            assert figure in text
        assert "SUBJ-3" in text
