"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro import SerialEngine, VectorEngine
from repro.grammar.builtin import program_grammar
from repro.network.network import ConstraintNetwork


@pytest.fixture(scope="session")
def toy_grammar():
    """The paper's "The program runs" grammar."""
    return program_grammar()


@pytest.fixture
def sanitized():
    """Enable the runtime sanitizer for one test, then restore.

    Yields the :mod:`repro.analysis.sanitizer` module so tests can
    reach :class:`~repro.analysis.sanitizer.SanitizerError` and the
    recorded diagnostics.
    """
    from repro.analysis import sanitizer

    was_enabled = sanitizer.is_enabled()
    sanitizer.enable()
    try:
        yield sanitizer
    finally:
        if not was_enabled:
            sanitizer.disable()


@pytest.fixture(params=["serial", "vector"])
def engine(request):
    """Parametrize a test over the two pure-software engines."""
    return {"serial": SerialEngine, "vector": VectorEngine}[request.param]()


def find_rv(net: ConstraintNetwork, pos: int, role_name: str, pretty: str) -> int:
    """Global index of the role value rendered as *pretty* (e.g. "SUBJ-1").

    Helper for matrix-entry assertions against the paper's figures.
    """
    symbols = net.grammar.symbols
    sl = net.role_slices[net.role_of(pos, role_name)]
    matches = [
        i for i in range(sl.start, sl.stop) if net.role_values[i].pretty(symbols) == pretty
    ]
    assert matches, f"no role value {pretty!r} at word {pos} role {role_name}"
    assert len(matches) == 1, f"ambiguous role value {pretty!r} (lexically ambiguous word?)"
    return matches[0]


def domains_snapshot(net: ConstraintNetwork) -> dict[tuple[int, str], frozenset[str]]:
    """All live domains, keyed by (position, role name)."""
    out = {}
    for pos in range(1, net.n_words + 1):
        for role_name in net.grammar.roles:
            out[(pos, role_name)] = frozenset(net.domain(pos, role_name))
    return out
