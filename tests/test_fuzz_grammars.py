"""Fuzzing: engine equivalence and invariants over random grammars.

Random grammars x random sentences exercise corners no hand-written
grammar reaches (one-role grammars, three-role grammars, vacuous or
contradictory constraints, ambiguous lexicons).  Invariants checked:

* all engines settle to identical networks;
* the loader round-trips every generated grammar;
* extraction only ever returns pairwise-consistent assignments;
* bounded filtering keeps a superset of the fixpoint.
"""

from __future__ import annotations

import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MasParEngine, MeshEngine, SerialEngine, VectorEngine
from repro.grammar import dump_grammar, load_grammar
from repro.search import extract_parses, iter_assignments
from repro.workloads.random_grammars import random_grammar, random_sentence_for


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_engines_agree_on_random_grammars(seed):
    rng = random.Random(seed)
    grammar = random_grammar(rng)
    sentence = random_sentence_for(grammar, rng, max_len=4)
    reference = VectorEngine().parse(grammar, sentence)
    for engine in (SerialEngine(), MasParEngine(), MeshEngine()):
        result = engine.parse(grammar, sentence)
        np.testing.assert_array_equal(
            result.network.alive,
            reference.network.alive,
            err_msg=f"{engine.name} differs: grammar seed {seed}, sentence {sentence}",
        )
        np.testing.assert_array_equal(result.network.matrix, reference.network.matrix)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_pram_agrees_on_random_grammars(seed):
    from repro import PRAMEngine

    rng = random.Random(seed)
    grammar = random_grammar(rng)
    sentence = random_sentence_for(grammar, rng, max_len=3)
    reference = VectorEngine().parse(grammar, sentence)
    result = PRAMEngine().parse(grammar, sentence)
    np.testing.assert_array_equal(result.network.alive, reference.network.alive)
    np.testing.assert_array_equal(result.network.matrix, reference.network.matrix)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_loader_round_trips_random_grammars(seed):
    grammar = random_grammar(random.Random(seed))
    text = dump_grammar(grammar)
    again = load_grammar(text)
    assert again.labels == grammar.labels
    assert again.roles == grammar.roles
    assert again.categories == grammar.categories
    assert [c.source for c in again.constraints] == [c.source for c in grammar.constraints]
    assert dump_grammar(again) == text


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_extracted_assignments_are_consistent(seed):
    rng = random.Random(seed)
    grammar = random_grammar(rng)
    sentence = random_sentence_for(grammar, rng, max_len=4)
    network = VectorEngine().parse(grammar, sentence).network
    count = 0
    for indices in iter_assignments(network):
        for a in indices:
            assert network.alive[a]
            for b in indices:
                if network.role_index[a] != network.role_index[b]:
                    assert network.entry(a, b)
        count += 1
        if count >= 5:
            break


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_bounded_filtering_overapproximates(seed):
    rng = random.Random(seed)
    grammar = random_grammar(rng)
    sentence = random_sentence_for(grammar, rng, max_len=4)
    full = VectorEngine().parse(grammar, sentence)
    bounded = VectorEngine().parse(grammar, sentence, filter_limit=0)
    assert (full.network.alive <= bounded.network.alive).all()


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_acceptance_implies_nonempty_domains(seed):
    rng = random.Random(seed)
    grammar = random_grammar(rng)
    sentence = random_sentence_for(grammar, rng, max_len=4)
    result = VectorEngine().parse(grammar, sentence)
    parses = extract_parses(result.network, limit=1)
    if parses:
        assert result.locally_consistent
