"""The process-parallel data plane: shared store, pool, ParallelSession.

The load-bearing invariants:

* **bit-identity** — ``ParallelSession.parse_many`` equals a
  single-process ``ParserSession.parse_many`` on the same sentences,
  network for network and stat for stat, across worker counts and both
  packed vector paths (fused and interleaved); scheduling and process
  placement never change what is computed;
* **shared-memory hygiene** — a closed session/store leaves no
  ``/dev/shm`` segment behind (the store is the sole unlink-er, workers
  only ever close their own mapping);
* **ownership contract** — export is idempotent per shape, a closed
  store refuses to export, attach validates the grammar, and attached
  views are read-only;
* **both start methods work** — fork (default here) and spawn, which
  exercises the pickle path for grammars and handles.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro import ParallelSession, ParserSession
from repro.errors import ReproError
from repro.grammar.builtin import english_grammar, program_grammar
from repro.parallel import ProcessPool, SharedTemplateStore, attach_template
from repro.parallel.pool import default_start_method
from repro.pipeline.compiled import compile_grammar
from repro.workloads import sentence_of_length
from tests.test_pipeline import DETERMINISTIC_STATS, assert_same_network

SHM_DIR = Path("/dev/shm")

#: Shape-interleaved workload: repeated shapes (template reuse), fresh
#: shapes (multiple exports), and the lone-noun n=1 rejection case so
#: the verdict path is exercised, not just consistent parses.
LENGTHS = (3, 5, 7, 3, 10, 5, 1, 7, 3, 5, 8, 10, 2, 5)


def workload() -> list[list[str]]:
    return [sentence_of_length(n) for n in LENGTHS]


def shm_segments() -> set[str]:
    """Shared-memory block names (``psm_*``, the SharedMemory default).

    Deliberately excludes ``sem.mp-*`` pool semaphores: those belong to
    multiprocessing itself and are finalized by the resource tracker,
    not by our ownership contract.
    """
    if not SHM_DIR.exists():  # pragma: no cover - non-Linux fallback
        return set()
    return {p.name for p in SHM_DIR.iterdir() if p.name.startswith("psm_")}


def assert_results_equal(parallel_results, serial_results):
    for warm, cold in zip(parallel_results, serial_results, strict=True):
        assert_same_network(warm.network, cold.network)
        assert warm.locally_consistent == cold.locally_consistent
        assert warm.ambiguous == cold.ambiguous
        for stat in DETERMINISTIC_STATS:
            assert getattr(warm.stats, stat) == getattr(cold.stats, stat), stat


class TestParallelEquivalence:
    """Seeded sweep: the pool is an implementation detail, not a semantics."""

    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("engine", ["vector", "vector-interleaved"])
    def test_bit_identical_to_single_process(self, workers, engine):
        grammar = english_grammar()
        sentences = workload()
        baseline = ParserSession(grammar, engine=engine).parse_many(sentences)
        before = shm_segments()
        with ParallelSession(grammar, engine=engine, workers=workers) as session:
            results = session.parse_many(sentences)
            assert session.shared_bytes() > 0
        assert_results_equal(results, baseline)
        # Every sentence really ran in a child process.
        pids = {r.stats.extra.get("worker_pid") for r in results}
        assert None not in pids and os.getpid() not in pids
        # Clean shutdown unlinked every exported block.
        assert shm_segments() <= before

    def test_arrival_order_restored_across_chunks(self):
        with ParallelSession(english_grammar(), workers=2, chunk_size=2) as session:
            results = session.parse_many(workload())
        for result, n in zip(results, LENGTHS, strict=True):
            assert result.network.n_words == n

    def test_filter_limit_matches_serial(self):
        grammar = english_grammar()
        sentence = sentence_of_length(10)
        cold = ParserSession(grammar, filter_limit=1).parse(sentence)
        with ParallelSession(grammar, workers=2, filter_limit=1) as session:
            warm = session.parse(sentence)
            override = session.parse(sentence, filter_limit=None)
        assert_same_network(warm.network, cold.network)
        assert warm.stats.filtering_iterations == cold.stats.filtering_iterations
        full = ParserSession(grammar).parse(sentence)
        assert_same_network(override.network, full.network)

    def test_child_cache_eviction_keeps_results_correct(self):
        """A 1-slot child template cache thrashes across shapes; evicted
        attachments are closed, re-attached lazily, and the results stay
        bit-identical."""
        grammar = english_grammar()
        sentences = workload()
        baseline = ParserSession(grammar).parse_many(sentences)
        with ParallelSession(grammar, workers=2, child_cache_size=1) as session:
            results = session.parse_many(sentences)
        assert_results_equal(results, baseline)

    def test_spawn_start_method(self):
        """Spawn ships the grammar by pickle (compiled closures must not
        cross) and re-imports the child runtime from scratch."""
        grammar = english_grammar()
        sentences = [sentence_of_length(n) for n in (3, 5, 3)]
        baseline = ParserSession(grammar).parse_many(sentences)
        before = shm_segments()
        with ParallelSession(grammar, workers=2, start_method="spawn") as session:
            assert session.start_method == "spawn"
            results = session.parse_many(sentences)
        assert_results_equal(results, baseline)
        assert shm_segments() <= before


class TestSharedTemplateStore:
    def test_export_is_idempotent_per_shape(self):
        grammar = english_grammar()
        session = ParserSession(grammar)
        template = session.template_for(sentence_of_length(3))
        other = session.template_for(sentence_of_length(5))
        with SharedTemplateStore() as store:
            first = store.export(template, session.compiled)
            second = store.export(template, session.compiled)
            assert first is second
            assert len(store) == 1
            store.export(other, session.compiled)
            assert len(store) == 2
            assert store.nbytes() == first.nbytes + store.export(other, session.compiled).nbytes

    def test_closed_store_refuses_export_and_unlinks(self):
        grammar = english_grammar()
        session = ParserSession(grammar)
        template = session.template_for(sentence_of_length(3))
        before = shm_segments()
        store = SharedTemplateStore()
        handle = store.export(template, session.compiled)
        assert handle.shm_name.lstrip("/") in shm_segments()
        store.close()
        store.close()  # idempotent
        assert shm_segments() <= before
        with pytest.raises(ReproError):
            store.export(template, session.compiled)

    def test_attach_validates_grammar_and_freezes_views(self):
        grammar = english_grammar()
        session = ParserSession(grammar)
        template = session.template_for(sentence_of_length(5))
        with SharedTemplateStore() as store:
            handle = store.export(template, session.compiled)
            with pytest.raises(ReproError):
                attach_template(handle, program_grammar(), compile_grammar(program_grammar()))
            attached, shm = attach_template(handle, grammar, session.compiled)
            try:
                np.testing.assert_array_equal(attached.base_bits, template.base_bits)
                with pytest.raises(ValueError):
                    attached.base_bits[0, 0] = 0
                masks = attached.vector_masks(session.compiled)
                assert masks.fused is not None
                with pytest.raises(ValueError):
                    masks.fused[0, 0] = 0
                # An attached template binds and parses like the original.
                sent = grammar.tokenize(sentence_of_length(5))
                assert_same_network(attached.bind(sent), template.bind(sent))
            finally:
                shm.close()

    def test_handle_geometry(self):
        grammar = english_grammar()
        session = ParserSession(grammar)
        template = session.template_for(sentence_of_length(7))
        with SharedTemplateStore() as store:
            handle = store.export(template, session.compiled)
            assert handle.nv == template.nv
            assert handle.grammar_name == grammar.name
            base = handle.spec("base_bits")
            assert base is not None and base.shape == template.base_bits.shape
            assert handle.spec("missing") is None
            for spec in handle.specs:
                assert spec.offset % 8 == 0
                assert spec.offset + spec.nbytes <= handle.nbytes


class TestProcessPool:
    def test_engine_instances_are_rejected(self):
        from repro import VectorEngine

        with pytest.raises(ReproError):
            ProcessPool(english_grammar(), VectorEngine())
        with pytest.raises(ReproError):
            ProcessPool(english_grammar(), workers=0)

    def test_default_start_method_is_available(self):
        import multiprocessing

        assert default_start_method() in multiprocessing.get_all_start_methods()

    def test_shutdown_is_idempotent(self):
        pool = ProcessPool(english_grammar(), workers=1)
        pool.shutdown()
        pool.shutdown()


class TestServiceProcessMode:
    def test_process_mode_bit_identical_and_leak_free(self):
        from repro import ParseService

        grammar = english_grammar()
        sentences = workload()
        baseline = ParserSession(grammar).parse_many(sentences)
        before = shm_segments()
        with ParseService(
            grammar, workers=1, workers_mode="process", max_linger=0.001
        ) as service:
            results = service.parse_many(sentences)
            snap = service.snapshot()
        assert_results_equal(results, baseline)
        assert snap["service"]["workers_mode"] == "process"
        assert snap["service"]["memory"]["shared_store_bytes"] > 0
        assert snap["counters"]["completed"] == len(sentences)
        assert shm_segments() <= before

    def test_workers_mode_validation(self):
        from repro import ParseService, VectorEngine

        with pytest.raises(ValueError):
            ParseService(english_grammar(), workers_mode="fiber")
        with pytest.raises(ValueError):
            ParseService(english_grammar(), workers_mode="process", engine=VectorEngine())


class TestKernelBackendPropagation:
    """The backend *name* must survive the process boundary: a parent
    selecting ``native``/``auto`` gets workers that resolved the same
    backend (or its documented fallback), visible in worker-side stats.
    """

    SENTENCES = [sentence_of_length(n) for n in (3, 5, 7)]

    @staticmethod
    def _requires_compiler():
        from repro.kernels.native import find_compiler

        if find_compiler() is None:
            pytest.skip("no C compiler on this host")

    def test_native_reaches_process_children(self):
        self._requires_compiler()
        grammar = english_grammar()
        baseline = ParserSession(grammar).parse_many(self.SENTENCES)
        with ParallelSession(grammar, workers=2, kernel_backend="native") as parallel:
            results = parallel.parse_many(self.SENTENCES)
        for result, reference in zip(results, baseline, strict=True):
            assert result.stats.extra["kernel_backend"] == "native"
            assert_same_network(result.network, reference.network)

    def test_auto_reaches_process_children_with_dispatch(self, monkeypatch, tmp_path):
        # Children inherit the parent environment, so the isolated
        # autotune cache applies to every worker too.
        monkeypatch.setenv("REPRO_AUTOTUNE_CACHE", str(tmp_path / "autotune.json"))
        grammar = english_grammar()
        baseline = ParserSession(grammar).parse_many(self.SENTENCES)
        with ParallelSession(grammar, workers=2, kernel_backend="auto") as parallel:
            results = parallel.parse_many(self.SENTENCES)
        for result, reference in zip(results, baseline, strict=True):
            assert result.stats.extra["kernel_backend"] == "auto"
            assert isinstance(result.stats.extra["kernel_dispatch"], dict)
            assert_same_network(result.network, reference.network)

    def test_no_compiler_children_degrade_to_packed(self, monkeypatch, tmp_path):
        from repro.kernels import reset_backend_cache
        from repro.kernels.native import ENV_CACHE, ENV_CC

        # Both knobs: a bogus compiler AND an empty build cache, or a
        # previously built library would load compiler-free.
        monkeypatch.setenv(ENV_CC, str(tmp_path / "no-such-cc"))
        monkeypatch.setenv(ENV_CACHE, str(tmp_path / "native-cache"))
        reset_backend_cache()
        try:
            grammar = english_grammar()
            baseline = ParserSession(grammar, backend="packed").parse_many(self.SENTENCES)
            # The baseline (or suite-wide REPRO_KERNEL_BACKEND=native)
            # may already have burned the warn-once fallback; re-arm it
            # so the parallel construction provably warns.
            reset_backend_cache("native")
            with pytest.warns(RuntimeWarning, match="falling back"):
                parallel = ParallelSession(grammar, workers=1, kernel_backend="native")
            with parallel:
                results = parallel.parse_many(self.SENTENCES)
            for result, reference in zip(results, baseline, strict=True):
                # The worker reports what it actually resolved: the
                # documented degradation, never an exception.
                assert result.stats.extra["kernel_backend"] == "packed"
                assert_same_network(result.network, reference.network)
        finally:
            reset_backend_cache()

    def test_service_process_mode_reports_worker_backend(self, monkeypatch, tmp_path):
        from repro import ParseService

        monkeypatch.setenv("REPRO_AUTOTUNE_CACHE", str(tmp_path / "autotune.json"))
        grammar = english_grammar()
        with ParseService(
            grammar,
            workers=1,
            workers_mode="process",
            kernel_backend="auto",
            max_linger=0.001,
        ) as service:
            results = service.parse_many(self.SENTENCES)
        for result in results:
            assert result.stats.extra["kernel_backend"] == "auto"
            assert isinstance(result.stats.extra["kernel_dispatch"], dict)
