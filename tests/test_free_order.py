"""Order-free parsing (paper section 1.5): "no notion of left-to-right"."""

from __future__ import annotations

import itertools

import pytest

from repro import VectorEngine, accepts, extract_parses
from repro.grammar.builtin.free_order import free_order_grammar

ENGINE = VectorEngine()

CLAUSE = ["puella", "amat", "agricolam"]  # girl-NOM loves farmer-ACC


@pytest.fixture(scope="module")
def grammar():
    return free_order_grammar()


class TestAllOrdersParse:
    def test_every_permutation_accepted(self, grammar):
        for order in itertools.permutations(CLAUSE):
            result = ENGINE.parse(grammar, list(order))
            assert accepts(result.network), order

    def test_every_permutation_yields_the_same_structure(self, grammar):
        """SVO, SOV, VSO, ... all mean girl-loves-farmer."""
        for order in itertools.permutations(CLAUSE):
            words = list(order)
            result = ENGINE.parse(grammar, words)
            parses = extract_parses(result.network, limit=None)
            assert len(parses) == 1, order
            heads = parses[0].heads(0)
            verb = words.index("amat") + 1
            subject = words.index("puella") + 1
            obj = words.index("agricolam") + 1
            assert heads[subject] == verb
            assert heads[obj] == verb
            assert heads[verb] == 0

    def test_intransitive_in_both_orders(self, grammar):
        # "verb needs a subject" but an object is optional.
        for words in (["stella", "videt"], ["videt", "stella"]):
            assert accepts(ENGINE.parse(grammar, words).network), words


class TestCaseStillGoverns:
    @pytest.mark.parametrize(
        "words",
        [
            ["puellam", "amat", "agricolam"],  # two accusatives, no subject
            ["puella", "amat", "agricola"],  # two nominatives
            ["amat", "agricolam"],  # no subject at all
            ["puella", "agricolam"],  # no verb
            ["puella", "amat", "agricolam", "stellam"],  # two objects
            ["puella", "amat", "videt"],  # two verbs
        ],
    )
    def test_rejections_in_canonical_order(self, grammar, words):
        assert not accepts(ENGINE.parse(grammar, words).network), words

    def test_rejections_hold_in_every_order(self, grammar):
        """Bad case frames stay bad no matter how they are permuted."""
        for bad in (["puellam", "amat", "agricolam"], ["puella", "amat", "agricola"]):
            for order in itertools.permutations(bad):
                assert not accepts(ENGINE.parse(grammar, list(order)).network), order

    def test_no_constraint_mentions_word_order(self, grammar):
        """The grammar text itself contains no position comparisons."""
        for constraint in grammar.constraints:
            assert "(lt (pos" not in constraint.source
            assert "(gt (pos" not in constraint.source
            assert "(lt (mod" not in constraint.source
            assert "(gt (mod" not in constraint.source
