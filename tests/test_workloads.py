"""Unit tests for the workload generators."""

from __future__ import annotations

import random

import pytest

from repro.grammar.builtin.english import english_grammar
from repro.workloads import (
    corpus,
    random_sentence,
    scrambled_sentence,
    sentence_of_length,
    toy_sentence,
)


class TestSentenceOfLength:
    @pytest.mark.parametrize("n", range(1, 25))
    def test_exact_length(self, n):
        assert len(sentence_of_length(n)) == n

    def test_deterministic(self):
        assert sentence_of_length(10) == sentence_of_length(10)

    def test_all_words_in_lexicon(self):
        lexicon = english_grammar().lexicon
        for n in range(1, 25):
            for word in sentence_of_length(n):
                assert word in lexicon, word

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            sentence_of_length(0)
        with pytest.raises(ValueError):
            sentence_of_length(-3)


class TestToySentence:
    @pytest.mark.parametrize("n", range(1, 15))
    def test_exact_length(self, n):
        assert len(toy_sentence(n)) == n

    def test_three_words_is_the_paper_sentence(self):
        assert toy_sentence(3) == ["the", "program", "runs"]

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            toy_sentence(0)


class TestRandomSentences:
    def test_seeded_reproducibility(self):
        a = random_sentence(random.Random(5))
        b = random_sentence(random.Random(5))
        assert a == b

    def test_scramble_preserves_multiset(self):
        rng_a, rng_b = random.Random(9), random.Random(9)
        plain = random_sentence(rng_a)
        # scrambled_sentence draws the same sentence then shuffles it.
        shuffled = scrambled_sentence(rng_b)
        assert sorted(plain) == sorted(shuffled)

    def test_corpus_size_and_determinism(self):
        assert len(corpus(seed=1, size=7)) == 7
        assert corpus(seed=1, size=7) == corpus(seed=1, size=7)
        assert corpus(seed=1, size=7) != corpus(seed=2, size=7)

    def test_corpus_words_in_lexicon(self):
        lexicon = english_grammar().lexicon
        for words in corpus(seed=3, size=10):
            for word in words:
                assert word in lexicon
