"""Unit tests for the analysis helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import fit_log_growth, fit_power_law, format_seconds, format_table


class TestPowerLawFit:
    def test_exact_cubic(self):
        xs = [2, 4, 8, 16]
        ys = [5 * x**3 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(3.0)
        assert fit.scale == pytest.approx(5.0)
        assert fit.r_squared == pytest.approx(1.0)

    @settings(max_examples=50, deadline=None)
    @given(
        exponent=st.floats(0.5, 5.0),
        scale=st.floats(0.1, 100.0),
    )
    def test_recovers_parameters(self, exponent, scale):
        xs = np.array([2.0, 3.0, 5.0, 8.0, 13.0])
        ys = scale * xs**exponent
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(exponent, rel=1e-6)
        assert fit.scale == pytest.approx(scale, rel=1e-6)

    def test_predict(self):
        fit = fit_power_law([1, 2, 4], [3, 12, 48])
        assert fit.predict(8) == pytest.approx(192.0)

    def test_noise_lowers_r_squared(self):
        rng = np.random.default_rng(0)
        xs = np.arange(2, 30)
        ys = xs**2.0 * rng.uniform(0.2, 5.0, size=len(xs))
        fit = fit_power_law(xs, ys)
        assert fit.r_squared < 0.999

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0, 1])


class TestLogGrowthFit:
    def test_exact_log(self):
        xs = [2, 4, 8, 16, 32]
        ys = [7 * np.log2(x) + 3 for x in xs]
        a, b, r2 = fit_log_growth(xs, ys)
        assert a == pytest.approx(7.0)
        assert b == pytest.approx(3.0)
        assert r2 == pytest.approx(1.0)

    def test_constant_data(self):
        a, _b, r2 = fit_log_growth([2, 4, 8], [5, 5, 5])
        assert a == pytest.approx(0.0)
        assert r2 == pytest.approx(1.0)


class TestFormatting:
    def test_table_alignment(self):
        text = format_table(["n", "time"], [[3, "0.15 s"], [10, "0.45 s"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "n" in lines[2] and "time" in lines[2]
        assert len(lines) == 6

    def test_seconds_scales(self):
        assert format_seconds(3e-6) == "3.0 us"
        assert format_seconds(0.0042) == "4.20 ms"
        assert format_seconds(1.5) == "1.50 s"
        assert format_seconds(300) == "5.0 min"
