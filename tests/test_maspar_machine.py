"""Unit tests for the simulated MP-1: costs, virtualization, memory, X-Net."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MachineError, VirtualizationError
from repro.maspar import MP1, CostModel, grid_shape, xnet_reduce_or, xnet_shift


@pytest.fixture
def small_machine():
    return MP1(n_virtual=64, cost=CostModel(n_physical=16384))


class TestAccounting:
    def test_cycles_start_at_zero(self, small_machine):
        assert small_machine.cycles == 0

    def test_elementwise_charges_cycles(self, small_machine):
        small_machine.elementwise(lambda a: a + 1, np.zeros(64))
        assert small_machine.cycles > 0
        assert small_machine.ops.elementwise == 1

    def test_wider_ops_cost_more(self):
        cost = CostModel()
        assert cost.alu_cycles(32) == 8  # 4-bit slices
        assert cost.alu_cycles(4) == 1
        assert cost.alu_cycles(64) == 16

    def test_scan_cost_is_logarithmic(self):
        cost = CostModel()
        assert cost.scan_cycles(1024) == 10 * cost.scan_cycles_per_stage
        assert cost.scan_cycles(2048) == 11 * cost.scan_cycles_per_stage

    def test_ops_counted_by_kind(self, small_machine):
        seg = np.zeros(64, dtype=np.int64)
        small_machine.scan_or(np.zeros(64, dtype=bool), seg)
        small_machine.broadcast(42)
        small_machine.reduce_or(np.zeros(64, dtype=bool))
        assert small_machine.ops.scan == 1
        assert small_machine.ops.broadcast == 1
        assert small_machine.ops.reduce == 1
        assert small_machine.ops.total() == 3

    def test_simulated_seconds(self):
        machine = MP1(n_virtual=16)
        machine.elementwise(lambda: None)
        assert machine.simulated_seconds == machine.cycles / machine.cost.clock_hz


class TestVirtualization:
    def test_within_physical_no_multiplier(self):
        machine = MP1(n_virtual=16384)
        assert machine.vfactor == 1

    def test_factor_is_ceiling(self):
        machine = MP1(n_virtual=16385)
        assert machine.vfactor == 2
        machine = MP1(n_virtual=40000)  # q^2 * 10^4, the paper's 10-word case
        assert machine.vfactor == 3

    def test_virtualized_ops_cost_proportionally(self):
        base = MP1(n_virtual=16384)
        tripled = MP1(n_virtual=40000)
        base.elementwise(lambda: None)
        tripled.elementwise(lambda: None)
        assert tripled.cycles == 3 * base.cycles

    def test_absurd_virtualization_rejected(self):
        with pytest.raises(VirtualizationError):
            MP1(n_virtual=16384 * 5000)

    def test_zero_pes_rejected(self):
        with pytest.raises(MachineError):
            MP1(n_virtual=0)


class TestMemory:
    def test_alloc_shapes(self, small_machine):
        arr = small_machine.alloc(dtype=bool, shape_tail=(3, 3))
        assert arr.shape == (64, 3, 3)

    def test_memory_limit_enforced(self):
        machine = MP1(n_virtual=16384)
        with pytest.raises(MachineError, match="memory exhausted"):
            machine.alloc(dtype=np.int64, shape_tail=(4096,))  # 32 KB per PE

    def test_virtualization_multiplies_memory(self):
        machine = MP1(n_virtual=16384 * 4)
        # 3000 B per virtual PE = 12000 B per physical PE (factor 4);
        # a second allocation would exceed the 16 KB local store.
        machine.alloc(dtype=np.int8, shape_tail=(3000,))
        with pytest.raises(MachineError):
            machine.alloc(dtype=np.int8, shape_tail=(3000,))

    def test_proc_id(self, small_machine):
        assert list(small_machine.proc_id()[:3]) == [0, 1, 2]


class TestRouter:
    def test_fetch(self, small_machine):
        src = np.arange(10)
        out = small_machine.router_fetch(src, np.array([3, 3, 9]))
        assert list(out) == [3, 3, 9]
        assert small_machine.ops.router == 1

    def test_fetch_bounds_checked(self, small_machine):
        with pytest.raises(MachineError, match="out of range"):
            small_machine.router_fetch(np.arange(4), np.array([4]))

    def test_send(self, small_machine):
        out = small_machine.router_send(
            4, np.array([1, 2]), np.array([10, 20], dtype=np.int64)
        )
        assert list(out) == [0, 10, 20, 0]

    def test_send_masked(self, small_machine):
        out = small_machine.router_send(
            4,
            np.array([1, 2]),
            np.array([10, 20], dtype=np.int64),
            mask=np.array([True, False]),
        )
        assert list(out) == [0, 10, 0, 0]

    def test_reduce_add(self, small_machine):
        assert small_machine.reduce_add(np.arange(5)) == 10


class TestXNet:
    def test_grid_shape_square(self):
        assert grid_shape(16384) == (128, 128)
        assert grid_shape(64) == (8, 8)

    def test_shift_right(self):
        machine = MP1(n_virtual=16)
        values = np.arange(16)
        out = xnet_shift(machine, values, 0, 1)
        grid = out.reshape(4, 4)
        assert list(grid[0]) == [0, 0, 1, 2]

    def test_shift_down_up_round_trip_interior(self):
        machine = MP1(n_virtual=16)
        values = np.arange(16.0)
        down = xnet_shift(machine, values, 1, 0)
        back = xnet_shift(machine, down, -1, 0)
        grid = back.reshape(4, 4)
        np.testing.assert_array_equal(grid[:3], np.arange(16.0).reshape(4, 4)[:3])

    def test_long_moves_rejected(self):
        machine = MP1(n_virtual=16)
        with pytest.raises(MachineError, match="immediate neighbours"):
            xnet_shift(machine, np.arange(16), 2, 0)

    @pytest.mark.parametrize("hot", [0, 7, 15, None])
    def test_xnet_reduce_or(self, hot):
        machine = MP1(n_virtual=16)
        bits = np.zeros(16, dtype=bool)
        if hot is not None:
            bits[hot] = True
        assert xnet_reduce_or(machine, bits) is (hot is not None)
        # Diameter hops on a 4 x 4 grid: 3 + 3.
        assert machine.ops.router == 6

    def test_xnet_reduce_slower_than_router_at_scale(self):
        a, b = MP1(n_virtual=16384), MP1(n_virtual=16384)
        bits = np.zeros(16384, dtype=bool)
        a.reduce_or(bits)
        xnet_reduce_or(b, bits)
        assert a.cycles < b.cycles
