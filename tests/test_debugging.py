"""Tests for the trace recorder and CoNLL export tooling."""

from __future__ import annotations

import pytest

from repro import SerialEngine, VectorEngine, extract_parses
from repro.debugging import TraceRecorder
from repro.grammar.builtin import english_grammar, program_grammar
from repro.search import to_conll


class TestTraceRecorder:
    @pytest.fixture
    def recorder(self, toy_grammar):
        recorder = TraceRecorder()
        VectorEngine().parse(toy_grammar, "The program runs", trace=recorder)
        return recorder

    def test_records_every_phase(self, recorder):
        events = [step.event for step in recorder.steps]
        assert events[0] == "built"
        assert "unary-done" in events
        assert events[-1] == "filtering-done"

    def test_timeline_is_monotone(self, recorder):
        counts = [alive for _, alive in recorder.timeline()]
        assert counts == sorted(counts, reverse=True)
        assert counts[0] == 54 and counts[-1] == 6

    def test_step_lookup(self, recorder):
        step = recorder.step("unary-done")
        assert step.alive == 10
        with pytest.raises(KeyError):
            recorder.step("nope")

    def test_explain_names_eliminated_values(self, recorder):
        text = recorder.explain()
        assert "[unary:verbs-are-ungoverned-roots] eliminated 8:" in text
        assert "runs[3].governor" in text
        # The first binary constraint removes SUBJ-1 via consistency.
        assert "SUBJ-1" in text

    def test_explain_skips_quiet_phases_by_default(self, recorder):
        quiet = recorder.explain()
        loud = recorder.explain(skip_quiet=False)
        assert len(loud) >= len(quiet)
        assert "binary:subj-governed-by-root-to-right" not in quiet
        assert "binary:subj-governed-by-root-to-right" in loud

    def test_eliminations_diff(self, recorder):
        before = recorder.step("built").domains
        after = recorder.step("unary-done").domains
        gone = recorder.eliminations(before, after)
        assert gone[(3, "governor")] == frozenset(
            {"DET-nil", "DET-1", "DET-2", "SUBJ-nil", "SUBJ-1", "SUBJ-2", "ROOT-1", "ROOT-2"}
        )

    def test_works_with_serial_engine(self, toy_grammar):
        recorder = TraceRecorder()
        SerialEngine().parse(toy_grammar, "The program runs", trace=recorder)
        assert recorder.step("filtering-done").alive == 6


class TestConll:
    def test_toy_sentence(self, toy_grammar):
        result = VectorEngine().parse(toy_grammar, "The program runs")
        parse = extract_parses(result.network)[0]
        text = to_conll(parse, toy_grammar.symbols)
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].split("\t") == ["1", "The", "det", "2", "DET", "BLANK:0"]
        assert lines[1].split("\t") == ["2", "program", "noun", "3", "SUBJ", "NP:1"]
        assert lines[2].split("\t") == ["3", "runs", "verb", "0", "ROOT", "S:2"]

    def test_english_root_is_zero(self):
        grammar = english_grammar()
        result = VectorEngine().parse(grammar, "the dog sees the cat")
        parse = extract_parses(result.network)[0]
        rows = [line.split("\t") for line in to_conll(parse, grammar.symbols).splitlines()]
        roots = [row for row in rows if row[3] == "0"]
        assert len(roots) == 1
        assert roots[0][1] == "sees"

    def test_head_column_is_consistent_with_heads(self, toy_grammar):
        result = VectorEngine().parse(toy_grammar, "The program runs")
        parse = extract_parses(result.network)[0]
        rows = [line.split("\t") for line in to_conll(parse, toy_grammar.symbols).splitlines()]
        heads = parse.heads(0)
        for row in rows:
            assert int(row[3]) == heads[int(row[0])]
