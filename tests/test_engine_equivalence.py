"""All four engines must settle every network to the same state.

This is the reproduction's central invariant (DESIGN.md): the serial
reference, the numpy vector engine, the CRCW P-RAM programs and the
simulated-MasPar PARSEC all compute the greatest locally-consistent
subnetwork, bit for bit — alive vectors and packed arc matrices equal.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MasParEngine, MeshEngine, PRAMEngine, SerialEngine, VectorEngine
from repro.grammar.builtin import program_grammar
from repro.grammar.builtin.english import english_grammar
from repro.workloads import random_sentence, scrambled_sentence

ALL_ENGINES = [SerialEngine(), VectorEngine(), PRAMEngine(), MasParEngine(), MeshEngine()]
FAST_ENGINES = [SerialEngine(), VectorEngine(), MasParEngine(), MeshEngine()]


def assert_same_outcome(grammar, sentence, engines):
    reference = VectorEngine().parse(grammar, sentence)
    for engine in engines:
        result = engine.parse(grammar, sentence)
        np.testing.assert_array_equal(
            result.network.alive,
            reference.network.alive,
            err_msg=f"{engine.name} alive differs on {sentence!r}",
        )
        np.testing.assert_array_equal(
            result.network.matrix,
            reference.network.matrix,
            err_msg=f"{engine.name} matrix differs on {sentence!r}",
        )
        assert result.locally_consistent == reference.locally_consistent
        assert result.ambiguous == reference.ambiguous


class TestToyGrammar:
    @pytest.mark.parametrize(
        "sentence",
        [
            "The program runs",
            "a program runs",
            "program runs",
            "runs",
            "the program",
            "program the runs",
            "the the program runs",
        ],
    )
    def test_all_engines_agree(self, sentence):
        assert_same_outcome(program_grammar(), sentence, ALL_ENGINES)


class TestEnglishGrammar:
    @pytest.mark.parametrize(
        "sentence",
        [
            "the dog runs",
            "dogs bark",
            "the dog sees the cat",
            "the saw runs",
            "dog the runs",
            "the dog runs in the park",
        ],
    )
    def test_fast_engines_agree(self, sentence):
        assert_same_outcome(english_grammar(), sentence, FAST_ENGINES)

    def test_pram_agrees_on_short_english(self):
        assert_same_outcome(english_grammar(), "the dog runs", [PRAMEngine()])


class TestPropertyBased:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_random_grammatical_sentences(self, seed):
        rng = random.Random(seed)
        sentence = random_sentence(rng, max_pps=1, max_adjs=1)
        assert_same_outcome(english_grammar(), sentence, FAST_ENGINES)

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_random_scrambled_sentences(self, seed):
        rng = random.Random(seed)
        sentence = scrambled_sentence(rng, max_pps=1, max_adjs=0)
        assert_same_outcome(english_grammar(), sentence, FAST_ENGINES)


class TestFilterLimit:
    def test_bounded_filtering_is_a_prefix_of_full(self):
        """Design decision 5: limiting filtering only leaves extra values."""
        grammar = english_grammar()
        full = VectorEngine().parse(grammar, "the dog sees the cat")
        bounded = MasParEngine().parse(grammar, "the dog sees the cat", filter_limit=0)
        # Bounded filtering can only keep MORE alive values, never fewer.
        assert (full.network.alive <= bounded.network.alive).all()

    def test_trace_events_match_between_engines(self):
        events: dict[str, list[str]] = {}
        for engine in (SerialEngine(), VectorEngine(), MasParEngine()):
            seen: list[str] = []
            engine.parse(program_grammar(), "The program runs", trace=lambda e, n: seen.append(e))
            events[engine.name] = [e for e in seen if e != "built"]
        assert events["serial"] == events["vector"]
        # The maspar engine emits the same phase events.
        assert events["serial"] == events["maspar"]
