"""The MCVP -> filtering reduction must compute circuit values exactly.

This makes the paper's footnote-3 claim executable: CDG filtering can
simulate monotone circuit evaluation (hence filtering is P-hard and
inherently sequential in the worst case), and the number of filtering
iterations tracks circuit depth.
"""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.network.synthetic import SyntheticNetwork
from repro.reductions import (
    Gate,
    GateKind,
    MonotoneCircuit,
    and_chain,
    circuit_to_network,
    evaluate_by_filtering,
    random_circuit,
)


class TestCircuits:
    def test_and_gate(self):
        circuit = MonotoneCircuit(
            [Gate(GateKind.INPUT), Gate(GateKind.INPUT), Gate(GateKind.AND, (0, 1))]
        )
        assert circuit.output_value([True, True])
        assert not circuit.output_value([True, False])

    def test_or_gate(self):
        circuit = MonotoneCircuit(
            [Gate(GateKind.INPUT), Gate(GateKind.INPUT), Gate(GateKind.OR, (0, 1))]
        )
        assert circuit.output_value([False, True])
        assert not circuit.output_value([False, False])

    def test_depth(self):
        assert and_chain(5).depth() == 5

    def test_forward_reference_rejected(self):
        with pytest.raises(ReproError, match="later gate"):
            MonotoneCircuit([Gate(GateKind.AND, (0, 1)), Gate(GateKind.INPUT)])

    def test_input_arity_checked(self):
        with pytest.raises(ReproError):
            MonotoneCircuit([Gate(GateKind.INPUT, (0,))])

    def test_wrong_input_count(self):
        circuit = and_chain(2)
        with pytest.raises(ReproError, match="inputs"):
            circuit.output_value([True])


class TestReduction:
    def test_and_truth_table(self):
        circuit = MonotoneCircuit(
            [Gate(GateKind.INPUT), Gate(GateKind.INPUT), Gate(GateKind.AND, (0, 1))]
        )
        for a, b in itertools.product([False, True], repeat=2):
            assert evaluate_by_filtering(circuit, [a, b]).output == (a and b)

    def test_or_truth_table(self):
        circuit = MonotoneCircuit(
            [Gate(GateKind.INPUT), Gate(GateKind.INPUT), Gate(GateKind.OR, (0, 1))]
        )
        for a, b in itertools.product([False, True], repeat=2):
            assert evaluate_by_filtering(circuit, [a, b]).output == (a or b)

    def test_all_gate_values_match_direct_evaluation(self):
        circuit = MonotoneCircuit(
            [
                Gate(GateKind.INPUT),
                Gate(GateKind.INPUT),
                Gate(GateKind.INPUT),
                Gate(GateKind.OR, (0, 1)),
                Gate(GateKind.AND, (2, 3)),
                Gate(GateKind.OR, (3, 4)),
            ]
        )
        inputs = [False, True, False]
        result = evaluate_by_filtering(circuit, inputs)
        assert result.gate_values == circuit.evaluate(inputs)

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10**6),
        bits=st.lists(st.booleans(), min_size=4, max_size=4),
    )
    def test_random_circuits_match(self, seed, bits):
        circuit = random_circuit(random.Random(seed), n_inputs=4, n_gates=12)
        assert evaluate_by_filtering(circuit, bits).output == circuit.output_value(bits)

    def test_duplicated_argument_gates(self):
        circuit = MonotoneCircuit(
            [Gate(GateKind.INPUT), Gate(GateKind.AND, (0, 0)), Gate(GateKind.OR, (1, 1))]
        )
        assert evaluate_by_filtering(circuit, [True]).output
        assert not evaluate_by_filtering(circuit, [False]).output

    def test_single_input_circuit(self):
        circuit = MonotoneCircuit([Gate(GateKind.INPUT)])
        assert evaluate_by_filtering(circuit, [True]).output
        assert not evaluate_by_filtering(circuit, [False]).output


class TestSequentialCascade:
    def test_iterations_grow_with_depth(self):
        """The paper's point: one falsity can cascade a step at a time."""
        iters = []
        for depth in (2, 8, 16):
            result = evaluate_by_filtering(and_chain(depth), [False, True])
            assert result.output is False
            iters.append(result.iterations)
        assert iters[0] < iters[1] < iters[2]
        # The cascade is (depth)-sequential: roughly one level per pass.
        assert iters[2] >= 14

    def test_true_chain_needs_no_cascade(self):
        result = evaluate_by_filtering(and_chain(16), [True, True])
        assert result.output is True
        assert result.iterations == 0


class TestSyntheticNetwork:
    def test_construction_shapes(self):
        net = SyntheticNetwork([2, 3])
        assert net.nv == 5
        assert net.n_roles == 2
        assert net.matrix[0, 1] == False  # same role
        assert net.matrix[0, 2] == True  # cross role

    def test_bad_domains_rejected(self):
        with pytest.raises(Exception):
            SyntheticNetwork([])
        with pytest.raises(Exception):
            SyntheticNetwork([2, 0])

    def test_forbid_same_role_rejected(self):
        net = SyntheticNetwork([2, 2])
        with pytest.raises(Exception):
            net.forbid(0, 1)

    def test_require_support_only_from(self):
        net = SyntheticNetwork([2, 3])
        target = net.value(0, 0)
        keep = net.value(1, 1)
        net.require_support_only_from(target, 1, [keep])
        sl = net.role_slices[1]
        assert list(net.matrix[target, sl]) == [False, True, False]

    def test_value_bounds_checked(self):
        net = SyntheticNetwork([2, 3])
        with pytest.raises(Exception):
            net.value(0, 5)
