"""Exact reproduction of the paper's worked example (Figures 1-7).

The trace hook captures the constraint network after each propagation
phase; the domain sets are asserted against the figures verbatim.
Both the serial and the vector engine must reproduce every state.
"""

from __future__ import annotations

import pytest

from repro import extract_parses
from repro.network.network import ConstraintNetwork

from tests.conftest import domains_snapshot, find_rv

SENTENCE = "The program runs"

# Figure 1: the initial CN.  Domains are exhaustive over T and "no word
# ever modifies itself".
FIG1 = {
    (1, "governor"): {
        "DET-nil", "DET-2", "DET-3",
        "SUBJ-nil", "SUBJ-2", "SUBJ-3",
        "ROOT-nil", "ROOT-2", "ROOT-3",
    },
    (1, "needs"): {
        "BLANK-nil", "BLANK-2", "BLANK-3",
        "NP-nil", "NP-2", "NP-3",
        "S-nil", "S-2", "S-3",
    },
    (2, "governor"): {
        "DET-nil", "DET-1", "DET-3",
        "SUBJ-nil", "SUBJ-1", "SUBJ-3",
        "ROOT-nil", "ROOT-1", "ROOT-3",
    },
    (2, "needs"): {
        "BLANK-nil", "BLANK-1", "BLANK-3",
        "NP-nil", "NP-1", "NP-3",
        "S-nil", "S-1", "S-3",
    },
    (3, "governor"): {
        "DET-nil", "DET-1", "DET-2",
        "SUBJ-nil", "SUBJ-1", "SUBJ-2",
        "ROOT-nil", "ROOT-1", "ROOT-2",
    },
    (3, "needs"): {
        "BLANK-nil", "BLANK-1", "BLANK-2",
        "NP-nil", "NP-1", "NP-2",
        "S-nil", "S-1", "S-2",
    },
}

# Figure 3: after all unary constraints.
FIG3 = {
    (1, "governor"): {"DET-2", "DET-3"},
    (1, "needs"): {"BLANK-nil"},
    (2, "governor"): {"SUBJ-1", "SUBJ-3"},
    (2, "needs"): {"NP-1", "NP-3"},
    (3, "governor"): {"ROOT-nil"},
    (3, "needs"): {"S-1", "S-2"},
}

# Figure 5: after the first binary constraint and consistency maintenance.
FIG5 = {
    (1, "governor"): {"DET-2", "DET-3"},
    (1, "needs"): {"BLANK-nil"},
    (2, "governor"): {"SUBJ-3"},
    (2, "needs"): {"NP-1", "NP-3"},
    (3, "governor"): {"ROOT-nil"},
    (3, "needs"): {"S-1", "S-2"},
}

# Figure 6: the final CN.
FIG6 = {
    (1, "governor"): {"DET-2"},
    (1, "needs"): {"BLANK-nil"},
    (2, "governor"): {"SUBJ-3"},
    (2, "needs"): {"NP-1"},
    (3, "governor"): {"ROOT-nil"},
    (3, "needs"): {"S-2"},
}


class Recorder:
    def __init__(self):
        self.snapshots: dict[str, dict] = {}
        self.networks: dict[str, ConstraintNetwork] = {}

    def __call__(self, event: str, net: ConstraintNetwork) -> None:
        self.snapshots[event] = domains_snapshot(net)
        self.networks[event] = net.clone()


@pytest.fixture
def traced(toy_grammar, engine):
    recorder = Recorder()
    result = engine.parse(toy_grammar, SENTENCE, trace=recorder)
    return recorder, result


class TestFigures:
    def test_figure1_initial_domains(self, traced):
        recorder, _ = traced
        assert recorder.snapshots["built"] == {k: frozenset(v) for k, v in FIG1.items()}

    def test_figure1_role_value_counts(self, traced):
        recorder, _ = traced
        net = recorder.networks["built"]
        # 9 role values per role, 6 roles: O(p * n) each, 54 total.
        assert net.nv == 54
        assert all(net.domain_size(r) == 9 for r in range(net.n_roles))

    def test_figure2_first_unary_constraint(self, traced):
        recorder, _ = traced
        snap = recorder.snapshots["unary:verbs-are-ungoverned-roots"]
        # "the label ROOT-nil is the only remaining label for the governor
        # role of runs"; everything else is untouched so far.
        assert snap[(3, "governor")] == {"ROOT-nil"}
        for key, expected in FIG1.items():
            if key != (3, "governor"):
                assert snap[key] == frozenset(expected), key

    def test_figure3_after_all_unary(self, traced):
        recorder, _ = traced
        assert recorder.snapshots["unary-done"] == {
            k: frozenset(v) for k, v in FIG3.items()
        }

    def test_figure4_first_binary_zeroes_subj1_root(self, traced):
        recorder, _ = traced
        net = recorder.networks["binary:subj-governed-by-root-to-right"]
        subj1 = find_rv(net, 2, "governor", "SUBJ-1")
        subj3 = find_rv(net, 2, "governor", "SUBJ-3")
        root = find_rv(net, 3, "governor", "ROOT-nil")
        assert not net.entry(subj1, root), "Figure 4: SUBJ-1 x ROOT-nil must be 0"
        assert net.entry(subj3, root), "Figure 4: SUBJ-3 x ROOT-nil must stay 1"
        # The other arc matrices shown in Figure 4 are still all ones.
        det2 = find_rv(net, 1, "governor", "DET-2")
        det3 = find_rv(net, 1, "governor", "DET-3")
        np1 = find_rv(net, 2, "needs", "NP-1")
        np3 = find_rv(net, 2, "needs", "NP-3")
        s1 = find_rv(net, 3, "needs", "S-1")
        s2 = find_rv(net, 3, "needs", "S-2")
        for a in (np1, np3):
            for b in (det2, det3):
                assert net.entry(a, b)
        for a in (s1, s2):
            for b in (det2, det3):
                assert net.entry(a, b)
        for a in (s1, s2):
            for b in (subj1, subj3):
                assert net.entry(a, b)

    def test_figure5_consistency_removes_subj1(self, traced):
        recorder, _ = traced
        snap = recorder.snapshots["consistency:subj-governed-by-root-to-right"]
        assert snap == {k: frozenset(v) for k, v in FIG5.items()}

    def test_figure6_final_network(self, traced):
        recorder, result = traced
        assert domains_snapshot(result.network) == {
            k: frozenset(v) for k, v in FIG6.items()
        }
        assert result.locally_consistent
        assert not result.ambiguous

    def test_figure6_surviving_matrix_entries(self, traced):
        _, result = traced
        net = result.network
        np1 = find_rv(net, 2, "needs", "NP-1")
        det2 = find_rv(net, 1, "governor", "DET-2")
        subj3 = find_rv(net, 2, "governor", "SUBJ-3")
        s2 = find_rv(net, 3, "needs", "S-2")
        assert net.entry(np1, det2)
        assert net.entry(s2, subj3)

    def test_figure7_precedence_graph(self, traced, toy_grammar):
        _, result = traced
        parses = extract_parses(result.network)
        assert len(parses) == 1
        assignment = parses[0].pretty_assignment(toy_grammar.symbols)
        assert assignment == {
            (1, "governor"): "DET-2",
            (1, "needs"): "BLANK-nil",
            (2, "governor"): "SUBJ-3",
            (2, "needs"): "NP-1",
            (3, "governor"): "ROOT-nil",
            (3, "needs"): "S-2",
        }

    def test_figure7_graph_edges(self, traced, toy_grammar):
        _, result = traced
        graph = extract_parses(result.network)[0].to_networkx(toy_grammar.symbols)
        # The -> program (DET), program -> runs (SUBJ), runs -> program (S),
        # program -> The (NP); ROOT-nil and BLANK-nil contribute no edge.
        edges = {(u, v, data["label"]) for u, v, data in graph.edges(data=True)}
        assert edges == {
            (1, 2, "DET"),
            (2, 3, "SUBJ"),
            (3, 2, "S"),
            (2, 1, "NP"),
        }

    def test_heads_vector(self, traced, toy_grammar):
        _, result = traced
        parse = extract_parses(result.network)[0]
        governor = toy_grammar.symbols.roles.code("governor")
        assert parse.heads(governor) == {1: 2, 2: 3, 3: 0}


class TestArcCounts:
    def test_number_of_arcs_matches_paper(self, traced):
        """(q*n choose 2) = 15 arcs for q=2, n=3."""
        recorder, _ = traced
        net = recorder.networks["built"]
        n_roles = net.n_roles
        assert n_roles == 6
        assert n_roles * (n_roles - 1) // 2 == 15

    def test_initial_matrices_all_ones_across_roles(self, traced):
        recorder, _ = traced
        net = recorder.networks["built"]
        block = net.arc_matrix(net.role_of(1, "governor"), net.role_of(2, "needs"))
        assert block.all()
        assert block.shape == (9, 9)
