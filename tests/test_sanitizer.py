"""The runtime sanitizer (repro.analysis.sanitizer).

Run with ``pytest -m sanitize`` (the CI smoke job) or as part of the
full suite.  Each test enables the sanitizer through the ``sanitized``
fixture, seeds a violation, and asserts the sanitizer names it.
"""

from __future__ import annotations

import subprocess
import sys
import threading

import numpy as np
import pytest

from repro import ParserSession, create_engine
from repro.analysis import sanitizer as sanitizer_module
from repro.grammar.builtin import program_grammar

pytestmark = pytest.mark.sanitize


class TestCleanRunsStayClean:
    @pytest.mark.parametrize("engine", ["serial", "vector", "vector-bool"])
    def test_normal_parse_raises_nothing(self, sanitized, toy_grammar, engine):
        session = ParserSession(toy_grammar, engine=create_engine(engine))
        result = session.parse("The program runs")
        assert result.locally_consistent
        assert result.network.packed_active
        assert sanitized.diagnostics() == []

    def test_enable_is_idempotent_and_disable_restores(self, sanitized):
        from repro.network.network import ConstraintNetwork

        patched = ConstraintNetwork.kill
        sanitized.enable()
        assert ConstraintNetwork.kill is patched  # no double wrap


class TestMonotonicity:
    def test_seeded_zero_to_one_flip_is_caught_at_repack(self, sanitized, toy_grammar):
        session = ParserSession(toy_grammar, engine="vector")
        network = session.parse("The program runs").network
        network.materialize_bool()
        matrix = network.matrix
        dead = np.argwhere(~matrix)
        assert dead.size, "need at least one zeroed arc to revive"
        a, b = dead[0]
        matrix[a, b] = True  # the bug class the paper's discipline forbids
        with pytest.raises(sanitizer_module.SanitizerError, match="monotonicity"):
            network.repack()

    def test_seeded_alive_revival_is_caught(self, sanitized, toy_grammar):
        session = ParserSession(toy_grammar, engine="serial")
        network = session.parse("The program runs").network
        killed = np.argwhere(~network.alive)
        if not killed.size:
            pytest.skip("parse killed nothing")
        network.materialize_bool()
        network.alive[killed[0, 0]] = True
        with pytest.raises(sanitizer_module.SanitizerError, match="alive_bits"):
            network.repack()

    def test_clean_materialize_repack_passes(self, sanitized, toy_grammar):
        session = ParserSession(toy_grammar, engine="vector")
        network = session.parse("The program runs").network
        before = network.matrix_bits.copy()
        network.materialize_bool()
        network.repack()
        np.testing.assert_array_equal(network.matrix_bits, before)


class TestThreadOwnership:
    def test_cross_thread_session_reuse_is_caught(self, sanitized, toy_grammar):
        session = ParserSession(toy_grammar, engine="vector")
        session.parse("The program runs")  # this thread now owns it

        caught: list[BaseException] = []

        def reuse():
            try:
                session.parse("The program runs")
            except sanitizer_module.SanitizerError as error:
                caught.append(error)

        thread = threading.Thread(target=reuse)
        thread.start()
        thread.join()
        assert len(caught) == 1
        assert "cross-thread" in str(caught[0])

    def test_same_thread_reuse_is_fine(self, sanitized, toy_grammar):
        session = ParserSession(toy_grammar, engine="vector")
        session.parse("The program runs")
        session.parse("The program runs")

    def test_clone_starts_unowned(self, sanitized, toy_grammar):
        session = ParserSession(toy_grammar, engine="vector")
        network = session.parse("The program runs").network
        clone = network.clone()

        done: list[bool] = []

        def touch():
            clone.kill(np.asarray([], dtype=np.int64))
            done.append(True)

        thread = threading.Thread(target=touch)
        thread.start()
        thread.join()
        assert done == [True]


class TestEnvEnable:
    def test_maybe_enable_from_env(self, monkeypatch):
        monkeypatch.setenv(sanitizer_module.ENV_VAR, "0")
        assert not sanitizer_module.maybe_enable_from_env()
        monkeypatch.setenv(sanitizer_module.ENV_VAR, "1")
        try:
            assert sanitizer_module.maybe_enable_from_env()
            assert sanitizer_module.is_enabled()
        finally:
            sanitizer_module.disable()

    def test_import_repro_with_env_set_enables(self):
        code = (
            "import repro\n"
            "from repro.analysis import sanitizer\n"
            "raise SystemExit(0 if sanitizer.is_enabled() else 1)\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env={"REPRO_SANITIZE": "1", "PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            capture_output=True,
        )
        assert proc.returncode == 0, proc.stderr.decode()
