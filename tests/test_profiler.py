"""Tests for the per-constraint elimination profiler."""

from __future__ import annotations

import pytest

from repro import SerialEngine
from repro.analysis import profile_parse
from repro.grammar.builtin import english_grammar, program_grammar


class TestProfileToyGrammar:
    @pytest.fixture(scope="class")
    def profile(self):
        return profile_parse(program_grammar(), "The program runs")

    def test_totals_are_conserved(self, profile):
        killed = sum(r.killed_total for r in profile.records) + profile.killed_by_filtering
        assert profile.initial_role_values - killed == profile.surviving_role_values
        assert profile.initial_role_values == 54
        assert profile.surviving_role_values == 6

    def test_unary_eliminations_match_figures(self, profile):
        """Figures 1 -> 3: unary constraints remove 44 of 54 role values."""
        unary_killed = sum(r.killed_total for r in profile.records if r.arity == 1)
        assert unary_killed == 44

    def test_each_binary_constraint_removes_one(self, profile):
        """Figures 4 -> 6: each binary constraint settles one more role."""
        binary = [r for r in profile.records if r.arity == 2]
        assert [r.killed_total for r in binary] == [1, 1, 1, 1]
        # Binary constraints kill via the consistency sweep, not directly.
        assert all(r.killed_direct == 0 for r in binary)

    def test_settled_after_all_constraints(self, profile):
        assert profile.settled_after() == 10
        assert profile.idle_constraints() == []

    def test_result_attached(self, profile):
        assert profile.result is not None
        assert profile.result.locally_consistent

    def test_rows_shape(self, profile):
        rows = profile.as_rows()
        assert len(rows) == 11  # 10 constraints + filtering line
        assert rows[-1][0] == "(final filtering)"


class TestProfileEnglish:
    def test_some_constraints_idle_on_simple_sentences(self):
        """The paper: parses often settle after a portion of constraints."""
        profile = profile_parse(english_grammar(), "dogs bark")
        assert profile.idle_constraints(), "a 2-word sentence cannot need every constraint"
        assert profile.settled_after() < len(profile.records)

    def test_serial_engine_profiles_identically(self):
        vector = profile_parse(program_grammar(), "The program runs")
        serial = profile_parse(program_grammar(), "The program runs", engine=SerialEngine())
        assert [r.killed_total for r in vector.records] == [
            r.killed_total for r in serial.records
        ]

    def test_rejected_sentence_profile(self):
        profile = profile_parse(english_grammar(), "dog the runs")
        assert profile.result is not None
        assert not profile.result.locally_consistent
        assert profile.surviving_role_values < profile.initial_role_values
