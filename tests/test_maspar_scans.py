"""Unit + property tests for the segmented scan primitives."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.maspar import (
    segment_reduce_add,
    segment_reduce_and,
    segment_reduce_max,
    segment_reduce_or,
    segment_starts,
    segmented_scan_add,
    segmented_scan_and,
    segmented_scan_or,
)


def reference_scan(values, seg_id, op, init):
    """Obvious per-element loop to test the vectorized scans against."""
    out = []
    acc = init
    prev = None
    for v, s in zip(values, seg_id, strict=True):
        if s != prev:
            acc = init
            prev = s
        acc = op(acc, v)
        out.append(acc)
    return out


segments = st.lists(st.integers(1, 5), min_size=0, max_size=6).map(
    lambda lengths: np.repeat(np.arange(len(lengths)), lengths)
)


@st.composite
def seg_and_bits(draw):
    seg_id = draw(segments)
    bits = draw(
        st.lists(st.booleans(), min_size=len(seg_id), max_size=len(seg_id))
    )
    return seg_id, np.array(bits, dtype=bool)


@st.composite
def seg_and_ints(draw):
    seg_id = draw(segments)
    values = draw(
        st.lists(st.integers(-50, 50), min_size=len(seg_id), max_size=len(seg_id))
    )
    return seg_id, np.array(values, dtype=np.int64)


class TestScans:
    @settings(max_examples=200, deadline=None)
    @given(data=seg_and_bits())
    def test_scan_or_matches_reference(self, data):
        seg_id, bits = data
        expected = reference_scan(bits, seg_id, lambda a, b: a or b, False)
        assert list(segmented_scan_or(bits, seg_id)) == expected

    @settings(max_examples=200, deadline=None)
    @given(data=seg_and_bits())
    def test_scan_and_matches_reference(self, data):
        seg_id, bits = data
        expected = reference_scan(bits, seg_id, lambda a, b: a and b, True)
        assert list(segmented_scan_and(bits, seg_id)) == expected

    @settings(max_examples=200, deadline=None)
    @given(data=seg_and_ints())
    def test_scan_add_matches_reference(self, data):
        seg_id, values = data
        expected = reference_scan(values, seg_id, lambda a, b: a + b, 0)
        assert list(segmented_scan_add(values, seg_id)) == expected

    def test_single_segment(self):
        bits = np.array([0, 1, 0], dtype=bool)
        seg = np.zeros(3, dtype=np.int64)
        assert list(segmented_scan_or(bits, seg)) == [False, True, True]

    def test_empty(self):
        empty = np.array([], dtype=bool)
        seg = np.array([], dtype=np.int64)
        assert len(segmented_scan_or(empty, seg)) == 0
        assert len(segment_reduce_or(empty, seg)) == 0

    def test_decreasing_segments_rejected(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            segmented_scan_or(np.array([True, True]), np.array([1, 0]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            segmented_scan_or(np.array([True]), np.array([0, 0]))


class TestReduces:
    @settings(max_examples=200, deadline=None)
    @given(data=seg_and_bits())
    def test_reduce_or(self, data):
        seg_id, bits = data
        expected = [
            any(bits[seg_id == s]) for s in seg_id
        ]
        assert list(segment_reduce_or(bits, seg_id)) == expected

    @settings(max_examples=200, deadline=None)
    @given(data=seg_and_bits())
    def test_reduce_and(self, data):
        seg_id, bits = data
        expected = [all(bits[seg_id == s]) for s in seg_id]
        assert list(segment_reduce_and(bits, seg_id)) == expected

    @settings(max_examples=200, deadline=None)
    @given(data=seg_and_ints())
    def test_reduce_add(self, data):
        seg_id, values = data
        expected = [int(values[seg_id == s].sum()) for s in seg_id]
        assert list(segment_reduce_add(values, seg_id)) == expected

    @settings(max_examples=100, deadline=None)
    @given(data=seg_and_ints())
    def test_reduce_max(self, data):
        seg_id, values = data
        expected = [int(values[seg_id == s].max()) for s in seg_id]
        assert list(segment_reduce_max(values, seg_id)) == expected


class TestSegmentStarts:
    def test_basic(self):
        seg = np.array([0, 0, 1, 1, 1, 2])
        assert list(segment_starts(seg)) == [True, False, True, False, False, True]

    def test_empty(self):
        assert len(segment_starts(np.array([], dtype=np.int64))) == 0
