"""Tests for the extended English grammar (pronouns, proper nouns,
copula + predicate adjectives, subject relative clauses)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import MasParEngine, SerialEngine, VectorEngine, accepts, extract_parses
from repro.grammar.builtin import english_extended_grammar

ENGINE = VectorEngine()


@pytest.fixture(scope="module")
def grammar():
    return english_extended_grammar()


def parse(grammar, text):
    return ENGINE.parse(grammar, text)


BASE_STILL_ACCEPTED = [
    "dogs bark",
    "the dog runs",
    "the big red dog runs quickly",
    "the dog sees the cat",
    "the man sees the woman with the telescope",
]

NEW_ACCEPTED = [
    "she sees him",
    "she runs",
    "they chase the cat",
    "the dog sees them",
    "it sees it",
    "mary likes john",
    "john runs in the park",
    "mary sees the dog with the telescope",
    "the dog is big",
    "she is happy",
    "john is old",
    "the dog that barks runs",
    "the dog that barks sees the cat",
    "the cat sees the dog that barks",
    "she sees the dog that sleeps",
]

REJECTED = [
    "him sees she",  # case violation: accusative subject
    "her runs",
    "she sees he",  # nominative object
    "the john runs",  # determiner on a proper noun
    "big is the dog",  # predicate adjective precedes the copula
    "the dog is big red",  # two predicates
    "the dog that runs",  # relative clause without a matrix verb
    "that barks runs",  # relative pronoun with no head noun
    "the dog that barks that runs sleeps",  # stacked relatives (one RROOT per noun)
    "the dog barks the cat barks",  # still a single root
]


class TestAcceptance:
    @pytest.mark.parametrize("text", BASE_STILL_ACCEPTED)
    def test_base_constructions_still_parse(self, grammar, text):
        assert accepts(parse(grammar, text).network), text

    @pytest.mark.parametrize("text", NEW_ACCEPTED)
    def test_new_constructions(self, grammar, text):
        assert accepts(parse(grammar, text).network), text

    @pytest.mark.parametrize("text", REJECTED)
    def test_rejections(self, grammar, text):
        assert not accepts(parse(grammar, text).network), text


class TestStructures:
    def test_pronoun_case_labels(self, grammar):
        result = parse(grammar, "she sees him")
        graph = extract_parses(result.network)[0]
        mapping = graph.pretty_assignment(grammar.symbols)
        assert mapping[(1, "governor")] == "SUBJ-2"
        assert mapping[(3, "governor")] == "OBJ-2"

    def test_predicate_adjective_structure(self, grammar):
        result = parse(grammar, "the dog is big")
        graph = extract_parses(result.network)[0]
        mapping = graph.pretty_assignment(grammar.symbols)
        assert mapping[(4, "governor")] == "PRED-3"
        assert mapping[(2, "governor")] == "SUBJ-3"

    def test_relative_clause_structure(self, grammar):
        result = parse(grammar, "the dog that barks runs")
        parses = extract_parses(result.network, limit=None)
        assert len(parses) == 1
        mapping = parses[0].pretty_assignment(grammar.symbols)
        assert mapping[(2, "governor")] == "SUBJ-5"  # dog -> runs
        assert mapping[(3, "governor")] == "RSUBJ-4"  # that -> barks
        assert mapping[(4, "governor")] == "RROOT-2"  # barks -> dog
        assert mapping[(4, "needs")] == "S-3"  # barks' subject is "that"
        assert mapping[(5, "governor")] == "ROOT-nil"

    def test_relative_clause_inside_object(self, grammar):
        result = parse(grammar, "the cat sees the dog that barks")
        graph = extract_parses(result.network)[0]
        mapping = graph.pretty_assignment(grammar.symbols)
        assert mapping[(6, "governor")] == "RSUBJ-7"
        assert mapping[(7, "governor")] == "RROOT-5"

    def test_lattice_with_pronoun_confusion(self, grammar):
        """Recognizer confusion she/her resolved by syntactic case."""
        lattice = grammar.tokenize_lattice([["she", "her"], ["sees"], ["him", "he"]])
        result = ENGINE.parse(grammar, lattice)
        parses = extract_parses(result.network, limit=None)
        assert len(parses) == 1
        npron = grammar.symbols.categories.code("npron")
        apron = grammar.symbols.categories.code("apron")
        assert parses[0].role_value(1, 0).cat == npron
        assert parses[0].role_value(3, 0).cat == apron


class TestEngineAgreement:
    @pytest.mark.parametrize(
        "text", ["she sees him", "the dog that barks runs", "the dog is big"]
    )
    def test_engines_settle_identically(self, grammar, text):
        reference = parse(grammar, text)
        for engine in (SerialEngine(), MasParEngine()):
            result = engine.parse(grammar, text)
            np.testing.assert_array_equal(result.network.alive, reference.network.alive)
            np.testing.assert_array_equal(result.network.matrix, reference.network.matrix)
