"""Execute every Python block in docs/tutorial.md — the tutorial cannot rot."""

from __future__ import annotations

import pathlib
import re

TUTORIAL = pathlib.Path(__file__).parent.parent / "docs" / "tutorial.md"


def python_blocks(text: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_tutorial_blocks_execute_in_order(capsys):
    blocks = python_blocks(TUTORIAL.read_text())
    assert len(blocks) >= 8, "tutorial structure changed — update this test"
    namespace: dict = {}
    for index, block in enumerate(blocks):
        try:
            exec(compile(block, f"tutorial-block-{index}", "exec"), namespace)
        except Exception as error:  # pragma: no cover - diagnostic aid
            raise AssertionError(f"tutorial block {index} failed: {error}\n{block}") from error
    # The walk-through must have produced a working grammar.
    assert "grammar" in namespace
    assert namespace["grammar"].k == 7


def test_tutorial_mentions_the_tooling():
    text = TUTORIAL.read_text()
    for needle in ("TraceRecorder", "profile_parse", "dump_grammar", "MasParEngine"):
        assert needle in text
