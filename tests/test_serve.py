"""The serving layer: batcher determinism, admission, deadlines, e2e.

The load-bearing invariants:

* the batcher is deterministic — it owns no clock and no lock, so every
  flush rule is tested with explicit fake times and zero sleeps;
* overload and deadline failures are *typed* and the metrics counters
  account for every submitted request
  (``submitted == accepted + rejected`` and, once idle,
  ``accepted == completed + failed + expired + cancelled``);
* a deadline-expired request is never dispatched;
* ``drain`` completes all accepted work;
* service results are bit-identical to ``ParserSession.parse_many`` on
  the same sentences — scheduling never changes what is computed;
* one :class:`ParserSession` entered by two threads raises
  :class:`ConcurrentSessionUse` instead of corrupting state.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future

import pytest

from repro import ConcurrentSessionUse, ParserSession
from repro.engines.base import EngineStats, ParserEngine
from repro.grammar.builtin import english_grammar
from repro.serve import (
    DeadlineExceeded,
    ParseRequest,
    ParseService,
    ServiceMetrics,
    ServiceOverloaded,
    ServiceUnavailable,
    ShapeBatcher,
)
from repro.workloads import sentence_of_length
from tests.test_pipeline import DETERMINISTIC_STATS, assert_same_network

WAIT = 10.0  # generous upper bound for every blocking wait in this file


def make_request(key="shape-a", enqueued=0.0, deadline=None) -> ParseRequest:
    """A batcher-level request; the sentence payload is irrelevant there."""
    return ParseRequest(sentence=None, key=key, enqueued=enqueued, deadline=deadline)


class GateEngine(ParserEngine):
    """An engine that parks inside ``run`` until released (test control)."""

    name = "gate-test"

    def __init__(self):
        self.entered = threading.Event()
        self.release = threading.Event()

    def run(self, network, *, compiled=None, filter_limit=None, trace=None):
        self.entered.set()
        assert self.release.wait(WAIT), "GateEngine never released"
        return EngineStats(engine=self.name)


class TestShapeBatcher:
    def test_flush_on_max_batch_size(self):
        batcher = ShapeBatcher(max_batch_size=3, max_linger=60.0)
        for i in range(3):
            batcher.add(make_request(enqueued=float(i)))
        batch = batcher.pop_ready(now=2.0)  # linger nowhere near elapsed
        assert batch is not None and len(batch) == 3
        assert len(batcher) == 0

    def test_flush_on_linger_with_fake_clock(self):
        batcher = ShapeBatcher(max_batch_size=100, max_linger=0.5)
        batcher.add(make_request(enqueued=10.0))
        assert batcher.pop_ready(now=10.4) is None  # not lingered yet
        assert batcher.next_event(now=10.4) == pytest.approx(0.1)
        batch = batcher.pop_ready(now=10.5)
        assert batch is not None and len(batch) == 1

    def test_batches_are_single_shape_and_oldest_group_first(self):
        batcher = ShapeBatcher(max_batch_size=10, max_linger=0.0)
        batcher.add(make_request(key="b", enqueued=1.0))
        batcher.add(make_request(key="a", enqueued=0.0))
        batcher.add(make_request(key="b", enqueued=2.0))
        first = batcher.pop_ready(now=5.0)
        assert [r.key for r in first] == ["a"]  # oldest head wins
        second = batcher.pop_ready(now=5.0)
        assert [r.key for r in second] == ["b", "b"]
        assert batcher.pop_ready(now=5.0) is None

    def test_max_batch_size_caps_and_remainder_stays(self):
        batcher = ShapeBatcher(max_batch_size=2, max_linger=0.0)
        for i in range(5):
            batcher.add(make_request(enqueued=float(i)))
        sizes = []
        while (batch := batcher.pop_ready(now=100.0)) is not None:
            sizes.append(len(batch))
        assert sizes == [2, 2, 1]

    def test_expired_requests_are_removed_never_dispatched(self):
        batcher = ShapeBatcher(max_batch_size=10, max_linger=0.0)
        batcher.add(make_request(enqueued=0.0, deadline=1.0))
        batcher.add(make_request(enqueued=0.0, deadline=5.0))
        expired = batcher.expire(now=2.0)
        assert len(expired) == 1 and expired[0].deadline == 1.0
        batch = batcher.pop_ready(now=2.0)
        assert [r.deadline for r in batch] == [5.0]

    def test_cancelled_future_is_swept_by_expire(self):
        batcher = ShapeBatcher()
        request = make_request()
        request.future.cancel()
        batcher.add(request)
        assert [r for r in batcher.expire(now=0.0)] == [request]
        assert len(batcher) == 0

    def test_next_event_covers_deadlines_and_empty(self):
        batcher = ShapeBatcher(max_batch_size=10, max_linger=5.0)
        assert batcher.next_event(now=0.0) is None
        batcher.add(make_request(enqueued=0.0, deadline=2.0))
        # Deadline (t=2) precedes the linger flush (t=5).
        assert batcher.next_event(now=0.0) == pytest.approx(2.0)
        assert batcher.next_event(now=3.0) == 0.0  # overdue clamps to now

    def test_force_flush_ignores_rules(self):
        batcher = ShapeBatcher(max_batch_size=100, max_linger=60.0)
        batcher.add(make_request())
        assert batcher.pop_ready(now=0.0) is None
        assert len(batcher.pop_ready(now=0.0, force=True)) == 1

    def test_clear_returns_everything(self):
        batcher = ShapeBatcher()
        for key in ("a", "b", "a"):
            batcher.add(make_request(key=key))
        assert len(batcher.clear()) == 3
        assert len(batcher) == 0 and batcher.n_shapes == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ShapeBatcher(max_batch_size=0)
        with pytest.raises(ValueError):
            ShapeBatcher(max_linger=-1.0)


class TestServiceMetrics:
    def test_histogram_summary_and_quantiles(self):
        metrics = ServiceMetrics()
        for ms in (1, 1, 2, 3, 100):
            metrics.latency_seconds.observe(ms / 1000.0)
        summary = metrics.latency_seconds.summary()
        assert summary["count"] == 5
        assert summary["min"] == pytest.approx(0.001)
        assert summary["max"] == pytest.approx(0.1)
        assert summary["p50"] <= summary["p90"] <= summary["p99"] <= summary["max"]

    def test_snapshot_shape_and_render(self):
        metrics = ServiceMetrics()
        metrics.submitted.inc(3)
        metrics.accepted.inc(2)
        metrics.rejected.inc()
        metrics.batch_size.observe(2)
        snap = metrics.snapshot()
        assert snap["counters"]["submitted"] == 3
        assert snap["counters"]["rejected"] == 1
        assert snap["gauges"]["queue_depth"] == 0
        text = metrics.render(snap)
        assert "submitted" in text and "queue_wait_seconds" in text


class TestServiceEndToEnd:
    def test_results_bit_identical_to_parse_many(self):
        grammar = english_grammar()
        sentences = [
            ["the", "dog", "runs"],
            ["dogs", "bark"],
            ["the", "cat", "sleeps"],  # same shape as "the dog runs"
            ["the", "dog", "sees", "the", "cat"],
            ["the", "old", "dog", "runs"],
        ] * 3
        with ParseService(grammar, engine="vector", workers=2, max_linger=0.001) as service:
            served = service.parse_many(sentences)
        baseline = ParserSession(grammar, engine="vector").parse_many(sentences)
        for warm, cold in zip(served, baseline, strict=True):
            assert_same_network(warm.network, cold.network)
            assert warm.locally_consistent == cold.locally_consistent
            assert warm.ambiguous == cold.ambiguous
            for stat in DETERMINISTIC_STATS:
                assert getattr(warm.stats, stat) == getattr(cold.stats, stat), stat

    def test_parse_and_submit_paths_agree(self):
        with ParseService(english_grammar(), workers=1) as service:
            direct = service.parse(["the", "dog", "runs"])
            future = service.submit("the dog runs")
            assert isinstance(future, Future)
            assert_same_network(direct.network, future.result(WAIT).network)

    def test_lifecycle_and_unavailable_errors(self):
        service = ParseService(english_grammar(), workers=1)
        with pytest.raises(ServiceUnavailable):  # not started
            service.submit("dogs bark")
        service.start()
        with pytest.raises(ServiceUnavailable):  # double start
            service.start()
        service.parse("dogs bark")
        service.shutdown()
        with pytest.raises(ServiceUnavailable):  # stopped
            service.submit("dogs bark")
        assert service.state == "stopped"
        assert all(not worker.alive for worker in service._workers)

    def test_constructor_validation(self):
        grammar = english_grammar()
        with pytest.raises(ValueError):
            ParseService(grammar, workers=0)
        with pytest.raises(ValueError):
            ParseService(grammar, max_queue=0)
        with pytest.raises(ValueError):
            ParseService(grammar, admission="maybe")
        with pytest.raises(ValueError):  # engine instance shared across threads
            ParseService(grammar, engine=GateEngine(), workers=2)


class TestOverloadAndDeadlines:
    def overloaded_service(self):
        """A 1-worker service wedged on its first request, queue full."""
        engine = GateEngine()
        service = ParseService(
            english_grammar(),
            engine=engine,
            workers=1,
            max_queue=2,
            max_batch_size=1,
            max_linger=0.0,
        ).start()
        blocked = service.submit("the dog runs")
        assert engine.entered.wait(WAIT)  # worker is now inside run()
        queued = [service.submit("the dog runs") for _ in range(2)]
        return service, engine, blocked, queued

    def test_overload_rejects_with_typed_error_and_full_accounting(self):
        service, engine, blocked, queued = self.overloaded_service()
        try:
            with pytest.raises(ServiceOverloaded, match="queue full"):
                service.submit("the dog runs")
        finally:
            engine.release.set()
        assert service.drain(WAIT)
        for future in [blocked, *queued]:
            assert future.result(WAIT).stats.engine == "gate-test"
        counters = service.snapshot()["counters"]
        assert counters["submitted"] == 4
        assert counters["rejected"] == 1
        assert counters["accepted"] == 3
        assert counters["submitted"] == counters["accepted"] + counters["rejected"]
        assert counters["accepted"] == (
            counters["completed"] + counters["failed"]
            + counters["expired"] + counters["cancelled"]
        )
        service.shutdown()

    def test_block_admission_waits_for_space(self):
        engine = GateEngine()
        service = ParseService(
            english_grammar(),
            engine=engine,
            workers=1,
            max_queue=1,
            max_batch_size=1,
            max_linger=0.0,
            admission="block",
        ).start()
        service.submit("the dog runs")
        assert engine.entered.wait(WAIT)
        service.submit("the dog runs")  # fills the queue
        unblocked = threading.Event()
        futures = []

        def producer():
            futures.append(service.submit("the dog runs"))
            unblocked.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        assert not unblocked.wait(0.05)  # genuinely blocked on admission
        engine.release.set()  # worker frees queue slots
        assert unblocked.wait(WAIT)
        thread.join(WAIT)
        assert service.drain(WAIT)
        assert futures[0].result(WAIT) is not None
        assert service.snapshot()["counters"]["completed"] == 3
        service.shutdown()

    def test_expired_requests_fail_typed_and_are_never_dispatched(self):
        with ParseService(
            english_grammar(), workers=1, max_linger=0.0, default_timeout=None
        ) as service:
            futures = [service.submit("the dog runs", timeout=0.0) for _ in range(3)]
            service.drain(WAIT)
            for future in futures:
                with pytest.raises(DeadlineExceeded):
                    future.result(WAIT)
            counters = service.snapshot()["counters"]
            assert counters["expired"] == 3
            assert counters["completed"] == 0  # never dispatched
            assert counters["submitted"] == counters["accepted"] + counters["rejected"]
            assert counters["accepted"] == (
                counters["completed"] + counters["failed"]
                + counters["expired"] + counters["cancelled"]
            )

    def test_cancelled_future_is_never_parsed(self):
        service, engine, blocked, queued = self.overloaded_service()
        try:
            assert queued[0].cancel()  # still queued behind the wedged worker
        finally:
            engine.release.set()
        assert service.drain(WAIT)
        assert queued[0].cancelled()
        counters = service.snapshot()["counters"]
        assert counters["cancelled"] == 1
        assert counters["completed"] == 2
        service.shutdown()

    def test_drain_completes_in_flight_and_queued_work(self):
        service, engine, blocked, queued = self.overloaded_service()
        drained = threading.Event()

        def drainer():
            assert service.drain(WAIT)
            drained.set()

        thread = threading.Thread(target=drainer, daemon=True)
        thread.start()
        assert not drained.wait(0.05)  # worker still wedged: drain must wait
        engine.release.set()
        assert drained.wait(WAIT)
        thread.join(WAIT)
        assert all(future.done() for future in [blocked, *queued])
        snap = service.snapshot()
        assert snap["gauges"]["queue_depth"] == 0
        assert snap["service"]["in_flight"] == 0
        with pytest.raises(ServiceUnavailable):  # draining stopped admission
            service.submit("the dog runs")
        service.shutdown()

    def test_abrupt_shutdown_abandons_queue_with_typed_error(self):
        service, engine, blocked, queued = self.overloaded_service()
        service.shutdown(wait=False)
        engine.release.set()
        for future in queued:
            with pytest.raises(ServiceUnavailable):
                future.result(WAIT)
        counters = service.snapshot()["counters"]
        assert counters["cancelled"] == 2
        assert counters["submitted"] == counters["accepted"] + counters["rejected"]


class TestMemoryAdmission:
    """The memory-aware half of admission: per-shape byte estimates."""

    def wedged_service(self, *, max_memory_bytes, admission="reject"):
        """A 1-worker service parked on its first request, shape profiled.

        The worker is inside ``run`` (queue empty), and the test shape's
        network size has been recorded as 600 bytes, so subsequent
        submits exercise the memory bound deterministically.
        """
        engine = GateEngine()
        service = ParseService(
            english_grammar(),
            engine=engine,
            workers=1,
            max_queue=10,
            max_batch_size=1,
            max_linger=0.0,
            max_memory_bytes=max_memory_bytes,
            admission=admission,
        ).start()
        key = english_grammar().tokenize("the dog runs").category_sets
        service._note_network_bytes(key, 600)
        wedged = service.submit("the dog runs")
        assert engine.entered.wait(WAIT)
        return service, engine, wedged

    def test_memory_bound_rejects_once_estimate_exceeds(self):
        service, engine, wedged = self.wedged_service(max_memory_bytes=1000)
        try:
            # Queue is empty: always admitted, whatever the estimate.
            first = service.submit("the dog runs")
            assert service.snapshot()["gauges"]["queued_bytes"] == 600
            # 600 queued + 600 estimated > 1000: memory bound rejects.
            with pytest.raises(ServiceOverloaded, match="max_memory_bytes"):
                service.submit("the dog runs")
        finally:
            engine.release.set()
        assert service.drain(WAIT)
        assert wedged.result(WAIT) is not None and first.result(WAIT) is not None
        snap = service.snapshot()
        assert snap["gauges"]["queued_bytes"] == 0  # released on dispatch
        counters = snap["counters"]
        assert counters["rejected"] == 1
        assert counters["submitted"] == counters["accepted"] + counters["rejected"]
        service.shutdown()

    def test_unprofiled_shapes_are_not_memory_bounded(self):
        service, engine, wedged = self.wedged_service(max_memory_bytes=1000)
        try:
            # A shape never parsed estimates as 0 bytes: the memory
            # bound cannot hold it back, only queue depth can.
            futures = [service.submit("dogs bark") for _ in range(3)]
            assert service.snapshot()["gauges"]["queued_bytes"] == 0
        finally:
            engine.release.set()
        assert service.drain(WAIT)
        for future in futures:
            assert future.result(WAIT) is not None
        service.shutdown()

    def test_block_admission_waits_for_memory(self):
        service, engine, wedged = self.wedged_service(
            max_memory_bytes=1000, admission="block"
        )
        first = service.submit("the dog runs")
        unblocked = threading.Event()
        futures = []

        def producer():
            futures.append(service.submit("the dog runs"))
            unblocked.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        assert not unblocked.wait(0.05)  # held back by the memory bound
        engine.release.set()  # worker drains the queue, freeing bytes
        assert unblocked.wait(WAIT)
        thread.join(WAIT)
        assert service.drain(WAIT)
        for future in [wedged, first, *futures]:
            assert future.result(WAIT) is not None
        service.shutdown()

    def test_workers_profile_shapes_and_snapshot_reports_memory(self):
        with ParseService(english_grammar(), workers=1, max_memory_bytes=10**9) as service:
            service.parse(["the", "dog", "runs"])
            service.parse(["dogs", "bark"])
            snap = service.snapshot()
        memory = snap["service"]["memory"]
        assert memory["max_memory_bytes"] == 10**9
        assert memory["shapes_profiled"] == 2
        assert memory["template_cache_bytes"] > 0
        assert snap["gauges"]["network_bytes"] > 0
        assert snap["gauges"]["template_cache_bytes"] == memory["template_cache_bytes"]
        assert "memory:" in ServiceMetrics.render(service.metrics, snap)


class TestBatchingBehaviour:
    def test_batches_bind_one_template(self):
        """A shape-interleaved load: per-batch template locality."""
        grammar = english_grammar()
        lengths = (3, 4, 5, 6)
        sentences = [sentence_of_length(lengths[i % 4]) for i in range(32)]
        with ParseService(
            grammar, workers=1, max_batch_size=8, max_linger=0.05,
            template_cache_size=2,  # smaller than the live shape count
        ) as service:
            service.parse_many(sentences)
            snap = service.snapshot()
        cache = snap["service"]["template_cache"]
        # Arrival order (round-robin over 4 shapes, cache of 2) would
        # miss every time; shape batching must recover real hit rate.
        assert cache["hits"] > cache["misses"]
        assert snap["histograms"]["batch_size"]["mean"] > 1.0


class TestConcurrentSessionGuard:
    def test_second_thread_gets_typed_error(self):
        engine = GateEngine()
        session = ParserSession(english_grammar(), engine=engine)
        results = []
        thread = threading.Thread(
            target=lambda: results.append(session.parse("the dog runs")), daemon=True
        )
        thread.start()
        assert engine.entered.wait(WAIT)  # first parse is mid-flight
        try:
            with pytest.raises(ConcurrentSessionUse):
                session.parse("dogs bark")
        finally:
            engine.release.set()
        thread.join(WAIT)
        assert results and results[0].stats.engine == "gate-test"

    def test_guard_releases_after_parse_and_after_errors(self):
        session = ParserSession(english_grammar(), engine="vector")
        session.parse("the dog runs")
        with pytest.raises(Exception):
            session.parse("xyzzy not in lexicon")
        # Guard must have been released both times.
        assert session.parse("dogs bark").locally_consistent
