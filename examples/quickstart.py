#!/usr/bin/env python
"""Quickstart: parse the paper's example sentence, end to end.

Reproduces the worked example of the paper's section 1 — "The program
runs" under the toy grammar — showing the constraint network before and
after propagation, the final precedence graph (paper Figure 7), and the
simulated-MasPar timing of section 3.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import MasParEngine, SerialEngine, extract_parses
from repro.grammar.builtin import program_grammar


def main() -> None:
    grammar = program_grammar()
    print(f"Grammar: {grammar!r}\n")

    # -- watch the network evolve (paper Figures 1-6) --------------------
    states: list[tuple[str, str]] = []
    engine = SerialEngine()
    result = engine.parse(
        grammar,
        "The program runs",
        trace=lambda event, net: states.append((event, net.describe())),
    )

    for event in ("built", "unary-done", "filtering-done"):
        description = next(text for name, text in states if name == event)
        print(f"--- after {event} ---")
        print(description)
        print()

    # -- acceptance and the precedence graph (Figure 7) -------------------
    print("locally consistent:", result.locally_consistent)
    print("ambiguous:", result.ambiguous)
    parses = extract_parses(result.network)
    print(f"\n{len(parses)} parse(s):")
    for parse in parses:
        print(parse.describe(grammar.symbols))

    # -- and on the simulated MasPar MP-1 (section 3) ---------------------
    maspar = MasParEngine().parse(grammar, "The program runs")
    stats = maspar.stats
    print(
        f"\nSimulated MasPar MP-1: {stats.processors} virtual PEs "
        f"(paper: 324), {stats.extra['cycles']:,} cycles, "
        f"simulated parse time {stats.simulated_seconds:.3f} s (paper: ~0.15 s)"
    )


if __name__ == "__main__":
    main()
