#!/usr/bin/env python
"""Structural ambiguity in the English grammar: PP attachment.

The paper (section 1.5) argues that CDG's constraint networks "compactly
store multiple parses and such ambiguity is easy to detect", letting a
system postpone structural decisions until more constraints arrive.
This example parses the classic ambiguous sentence

    "the man sees the woman with the telescope"

shows all three precedence graphs the settled network stores, then
demonstrates the paper's proposed remedy: propagating one *additional*
contextual constraint to collapse the ambiguity.

Run:  python examples/english_ambiguity.py
"""

from __future__ import annotations

from repro import Constraint, VectorEngine, extract_parses
from repro.grammar.builtin.english import english_grammar
from repro.propagation import apply_constraint

SENTENCE = "the man sees the woman with the telescope"


def show_attachments(grammar, network) -> None:
    parses = extract_parses(network, limit=None)
    print(f"{len(parses)} parse(s); 'with' attaches to:")
    for parse in parses:
        heads = parse.heads(grammar.symbols.roles.code("governor"))
        target = heads[6]  # "with" is word 6
        word = network.sentence.words[target - 1]
        print(f"  word {target} ({word!r})")
        print("    " + parse.describe(grammar.symbols).replace("\n", "\n    "))


def main() -> None:
    grammar = english_grammar()
    engine = VectorEngine()

    result = engine.parse(grammar, SENTENCE)
    print(f"Sentence: {SENTENCE!r}")
    print("ambiguous:", result.ambiguous)
    print()
    show_attachments(grammar, result.network)

    # -- contextual disambiguation (paper section 1.5) ---------------------
    # Suppose context (e.g. prosody, or a discourse model) tells us the
    # telescope is the instrument of seeing: PPs attach to the verb.
    contextual = Constraint.parse(
        """
        (if (and (eq (lab x) PP)
                 (eq (role y) governor)
                 (eq (pos y) (mod x)))
            (eq (lab y) ROOT))
        """,
        grammar.symbols,
        name="context-instrumental-pp",
    )
    network = result.network
    eliminated = apply_constraint(network, contextual)

    print(f"\nAfter propagating the contextual constraint {contextual.name!r} "
          f"({eliminated} role values eliminated):")
    show_attachments(grammar, network)


if __name__ == "__main__":
    main()
