#!/usr/bin/env python
"""Inside the simulated MasPar MP-1: PE layout, scans, and the step function.

Walks the machinery of the paper's section 2.2:

1. the Figure-11 PE allocation for "The program runs" (324 virtual PEs,
   disabled self-arc PEs, scan segments);
2. one scanOr/scanAnd consistency check, Figure-12 style, on the raw
   machine primitives;
3. the section-3 timing claims: the per-sentence-length parse-time step
   function with the 16K-PE virtualization boundary.

Run:  python examples/maspar_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.grammar.builtin import program_grammar
from repro.maspar import MP1
from repro.network import ConstraintNetwork
from repro.parsec import (
    MasParEngine,
    build_layout,
    step_function_seconds,
    virtualization_units,
)
from repro.workloads import toy_sentence


def show_layout() -> None:
    grammar = program_grammar()
    network = ConstraintNetwork(grammar, grammar.tokenize("The program runs"))
    layout = build_layout(network)
    print("== Figure 11: PE allocation ==")
    print(f"virtual PEs: {layout.n_pes} (paper: 324)")
    print(f"label submatrix per PE: {layout.n_slots} x {layout.n_slots} (Figure 13)")
    print(f"disabled self-arc PEs: {int((~layout.enabled).sum())} (e.g. PEs 0-2)")
    print(
        f"scanOr segments: {len(np.unique(layout.fine_seg))} of "
        f"{layout.n_mods} PEs; scanAnd segments: "
        f"{len(np.unique(layout.coarse_seg))} of {layout.n_roles * layout.n_mods} PEs"
    )
    for pe in (0, 9, 108):
        col_word = network.sentence.words[layout.role_pos[layout.col_role[pe]] - 1]
        row_word = network.sentence.words[layout.role_pos[layout.row_role[pe]] - 1]
        state = "enabled" if layout.enabled[pe] else "DISABLED (self-arc)"
        print(
            f"  PE {pe:3d}: columns from {col_word!r}, rows from {row_word!r} — {state}"
        )


def show_scan_primitives() -> None:
    print("\n== Figure 12: scanOr / scanAnd on the raw machine ==")
    machine = MP1(n_virtual=12)
    # Three segments of four PEs; check "does any PE of my segment hold 1?"
    bits = np.array([0, 0, 1, 0, 0, 0, 0, 0, 1, 1, 0, 1], dtype=bool)
    seg = np.repeat(np.arange(3), 4)
    ors = machine.segment_or(bits, seg)
    ands = machine.segment_and(ors, seg)
    print(f"bits:        {bits.astype(int)}")
    print(f"segment ids: {seg}")
    print(f"segment_or:  {ors.astype(int)}")
    print(f"cycles charged: {machine.cycles} "
          f"({machine.ops.scan} scans at ceil(log2 12) = 4 stages each)")
    del ands


def show_step_function() -> None:
    print("\n== Section 3: the parse-time step function ==")
    engine = MasParEngine()
    grammar = program_grammar()
    print(f"{'n':>3} {'virtual PEs':>12} {'units':>6} {'simulated':>10} {'paper model':>12}")
    for n in range(2, 13):
        result = engine.parse(grammar, toy_sentence(n))
        print(
            f"{n:>3} {result.stats.processors:>12,} {virtualization_units(n):>6} "
            f"{result.stats.simulated_seconds:>9.3f}s {step_function_seconds(n):>11.2f}s"
        )
    print("paper anchors: 0.15 s at n=3, 0.45 s at n=10; the jump at n=9 is\n"
          "the q^2 n^4 > 16384 virtualization boundary.")


def main() -> None:
    show_layout()
    show_scan_primitives()
    show_step_function()


if __name__ == "__main__":
    main()
