#!/usr/bin/env python
"""Staged constraint sets for spoken-language understanding (section 1.5).

The paper's motivation for CDG is a speech system: "We are currently
developing a core set of constraints (i.e., they apply in all
situations), which are the first constraints to propagate, followed by
other contextually-determined constraint sets."

This example simulates that pipeline:

1. the grammar's **core** constraints run first and leave the utterance
   structurally ambiguous (three PP attachments);
2. a **discourse** cue arrives — the "near the park" phrase describes a
   thing, not the seeing event — as one contextual constraint;
3. a **prosodic** cue arrives — no pause between "the duck" and "near",
   so the PP groups with the most recent phrase — as another.

Each cue is an ordinary CDG constraint applied with the public
incremental API (:func:`repro.propagation.apply_constraints`); the
network is never re-parsed from scratch, exactly the property the paper
wants for real-time speech.

Run:  python examples/incremental_speech.py
"""

from __future__ import annotations

from repro import Constraint, VectorEngine, count_parses, extract_parses
from repro.grammar.builtin.english import english_grammar
from repro.propagation import apply_constraints

UTTERANCE = "the man sees the duck near the park"


def stage(title: str, network) -> None:
    print(f"--- {title} ---")
    print(f"stored parses: {count_parses(network)}")
    for parse in extract_parses(network, limit=4):
        heads = parse.heads(0)
        attach = heads[6]  # "near" is word 6
        word = network.sentence.words[attach - 1]
        print(f"  'near' attaches to word {attach} ({word!r})")
    print()


def main() -> None:
    grammar = english_grammar()
    engine = VectorEngine()

    # Stage 1: core grammar constraints only.
    network = engine.parse(grammar, UTTERANCE).network
    print(f"Utterance: {UTTERANCE!r}\n")
    stage("after core constraints", network)

    # Stage 2: discourse — the locative phrase describes an entity.
    discourse = Constraint.parse(
        """
        (if (and (eq (lab x) PP)
                 (eq (role y) governor)
                 (eq (pos y) (mod x)))
            (not (eq (lab y) ROOT)))
        """,
        grammar.symbols,
        name="discourse-pp-is-nominal",
    )
    eliminated = apply_constraints(network, [discourse])
    print(f"(discourse constraint eliminated {eliminated} role values)\n")
    stage("after discourse constraints", network)

    # Stage 3: prosody — no pause before "near": attach within the most
    # recent phrase (anything right of the verb at position 3).
    prosodic = Constraint.parse(
        """
        (if (eq (lab x) PP)
            (gt (mod x) 3))
        """,
        grammar.symbols,
        name="prosody-no-pause-recent-attachment",
    )
    eliminated = apply_constraints(network, [prosodic])
    print(f"(prosodic constraint eliminated {eliminated} role values)\n")
    stage("after prosodic constraints", network)


if __name__ == "__main__":
    main()
