#!/usr/bin/env python
"""The four formal-language CDG grammars, side by side.

Section 1.5's expressivity claim — CDG is strictly more powerful than
CFG — demonstrated across the classic ladder:

    a^n b^n          context-free        (one counting matching)
    Dyck (D2)        context-free        (nested matching)
    w w              NOT context-free    (monotone copy matching)
    a^n b^n c^n d^n  NOT context-free    (three simultaneous matchings,
                                          three roles per word)

Each grammar is a handful of the same mutual-pointing constraints; the
differences between the languages live entirely in the ordering
constraints on the matchings.

Run:  python examples/formal_languages.py
"""

from __future__ import annotations

from repro import VectorEngine, accepts, extract_parses
from repro.grammar.builtin import (
    abcd_grammar,
    abcd_oracle,
    anbn_grammar,
    anbn_oracle,
    copy_language_grammar,
    copy_oracle,
    dyck_grammar,
    dyck_oracle,
)

ENGINE = VectorEngine()

SUITES = [
    ("a^n b^n", anbn_grammar(), anbn_oracle, ["ab", "aabb", "abab", "aab", "ba"]),
    ("Dyck D2", dyck_grammar(), dyck_oracle, ["()", "([])", "([)]", ")(", "()[]"]),
    ("w w", copy_language_grammar(), copy_oracle, ["abab", "abba", "aabaab", "aa", "ab"]),
    (
        "a^n b^n c^n d^n",
        abcd_grammar(),
        abcd_oracle,
        ["abcd", "aabbccdd", "abdc", "aabbccd", "abcdabcd"],
    ),
]


def main() -> None:
    for name, grammar, oracle, samples in SUITES:
        print(f"== {name}  ({grammar.k} constraints, {grammar.n_roles} roles) ==")
        for text in samples:
            words = list(text)
            verdict = accepts(ENGINE.parse(grammar, words).network)
            expected = oracle(words)
            assert verdict == expected, (name, text)
            print(f"  {text:<10} {'ACCEPT' if verdict else 'reject'}")
        print()

    # Show the three simultaneous matchings of the q=3 grammar.
    grammar = abcd_grammar()
    network = ENGINE.parse(grammar, list("aabbccdd")).network
    parse = extract_parses(network)[0]
    print("matchings recovered for 'aabbccdd':")
    for (pos, role), value in parse.assignment:
        if value.mod:
            role_name = grammar.symbols.roles.name(role)
            label = grammar.symbols.labels.name(value.lab)
            print(f"  word {pos} --{label}({role_name})--> word {value.mod}")


if __name__ == "__main__":
    main()
