#!/usr/bin/env python
"""Beyond context-free: parsing the copy language ww with CDG.

The paper's expressivity claim (section 1.5): "CDG can accept languages
that CFGs cannot, for example, ww".  This example runs the ww CDG
grammar side by side with a CFG for the *palindromes* w w^R — the
context-free language ww is most easily confused with — on a set of
strings that tell the two apart, and shows the matching structure the
CDG parse recovers.

Run:  python examples/copy_language.py
"""

from __future__ import annotations

from repro import VectorEngine, accepts, extract_parses
from repro.cfg import cyk_accepts, palindrome_cfg, to_cnf
from repro.grammar.builtin import copy_language_grammar, copy_oracle

STRINGS = ["abab", "abba", "aabaab", "aabbaa", "aa", "ab", "abaaba", "ba"]


def main() -> None:
    grammar = copy_language_grammar()
    engine = VectorEngine()
    palindromes = to_cnf(palindrome_cfg())

    print(f"{'string':<10} {'ww (CDG)':<10} {'oracle':<8} {'w w^R (CFG)':<12}")
    print("-" * 44)
    for text in STRINGS:
        letters = list(text)
        network = engine.parse(grammar, letters).network
        cdg = accepts(network)
        cfl = cyk_accepts(palindromes, letters)
        oracle = copy_oracle(letters)
        assert cdg == oracle, "the CDG grammar must match the ww oracle"
        print(f"{text:<10} {str(cdg):<10} {str(oracle):<8} {str(cfl):<12}")

    print(
        "\nNo CFG can compute the ww column (pumping lemma); the CDG grammar"
        "\ndoes it with 8 constraints.  The parse exhibits the copy map:"
    )
    network = engine.parse(grammar, list("aabaab")).network
    parse = extract_parses(network)[0]
    governor = grammar.symbols.roles.code("governor")
    for pos, head in sorted(parse.heads(governor).items()):
        letter = network.sentence.words[pos - 1]
        if head:
            print(f"  word {pos} ({letter!r}) is copied by word {head}")


if __name__ == "__main__":
    main()
