"""The Monotone Circuit Value Problem, reduced to CDG filtering.

Paper footnote 3: "We have constructed an NC-reduction from the Monotone
Circuit Value Problem to the filtering algorithm" — their evidence that
full filtering is inherently sequential (P-hard), and hence that the
MasPar implementation is right to bound its iterations (design decision
5).  The cited report is unpublished; this module reconstructs the
reduction and makes it executable.

Encoding
--------

One *role* per circuit gate.  Every role holds a permanently-supported
**anchor** value (so no role ever empties), plus **truth witnesses**:

* an input gate holds one witness, killed at construction when the input
  is False;
* an AND gate holds one witness whose support in *each* input role is
  restricted to that role's witnesses — it survives iff both inputs have
  a live witness;
* an OR gate holds two witnesses, one per input, each supported only by
  its own input's witnesses — some witness survives iff either input
  does.

Consistency maintenance then *is* circuit evaluation: one filtering pass
kills the witnesses of gates whose inputs went false in the previous
pass, so falsity propagates level by level, and at the fixpoint a gate's
witnesses are alive iff the gate evaluates to True.  The number of
filtering iterations grows with circuit depth (see ``and_chain``),
exhibiting the sequential worst case.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.network.synthetic import SyntheticNetwork
from repro.propagation.consistency import consistency_step_vector
from repro.propagation.filtering import filter_network
from repro.reductions.circuits import GateKind, MonotoneCircuit


@dataclass
class CircuitNetwork:
    """The reduction's output: a network plus the witness bookkeeping."""

    network: SyntheticNetwork
    #: witnesses[g] — global role-value indices of gate g's truth witnesses.
    witnesses: list[list[int]]

    def gate_value(self, gate: int) -> bool:
        """True iff any witness of *gate* is still alive."""
        return bool(self.network.alive[self.witnesses[gate]].any())


def circuit_to_network(circuit: MonotoneCircuit, inputs: list[bool]) -> CircuitNetwork:
    """Build the filtering instance for ``circuit`` on ``inputs``."""
    if len(inputs) != circuit.n_inputs:
        raise ReproError(
            f"circuit has {circuit.n_inputs} inputs, got {len(inputs)} values"
        )

    # Domain sizes: anchor + one witness (input/AND) or two (OR).
    sizes = []
    for gate in circuit.gates:
        sizes.append(1 + (2 if gate.kind == GateKind.OR else 1))
    net = SyntheticNetwork(sizes)

    witnesses: list[list[int]] = []
    for g, gate in enumerate(circuit.gates):
        count = 2 if gate.kind == GateKind.OR else 1
        witnesses.append([net.value(g, 1 + i) for i in range(count)])

    # Wire the support structure.
    for g, gate in enumerate(circuit.gates):
        if gate.kind == GateKind.INPUT:
            continue
        if gate.kind == GateKind.AND:
            (witness,) = witnesses[g]
            for arg in gate.args:
                net.require_support_only_from(witness, arg, witnesses[arg])
        else:  # OR: one witness per input branch
            for branch, arg in enumerate(gate.args):
                net.require_support_only_from(witnesses[g][branch], arg, witnesses[arg])

    # Load the inputs: kill the witnesses of false inputs.
    dead = []
    feed = iter(inputs)
    for g, gate in enumerate(circuit.gates):
        if gate.kind == GateKind.INPUT and not next(feed):
            dead.extend(witnesses[g])
    net.kill(np.asarray(dead, dtype=np.int64))

    return CircuitNetwork(network=net, witnesses=witnesses)


@dataclass
class FilteringEvaluation:
    """Result of evaluating a circuit by filtering."""

    gate_values: list[bool]
    output: bool
    iterations: int


def evaluate_by_filtering(
    circuit: MonotoneCircuit, inputs: list[bool]
) -> FilteringEvaluation:
    """Evaluate ``circuit`` by running CDG filtering to its fixpoint."""
    instance = circuit_to_network(circuit, inputs)
    iterations = filter_network(instance.network, consistency_step_vector)
    values = [instance.gate_value(g) for g in range(len(circuit.gates))]
    return FilteringEvaluation(
        gate_values=values,
        output=values[circuit.output],
        iterations=iterations,
    )
