"""Reductions: the paper's P-hardness evidence for filtering, executable.

See :mod:`repro.reductions.mcvp` for the Monotone-Circuit-Value-Problem
to filtering reduction (paper footnote 3)."""

from repro.reductions.circuits import (
    Gate,
    GateKind,
    MonotoneCircuit,
    and_chain,
    random_circuit,
)
from repro.reductions.mcvp import (
    CircuitNetwork,
    FilteringEvaluation,
    circuit_to_network,
    evaluate_by_filtering,
)
from repro.reductions.regular import DFA, dfa_to_cdg

__all__ = [
    "Gate",
    "GateKind",
    "MonotoneCircuit",
    "random_circuit",
    "and_chain",
    "CircuitNetwork",
    "circuit_to_network",
    "FilteringEvaluation",
    "evaluate_by_filtering",
    "DFA",
    "dfa_to_cdg",
]
