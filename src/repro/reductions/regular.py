"""Compiling finite automata into CDG grammars.

Maruyama proved CDG (two roles, binary constraints) subsumes all of CFG;
the general construction is out of scope (DESIGN.md section 7), but its
*regular* case can be realized exactly, and doing so is a nice stress
test of the formalism: this module compiles any DFA into a CDG grammar
whose accepted strings are precisely the DFA's language.

Encoding
--------

Every word's governor points at the **next** word with a label
``NEXT_q`` carrying the DFA state *after reading this word*; the last
word instead carries ``END_q`` (declared only for accepting states q,
which is the acceptance condition).  The words chain up by force of
arithmetic-free combinatorics: each pointer must be acknowledged by a
``PREV`` back-pointer in the target's needs role (mutual pointing), and
a counting argument (Hall's condition on the bijection it induces — see
the tests) makes *word i points at word i + 1* the only consistent
configuration once ``START`` is unique.  A transition table's worth of
binary constraints then forces consecutive labels to follow delta, and
one unary constraint pins word 1's state to ``delta(q0, cat(word 1))``.

The construction uses O(|Q|) labels and O(|Q| * |Sigma|) constraints —
all unary or binary, all in the paper's constraint language.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.grammar.builder import GrammarBuilder
from repro.grammar.grammar import CDGGrammar


@dataclass(frozen=True)
class DFA:
    """A deterministic finite automaton over single-letter words.

    Attributes:
        states: number of states (named 0..states-1; 0 is the start).
        alphabet: the input symbols (each becomes a word and a category).
        delta: transition map ``(state, symbol) -> state``; must be total.
        accepting: the accepting states.
    """

    states: int
    alphabet: tuple[str, ...]
    delta: dict[tuple[int, str], int]
    accepting: frozenset[int]

    def __post_init__(self):
        if self.states <= 0:
            raise ReproError("a DFA needs at least one state")
        for q in range(self.states):
            for symbol in self.alphabet:
                target = self.delta.get((q, symbol))
                if target is None:
                    raise ReproError(f"delta is not total: missing ({q}, {symbol!r})")
                if not 0 <= target < self.states:
                    raise ReproError(f"delta({q}, {symbol!r}) = {target} out of range")
        for q in self.accepting:
            if not 0 <= q < self.states:
                raise ReproError(f"accepting state {q} out of range")

    def accepts(self, word: list[str] | tuple[str, ...]) -> bool:
        """Direct simulation (the oracle the CDG grammar is tested against)."""
        state = 0
        for symbol in word:
            if symbol not in self.alphabet:
                return False
            state = self.delta[(state, symbol)]
        return state in self.accepting


def dfa_to_cdg(dfa: DFA, name: str = "dfa") -> CDGGrammar:
    """Compile *dfa* into an equivalent CDG grammar (non-empty strings).

    The grammar accepts exactly ``L(dfa) minus the empty string`` — CDG
    networks need at least one word.
    """
    next_labels = [f"NEXT{q}" for q in range(dfa.states)]
    end_labels = [f"END{q}" for q in sorted(dfa.accepting)]

    builder = GrammarBuilder(name)
    builder.labels(*next_labels, *end_labels, "PREV", "START")
    builder.roles("governor", "needs")
    builder.categories(*dfa.alphabet)
    builder.table("governor", *next_labels, *end_labels)
    builder.table("needs", "PREV", "START")
    for symbol in dfa.alphabet:
        builder.word(symbol, symbol)

    def state_of(label: str) -> str:
        return label

    # Governor shape: NEXT_q points right, END_q is terminal.
    next_shape = " ".join(
        f"(and (eq (lab x) {label}) (gt (mod x) (pos x)))" for label in next_labels
    )
    end_shape = " ".join(
        f"(and (eq (lab x) {label}) (eq (mod x) nil))" for label in end_labels
    )
    alternatives = f"{next_shape} {end_shape}".strip()
    builder.constraint(
        "governor-shape",
        f"(if (eq (role x) governor) (or {alternatives} (eq (pos x) 0)))"
        if alternatives
        else "(if (eq (role x) governor) (eq (pos x) 0))",
    )
    # Needs shape: PREV points left, START is word-initial only.
    builder.constraint(
        "needs-shape",
        """
        (if (eq (role x) needs)
            (or (and (eq (lab x) PREV) (lt (mod x) (pos x)))
                (and (eq (lab x) START) (eq (mod x) nil))))
        """,
    )
    builder.constraint(
        "start-unique",
        """
        (if (and (eq (lab x) START) (eq (lab y) START))
            (eq (pos x) (pos y)))
        """,
    )
    # Mutual pointing: every governor pointer is acknowledged...
    builder.constraint(
        "pointer-acknowledged",
        """
        (if (and (eq (role x) governor)
                 (not (eq (mod x) nil))
                 (eq (role y) needs)
                 (eq (pos y) (mod x)))
            (and (eq (lab y) PREV) (eq (mod y) (pos x))))
        """,
    )
    # ... and every back-pointer is pointed at.
    builder.constraint(
        "back-pointer-acknowledged",
        """
        (if (and (eq (lab x) PREV)
                 (eq (role y) governor)
                 (eq (pos y) (mod x)))
            (eq (mod y) (pos x)))
        """,
    )
    # Word 1 carries the state delta(q0, its category).
    for symbol in dfa.alphabet:
        target = dfa.delta[(0, symbol)]
        allowed = [f"(eq (lab x) NEXT{target})"]
        if target in dfa.accepting:
            allowed.append(f"(eq (lab x) END{target})")
        body = allowed[0] if len(allowed) == 1 else "(or " + " ".join(allowed) + ")"
        builder.constraint(
            f"initial-state-on-{symbol}",
            f"""
            (if (and (eq (pos x) 1)
                     (eq (role x) governor)
                     (eq (cat (word (pos x))) {symbol}))
                {body})
            """,
        )
    # Transitions: the pointed-at word's label follows delta.
    for q in range(dfa.states):
        for symbol in dfa.alphabet:
            target = dfa.delta[(q, symbol)]
            allowed = [f"(eq (lab y) NEXT{target})"]
            if target in dfa.accepting:
                allowed.append(f"(eq (lab y) END{target})")
            body = allowed[0] if len(allowed) == 1 else "(or " + " ".join(allowed) + ")"
            builder.constraint(
                f"transition-q{q}-{symbol}",
                f"""
                (if (and (eq (lab x) NEXT{q})
                         (eq (role y) governor)
                         (eq (pos y) (mod x))
                         (eq (cat (word (pos y))) {symbol}))
                    {body})
                """,
            )
    return builder.build()
