"""Monotone boolean circuits (the MCVP side of the filtering reduction)."""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum

from repro.errors import ReproError


class GateKind(Enum):
    INPUT = "input"
    AND = "and"
    OR = "or"


@dataclass(frozen=True)
class Gate:
    """One circuit node; ``args`` are indices of earlier gates."""

    kind: GateKind
    args: tuple[int, ...] = ()


class MonotoneCircuit:
    """A monotone circuit in topological order (inputs first is not
    required — only that every gate's arguments precede it)."""

    def __init__(self, gates: list[Gate], output: int | None = None):
        if not gates:
            raise ReproError("a circuit needs at least one gate")
        for index, gate in enumerate(gates):
            if gate.kind == GateKind.INPUT:
                if gate.args:
                    raise ReproError(f"input gate {index} must have no arguments")
            else:
                if len(gate.args) != 2:
                    raise ReproError(f"gate {index} needs exactly two arguments")
                if any(arg >= index or arg < 0 for arg in gate.args):
                    raise ReproError(f"gate {index} references a later gate")
        self.gates = list(gates)
        self.output = len(gates) - 1 if output is None else output
        if not 0 <= self.output < len(gates):
            raise ReproError(f"output index {self.output} out of range")

    @property
    def n_inputs(self) -> int:
        return sum(1 for g in self.gates if g.kind == GateKind.INPUT)

    def evaluate(self, inputs: list[bool]) -> list[bool]:
        """Direct evaluation; returns the value of every gate."""
        if len(inputs) != self.n_inputs:
            raise ReproError(f"circuit has {self.n_inputs} inputs, got {len(inputs)}")
        feed = iter(inputs)
        values: list[bool] = []
        for gate in self.gates:
            if gate.kind == GateKind.INPUT:
                values.append(bool(next(feed)))
            elif gate.kind == GateKind.AND:
                values.append(values[gate.args[0]] and values[gate.args[1]])
            else:
                values.append(values[gate.args[0]] or values[gate.args[1]])
        return values

    def output_value(self, inputs: list[bool]) -> bool:
        return self.evaluate(inputs)[self.output]

    def depth(self) -> int:
        """Longest input-to-output path (gate edges)."""
        depths = []
        for gate in self.gates:
            if gate.kind == GateKind.INPUT:
                depths.append(0)
            else:
                depths.append(1 + max(depths[a] for a in gate.args))
        return depths[self.output]


def random_circuit(rng: random.Random, n_inputs: int = 4, n_gates: int = 10) -> MonotoneCircuit:
    """A random monotone circuit: *n_inputs* inputs then *n_gates* gates."""
    gates = [Gate(GateKind.INPUT) for _ in range(n_inputs)]
    for _ in range(n_gates):
        kind = rng.choice((GateKind.AND, GateKind.OR))
        a = rng.randrange(len(gates))
        b = rng.randrange(len(gates))
        gates.append(Gate(kind, (a, b)))
    return MonotoneCircuit(gates)


def and_chain(depth: int) -> MonotoneCircuit:
    """inputs x0, x1; then a chain g_i = AND(g_{i-1}, x1) of given depth.

    With x0 = False the falsity must propagate through every link one
    filtering iteration at a time — the worst-case sequential cascade the
    paper's NC-reduction is about.
    """
    gates = [Gate(GateKind.INPUT), Gate(GateKind.INPUT)]
    previous = 0
    for _ in range(depth):
        gates.append(Gate(GateKind.AND, (previous, 1)))
        previous = len(gates) - 1
    return MonotoneCircuit(gates)
