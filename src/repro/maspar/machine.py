"""The simulated MasPar MP-1.

The machine executes SIMD *macro operations* over plural (per-PE) numpy
arrays: every call applies one operation to all (active) PEs in lock
step, exactly the programming model MPL exposes, and charges the cycle
cost from :class:`repro.maspar.cost.CostModel`.

Processor virtualization (paper design decision 6 and section 2.2's
"one processor may have to do the work of many to parse longer
sentences"): a machine may be created with more *virtual* PEs than the
physical 16,384.  Plural arrays are sized to the virtual count and every
macro operation's cost is multiplied by ``ceil(virtual / physical)`` —
each physical PE executes the op once per virtual PE it emulates.

Local memory is bounded: allocations are charged against each physical
PE's 16 KB, scaled by the virtualization factor, and exceeding it raises
:class:`~repro.errors.MachineError` — the same wall the real machine has.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import MachineError, VirtualizationError
from repro.maspar.cost import DEFAULT_COST_MODEL, CostModel
from repro.maspar import scans


@dataclass
class OpCounts:
    """How many macro operations of each kind the machine has executed."""

    elementwise: int = 0
    broadcast: int = 0
    scan: int = 0
    router: int = 0
    reduce: int = 0

    def total(self) -> int:
        return self.elementwise + self.broadcast + self.scan + self.router + self.reduce


class MP1:
    """A MasPar MP-1 with cycle accounting and PE virtualization.

    Args:
        n_virtual: number of virtual PEs the program needs (plural array
            length).  Defaults to the physical size.
        cost: the cycle cost model.
        memory_limit_bytes: per-physical-PE local memory (16 KB).
        max_virtualization: guard against absurd virtual counts.
    """

    def __init__(
        self,
        n_virtual: int | None = None,
        cost: CostModel = DEFAULT_COST_MODEL,
        memory_limit_bytes: int = 16 * 1024,
        max_virtualization: int = 4096,
    ):
        self.cost = cost
        self.n_physical = cost.n_physical
        self.n = int(n_virtual) if n_virtual is not None else self.n_physical
        if self.n <= 0:
            raise MachineError(f"need at least one virtual PE, got {self.n}")
        self.vfactor = math.ceil(self.n / self.n_physical)
        if self.vfactor > max_virtualization:
            raise VirtualizationError(
                f"{self.n} virtual PEs need virtualization factor {self.vfactor} "
                f"> limit {max_virtualization}"
            )
        self.memory_limit_bytes = memory_limit_bytes
        self.cycles = 0
        self.ops = OpCounts()
        self._allocated_bytes_per_pe = 0

    # -- accounting ------------------------------------------------------

    def _tick(self, cycles: int) -> None:
        self.cycles += (cycles + self.cost.instruction_overhead) * self.vfactor

    @property
    def simulated_seconds(self) -> float:
        """Wall-clock the modelled hardware would have spent."""
        return self.cost.seconds(self.cycles)

    # -- plural memory ------------------------------------------------------

    def alloc(self, dtype=np.int32, fill=0, shape_tail: tuple[int, ...] = ()) -> np.ndarray:
        """Allocate a plural variable: one element (or row) per virtual PE.

        ``shape_tail`` adds per-PE extra dimensions (e.g. the l x l label
        submatrix of paper Figure 13 is ``shape_tail=(l, l)``).
        """
        shape = (self.n, *shape_tail)
        array = np.full(shape, fill, dtype=dtype)
        per_pe = array.itemsize * int(np.prod(shape_tail, dtype=np.int64) or 1)
        self._allocated_bytes_per_pe += per_pe * self.vfactor
        if self._allocated_bytes_per_pe > self.memory_limit_bytes:
            raise MachineError(
                f"PE local memory exhausted: {self._allocated_bytes_per_pe} B "
                f"> {self.memory_limit_bytes} B per PE "
                f"(virtualization factor {self.vfactor})"
            )
        return array

    @property
    def allocated_bytes_per_pe(self) -> int:
        return self._allocated_bytes_per_pe

    def proc_id(self) -> np.ndarray:
        """Each PE's processor id (free: it is wired in, paper section 2.2.2)."""
        return np.arange(self.n, dtype=np.int64)

    # -- ACU operations --------------------------------------------------------

    def broadcast(self, value):
        """ACU broadcasts one scalar to all PEs."""
        self.ops.broadcast += 1
        self._tick(self.cost.broadcast_cycles)
        return value

    def elementwise(self, fn, *arrays, width: int = 32, ops: int = 1):
        """One SIMD ALU macro-op: apply *fn* to plural operands.

        ``ops`` charges *fn* as that many ALU instructions (a compiled
        constraint is a short straight-line predicate program, so the
        caller passes its instruction count).
        """
        self.ops.elementwise += ops
        self._tick(self.cost.alu_cycles(width) * ops)
        return fn(*arrays)

    def select(self, cond: np.ndarray, a, b):
        """Masked assignment — the SIMD ``if`` (activity control)."""
        self.ops.elementwise += 1
        self._tick(self.cost.alu_cycles(32))
        return np.where(cond, a, b)

    # -- global router: segmented scans ------------------------------------------

    def _scan_tick(self) -> None:
        self.ops.scan += 1
        self._tick(self.cost.scan_cycles(self.n))

    def scan_or(self, bits: np.ndarray, seg_id: np.ndarray) -> np.ndarray:
        """Segmented inclusive OR scan (``scanOr()``)."""
        self._scan_tick()
        return scans.segmented_scan_or(bits, seg_id)

    def scan_and(self, bits: np.ndarray, seg_id: np.ndarray) -> np.ndarray:
        """Segmented inclusive AND scan (``scanAnd()``)."""
        self._scan_tick()
        return scans.segmented_scan_and(bits, seg_id)

    def scan_add(self, values: np.ndarray, seg_id: np.ndarray) -> np.ndarray:
        """Segmented inclusive prefix sum."""
        self._scan_tick()
        return scans.segmented_scan_add(values, seg_id)

    def segment_or(self, bits: np.ndarray, seg_id: np.ndarray) -> np.ndarray:
        """Per-segment OR broadcast back to every PE of the segment."""
        self._scan_tick()
        return scans.segment_reduce_or(bits, seg_id)

    def segment_and(self, bits: np.ndarray, seg_id: np.ndarray) -> np.ndarray:
        """Per-segment AND broadcast back to every PE of the segment."""
        self._scan_tick()
        return scans.segment_reduce_and(bits, seg_id)

    def segment_add(self, values: np.ndarray, seg_id: np.ndarray) -> np.ndarray:
        self._scan_tick()
        return scans.segment_reduce_add(values, seg_id)

    # -- global router: permutation traffic -----------------------------------------

    def router_fetch(self, source: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Each PE fetches ``source[indices[pe]]`` through the router."""
        if (np.asarray(indices) < 0).any() or (np.asarray(indices) >= len(source)).any():
            raise MachineError("router fetch index out of range")
        self.ops.router += 1
        self._tick(self.cost.router_cycles)
        return source[indices]

    def router_send(self, dest_size: int, indices: np.ndarray, values: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
        """Each (masked) PE sends its value to ``out[indices[pe]]``.

        Collisions resolve arbitrarily (last writer wins), matching the
        router's delivery order being unspecified.
        """
        self.ops.router += 1
        self._tick(self.cost.router_cycles)
        out = np.zeros(dest_size, dtype=values.dtype)
        if mask is None:
            out[indices] = values
        else:
            out[indices[mask]] = values[mask]
        return out

    # -- global reductions to the ACU --------------------------------------------------

    def reduce_or(self, bits: np.ndarray) -> bool:
        """Global OR of one plural bit, delivered to the ACU."""
        self.ops.reduce += 1
        self._tick(self.cost.scan_cycles(self.n))
        return bool(np.asarray(bits).any())

    def reduce_add(self, values: np.ndarray) -> int:
        """Global sum delivered to the ACU."""
        self.ops.reduce += 1
        self._tick(self.cost.scan_cycles(self.n))
        return int(np.asarray(values).sum())
