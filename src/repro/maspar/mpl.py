"""An MPL-flavoured programming layer over the simulated MP-1.

The paper's implementation language is MPL, "an extension of C which
supports the SIMD parallelism of the MasPar": scalar-looking expressions
over *plural* variables execute on every PE in lock step.  This module
gives the simulator the same feel: a :class:`Plural` wraps a per-PE
numpy array and charges the machine for every operator it evaluates, so
kernel code reads like MPL while the cycle accounting stays exact.

Example::

    machine = MP1(n_virtual=1024)
    mpl = MPLContext(machine)
    iproc = mpl.iproc()               # plural int: each PE's id
    flag = (iproc % 2 == 0) & (iproc > 10)
    total = mpl.reduce_add(flag)      # ACU-side scalar

Activity control (`if` over plural conditions) is expressed with
:meth:`MPLContext.where`, which is how MPL compiles plural
conditionals::

    updated = mpl.where(flag, iproc * 2, iproc)
"""

from __future__ import annotations

import numpy as np

from repro.errors import MachineError
from repro.maspar.machine import MP1


class Plural:
    """A plural (per-PE) value; operators run SIMD and charge cycles."""

    __slots__ = ("values", "_machine")

    def __init__(self, machine: MP1, values: np.ndarray):
        values = np.asarray(values)
        if values.shape[:1] != (machine.n,):
            raise MachineError(
                f"plural variable must have one slot per virtual PE "
                f"({machine.n}), got shape {values.shape}"
            )
        self.values = values
        self._machine = machine

    # -- helpers --------------------------------------------------------

    def _coerce(self, other):
        if isinstance(other, Plural):
            return other.values
        # Scalars reach the PEs by ACU broadcast.
        self._machine.broadcast(other)
        return other

    def _binary(self, other, fn, width: int = 32) -> "Plural":
        rhs = self._coerce(other)
        out = self._machine.elementwise(fn, self.values, rhs, width=width)
        return Plural(self._machine, out)

    # -- arithmetic -------------------------------------------------------

    def __add__(self, other):
        return self._binary(other, np.add)

    def __sub__(self, other):
        return self._binary(other, np.subtract)

    def __mul__(self, other):
        return self._binary(other, np.multiply)

    def __mod__(self, other):
        return self._binary(other, np.mod)

    def __floordiv__(self, other):
        return self._binary(other, np.floor_divide)

    # -- comparisons (1-bit results) -----------------------------------------

    def __eq__(self, other):  # type: ignore[override]
        return self._binary(other, np.equal, width=32)

    def __ne__(self, other):  # type: ignore[override]
        return self._binary(other, np.not_equal, width=32)

    def __gt__(self, other):
        return self._binary(other, np.greater, width=32)

    def __lt__(self, other):
        return self._binary(other, np.less, width=32)

    def __ge__(self, other):
        return self._binary(other, np.greater_equal, width=32)

    def __le__(self, other):
        return self._binary(other, np.less_equal, width=32)

    # -- logic (on boolean plurals) ----------------------------------------------

    def __and__(self, other):
        return self._binary(other, np.logical_and, width=4)

    def __or__(self, other):
        return self._binary(other, np.logical_or, width=4)

    def __invert__(self):
        out = self._machine.elementwise(np.logical_not, self.values, width=4)
        return Plural(self._machine, out)

    def __hash__(self):  # pragma: no cover - identity hashing
        return id(self)


class MPLContext:
    """Factory and ACU-side operations for plural programs."""

    def __init__(self, machine: MP1):
        self.machine = machine

    # -- constructors -------------------------------------------------------

    def iproc(self) -> Plural:
        """The built-in processor-id plural (free, wired into each PE)."""
        return Plural(self.machine, self.machine.proc_id())

    def plural(self, values) -> Plural:
        """Wrap an existing per-PE array."""
        return Plural(self.machine, np.asarray(values))

    def constant(self, value, dtype=np.int64) -> Plural:
        """Broadcast one scalar into a plural variable."""
        self.machine.broadcast(value)
        return Plural(self.machine, np.full(self.machine.n, value, dtype=dtype))

    # -- control -----------------------------------------------------------------

    def where(self, condition: Plural, then: Plural, otherwise: Plural) -> Plural:
        """Plural conditional (MPL's plural ``if``)."""
        out = self.machine.select(condition.values, then.values, otherwise.values)
        return Plural(self.machine, out)

    # -- router / reductions --------------------------------------------------------

    def scan_or(self, bits: Plural, segments: Plural) -> Plural:
        return Plural(self.machine, self.machine.scan_or(bits.values, segments.values))

    def scan_and(self, bits: Plural, segments: Plural) -> Plural:
        return Plural(self.machine, self.machine.scan_and(bits.values, segments.values))

    def scan_add(self, values: Plural, segments: Plural) -> Plural:
        return Plural(self.machine, self.machine.scan_add(values.values, segments.values))

    def segment_or(self, bits: Plural, segments: Plural) -> Plural:
        return Plural(self.machine, self.machine.segment_or(bits.values, segments.values))

    def segment_and(self, bits: Plural, segments: Plural) -> Plural:
        return Plural(self.machine, self.machine.segment_and(bits.values, segments.values))

    def fetch(self, source: Plural, indices: Plural) -> Plural:
        """Router gather: each PE reads ``source[indices[pe]]``."""
        return Plural(self.machine, self.machine.router_fetch(source.values, indices.values))

    def reduce_or(self, bits: Plural) -> bool:
        return self.machine.reduce_or(bits.values)

    def reduce_add(self, values: Plural) -> int:
        return self.machine.reduce_add(values.values)
