"""Simulated MasPar MP-1: SIMD PE array, ACU, global router, scans.

See DESIGN.md ("Hardware / data gates and substitutions") for why a
cycle-costed simulator stands in for the 1992 hardware and what was
calibrated against the paper's reported timings.
"""

from repro.maspar.cost import DEFAULT_COST_MODEL, CostModel
from repro.maspar.machine import MP1, OpCounts
from repro.maspar.mpl import MPLContext, Plural
from repro.maspar.scans import (
    segment_reduce_add,
    segment_reduce_and,
    segment_reduce_max,
    segment_reduce_or,
    segment_starts,
    segmented_scan_add,
    segmented_scan_and,
    segmented_scan_or,
)
from repro.maspar.xnet import grid_shape, xnet_reduce_or, xnet_shift

__all__ = [
    "MP1",
    "OpCounts",
    "MPLContext",
    "Plural",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "segment_starts",
    "segmented_scan_add",
    "segmented_scan_and",
    "segmented_scan_or",
    "segment_reduce_add",
    "segment_reduce_and",
    "segment_reduce_or",
    "segment_reduce_max",
    "grid_shape",
    "xnet_shift",
    "xnet_reduce_or",
]
