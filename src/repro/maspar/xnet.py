"""X-Net nearest-neighbour communication.

The MP-1's PE array is physically a 128 x 128 grid with an 8-neighbour
"X-Net" mesh.  PARSEC itself views the PEs as a linear array and uses
the global router (paper section 2.2), but the mesh is part of the
machine and the Figure-8 mesh baselines cost their communication with
it, so it is modelled here: a shift moves every PE's value to its
neighbour ``(dx, dy)`` away in one macro step.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import MachineError
from repro.maspar.machine import MP1


def grid_shape(n_pes: int) -> tuple[int, int]:
    """The squarest 2-D factorization of *n_pes* (128 x 128 for 16 K)."""
    side = int(math.isqrt(n_pes))
    while side > 1 and n_pes % side:
        side -= 1
    return side, n_pes // side


def xnet_reduce_or(machine: MP1, values: np.ndarray) -> bool:
    """Global OR using only X-Net shifts (no router).

    Folds the grid in halves: ``rows/2 + cols/2`` single-hop shift
    rounds, each moving one half of the grid onto the other — O(sqrt P)
    communication where the router's ``reduce_or`` takes O(log P).  The
    Figure-8 mesh rows and the ABL-R ablation use exactly this contrast:
    "because of the power of the global router" the MasPar gets
    O(k + log n), while a pure mesh pays its diameter.
    """
    rows, cols = grid_shape(machine.n)
    grid = values.reshape(rows, cols).astype(bool).copy()
    # Sweep everything up to row 0, then left to cell (0, 0):
    # (rows - 1) + (cols - 1) single-hop OR-shifts — the grid diameter.
    for _ in range(rows - 1):
        shifted = np.zeros_like(grid)
        shifted[:-1, :] = grid[1:, :]
        grid |= shifted
        machine.ops.router += 1
        machine._tick(machine.cost.alu_cycles(4))
    for _ in range(cols - 1):
        shifted = np.zeros_like(grid)
        shifted[:, :-1] = grid[:, 1:]
        grid |= shifted
        machine.ops.router += 1
        machine._tick(machine.cost.alu_cycles(4))
    return bool(grid[0, 0])


def xnet_shift(machine: MP1, values: np.ndarray, dx: int, dy: int, fill=0) -> np.ndarray:
    """Shift a plural variable across the mesh by (dx, dy), edge-filled.

    ``dx``/``dy`` must each be -1, 0 or 1 — the X-Net reaches the eight
    immediate neighbours only; longer moves are repeated shifts.
    """
    if dx not in (-1, 0, 1) or dy not in (-1, 0, 1):
        raise MachineError(f"X-Net reaches immediate neighbours only, got ({dx}, {dy})")
    rows, cols = grid_shape(machine.n)
    grid = values.reshape(rows, cols)
    out = np.full_like(grid, fill)
    src_r = slice(max(0, -dx), rows - max(0, dx))
    dst_r = slice(max(0, dx), rows - max(0, -dx))
    src_c = slice(max(0, -dy), cols - max(0, dy))
    dst_c = slice(max(0, dy), cols - max(0, -dy))
    out[dst_r, dst_c] = grid[src_r, src_c]
    machine.ops.router += 1
    machine._tick(machine.cost.alu_cycles(32))
    return out.reshape(values.shape)
