"""Segmented scan primitives (pure algorithms, no cost accounting).

The MasPar's global router implements ``scanOr()``/``scanAnd()`` —
logarithmic-time segmented reductions over the PE array [MasPar System
Overview, 1990].  The machine layer (:mod:`repro.maspar.machine`) wraps
these pure numpy implementations with cycle accounting; keeping the
algorithms separate makes them independently testable against the
obvious per-segment loops.

Segments are described by a *segment id* array: a non-decreasing int
array mapping each PE to its segment (the natural encoding of the
"boundary PEs mark scanning segments" scheme of paper Figure 12).
"""

from __future__ import annotations

import numpy as np


def _check_segments(values: np.ndarray, seg_id: np.ndarray) -> None:
    if values.shape != seg_id.shape or values.ndim != 1:
        raise ValueError(f"values {values.shape} and seg_id {seg_id.shape} must be equal-length 1-D")
    if len(seg_id) and (np.diff(seg_id) < 0).any():
        raise ValueError("segment ids must be non-decreasing")


def segment_starts(seg_id: np.ndarray) -> np.ndarray:
    """Boolean mask marking the first PE of each segment."""
    starts = np.empty(len(seg_id), dtype=bool)
    if len(seg_id):
        starts[0] = True
        np.not_equal(seg_id[1:], seg_id[:-1], out=starts[1:])
    return starts


def _start_indices(seg_id: np.ndarray) -> np.ndarray:
    return np.flatnonzero(segment_starts(seg_id))


def segmented_scan_add(values: np.ndarray, seg_id: np.ndarray) -> np.ndarray:
    """Inclusive per-segment prefix sum."""
    _check_segments(values, seg_id)
    if len(values) == 0:
        return values.astype(np.int64)
    totals = np.cumsum(values.astype(np.int64))
    starts_idx = _start_indices(seg_id)
    # Sum of everything before each segment, repeated across the segment.
    before = np.concatenate(([0], totals[starts_idx[1:] - 1]))
    lengths = np.diff(np.append(starts_idx, len(values)))
    return totals - np.repeat(before, lengths)


def segmented_scan_or(bits: np.ndarray, seg_id: np.ndarray) -> np.ndarray:
    """Inclusive per-segment OR scan."""
    return segmented_scan_add(bits.astype(np.int64), seg_id) > 0


def segmented_scan_and(bits: np.ndarray, seg_id: np.ndarray) -> np.ndarray:
    """Inclusive per-segment AND scan."""
    zeros = (~bits.astype(bool)).astype(np.int64)
    return segmented_scan_add(zeros, seg_id) == 0


def segment_reduce_add(values: np.ndarray, seg_id: np.ndarray) -> np.ndarray:
    """Per-segment sum, broadcast back to every PE of the segment."""
    _check_segments(values, seg_id)
    if len(values) == 0:
        return values.astype(np.int64)
    starts_idx = _start_indices(seg_id)
    sums = np.add.reduceat(values.astype(np.int64), starts_idx)
    lengths = np.diff(np.append(starts_idx, len(values)))
    return np.repeat(sums, lengths)


def segment_reduce_or(bits: np.ndarray, seg_id: np.ndarray) -> np.ndarray:
    """Per-segment OR, broadcast back — the paper's ``scanOr`` use."""
    return segment_reduce_add(bits.astype(np.int64), seg_id) > 0


def segment_reduce_and(bits: np.ndarray, seg_id: np.ndarray) -> np.ndarray:
    """Per-segment AND, broadcast back — the paper's ``scanAnd`` use."""
    zeros = (~bits.astype(bool)).astype(np.int64)
    return segment_reduce_add(zeros, seg_id) == 0


def segment_reduce_max(values: np.ndarray, seg_id: np.ndarray) -> np.ndarray:
    """Per-segment max, broadcast back."""
    _check_segments(values, seg_id)
    if len(values) == 0:
        return values
    starts_idx = _start_indices(seg_id)
    tops = np.maximum.reduceat(values, starts_idx)
    lengths = np.diff(np.append(starts_idx, len(values)))
    return np.repeat(tops, lengths)
