"""Cycle cost model for the simulated MasPar MP-1.

The MP-1 is a SIMD array of up to 16,384 4-bit processing elements
clocked at 12.5 MHz; 32-bit integer operations run as 8 nibble-serial
slices, the ACU broadcasts one instruction per macro step, and the
global router performs segmented scans in a logarithmic number of
stages [MasPar System Overview, 1990].

Two constants cannot be derived from the architecture manuals alone —
the effective per-macro-instruction ACU/MPL overhead and the router
cycles per scan stage — so they are *calibrated* so that the simulated
toy-grammar parse reproduces the paper's reported 0.15 s (see
``repro.parsec.timing``; the calibration is a single multiplicative
factor, so every *shape* claim — the ceil(q^2 n^4/16K) step function,
the O(log n) scans, the O(k) constraint sweep — is produced by the
model, not by the fit).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Per-operation cycle costs for the MP-1.

    Attributes:
        clock_hz: PE array clock (12.5 MHz on the MP-1).
        n_physical: physical PE count (16K on the largest MP-1, as the
            paper uses).
        pe_bits: ALU slice width; a w-bit ALU op costs ``w / pe_bits``.
        broadcast_cycles: ACU -> PE array broadcast of one word.
        instruction_overhead: ACU decode/issue overhead charged per
            macro operation (covers the MPL runtime the paper's timings
            inevitably include).
        scan_cycles_per_stage: global-router cycles per scan stage; a
            scan over ``m`` PEs runs ``ceil(log2 m)`` stages.
        router_cycles: one global-router permutation (send/fetch).
    """

    clock_hz: float = 12.5e6
    n_physical: int = 16384
    pe_bits: int = 4
    broadcast_cycles: int = 4
    instruction_overhead: int = 12
    scan_cycles_per_stage: int = 32
    router_cycles: int = 64

    def alu_cycles(self, width: int = 32) -> int:
        """Cycles for one elementwise ALU op of *width* bits on all PEs."""
        return max(1, width // self.pe_bits)

    def scan_cycles(self, span: int) -> int:
        """Cycles for one segmented scan over *span* virtual PEs."""
        stages = max(1, math.ceil(math.log2(max(2, span))))
        return stages * self.scan_cycles_per_stage

    def seconds(self, cycles: int) -> float:
        return cycles / self.clock_hz


#: The model used throughout unless a caller overrides it.
DEFAULT_COST_MODEL = CostModel()
