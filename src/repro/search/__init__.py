"""Parse extraction and precedence graphs (paper section 1.4, Figure 7)."""

from repro.search.conll import to_conll
from repro.search.extraction import accepts, count_parses, extract_parses, iter_assignments
from repro.search.precedence import PrecedenceGraph

__all__ = [
    "accepts",
    "count_parses",
    "extract_parses",
    "iter_assignments",
    "PrecedenceGraph",
    "to_conll",
]
