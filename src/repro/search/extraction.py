"""Parse-graph extraction: backtracking search over the settled CN.

"In the case of ambiguity, the precedence graphs are extracted by
selecting a single role value for each role, all of which must be
consistent given the arc matrices" (section 1.4).  The paper recommends
extracting only after propagation has reduced the domains; this module
implements the backtracking search with forward checking, so it is also
usable on partially filtered networks.

Definitive acceptance of a sentence — as opposed to the CN-level
"every role kept a value" condition — is the existence of at least one
extractable assignment; :func:`accepts` exposes exactly that.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import ExtractionError
from repro.network.network import ConstraintNetwork
from repro.search.precedence import PrecedenceGraph


def iter_assignments(net: ConstraintNetwork) -> Iterator[tuple[int, ...]]:
    """Yield consistent assignments as tuples of global role-value indices.

    Roles are assigned in order of increasing live-domain size (fail
    first); candidate pruning intersects the packed arc-matrix rows of
    the values chosen so far, so each yielded tuple is pairwise
    consistent by construction.
    """
    order = sorted(range(net.n_roles), key=net.domain_size)
    if any(net.domain_size(role) == 0 for role in order):
        return

    chosen: list[int] = []
    # compatible[i] = True while role value i is pairwise-consistent with
    # every chosen value so far (a running AND of matrix rows).
    compatible_stack = [net.alive.copy()]

    def backtrack(depth: int) -> Iterator[tuple[int, ...]]:
        if depth == len(order):
            yield tuple(chosen)
            return
        role = order[depth]
        sl = net.role_slices[role]
        compatible = compatible_stack[-1]
        candidates = np.nonzero(compatible[sl])[0] + sl.start
        for a in candidates:
            narrowed = compatible & net.matrix[a]
            narrowed[a] = True  # keep the chosen value itself marked
            # Forward check: every unassigned role must retain a candidate.
            dead_end = False
            for later in order[depth + 1 :]:
                later_sl = net.role_slices[later]
                if not narrowed[later_sl].any():
                    dead_end = True
                    break
            if dead_end:
                continue
            chosen.append(int(a))
            compatible_stack.append(narrowed)
            yield from backtrack(depth + 1)
            compatible_stack.pop()
            chosen.pop()

    yield from backtrack(0)


def extract_parses(net: ConstraintNetwork, limit: int | None = 10) -> list[PrecedenceGraph]:
    """Enumerate up to *limit* precedence graphs from the settled CN.

    Args:
        net: a (typically propagated) constraint network.
        limit: maximum number of parses to return; ``None`` = all.

    Raises:
        ExtractionError: when *limit* is not positive.
    """
    if limit is not None and limit <= 0:
        raise ExtractionError(f"limit must be positive, got {limit}")
    parses: list[PrecedenceGraph] = []
    for indices in iter_assignments(net):
        mapping = {}
        for index in indices:
            rv = net.role_values[index]
            mapping[(rv.pos, rv.role)] = rv
        parses.append(PrecedenceGraph.from_mapping(net.sentence.words, mapping))
        if limit is not None and len(parses) >= limit:
            break
    return parses


def count_parses(net: ConstraintNetwork, limit: int = 10_000) -> int:
    """Count consistent assignments, stopping at *limit*."""
    count = 0
    for _ in iter_assignments(net):
        count += 1
        if count >= limit:
            break
    return count


def accepts(net: ConstraintNetwork) -> bool:
    """True iff at least one consistent assignment exists."""
    for _ in iter_assignments(net):
        return True
    return False
