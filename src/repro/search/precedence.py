"""Precedence graphs — CDG's parse trees (paper Figure 7).

"The modifiees of the remaining role values (which point to the words
they modify) form the edges of the parse trees for the sentence.  The
parse trees in CDG are precedence graphs."

A precedence graph records, for every role of every word, the single
role value chosen for it; the graph's edges run from each word to the
word its role value modifies (no edge for a ``nil`` modifiee).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.constraints.symbols import NIL_MOD, SymbolTable
from repro.network.rolevalue import RoleValue


@dataclass(frozen=True)
class PrecedenceGraph:
    """One complete, consistent assignment of role values to roles.

    Attributes:
        words: the sentence tokens.
        assignment: ``assignment[(pos, role_code)]`` is the chosen
            :class:`RoleValue` for that role — positions are 1-based.
    """

    words: tuple[str, ...]
    assignment: tuple[tuple[tuple[int, int], RoleValue], ...]

    @classmethod
    def from_mapping(
        cls, words: tuple[str, ...], mapping: dict[tuple[int, int], RoleValue]
    ) -> "PrecedenceGraph":
        return cls(words=words, assignment=tuple(sorted(mapping.items())))

    def mapping(self) -> dict[tuple[int, int], RoleValue]:
        return dict(self.assignment)

    def role_value(self, pos: int, role: int) -> RoleValue:
        return self.mapping()[(pos, role)]

    def to_networkx(self, symbols: SymbolTable) -> nx.MultiDiGraph:
        """Render as a labelled multigraph: word nodes, modifiee edges."""
        graph = nx.MultiDiGraph()
        for pos, word in enumerate(self.words, start=1):
            graph.add_node(pos, word=word)
        for (pos, role), rv in self.assignment:
            if rv.mod != NIL_MOD:
                graph.add_edge(
                    pos,
                    rv.mod,
                    role=symbols.roles.name(role),
                    label=symbols.labels.name(rv.lab),
                )
        return graph

    def heads(self, governor_role: int = 0) -> dict[int, int]:
        """Dependency heads from the governor role: pos -> head (0 = root)."""
        return {
            pos: rv.mod for (pos, role), rv in self.assignment if role == governor_role
        }

    def describe(self, symbols: SymbolTable) -> str:
        """Multi-line rendering in the style of paper Figure 7."""
        lines = []
        by_word: dict[int, list[str]] = {}
        for (pos, role), rv in self.assignment:
            role_name = symbols.roles.name(role)
            by_word.setdefault(pos, []).append(f"{role_name[0].upper()} = {rv.pretty(symbols)}")
        for pos, word in enumerate(self.words, start=1):
            parts = "  ".join(by_word.get(pos, []))
            lines.append(f"Word = {word}  Position = {pos}  {parts}")
        return "\n".join(lines)

    def pretty_assignment(self, symbols: SymbolTable) -> dict[tuple[int, str], str]:
        """Mapping {(pos, role-name): "LABEL-mod"} — handy for test assertions."""
        return {
            (pos, symbols.roles.name(role)): rv.pretty(symbols)
            for (pos, role), rv in self.assignment
        }
