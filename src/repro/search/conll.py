"""CoNLL-style dependency export of precedence graphs.

Downstream NLP tooling speaks CoNLL; a CDG precedence graph's governor
role *is* a dependency tree (head = modifiee, deprel = label), so the
export is direct.  Columns follow the classic CoNLL-X subset:

    ID  FORM  CPOSTAG  HEAD  DEPREL

with HEAD 0 for ``nil``-modifiee (root) words, plus one extra column per
additional role (needs, ...) rendered as ``LABEL:MOD``.
"""

from __future__ import annotations

from repro.constraints.symbols import NIL_MOD, SymbolTable
from repro.search.precedence import PrecedenceGraph


def to_conll(
    parse: PrecedenceGraph,
    symbols: SymbolTable,
    governor_role: int = 0,
) -> str:
    """Render *parse* as CoNLL-style rows (tab-separated)."""
    mapping = parse.mapping()
    other_roles = sorted(
        {role for (_pos, role) in mapping if role != governor_role}
    )
    lines = []
    for pos, word in enumerate(parse.words, start=1):
        governor = mapping[(pos, governor_role)]
        head = 0 if governor.mod == NIL_MOD else governor.mod
        deprel = symbols.labels.name(governor.lab)
        cpostag = symbols.categories.name(governor.cat)
        extras = []
        for role in other_roles:
            value = mapping[(pos, role)]
            modifiee = "0" if value.mod == NIL_MOD else str(value.mod)
            extras.append(f"{symbols.labels.name(value.lab)}:{modifiee}")
        columns = [str(pos), word, cpostag, str(head), deprel, *extras]
        lines.append("\t".join(columns))
    return "\n".join(lines)
