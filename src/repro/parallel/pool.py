"""The process fan-out: child runtime, wire format, pool lifecycle.

Each worker process holds a tiny process-local runtime (`_CHILD`):
the grammar (shipped once through the pool initializer, not per
task), its compiled constraint program, one engine instance, and a
bounded LRU of *attached* templates whose eviction hook closes the
worker's shared-memory mapping.  Children start empty by contract —
:class:`~repro.pipeline.cache.LRUCache` refuses to cross a process
boundary populated — and attach blocks lazily on first use of a shape.

Tasks and results are deliberately small on the wire: a task is a
:class:`~repro.parallel.shared.SharedTemplateHandle` plus plain word
lists; a result is the per-sentence packed state (``alive_bits`` /
``matrix_bits``, kilobytes) plus verdicts and stats.  The megabyte
artifacts — base matrices and constraint masks — never cross the pipe;
they live in the shared block both sides map.

The pool spawns all workers eagerly at construction (``multiprocessing
.pool.Pool`` semantics) so a fork happens while the parent is still
single-threaded; creating a fork-context pool from a thread-spawning
service *after* its workers started would fork lock states mid-flight.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from multiprocessing import resource_tracker

import numpy as np

from repro.engines.base import EngineStats, ParseResult, ParserEngine
from repro.engines.registry import create_engine
from repro.errors import ReproError
from repro.kernels import backend as kernel_env
from repro.kernels.backend import create_backend
from repro.grammar.grammar import CDGGrammar, Sentence
from repro.parallel.shared import SharedTemplateHandle, attach_template
from repro.pipeline.cache import LRUCache
from repro.pipeline.compiled import compile_grammar
from repro.pipeline.template import NetworkTemplate

#: Bound on per-child attached templates; evicting one closes that
#: child's mapping of the block (the block itself stays owned by the
#: parent store).
DEFAULT_CHILD_CACHE = 8


def default_start_method() -> str:
    """``fork`` where available (cheap, COW-shares the grammar), else
    ``spawn`` — both attach the same shared blocks either way."""
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


@dataclass
class WireResult:
    """One sentence's parse outcome, sized for the result pipe."""

    alive_bits: np.ndarray
    matrix_bits: np.ndarray
    locally_consistent: bool
    ambiguous: bool
    stats: EngineStats


#: Per-process runtime, populated by :func:`_init_child` in the pool
#: initializer.  Module-global because pool tasks can only reach
#: process state through module scope.
_CHILD: dict | None = None


def _close_attachment(entry: "tuple[NetworkTemplate, object]") -> None:
    entry[1].close()


def _init_child(
    grammar: CDGGrammar,
    engine: str,
    cache_size: int,
    kernel_backend: "str | None" = None,
) -> None:
    global _CHILD
    if kernel_backend is not None:
        # Kernel backends, like engines, cross the process boundary as
        # names; exporting the selection through the environment lets
        # every network the child binds resolve it via default_backend.
        os.environ[kernel_env.ENV_VAR] = kernel_backend
    _CHILD = {
        "grammar": grammar,
        "compiled": compile_grammar(grammar),
        "engine": create_engine(engine),
        "templates": LRUCache(cache_size, on_evict=_close_attachment),
    }


def _child_template(handle: SharedTemplateHandle) -> NetworkTemplate:
    state = _CHILD
    cache: LRUCache = state["templates"]
    entry = cache.get(handle.shm_name)
    if entry is None:
        entry = attach_template(handle, state["grammar"], state["compiled"])
        cache.put(handle.shm_name, entry)
    return entry[0]


def _parse_chunk(
    handle: SharedTemplateHandle,
    word_lists: list[list[str]],
    filter_limit: int | None,
) -> list[WireResult]:
    """Pool task: parse one single-shape chunk against a shared template."""
    state = _CHILD
    if state is None:
        raise ReproError("worker process was not initialized (_init_child did not run)")
    template = _child_template(handle)
    engine: ParserEngine = state["engine"]
    results: list[WireResult] = []
    for words in word_lists:
        sent = state["grammar"].tokenize(words)
        network = template.bind(sent)
        started = time.perf_counter()
        stats = engine.run(network, compiled=state["compiled"], filter_limit=filter_limit)
        stats.wall_seconds = time.perf_counter() - started
        stats.engine = engine.name
        stats.extra.setdefault("network_bytes", network.state_nbytes())
        stats.extra["worker_pid"] = os.getpid()
        # Report the backend the *worker* resolved (post-fallback), so
        # the parent can verify its selection actually crossed the
        # process boundary — or see what it degraded to.
        kernels = network.kernels()
        stats.extra.setdefault("kernel_backend", kernels.name)
        dispatch = kernels.dispatch_snapshot()
        if dispatch is not None:
            stats.extra.setdefault("kernel_dispatch", dispatch)
        results.append(
            WireResult(
                alive_bits=network.alive_bits,
                matrix_bits=network.matrix_bits,
                locally_consistent=network.all_domains_nonempty(),
                ambiguous=network.is_ambiguous(),
                stats=stats,
            )
        )
    return results


def materialize_result(
    template: NetworkTemplate, sentence: Sentence, wire: WireResult
) -> ParseResult:
    """Rebind a wire result into a full :class:`ParseResult` (parent side)."""
    network = template.bind(sentence)
    network.alive_bits = np.ascontiguousarray(wire.alive_bits)
    network.matrix_bits = np.ascontiguousarray(wire.matrix_bits)
    network._alive_cache = None
    network._matrix_cache = None
    return ParseResult(
        network=network,
        locally_consistent=wire.locally_consistent,
        ambiguous=wire.ambiguous,
        stats=wire.stats,
    )


class ProcessPool:
    """An eagerly-spawned pool of parse workers.

    Thin lifecycle wrapper over ``multiprocessing.pool.Pool``: ships
    the grammar once per worker through the initializer, exposes chunk
    submission, and guarantees *pool first, store second* shutdown
    ordering by never owning shared blocks itself.
    """

    def __init__(
        self,
        grammar: CDGGrammar,
        engine: str = "vector",
        *,
        workers: int = 2,
        start_method: str | None = None,
        child_cache_size: int = DEFAULT_CHILD_CACHE,
        kernel_backend: "str | None" = None,
    ):
        if isinstance(engine, ParserEngine):
            raise ReproError(
                "process workers need an engine *name* from the registry "
                "(engine instances cannot be shipped to child processes)"
            )
        if workers < 1:
            raise ReproError(f"process pool needs workers >= 1, got {workers}")
        if kernel_backend is not None:
            if not isinstance(kernel_backend, str):
                raise ReproError(
                    "process workers need a kernel-backend *name* from the "
                    "registry (backend instances cannot be shipped to child "
                    "processes)"
                )
            create_backend(kernel_backend)  # fail fast on unknown names
        self.workers = workers
        self.start_method = start_method or default_start_method()
        # Make sure the parent's resource tracker exists *before* the
        # workers do: fork children must inherit it, or each would spin
        # up a private tracker on first shared-memory attach and warn
        # about "leaked" segments it does not own at exit.
        resource_tracker.ensure_running()
        context = multiprocessing.get_context(self.start_method)
        self._pool = context.Pool(
            processes=workers,
            initializer=_init_child,
            initargs=(grammar, engine, child_cache_size, kernel_backend),
        )
        self._closed = False

    def submit_chunk(self, handle, word_lists, filter_limit):
        """Dispatch one single-shape chunk; returns an ``AsyncResult``."""
        return self._pool.apply_async(_parse_chunk, (handle, word_lists, filter_limit))

    def run_chunk(self, handle, word_lists, filter_limit, timeout: float | None = None):
        """Blocking convenience over :meth:`submit_chunk`."""
        return self.submit_chunk(handle, word_lists, filter_limit).get(timeout)

    def shutdown(self, wait: bool = True) -> None:
        """Stop the workers (idempotent); their mappings die with them."""
        if self._closed:
            return
        self._closed = True
        if wait:
            self._pool.close()
        else:
            self._pool.terminate()
        self._pool.join()

    def __enter__(self) -> "ProcessPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
