"""repro.parallel — the process-parallel data plane.

Zero-copy multi-core execution for the compile/bind/execute pipeline:
:class:`SharedTemplateStore` exports each network template's packed
artifacts to ``multiprocessing.shared_memory`` exactly once,
:class:`ProcessPool` workers attach read-only views and parse
single-shape chunks, and :class:`ParallelSession` puts the two behind
the familiar ``parse`` / ``parse_many`` surface with bit-identical
results.  ``ParseService(workers_mode="process")`` runs the same plane
behind the serving lifecycle.
"""

from repro.parallel.pool import ProcessPool, WireResult, default_start_method
from repro.parallel.session import ParallelSession
from repro.parallel.shared import (
    ArraySpec,
    SharedTemplateHandle,
    SharedTemplateStore,
    attach_template,
)

__all__ = [
    "ArraySpec",
    "ParallelSession",
    "ProcessPool",
    "SharedTemplateHandle",
    "SharedTemplateStore",
    "WireResult",
    "attach_template",
    "default_start_method",
]
