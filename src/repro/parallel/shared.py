"""Zero-copy template transport: shared-memory export/attach.

A :class:`NetworkTemplate`'s expensive artifacts — the packed O(NV^2)
base matrix and the packed :class:`VectorMasks` (one per binary
constraint, plus the fused AND) — are immutable once built, which makes
them exactly the thing to place in OS shared memory: the parent
exports each shape **once**, and every worker process attaches
read-only NumPy views over the same physical pages instead of
receiving megabyte pickles per task.  This is the software analogue of
the paper's PE-cluster virtualization: the constraint program is
broadcast once, sentence work is fanned out.

Ownership contract (enforced by the leak-check test):

* the :class:`SharedTemplateStore` that *created* a block is its sole
  owner: only it calls ``unlink()`` (via :meth:`SharedTemplateStore.close`),
  and it must outlive every pool that attaches the block;
* workers only ever ``attach`` + ``close`` their own mapping — never
  ``unlink`` — and they must not call ``resource_tracker.unregister``:
  pool children share the parent's resource-tracker process, where the
  attach-side re-registration is a set-dedup no-op and an unregister
  would clobber the owner's registration;
* therefore the shutdown order is always *pool first, store second*
  (children drop their mappings at exit; the owner then unlinks), and a
  clean shutdown leaves no ``/dev/shm`` segment behind.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.errors import ReproError
from repro.grammar.grammar import CDGGrammar
from repro.pipeline.compiled import CompiledGrammar
from repro.pipeline.template import NetworkTemplate, ShapeKey, VectorMasks

#: NumPy views into a shared block start on 8-byte boundaries so the
#: uint64 word arrays stay aligned regardless of packing order.
_ALIGN = 8


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class ArraySpec:
    """Where one exported array lives inside a shared block."""

    name: str
    shape: tuple[int, ...]
    dtype: str
    offset: int

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class SharedTemplateHandle:
    """A picklable ticket for attaching one exported template.

    Cheap to ship per task (a name plus array geometry); the actual
    megabytes stay in the shared block it points at.
    """

    shm_name: str
    grammar_name: str
    key: ShapeKey
    nv: int
    n_words: int
    specs: tuple[ArraySpec, ...]
    nbytes: int

    def spec(self, name: str) -> ArraySpec | None:
        for spec in self.specs:
            if spec.name == name:
                return spec
        return None


def _export_arrays(template: NetworkTemplate, masks: VectorMasks) -> list[tuple[str, np.ndarray]]:
    """The (name, array) payload of one template, stacking the masks."""
    nv = template.nv
    arrays: list[tuple[str, np.ndarray]] = [("base_bits", template.base_bits)]
    unary = np.zeros((len(masks.unary), nv), dtype=bool)
    for i, mask in enumerate(masks.unary):
        unary[i] = mask
    arrays.append(("unary", unary))
    n_words = template.bit_layout.n_words
    binary = np.zeros((len(masks.binary), nv, n_words), dtype=template.base_bits.dtype)
    for i, mask in enumerate(masks.binary):
        binary[i] = mask
    arrays.append(("binary", binary))
    if masks.fused is not None:
        arrays.append(("fused", masks.fused))
    return arrays


class SharedTemplateStore:
    """Owner-side registry of templates exported to shared memory.

    One block per sentence shape, created on first :meth:`export` and
    reused for every later call with the same key; thread-safe so
    concurrent service workers can export while racing on the same
    shape.  The store owns every block it creates: :meth:`close`
    closes *and unlinks* them all, after which attached children (which
    must already have exited — pool first, store second) cannot
    re-attach.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._blocks: dict[ShapeKey, tuple[shared_memory.SharedMemory, SharedTemplateHandle]] = {}
        self._closed = False

    def export(self, template: NetworkTemplate, compiled: CompiledGrammar) -> SharedTemplateHandle:
        """Export *template* (idempotent per shape) and return its handle."""
        with self._lock:
            if self._closed:
                raise ReproError("SharedTemplateStore is closed")
            cached = self._blocks.get(template.key)
            if cached is not None:
                return cached[1]
            masks = template.vector_masks(compiled)
            payload = _export_arrays(template, masks)
            specs: list[ArraySpec] = []
            offset = 0
            for name, array in payload:
                offset = _aligned(offset)
                specs.append(ArraySpec(name, array.shape, str(array.dtype), offset))
                offset += array.nbytes
            shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
            for spec, (_, array) in zip(specs, payload, strict=True):
                dst = np.ndarray(spec.shape, dtype=spec.dtype, buffer=shm.buf, offset=spec.offset)
                dst[...] = array
            handle = SharedTemplateHandle(
                shm_name=shm.name,
                grammar_name=template.grammar.name,
                key=template.key,
                nv=template.nv,
                n_words=template.bit_layout.n_words,
                specs=tuple(specs),
                nbytes=offset,
            )
            self._blocks[template.key] = (shm, handle)
            return handle

    def nbytes(self) -> int:
        """Total payload bytes across all exported blocks."""
        with self._lock:
            return sum(handle.nbytes for _, handle in self._blocks.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._blocks)

    def close(self) -> None:
        """Close and unlink every owned block (idempotent).

        Callers must shut their pools down first: after this, the
        blocks are gone from ``/dev/shm`` and attaching raises.
        """
        with self._lock:
            blocks, self._blocks = self._blocks, {}
            self._closed = True
        for shm, _ in blocks.values():
            shm.close()
            shm.unlink()

    def __enter__(self) -> "SharedTemplateStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def attach_template(
    handle: SharedTemplateHandle,
    grammar: CDGGrammar,
    compiled: CompiledGrammar,
) -> tuple[NetworkTemplate, shared_memory.SharedMemory]:
    """Worker-side attach: rebuild a template over shared views.

    Recomputes the cheap O(NV) skeleton locally and wires the O(NV^2)
    artifacts straight into the block — no copy, no pickle.  Every view
    is marked read-only; the parallel discipline (lint rule RPR010)
    is that nothing downstream ever writes through them.  The caller
    owns the returned mapping and must ``close()`` it when done (the
    worker-side template cache does this on eviction); it must **not**
    ``unlink()`` — that is the exporting store's job.
    """
    if grammar.name != handle.grammar_name:
        raise ReproError(
            f"handle was exported under grammar {handle.grammar_name!r}, "
            f"worker is running {grammar.name!r}"
        )
    shm = shared_memory.SharedMemory(name=handle.shm_name)
    views: dict[str, np.ndarray] = {}
    for spec in handle.specs:
        view = np.ndarray(spec.shape, dtype=spec.dtype, buffer=shm.buf, offset=spec.offset)
        view.setflags(write=False)
        views[spec.name] = view
    unary = views["unary"]
    binary = views["binary"]
    masks = VectorMasks(
        unary=tuple(unary[i] for i in range(unary.shape[0])),
        binary=tuple(binary[i] for i in range(binary.shape[0])),
        packed=True,
        fused=views.get("fused"),
    )
    template = NetworkTemplate.from_shared(
        grammar, handle.key, compiled, base_bits=views["base_bits"], masks=masks
    )
    return template, shm
