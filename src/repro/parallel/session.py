"""`ParallelSession`: `parse_many` fanned out over worker processes.

The multi-core counterpart of
:class:`~repro.pipeline.session.ParserSession`, with the same
``parse`` / ``parse_many`` surface and bit-identical results (the
equivalence sweep in ``tests/test_parallel.py`` pins this).  The fan-out
mirrors the paper's virtualization of role-value blocks onto PE
clusters: sentences are grouped by shape, each shape's template is
exported to shared memory once, and single-shape chunks are dispatched
so every worker binds the same shared template instead of rebuilding
it.

A session owns its pool and its :class:`SharedTemplateStore`; use it as
a context manager (or call :meth:`close`) so the shutdown runs in the
required order — pool first, store second — and leaves no ``/dev/shm``
segment behind.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.engines.base import ParseResult
from repro.grammar.grammar import CDGGrammar, Sentence
from repro.parallel.pool import DEFAULT_CHILD_CACHE, ProcessPool, materialize_result
from repro.parallel.shared import SharedTemplateStore
from repro.pipeline.session import DEFAULT_TEMPLATE_CACHE, _UNSET, ParserSession


class ParallelSession:
    """Compile-once, bind-cheap, execute-on-every-core CDG parsing.

    Args:
        grammar: the grammar all sentences are parsed under.
        engine: an engine *name* from the registry (instances cannot
            cross the process boundary).
        workers: worker process count.
        kernel_backend: a kernel-backend *name* from
            :mod:`repro.kernels.backend`, exported to every worker
            (instances cannot cross the process boundary); None keeps
            each process's own default.
        start_method: ``"fork"`` / ``"spawn"`` / ``"forkserver"``;
            defaults to fork where the platform has it.
        filter_limit: session-default filtering bound, shipped with
            every chunk.
        template_cache_size: bound on the parent-side template LRU
            (used for export and result rebinding).
        child_cache_size: bound on each worker's attached-template LRU.
        chunk_size: sentences per dispatched task; default splits each
            shape group evenly across the workers.
    """

    def __init__(
        self,
        grammar: CDGGrammar,
        engine: str = "vector",
        *,
        workers: int = 2,
        kernel_backend: "str | None" = None,
        start_method: str | None = None,
        filter_limit: int | None = None,
        template_cache_size: int = DEFAULT_TEMPLATE_CACHE,
        child_cache_size: int = DEFAULT_CHILD_CACHE,
        chunk_size: int | None = None,
    ):
        self.grammar = grammar
        self.filter_limit = filter_limit
        self.chunk_size = chunk_size
        # Parent-side session: templates for export + result rebinding.
        # Its engine never runs; keeping the name validates it early.
        self._session = ParserSession(
            grammar,
            engine=engine,
            backend=kernel_backend,
            filter_limit=filter_limit,
            template_cache_size=template_cache_size,
        )
        self._store = SharedTemplateStore()
        # The pool forks/spawns here, before any caller threads exist.
        self._pool = ProcessPool(
            grammar,
            engine,
            workers=workers,
            start_method=start_method,
            child_cache_size=child_cache_size,
            kernel_backend=kernel_backend,
        )
        self._closed = False

    @property
    def workers(self) -> int:
        return self._pool.workers

    @property
    def start_method(self) -> str:
        return self._pool.start_method

    def _chunks(self, indices: list[int]) -> list[list[int]]:
        size = self.chunk_size
        if size is None:
            size = -(-len(indices) // self._pool.workers)
        size = max(1, size)
        return [indices[i : i + size] for i in range(0, len(indices), size)]

    def parse_many(
        self,
        sentences: Iterable["Sentence | str | Sequence[str]"],
        *,
        filter_limit: "int | None | object" = _UNSET,
    ) -> list[ParseResult]:
        """Parse a batch across the pool; results in arrival order.

        Bit-identical to ``ParserSession.parse_many`` on the same
        inputs (the networks, verdicts and deterministic stats agree);
        only wall-clock attribution differs.
        """
        if self._closed:
            raise RuntimeError("ParallelSession is closed")
        limit = self.filter_limit if filter_limit is _UNSET else filter_limit
        sents = [self._session.tokenize(sentence) for sentence in sentences]
        groups: dict[tuple, list[int]] = {}
        for index, sent in enumerate(sents):
            groups.setdefault(sent.category_sets, []).append(index)
        pending = []
        for indices in groups.values():
            template = self._session.template_for(sents[indices[0]])
            handle = self._store.export(template, self._session.compiled)
            for chunk in self._chunks(indices):
                words = [sents[i].words for i in chunk]
                pending.append(
                    (template, chunk, self._pool.submit_chunk(handle, words, limit))
                )
        results: list[ParseResult | None] = [None] * len(sents)
        for template, chunk, async_result in pending:
            wires = async_result.get()
            for index, wire in zip(chunk, wires, strict=True):
                results[index] = materialize_result(template, sents[index], wire)
        return results

    def parse(
        self,
        sentence: "Sentence | str | Sequence[str]",
        *,
        filter_limit: "int | None | object" = _UNSET,
    ) -> ParseResult:
        """One sentence through the pool (convenience over parse_many)."""
        return self.parse_many([sentence], filter_limit=filter_limit)[0]

    # -- introspection -----------------------------------------------------

    def cache_info(self) -> dict[str, int]:
        """Parent-side template-cache counters."""
        return self._session.cache_info()

    def shared_bytes(self) -> int:
        """Payload bytes currently exported to shared memory."""
        return self._store.nbytes()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut down: pool first (workers drop their mappings), then
        unlink the owned shared blocks.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown()
        self._store.close()

    def __enter__(self) -> "ParallelSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParallelSession({self.grammar.name!r}, workers={self._pool.workers}, "
            f"start_method={self._pool.start_method!r}, shapes={len(self._store)})"
        )
