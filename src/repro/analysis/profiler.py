"""Per-constraint elimination profiling.

Grammar writers need to know *which* constraint did the work (or did
none): this profiler runs a parse with a trace hook and tabulates, for
every constraint, how many role values its propagation (plus the
consistency sweep it triggers) removed.  The paper's observation that
"the parse for a sentence can often be determined after only a portion
of the constraints have been propagated" is directly visible in these
tables — trailing constraints typically eliminate nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engines.base import ParserEngine, ParseResult
from repro.grammar.grammar import CDGGrammar, Sentence
from repro.network.network import ConstraintNetwork
from repro.pipeline.session import ParserSession


@dataclass
class ConstraintRecord:
    """Eliminations attributed to one constraint."""

    name: str
    arity: int
    killed_direct: int = 0  # by the constraint's own propagation
    killed_consistency: int = 0  # by the consistency sweep that followed

    @property
    def killed_total(self) -> int:
        return self.killed_direct + self.killed_consistency


@dataclass
class ParseProfile:
    """The full per-constraint elimination breakdown of one parse."""

    sentence: tuple[str, ...]
    records: list[ConstraintRecord] = field(default_factory=list)
    killed_by_filtering: int = 0
    initial_role_values: int = 0
    surviving_role_values: int = 0
    result: ParseResult | None = None

    def as_rows(self) -> list[list[object]]:
        """Rows for :func:`repro.analysis.reporting.format_table`."""
        rows: list[list[object]] = [
            [r.name, "unary" if r.arity == 1 else "binary", r.killed_direct, r.killed_consistency, r.killed_total]
            for r in self.records
        ]
        rows.append(["(final filtering)", "-", "-", self.killed_by_filtering, self.killed_by_filtering])
        return rows

    def idle_constraints(self) -> list[str]:
        """Constraints that eliminated nothing on this sentence."""
        return [r.name for r in self.records if r.killed_total == 0]

    def settled_after(self) -> int:
        """Index of the last constraint that eliminated anything (+1).

        The paper: "the parse for a sentence can often be determined
        after only a portion of the constraints have been propagated".
        """
        last = 0
        for index, record in enumerate(self.records, start=1):
            if record.killed_total:
                last = index
        return last


def profile_parse(
    grammar: CDGGrammar,
    sentence: Sentence | str | list[str],
    engine: ParserEngine | ParserSession | str | None = None,
) -> ParseProfile:
    """Parse *sentence* and attribute every elimination to a constraint.

    *engine* may be a registry name, an engine instance, or an existing
    :class:`~repro.pipeline.session.ParserSession` (whose caches are
    then reused); by default a one-shot vector session is built.
    """
    if isinstance(engine, ParserSession):
        session = engine
    else:
        session = ParserSession(grammar, engine=engine or "vector", template_cache_size=1)
    profile = ParseProfile(sentence=())
    records = {c.name: ConstraintRecord(c.name, c.arity) for c in grammar.constraints}
    order = [c.name for c in grammar.constraints]
    state = {"alive": None, "last": None}

    def trace(event: str, net: ConstraintNetwork) -> None:
        alive = int(net.alive.sum())
        if event == "built":
            profile.initial_role_values = alive
            profile.sentence = net.sentence.words
        else:
            killed = (state["alive"] or alive) - alive
            if event.startswith("unary:"):
                records[event.split(":", 1)[1]].killed_direct += killed
            elif event.startswith("binary:"):
                records[event.split(":", 1)[1]].killed_direct += killed
            elif event.startswith("consistency:"):
                records[event.split(":", 1)[1]].killed_consistency += killed
            elif event == "filtering-done":
                profile.killed_by_filtering += killed
        state["alive"] = alive

    result = session.parse(sentence, trace=trace)
    profile.records = [records[name] for name in order]
    profile.surviving_role_values = int(result.network.alive.sum())
    profile.result = result
    return profile
