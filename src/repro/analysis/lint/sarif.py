"""SARIF 2.1.0 serialization for ``repro-lint`` findings.

SARIF (Static Analysis Results Interchange Format) is what code-hosting
CI surfaces understand natively — emitting it lets the lint run feed
GitHub code scanning or any SARIF viewer without a bespoke adapter.
The document shape here is the minimal conforming core: one run, the
tool driver with its rule catalogue, and one ``result`` per finding
with a physical location.  ``repro-lint src --format sarif > lint.sarif``
is the whole integration.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.lint.framework import Finding, LintRule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_descriptor(rule: LintRule) -> dict:
    return {
        "id": rule.code,
        "name": rule.name,
        "shortDescription": {"text": rule.description or rule.name},
    }


def _result(finding: Finding, rule_index: dict[str, int]) -> dict:
    result = {
        "ruleId": finding.code,
        "level": "warning",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col,
                    },
                }
            }
        ],
    }
    if finding.code in rule_index:
        result["ruleIndex"] = rule_index[finding.code]
    return result


def to_sarif(
    findings: Iterable[Finding],
    rules: Iterable[LintRule],
    *,
    version: str = "0",
) -> dict:
    """Findings + the rule catalogue as one SARIF 2.1.0 document."""
    catalogue = list(rules)
    rule_index = {rule.code: i for i, rule in enumerate(catalogue)}
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro-lint",
                        "version": version,
                        "rules": [_rule_descriptor(rule) for rule in catalogue],
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": [_result(f, rule_index) for f in findings],
            }
        ],
    }
