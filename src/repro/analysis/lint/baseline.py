"""Baselines and change-scoped runs for ``repro-lint``.

Adopting a new rule on an old tree means a wall of pre-existing
findings drowning out the one a change just introduced.  Two standard
escape hatches, both implemented here:

* **Baseline files** (``--baseline lint-baseline.json``, written with
  ``--write-baseline``): a recorded multiset of findings keyed by
  ``(code, path, message)`` — deliberately *not* line/column, which
  drift with every unrelated edit.  A run against a baseline fails only
  on findings not covered by the recorded counts; fixing a finding
  never breaks the build (a stale surplus entry is simply unused).
* **Change scoping** (``--changed-only``): the *whole* project is still
  loaded and analysed — cross-module rules are meaningless on a file
  subset — but only findings located in files touched per git
  (``git diff HEAD`` plus untracked files) are reported.
"""

from __future__ import annotations

import json
import subprocess
from collections import Counter
from pathlib import Path
from typing import Iterable

from repro.analysis.lint.framework import Finding

__all__ = [
    "GitUnavailable",
    "baseline_key",
    "changed_files",
    "load_baseline",
    "subtract_baseline",
    "write_baseline",
]

_BASELINE_VERSION = 1


class GitUnavailable(RuntimeError):
    """``--changed-only`` was asked for outside a usable git checkout."""


def baseline_key(finding: Finding) -> tuple[str, str, str]:
    """The identity a baseline matches on: line/col-free on purpose."""
    return (finding.code, finding.path, finding.message)


def write_baseline(findings: Iterable[Finding], path: "Path | str") -> int:
    """Record *findings* as a baseline file; returns the entry count."""
    counts = Counter(baseline_key(f) for f in findings)
    entries = [
        {"code": code, "path": rel, "message": message, "count": count}
        for (code, rel, message), count in sorted(counts.items())
    ]
    payload = {"version": _BASELINE_VERSION, "entries": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(entries)


def load_baseline(path: "Path | str") -> Counter:
    """The recorded multiset: ``(code, path, message) -> count``."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or payload.get("version") != _BASELINE_VERSION:
        raise ValueError(f"{path}: not a repro-lint baseline (version mismatch)")
    counts: Counter = Counter()
    for entry in payload.get("entries", ()):
        key = (entry["code"], entry["path"], entry["message"])
        counts[key] += int(entry.get("count", 1))
    return counts


def subtract_baseline(findings: list[Finding], baseline: Counter) -> list[Finding]:
    """Findings not covered by the baseline's recorded counts.

    Multiset semantics: a baseline entry with count 2 absorbs the first
    two identical findings and the third one through are new.
    """
    remaining = Counter(baseline)
    fresh: list[Finding] = []
    for finding in findings:
        key = baseline_key(finding)
        if remaining[key] > 0:
            remaining[key] -= 1
        else:
            fresh.append(finding)
    return fresh


def _git_lines(args: list[str], cwd: "Path | None") -> list[str]:
    try:
        proc = subprocess.run(
            ["git", *args],
            cwd=cwd,
            capture_output=True,
            text=True,
            check=True,
            timeout=30,
        )
    except (OSError, subprocess.SubprocessError) as error:
        raise GitUnavailable(f"git {args[0]} failed: {error}") from error
    return [line for line in proc.stdout.splitlines() if line.strip()]


def changed_files(cwd: "Path | None" = None) -> set[Path]:
    """Absolute paths of files changed vs HEAD, plus untracked files."""
    toplevel_lines = _git_lines(["rev-parse", "--show-toplevel"], cwd)
    if not toplevel_lines:
        raise GitUnavailable("git rev-parse --show-toplevel printed nothing")
    toplevel = Path(toplevel_lines[0])
    names = _git_lines(["diff", "--name-only", "HEAD"], cwd)
    names += _git_lines(["ls-files", "--others", "--exclude-standard"], cwd)
    return {(toplevel / name).resolve() for name in names}


def restrict_to_changed(
    findings: list[Finding], changed: set[Path]
) -> list[Finding]:
    """Findings whose file is in *changed* (paths resolved before compare)."""
    return [f for f in findings if Path(f.path).resolve() in changed]
