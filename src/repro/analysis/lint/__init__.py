"""``repro-lint``: project-invariant static analysis.

The repo's correctness story rests on conventions the compiler never
checks — packed bits are the truth and the boolean ``alive``/``matrix``
views are frozen, byte-mutating engines must bracket their writes with
``materialize_bool()``/``repack()``, template artifacts are shared
read-only across sentences, and the serve layer has a documented lock
order.  This package machine-checks those invariants as AST lint rules
(codes ``RPR001..``), mirroring how the paper's own discipline ("arc
matrix entries are only ever cleared") is an invariant of the
*algorithm*, not of any one run.

The catalogue spans two tiers: per-module rules (``RPR001..RPR013``,
:mod:`repro.analysis.lint.rules`) and whole-project rules
(``RPR014..RPR016``, :mod:`repro.analysis.lint.rules_flow`) built on the
call graph / CFG / taint layer in :mod:`repro.analysis.flow`.

Usage::

    repro-lint src                      # or: python -m repro.analysis src
    repro-lint src --format=json        # or --format=sarif for CI upload
    repro-lint src --select RPR002,RPR008
    repro-lint src --baseline lint-baseline.json   # fail on NEW findings
    repro-lint src --changed-only       # report only git-changed files

Suppression: append ``# repro-lint: ignore[RPR001]`` (comma-separated
codes) to the offending line, or ``# repro-lint: skip-file`` near the
top of a file.  Pragmas naming unknown rule codes raise a warning.
"""

from repro.analysis.lint.framework import (
    Finding,
    LintRule,
    Project,
    SourceModule,
    all_rules,
    lint_paths,
    lint_project,
    lint_source,
)
from repro.analysis.lint import rules as _rules  # registers the built-in rules
from repro.analysis.lint import rules_flow as _rules_flow  # whole-project rules

__all__ = [
    "Finding",
    "LintRule",
    "Project",
    "SourceModule",
    "all_rules",
    "lint_paths",
    "lint_project",
    "lint_source",
]
