"""The rule framework behind ``repro-lint``.

Small and deliberately boring: a :class:`SourceModule` wraps one parsed
file (AST, parent links, suppression comments), a :class:`Project`
wraps the set of modules so cross-module rules (the engine-registry
contract) can see everything at once, and a :class:`LintRule` yields
:class:`Finding` records.  Rules register themselves with
:func:`register_rule`; the runner applies every (selected) rule and
filters findings through the per-line suppressions.

Suppression syntax (checked per finding line)::

    something_flagged()  # repro-lint: ignore[RPR001]
    other_thing()        # repro-lint: ignore[RPR001,RPR005]

and, within the first ten lines of a file::

    # repro-lint: skip-file
"""

from __future__ import annotations

import abc
import ast
import re
import warnings
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Iterator

_IGNORE_RE = re.compile(r"#\s*repro-lint:\s*ignore\[([A-Z0-9,\s]+)\]")
_SKIP_FILE_RE = re.compile(r"#\s*repro-lint:\s*skip-file")

#: How many leading lines may carry the skip-file pragma.
_SKIP_FILE_WINDOW = 10


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    rule: str
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> dict:
        return asdict(self)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class SourceModule:
    """One parsed source file plus the navigation aids rules need."""

    def __init__(self, path: "Path | str", source: str):
        self.path = Path(path)
        #: Forward-slash path string used for location matching in rules.
        self.rel = self.path.as_posix()
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self._parents: dict[ast.AST, ast.AST] | None = None
        self.suppressions = self._parse_suppressions()
        self.skip = any(
            _SKIP_FILE_RE.search(line) for line in self.lines[:_SKIP_FILE_WINDOW]
        )

    def _parse_suppressions(self) -> dict[int, frozenset[str]]:
        out: dict[int, frozenset[str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _IGNORE_RE.search(line)
            if match:
                codes = frozenset(
                    code.strip() for code in match.group(1).split(",") if code.strip()
                )
                out[lineno] = codes
        return out

    # -- AST navigation ----------------------------------------------------

    @property
    def parents(self) -> dict[ast.AST, ast.AST]:
        if self._parents is None:
            table: dict[ast.AST, ast.AST] = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    table[child] = parent
            self._parents = table
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def enclosing_functions(self, node: ast.AST) -> list[ast.AST]:
        """Innermost-first chain of function defs containing *node*."""
        return [
            ancestor
            for ancestor in self.ancestors(node)
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]

    def located_in(self, *suffixes: str) -> bool:
        """True when this module's path ends with any of *suffixes*."""
        return any(self.rel.endswith(suffix) for suffix in suffixes)

    def is_suppressed(self, finding: Finding) -> bool:
        codes = self.suppressions.get(finding.line)
        return codes is not None and finding.code in codes


class Project:
    """All modules under lint, for rules that need the cross-module view."""

    def __init__(self, modules: list[SourceModule]):
        self.modules = modules
        self.by_rel = {module.rel: module for module in modules}

    def find(self, suffix: str) -> "SourceModule | None":
        """The unique module whose path ends with *suffix*, if any."""
        matches = [m for m in self.modules if m.rel.endswith(suffix)]
        return matches[0] if len(matches) == 1 else None


class LintRule(abc.ABC):
    """One invariant check.  Subclasses set ``code``/``name`` and override
    :meth:`check_module` (per-file) or :meth:`check_project` (cross-file)."""

    code: str = "RPR000"
    name: str = "abstract"
    description: str = ""

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()

    def finding(self, module: SourceModule, node: ast.AST, message: str) -> Finding:
        return Finding(
            code=self.code,
            rule=self.name,
            path=module.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


_RULES: dict[str, LintRule] = {}


def register_rule(cls: type) -> type:
    """Class decorator: instantiate and register a rule by its code."""
    rule = cls()
    if rule.code in _RULES and type(_RULES[rule.code]) is not cls:
        raise ValueError(f"duplicate lint rule code {rule.code}")
    _RULES[rule.code] = rule
    return cls


def all_rules() -> tuple[LintRule, ...]:
    """Registered rules, sorted by code."""
    return tuple(_RULES[code] for code in sorted(_RULES))


# -- the runner ------------------------------------------------------------


def _iter_py_files(paths: Iterable["Path | str"]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            yield path


def load_project(paths: Iterable["Path | str"]) -> Project:
    """Parse every ``.py`` file under *paths* into a :class:`Project`.

    Raises :class:`SyntaxError` (annotated with the file name) when a
    file does not parse — an unparseable file is itself a finding-level
    failure, surfaced loudly rather than skipped.
    """
    modules = []
    for path in _iter_py_files(paths):
        source = path.read_text(encoding="utf-8")
        modules.append(SourceModule(path, source))
    return Project(modules)


def warn_unknown_suppressions(project: Project) -> None:
    """Warn about ``ignore[...]`` pragmas naming no registered rule.

    A suppression with a typo (``RPR0003``) silently suppresses nothing
    while looking like it does; surfacing it as a warning keeps the
    pragma inventory honest without inventing a rule code for it.
    """
    known = {rule.code for rule in all_rules()}
    for module in project.modules:
        for lineno in sorted(module.suppressions):
            unknown = module.suppressions[lineno] - known
            if unknown:
                warnings.warn(
                    f"{module.rel}:{lineno}: repro-lint suppression names "
                    f"unknown rule code(s) {', '.join(sorted(unknown))}; "
                    "the pragma has no effect",
                    stacklevel=2,
                )


def lint_project(
    project: Project, *, select: "Iterable[str] | None" = None
) -> list[Finding]:
    """Run the (selected) rules over *project*; suppressions applied."""
    selected = set(select) if select is not None else None
    rules = [r for r in all_rules() if selected is None or r.code in selected]
    warn_unknown_suppressions(project)
    findings: list[Finding] = []
    for rule in rules:
        for module in project.modules:
            if module.skip:
                continue
            findings.extend(rule.check_module(module))
        findings.extend(rule.check_project(project))
    kept = [
        f
        for f in findings
        if not (
            (module := project.by_rel.get(f.path)) is not None
            and (module.skip or module.is_suppressed(f))
        )
    ]
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return kept


def lint_paths(
    paths: Iterable["Path | str"], *, select: "Iterable[str] | None" = None
) -> list[Finding]:
    """Lint every python file under *paths* (directories recurse)."""
    return lint_project(load_project(paths), select=select)


def lint_source(
    source: str, *, path: str = "<string>", select: "Iterable[str] | None" = None
) -> list[Finding]:
    """Lint one source string — the fixture-test entry point."""
    project = Project([SourceModule(Path(path), source)])
    return lint_project(project, select=select)
