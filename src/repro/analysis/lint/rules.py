"""The built-in rule catalogue (codes ``RPR001``..``RPR013``, ``RPR017``).

Each rule encodes one repo invariant:

========  ======================  ==================================================
code      name                    invariant
========  ======================  ==================================================
RPR001    frozen-view-write       no writes through ``.alive``/``.matrix`` outside a
                                  ``materialize_bool()`` bracket (or ``network.py``)
RPR002    materialize-repack      every ``materialize_bool()`` is paired with a
                                  ``repack()`` reached on *all* paths (``finally``),
                                  and vice versa
RPR003    inplace-on-shared       no in-place numpy mutation (``&=``, ``out=``,
                                  ``.fill``, item assignment) of arrays obtained
                                  from shared template accessors
RPR004    nested-lock             no lock acquired while holding another, unless the
                                  module declares the order in ``LOCK_ORDER``
RPR005    warn-stacklevel         ``warnings.warn`` must pass ``stacklevel``
RPR006    kernel-wallclock        no wall-clock reads inside ``parsec``/``mesh``/
                                  ``engines`` kernels (timing belongs to
                                  ``maspar.cost`` / ``parsec.timing`` / the session)
RPR007    engine-contract         engines registered in ``registry.py`` implement
                                  the compiled-artifact ``run`` entry point and
                                  carry a ``name``
RPR008    silent-except           no bare ``except:``; no ``except Exception``
                                  whose body silently swallows
RPR009    thaw-frozen             no ``setflags(write=True)`` on shared arrays
RPR010    write-through-attached  no writes through arrays attached from a
                                  ``SharedTemplateStore`` segment (taint from
                                  ``attach``/``attach_template`` results)
RPR011    extend-must-not-thaw    ``extend*`` methods grow new state from a frozen
                                  predecessor; no in-place writes to arrays
                                  reachable from the predecessor's parameters
RPR012    socket-lifecycle        sockets/servers opened in ``repro.cluster`` are
                                  closed via context manager, a reachable
                                  ``close``/``shutdown`` path, or lifecycle
                                  registration
RPR013    kernel-bit-arith        word-level bit arithmetic (``np.bitwise_and`` /
                                  ``or``/``xor``/``count``, ``packbits`` /
                                  ``unpackbits``) lives in ``repro/kernels/`` and
                                  ``repro/network/bitset.py``; everyone else calls
                                  the kernel API
RPR017    native-boundary-        ``.ctypes`` in ``repro/kernels/native/`` only on
          hygiene                 arrays that went through a dtype/contiguity
                                  validator (``ascontiguousarray``, ``np.empty`` /
                                  ``zeros``, ``_check_operands``, ``_as_words``,
                                  ``_require_words``) in the same function
========  ======================  ==================================================

The whole-project rules (RPR014 cross-module-lock-cycle, RPR015
blocking-in-async, RPR016 escaping-frozen-ref) live in
:mod:`repro.analysis.lint.rules_flow` — they run over the call-graph /
CFG layer in :mod:`repro.analysis.flow` rather than one module at a
time.  The taint rules below (RPR003/RPR010/RPR011) share that layer's
:mod:`~repro.analysis.flow.taint` engine, so every rule agrees on one
definition of "derived from".

Rules are registered by importing this module (the package ``__init__``
does so); fixture tests in ``tests/test_lint.py`` exercise each rule
with one triggering and one passing snippet.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.flow.taint import TaintSpec, iter_mutations, taint_names
from repro.analysis.lint.framework import (
    Finding,
    LintRule,
    Project,
    SourceModule,
    register_rule,
)

#: Accessors whose results are shared, frozen template state.
_SHARED_ACCESSORS = frozenset(
    {"vector_masks", "vector_masks_bool", "unary_fields", "pair_fields"}
)
_SHARED_ATTRIBUTES = frozenset({"base_matrix", "base_bits"})

#: ndarray methods that mutate in place.
_INPLACE_METHODS = frozenset({"fill", "sort", "partition", "put", "resize", "setflags"})

#: Wall-clock callables banned inside kernels.
_WALLCLOCK_NAMES = frozenset(
    {"time", "perf_counter", "monotonic", "process_time", "thread_time"}
)


def _terminal_name(node: ast.AST) -> "str | None":
    """The rightmost identifier of a Name/Attribute chain, if any."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body, *excluding* nested function/class bodies."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _calls_of(nodes: Iterable[ast.AST], method: str) -> list[ast.Call]:
    return [
        node
        for node in nodes
        if isinstance(node, ast.Call) and _terminal_name(node.func) == method
    ]


@register_rule
class FrozenViewWrite(LintRule):
    """RPR001: the boolean ``alive``/``matrix`` views are frozen truth
    mirrors; writing through them is only legal inside a function (or a
    function nested in one) that establishes boolean mode with
    ``materialize_bool()`` — or inside ``network.py`` itself, which owns
    the representation."""

    code = "RPR001"
    name = "frozen-view-write"
    description = "write through .alive/.matrix outside a materialize_bool() bracket"

    _VIEWS = frozenset({"alive", "matrix"})

    def _is_view_attr(self, node: ast.AST) -> bool:
        return isinstance(node, ast.Attribute) and node.attr in self._VIEWS

    @staticmethod
    def _owner_classes(module: SourceModule) -> set[ast.ClassDef]:
        """Classes that define ``alive``/``matrix`` as their *own* plain
        attributes (``self.alive = ...`` in ``__init__``) — duck-typed
        stand-ins like SyntheticNetwork, not frozen-view holders."""
        owners = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            init = next(
                (
                    n
                    for n in node.body
                    if isinstance(n, ast.FunctionDef) and n.name == "__init__"
                ),
                None,
            )
            if init is None:
                continue
            for stmt in ast.walk(init):
                if isinstance(stmt, ast.Assign) and any(
                    isinstance(t, ast.Attribute)
                    and t.attr in ("alive", "matrix")
                    and isinstance(t.value, ast.Name)
                    and t.value.id == "self"
                    for t in stmt.targets
                ):
                    owners.add(node)
                    break
        return owners

    @staticmethod
    def _root_name(node: ast.AST) -> "str | None":
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        return node.id if isinstance(node, ast.Name) else None

    def _write_targets(self, node: ast.AST) -> Iterator[ast.AST]:
        if isinstance(node, ast.Assign):
            yield from node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            yield node.target
        elif isinstance(node, ast.Delete):
            yield from node.targets

    def _bracketed(self, module: SourceModule, node: ast.AST) -> bool:
        for func in module.enclosing_functions(node):
            for inner in ast.walk(func):
                if (
                    isinstance(inner, ast.Call)
                    and _terminal_name(inner.func) == "materialize_bool"
                ):
                    return True
        return False

    def _owned(self, module: SourceModule, owners: set, hit: ast.AST) -> bool:
        """True when *hit* is a ``self.alive``/``self.matrix`` write inside
        a class that defines those as its own plain attributes."""
        target = hit.func.value if isinstance(hit, ast.Call) else hit
        if self._root_name(target) != "self":
            return False
        return any(
            ancestor in owners
            for ancestor in module.ancestors(hit)
            if isinstance(ancestor, ast.ClassDef)
        )

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        if module.located_in("network/network.py"):
            return
        owners = self._owner_classes(module)
        for node in ast.walk(module.tree):
            hits = []
            for target in self._write_targets(node):
                if self._is_view_attr(target):
                    hits.append(target)
                elif isinstance(target, ast.Subscript) and self._is_view_attr(
                    target.value
                ):
                    hits.append(target)
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _INPLACE_METHODS
                and self._is_view_attr(node.func.value)
            ):
                hits.append(node)
            for hit in hits:
                if self._owned(module, owners, hit):
                    continue
                if not self._bracketed(module, hit):
                    yield self.finding(
                        module,
                        hit,
                        "write through the frozen '.alive'/'.matrix' boolean view "
                        "outside a materialize_bool() bracket; mutate the packed "
                        "arrays via the network's helpers, or call "
                        "materialize_bool() first and repack() after",
                    )


@register_rule
class MaterializeRepack(LintRule):
    """RPR002: ``materialize_bool()`` flips a network into byte-mutable
    boolean mode; leaving it there desynchronizes the packed truth for
    every later consumer.  A function that materializes must repack on
    all paths (a ``finally`` block), and a bare ``repack()`` with no
    visible ``materialize_bool()`` is the same bug mirrored."""

    code = "RPR002"
    name = "materialize-repack"
    description = "unbalanced materialize_bool()/repack() bracket"

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        if module.located_in("network/network.py"):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            own = list(_own_nodes(node))
            materializes = _calls_of(own, "materialize_bool")
            repacks = _calls_of(own, "repack")
            if materializes and not repacks:
                yield self.finding(
                    module,
                    materializes[0],
                    "materialize_bool() without a matching repack() in "
                    f"'{node.name}'; the network is left in boolean mode and its "
                    "packed arrays go stale",
                )
            elif materializes and repacks and not self._any_on_finally(module, repacks):
                yield self.finding(
                    module,
                    repacks[0],
                    f"repack() in '{node.name}' is skipped when the bracketed code "
                    "raises; move it into a try/finally so every path repacks",
                )
            elif repacks and not materializes:
                yield self.finding(
                    module,
                    repacks[0],
                    f"repack() without a visible materialize_bool() in '{node.name}'; "
                    "brackets must open and close in the same function",
                )

    @staticmethod
    def _any_on_finally(module: SourceModule, repacks: list[ast.Call]) -> bool:
        for call in repacks:
            child: ast.AST = call
            for ancestor in module.ancestors(call):
                if isinstance(ancestor, (ast.Try, getattr(ast, "TryStar", ast.Try))):
                    if any(child is stmt or _contains(stmt, child) for stmt in ancestor.finalbody):
                        return True
                child = ancestor
        return False


def _contains(root: ast.AST, node: ast.AST) -> bool:
    return any(candidate is node for candidate in ast.walk(root))


@register_rule
class InplaceOnShared(LintRule):
    """RPR003: arrays handed out by ``vector_masks``/``vector_masks_bool``
    /``unary_fields``/``pair_fields``/``base_matrix`` are shared across
    every network of a shape; in-place numpy mutation of them corrupts
    later parses (the arrays are frozen, but ``out=`` and ufunc
    in-place paths can bypass a stale check)."""

    code = "RPR003"
    name = "inplace-on-shared"
    description = "in-place numpy mutation of a shared template accessor result"

    #: Shared taint engine configuration: accessor-call results and the
    #: base attributes are sources; mention-mode propagation with the
    #: parent-Attribute exclusion (``.nbytes``, ``.copy()`` yield fresh
    #: values, not the shared buffer).
    _SPEC = TaintSpec(
        source_calls=_SHARED_ACCESSORS, source_attrs=_SHARED_ATTRIBUTES
    )

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, node)

    def _check_function(
        self, module: SourceModule, func: ast.AST
    ) -> Iterator[Finding]:
        own = list(_own_nodes(func))
        tainted = taint_names(own, self._SPEC).names
        if not tainted:
            return
        # Shallow roots are this rule's historical contract: deep chains
        # through attached objects are RPR010's domain.
        for node, _kind in iter_mutations(own, tainted, deep_roots=False):
            yield self._report(module, node)

    def _report(self, module: SourceModule, node: ast.AST) -> Finding:
        return self.finding(
            module,
            node,
            "in-place mutation of an array obtained from a shared template "
            "accessor (vector_masks/unary_fields/pair_fields/base_matrix); "
            "copy it first — these arrays are shared across every network "
            "of the shape",
        )


@register_rule
class NestedLock(LintRule):
    """RPR004: acquiring a lock while holding another deadlocks the first
    time two threads disagree on the order.  Nested acquisition is only
    legal when the module pins the order in a ``LOCK_ORDER`` tuple (the
    serve layer's documented discipline)."""

    code = "RPR004"
    name = "nested-lock"
    description = "nested lock acquisition without a declared LOCK_ORDER"

    _LOCKISH = ("lock", "guard", "mutex", "cond")

    def _lock_name(self, expr: ast.AST) -> "str | None":
        if isinstance(expr, ast.Call):
            terminal = _terminal_name(expr.func)
            if terminal == "acquire" and isinstance(expr.func, ast.Attribute):
                return _terminal_name(expr.func.value)
            return None
        terminal = _terminal_name(expr)
        if terminal is not None and any(
            piece in terminal.lower() for piece in self._LOCKISH
        ):
            return terminal
        return None

    def _declared_order(self, module: SourceModule) -> tuple[str, ...]:
        for node in module.tree.body:
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "LOCK_ORDER" for t in node.targets
            ):
                if isinstance(node.value, (ast.Tuple, ast.List)):
                    return tuple(
                        element.value
                        for element in node.value.elts
                        if isinstance(element, ast.Constant)
                        and isinstance(element.value, str)
                    )
        return ()

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        order = self._declared_order(module)
        for node in ast.walk(module.tree):
            inner_name = None
            if isinstance(node, ast.With):
                for item in node.items:
                    inner_name = self._lock_name(item.context_expr)
                    if inner_name:
                        break
            elif isinstance(node, ast.Call):
                inner_name = self._lock_name(node)  # .acquire() form
            if inner_name is None:
                continue
            held = self._held_locks(module, node)
            for outer_name in held:
                if outer_name == inner_name:
                    continue
                if self._ordered(order, outer_name, inner_name):
                    continue
                yield self.finding(
                    module,
                    node,
                    f"'{inner_name}' acquired while holding '{outer_name}' with no "
                    "LOCK_ORDER declaring that order; nested acquisition deadlocks "
                    "the first time two threads disagree",
                )

    def _held_locks(self, module: SourceModule, node: ast.AST) -> list[str]:
        held = []
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break
            if isinstance(ancestor, ast.With):
                for item in ancestor.items:
                    name = self._lock_name(item.context_expr)
                    if name:
                        held.append(name)
        return held

    @staticmethod
    def _ordered(order: tuple[str, ...], outer: str, inner: str) -> bool:
        if outer in order and inner in order:
            return order.index(outer) < order.index(inner)
        return False


@register_rule
class WarnStacklevel(LintRule):
    """RPR005: a ``warnings.warn`` without ``stacklevel`` points the user
    at library internals instead of their own call site."""

    code = "RPR005"
    name = "warn-stacklevel"
    description = "warnings.warn without stacklevel"

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        bare_warn_imported = any(
            isinstance(node, ast.ImportFrom)
            and node.module == "warnings"
            and any(alias.name == "warn" for alias in node.names)
            for node in ast.walk(module.tree)
        )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_warn = (
                isinstance(func, ast.Attribute)
                and func.attr == "warn"
                and isinstance(func.value, ast.Name)
                and func.value.id == "warnings"
            ) or (
                bare_warn_imported
                and isinstance(func, ast.Name)
                and func.id == "warn"
            )
            if is_warn and not any(k.arg == "stacklevel" for k in node.keywords):
                yield self.finding(
                    module,
                    node,
                    "warnings.warn without stacklevel=; the warning will point at "
                    "repro internals instead of the caller",
                )


@register_rule
class KernelWallclock(LintRule):
    """RPR006: kernels must stay deterministic and cost-modelled — timing
    belongs to ``maspar.cost``/``parsec.timing`` and the session layer,
    never inside ``parsec``/``mesh``/``engines`` code."""

    code = "RPR006"
    name = "kernel-wallclock"
    description = "wall-clock read inside a kernel module"

    _KERNEL_DIRS = ("/parsec/", "/mesh/", "/engines/")
    _EXEMPT = ("parsec/timing.py",)

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        rel = "/" + module.rel
        if not any(piece in rel for piece in self._KERNEL_DIRS):
            return
        if module.located_in(*self._EXEMPT):
            return
        from_time_imports = {
            alias.asname or alias.name
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ImportFrom) and node.module == "time"
            for alias in node.names
        }
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            flagged = (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and (
                    (func.value.id == "time" and func.attr in _WALLCLOCK_NAMES)
                    or (func.value.id == "datetime" and func.attr in ("now", "utcnow"))
                )
            ) or (isinstance(func, ast.Name) and func.id in from_time_imports)
            if flagged:
                yield self.finding(
                    module,
                    node,
                    "wall-clock read inside a kernel module; kernels are "
                    "deterministic and cost-modelled — record timing in the "
                    "session layer or the machine cost model",
                )


@register_rule
class EngineContract(LintRule):
    """RPR007: every engine the registry exposes must implement the
    compiled-artifact entry point — ``run(network, *, compiled=...,
    filter_limit=..., trace=...)`` — and carry a ``name`` attribute, or
    the session/serve layers break at dispatch time."""

    code = "RPR007"
    name = "engine-contract"
    description = "registered engine missing the compiled-artifact run() contract"

    _REQUIRED_KWARGS = ("compiled", "filter_limit", "trace")

    def check_project(self, project: Project) -> Iterable[Finding]:
        registry = project.find("engines/registry.py")
        if registry is None:
            return
        imports = self._class_modules(registry)
        for node, class_name in self._registered_classes(registry):
            module_path = imports.get(class_name)
            target = project.find(module_path) if module_path else None
            if target is None:
                continue  # registered from outside the linted tree
            class_def = next(
                (
                    n
                    for n in ast.walk(target.tree)
                    if isinstance(n, ast.ClassDef) and n.name == class_name
                ),
                None,
            )
            if class_def is None:
                continue
            yield from self._check_class(registry, node, target, class_def)

    def _check_class(
        self,
        registry: SourceModule,
        registration: ast.AST,
        target: SourceModule,
        class_def: ast.ClassDef,
    ) -> Iterator[Finding]:
        run = next(
            (
                n
                for n in class_def.body
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
                and n.name == "run"
            ),
            None,
        )
        has_name = any(
            isinstance(stmt, ast.Assign)
            and any(isinstance(t, ast.Name) and t.id == "name" for t in stmt.targets)
            for stmt in class_def.body
        )
        problems = []
        if run is None:
            problems.append("no run() method")
        else:
            kwonly = {arg.arg for arg in run.args.kwonlyargs}
            missing = [k for k in self._REQUIRED_KWARGS if k not in kwonly]
            if missing:
                problems.append(
                    f"run() missing keyword-only parameter(s) {', '.join(missing)}"
                )
        if not has_name:
            problems.append("no class-level 'name' attribute")
        if problems:
            yield self.finding(
                target,
                class_def,
                f"engine '{class_def.name}' is registered in "
                f"{registry.rel} but does not satisfy the compiled-artifact "
                f"contract: {'; '.join(problems)}",
            )

    @staticmethod
    def _class_modules(registry: SourceModule) -> dict[str, str]:
        """class name -> module path suffix, from the registry's imports."""
        out = {}
        for node in ast.walk(registry.tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                suffix = node.module.replace(".", "/") + ".py"
                for alias in node.names:
                    out[alias.asname or alias.name] = suffix
        return out

    @staticmethod
    def _registered_classes(
        registry: SourceModule,
    ) -> Iterator[tuple[ast.AST, str]]:
        for node in ast.walk(registry.tree):
            if not isinstance(node, ast.Call):
                continue
            terminal = _terminal_name(node.func)
            if terminal not in ("register_engine", "setdefault") or len(node.args) != 2:
                continue
            factory = node.args[1]
            if isinstance(factory, ast.Name):
                yield node, factory.id
            elif isinstance(factory, ast.Lambda):
                for inner in ast.walk(factory.body):
                    if isinstance(inner, ast.Call) and isinstance(inner.func, ast.Name):
                        yield node, inner.func.id
                        break


@register_rule
class SilentExcept(LintRule):
    """RPR008: a bare ``except:`` (or a broad handler that just passes)
    hides real failures — the serve layer's conservation laws and the
    engines' bit-identity both depend on errors surfacing."""

    code = "RPR008"
    name = "silent-except"
    description = "bare or silently-swallowing broad except"

    _BROAD = frozenset({"Exception", "BaseException"})

    def _is_broad(self, node: "ast.expr | None") -> bool:
        if node is None:
            return True
        if isinstance(node, ast.Tuple):
            return any(self._is_broad(element) for element in node.elts)
        return _terminal_name(node) in self._BROAD

    @staticmethod
    def _is_silent(body: list[ast.stmt]) -> bool:
        return all(
            isinstance(stmt, (ast.Pass, ast.Continue))
            or (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis
            )
            for stmt in body
        )

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare 'except:' catches SystemExit/KeyboardInterrupt too; "
                    "name the exceptions this handler is for",
                )
            elif self._is_broad(node.type) and self._is_silent(node.body):
                yield self.finding(
                    module,
                    node,
                    "broad except silently swallows the error; handle it, log it, "
                    "or narrow the exception type",
                )


@register_rule
class ThawFrozen(LintRule):
    """RPR009: shared arrays are frozen exactly once, by their owner;
    ``setflags(write=True)`` anywhere else re-opens the shared-mutation
    hole the freeze exists to close."""

    code = "RPR009"
    name = "thaw-frozen"
    description = "setflags(write=True) outside the owning module"

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and _terminal_name(node.func) == "setflags"
            ):
                continue
            thaws = any(
                keyword.arg == "write"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
                for keyword in node.keywords
            ) or (
                node.args
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value is True
            )
            if thaws:
                yield self.finding(
                    module,
                    node,
                    "setflags(write=True) re-thaws a frozen shared array; copy it "
                    "instead of unfreezing the shared instance",
                )


@register_rule
class WriteThroughAttached(LintRule):
    """RPR010: arrays attached from a ``SharedTemplateStore`` segment map
    the owner's memory directly into this process — a write through them
    corrupts the template for *every* attached worker at once, not just
    the writer.  Attached state is read-only by contract: taint flows
    from ``attach()``/``attach_template()`` results, and any write whose
    target roots in a tainted name (item assignment, ``&=``, in-place
    ndarray methods, ``out=``) is flagged.  Copy before mutating."""

    code = "RPR010"
    name = "write-through-attached"
    description = "write through an array attached from SharedTemplateStore"

    #: Same mention-mode engine as RPR003, sourced at attach results.
    _SPEC = TaintSpec(source_calls=frozenset({"attach", "attach_template"}))

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, node)

    def _check_function(
        self, module: SourceModule, func: ast.AST
    ) -> Iterator[Finding]:
        own = list(_own_nodes(func))
        tainted = taint_names(own, self._SPEC).names
        if not tainted:
            return
        # Deep roots: ``entry[0].base_bits[i] = x`` roots in ``entry`` —
        # the write lands in the attached segment no matter how deep the
        # chain — and a plain attribute store through an attached object
        # also lands in the mapped segment (attr_targets).
        for node, _kind in iter_mutations(
            own, tainted, deep_roots=True, attr_targets=True
        ):
            yield self._report(module, node)

    def _report(self, module: SourceModule, node: ast.AST) -> Finding:
        return self.finding(
            module,
            node,
            "write through an array attached from a SharedTemplateStore "
            "segment; attached template state is shared read-only across "
            "every worker process — copy it before mutating",
        )


@register_rule
class ExtendMustNotThaw(LintRule):
    """RPR011: the streaming core's contract is that ``extend*`` methods
    grow *new* state from a frozen predecessor — ``NetworkTemplate.extend``
    scatters the prefix's packed base matrix into a fresh layout,
    ``ConstraintNetwork.extend_from`` embeds the previous network's bits
    into a freshly bound one — and the predecessor stays bit-identical
    throughout (the prefix template stays cached; the prior network is
    the streaming layer's retained truth).  Any in-place write to an
    array reachable from an ``extend*`` function's parameters (item
    assignment, ``&=``, in-place ndarray methods, ``out=``) thaws that
    frozen input and silently corrupts every other holder of it.

    Taint starts at the parameters and flows only through plain alias
    chains (``bits = prev.alive_bits``) and view-preserving calls
    (``.view``, ``asarray``); a constructor or factory call result
    (``template.bind(...)``, ``np.zeros(...)``) is fresh state and is
    free to mutate.  Plain attribute rebinding (``new.masks = ...``) is
    likewise allowed — building the successor is the whole point."""

    code = "RPR011"
    name = "extend-must-not-thaw"
    description = "in-place write to a predecessor's arrays inside an extend* method"

    #: Alias-mode engine: parameters seed the taint, and unlike RPR003/
    #: RPR010 it does *not* flow through general call results —
    #: ``network = template.bind(sent)`` binds fresh state a grower may
    #: mutate.  Only bare alias chains and the view-preserving numpy
    #: calls keep taint, and a name rebound to fresh state sheds it
    #: (parameters shadowed by e.g. ``prev = None``).
    _SPEC = TaintSpec(
        seed_params=True, mode="alias", shed_on_rebind=True, loop_targets=False
    )

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and node.name.lstrip("_").startswith("extend"):
                yield from self._check_function(module, node)

    def _check_function(
        self, module: SourceModule, func: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> Iterator[Finding]:
        own = list(_own_nodes(func))
        tainted = taint_names(own, self._SPEC, func=func).names
        for node, _kind in iter_mutations(own, tainted, deep_roots=True):
            yield self._report(module, node, func.name)

    def _report(self, module: SourceModule, node: ast.AST, func_name: str) -> Finding:
        return self.finding(
            module,
            node,
            f"in-place write to an array reachable from '{func_name}'s parameters; "
            "extend* grows new state from a frozen predecessor — scatter into a "
            "fresh array (np.zeros + fancy-index assignment) instead of thawing "
            "the input",
        )


@register_rule
class SocketLifecycle(LintRule):
    """RPR012: the cluster layer is the only place the repo opens real
    sockets, and every one of them must have a close path that survives
    review: a socket that leaks keeps its port, its FD, and (server
    side) its accept loop alive past the lifecycle that owned it.  An
    opener call (``socket(...)``, ``create_connection``,
    ``create_server``, ``start_server``, ``open_connection``) passes
    only when it is (a) a ``with``/``async with`` context item, (b)
    bound to names on which a ``close``/``wait_closed``/``shutdown``/
    ``abort`` call appears in the same function, (c) bound to a
    ``self.<attr>`` that some method of the same class closes, or (d)
    handed to a lifecycle registrar (a call whose name contains
    ``register`` or ``track``) — either the call's result directly or
    the names it was unpacked into.  Anything else is a leak."""

    code = "RPR012"
    name = "socket-lifecycle"
    description = "socket/server opened in repro.cluster without a close path"

    _OPENERS = frozenset(
        {"socket", "create_connection", "create_server", "start_server",
         "open_connection"}
    )
    _CLOSERS = frozenset({"close", "wait_closed", "shutdown", "abort"})

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        if "cluster/" not in module.rel:
            return
        yield from self._visit(module, module.tree, None)

    def _visit(
        self, module: SourceModule, node: ast.AST, cls: "ast.ClassDef | None"
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from self._visit(module, child, child)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, child, cls)
                yield from self._visit(module, child, cls)
            else:
                yield from self._visit(module, child, cls)

    def _opener_calls(self, expr: ast.AST) -> "list[ast.Call]":
        return [
            node
            for node in ast.walk(expr)
            if isinstance(node, ast.Call)
            and _terminal_name(node.func) in self._OPENERS
        ]

    def _check_function(
        self, module: SourceModule, func: ast.AST, cls: "ast.ClassDef | None"
    ) -> Iterator[Finding]:
        own = list(_own_nodes(func))
        handled: "set[ast.Call]" = set()

        # (a) context-managed openers close themselves.
        for node in own:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    handled.update(self._opener_calls(item.context_expr))

        # (b)/(c)/(d) assigned openers need a reachable close path.
        for node in own:
            if not isinstance(node, ast.Assign):
                continue
            calls = [c for c in self._opener_calls(node.value) if c not in handled]
            if not calls:
                continue
            handled.update(calls)
            names: "set[str]" = set()
            self_attrs: "set[str]" = set()
            for target in node.targets:
                for leaf in self._leaf_targets(target):
                    if isinstance(leaf, ast.Name):
                        names.add(leaf.id)
                    elif (
                        isinstance(leaf, ast.Attribute)
                        and isinstance(leaf.value, ast.Name)
                        and leaf.value.id == "self"
                    ):
                        self_attrs.add(leaf.attr)
            ok = bool(names) and self._names_closed_or_registered(own, names)
            if not ok and self_attrs and cls is not None:
                ok = self._attrs_closed_in_class(cls, self_attrs)
            if not ok:
                for call in calls:
                    yield self._report(module, call)

        # Bare openers: allowed only when fed straight to a registrar.
        parents: "dict[ast.AST, ast.AST]" = {}
        for parent in ast.walk(func):
            for child in ast.iter_child_nodes(parent):
                parents[child] = parent
        for node in own:
            if (
                isinstance(node, ast.Call)
                and _terminal_name(node.func) in self._OPENERS
                and node not in handled
            ):
                if not self._inside_registrar(node, parents):
                    yield self._report(module, node)

    def _report(self, module: SourceModule, node: ast.AST) -> Finding:
        return self.finding(
            module,
            node,
            "socket/server opened without a close path: use a context "
            "manager, call close()/shutdown() on it in this function, "
            "close the self-attribute elsewhere in the class, or hand it "
            "to a lifecycle registrar",
        )

    def _leaf_targets(self, target: ast.AST) -> Iterator[ast.AST]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from self._leaf_targets(element)
        elif isinstance(target, ast.Starred):
            yield from self._leaf_targets(target.value)
        else:
            yield target

    def _names_closed_or_registered(
        self, own: "list[ast.AST]", names: "set[str]"
    ) -> bool:
        for node in own:
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in self._CLOSERS
            ):
                root = node.func.value
                while isinstance(root, (ast.Attribute, ast.Subscript)):
                    root = root.value
                if isinstance(root, ast.Name) and root.id in names:
                    return True
            terminal = _terminal_name(node.func)
            if terminal and ("register" in terminal or "track" in terminal):
                arguments = list(node.args) + [kw.value for kw in node.keywords]
                for argument in arguments:
                    for sub in ast.walk(argument):
                        if isinstance(sub, ast.Name) and sub.id in names:
                            return True
        return False

    def _attrs_closed_in_class(
        self, cls: ast.ClassDef, attrs: "set[str]"
    ) -> bool:
        for node in ast.walk(cls):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._CLOSERS
            ):
                target = node.func.value
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr in attrs
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    return True
        return False

    def _inside_registrar(
        self, node: ast.AST, parents: "dict[ast.AST, ast.AST]"
    ) -> bool:
        current = parents.get(node)
        while current is not None:
            if isinstance(current, ast.Call):
                terminal = _terminal_name(current.func)
                if terminal and ("register" in terminal or "track" in terminal):
                    return True
            current = parents.get(current)
        return False


@register_rule
class KernelBitArith(LintRule):
    """RPR013: word-level bit arithmetic stays inside the kernel core.

    The packed execution core owns one copy of every bitwise primitive
    (``repro.kernels``), and the layout layer
    (``repro/network/bitset.py``) is the only other module allowed to
    touch numpy's bit machinery directly.  A ``np.bitwise_and`` or
    ``np.packbits`` anywhere else is a second, unreviewed kernel: it
    will drift from the canonical one (padding invariants, endianness,
    delta counting) exactly the way the pre-1.8 CYK did.  Call the
    kernel API instead.
    """

    code = "RPR013"
    name = "kernel-bit-arith"
    description = "word-level bit arithmetic outside the kernel core"

    _BANNED = frozenset(
        {
            "bitwise_and",
            "bitwise_or",
            "bitwise_xor",
            "bitwise_count",
            "packbits",
            "unpackbits",
        }
    )
    _ALLOWED_DIRS = ("/kernels/",)
    _ALLOWED_FILES = ("network/bitset.py",)

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        rel = "/" + module.rel
        if any(piece in rel for piece in self._ALLOWED_DIRS):
            return
        if module.located_in(*self._ALLOWED_FILES):
            return
        from_numpy_imports = {
            alias.asname or alias.name
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ImportFrom) and node.module == "numpy"
            for alias in node.names
            if alias.name in self._BANNED
        }
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            used = self._banned_numpy_call(node.func, from_numpy_imports)
            if used:
                yield self.finding(
                    module,
                    node,
                    f"np.{used} outside repro/kernels/ (or the bitset layout "
                    f"layer); word-level bit arithmetic goes through the "
                    f"kernel API (repro.kernels.bitops / the kernel backend)",
                )

    def _banned_numpy_call(
        self, func: ast.AST, from_numpy_imports: "set[str]"
    ) -> "str | None":
        """The banned ufunc a call resolves to, walking np.X(.at/.reduceat)."""
        if isinstance(func, ast.Name) and func.id in from_numpy_imports:
            return func.id
        chain: list[str] = []
        current = func
        while isinstance(current, ast.Attribute):
            chain.append(current.attr)
            current = current.value
        if isinstance(current, ast.Name) and current.id in ("np", "numpy"):
            for attr in chain:
                if attr in self._BANNED:
                    return attr
        return None


@register_rule
class NativeBoundaryHygiene(LintRule):
    """RPR017: validate buffers before they cross into foreign code.

    A numpy array handed to a C function through ``.ctypes`` is a raw
    pointer: a wrong dtype, a non-contiguous view, or an unexpected
    byte order is not a Python exception on the other side, it is
    silent memory corruption.  So inside ``repro/kernels/native/``
    every ``.ctypes`` access must be on an array that provably went
    through a validating constructor in the same function — one of
    numpy's contiguity-guaranteeing allocators/copiers
    (``ascontiguousarray``, ``empty``, ``zeros``, ``empty_like``,
    ``zeros_like``) or one of the package's own checked wrappers
    (``_check_operands``, ``_as_words``, ``_require_words``).  An
    unvalidated ``.ctypes`` is a finding; route the array through a
    validator first.
    """

    code = "RPR017"
    name = "native-boundary-hygiene"
    description = "unvalidated array handed across the ctypes boundary"

    _SCOPE = ("/kernels/native/",)

    #: Calls whose result is contiguity/dtype-safe to hand to C: numpy
    #: allocators (fresh arrays are C-contiguous) and the native
    #: package's own validating wrappers.
    _VALIDATORS = frozenset(
        {
            "ascontiguousarray",
            "empty",
            "zeros",
            "empty_like",
            "zeros_like",
            "_check_operands",
            "_as_words",
            "_require_words",
        }
    )

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        rel = "/" + module.rel
        if not any(piece in rel for piece in self._SCOPE):
            return
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            nodes = list(_own_nodes(func))
            validated = self._validated_names(nodes)
            for node in nodes:
                if not (isinstance(node, ast.Attribute) and node.attr == "ctypes"):
                    continue
                base = node.value
                if isinstance(base, ast.Call):
                    # Direct validator(...).ctypes is fine.
                    if _terminal_name(base.func) in self._VALIDATORS:
                        continue
                elif isinstance(base, ast.Name) and base.id in validated:
                    continue
                yield self.finding(
                    module,
                    node,
                    f"'.ctypes' on an unvalidated array in {func.name}(); "
                    "native wrappers must route every buffer through a "
                    "dtype/contiguity validator (ascontiguousarray, "
                    "np.empty/zeros, _check_operands, _as_words, "
                    "_require_words) before handing it to C",
                )

    def _validated_names(self, nodes: "list[ast.AST]") -> "set[str]":
        """Names assigned (anywhere in the function) from a validator call.

        Flow-insensitive on purpose: an over-approximation keeps the
        rule quiet on the common rebind-in-place idiom
        (``mask = np.ascontiguousarray(mask)``) while still flagging
        arrays that never met a validator at all.
        """
        names: set[str] = set()
        for node in nodes:
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if not (
                isinstance(value, ast.Call)
                and _terminal_name(value.func) in self._VALIDATORS
            ):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    # a, b = _check_operands(x, y) validates both.
                    names.update(
                        element.id
                        for element in target.elts
                        if isinstance(element, ast.Name)
                    )
        return names
