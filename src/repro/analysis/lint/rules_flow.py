"""Whole-project rules (``RPR014``..``RPR016``) over the flow layer.

These rules need the cross-module structure that
:mod:`repro.analysis.flow` builds — a call graph, lock identities, and
interprocedural taint — so they live apart from the per-module
catalogue in :mod:`~repro.analysis.lint.rules`:

========  ========================  ================================================
code      name                      invariant
========  ========================  ================================================
RPR014    cross-module-lock-cycle   the project-wide lock-order graph is acyclic,
                                    and every ``LOCK_ORDER`` declaration agrees
                                    with the others and with observed acquisitions
RPR015    blocking-in-async         no blocking primitive (``time.sleep``, socket
                                    I/O, lock ``acquire``, file I/O, ...) reachable
                                    from a ``repro.cluster`` coroutine outside an
                                    executor or an ``await``-ed primitive
RPR016    escaping-frozen-ref       a reference derived from frozen template /
                                    attached-segment state that escapes through a
                                    return value or a ``self`` attribute is never
                                    mutated by its consumers
========  ========================  ================================================

The expensive structure is built once per :class:`Project` (all three
rules share one :class:`~repro.analysis.flow.callgraph.CallGraph` via
:func:`flow_graph`), so adding these rules costs one project scan, not
three.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.flow.blocking import BlockingAnalysis
from repro.analysis.flow.callgraph import CallGraph, FunctionInfo, _own_nodes
from repro.analysis.flow.cfg import ControlFlowGraph, ReachingDefinitions
from repro.analysis.flow.locks import LockGraph, _short
from repro.analysis.flow.taint import TaintResult, TaintSpec, _mentions_source, iter_mutations, taint_names
from repro.analysis.lint.framework import (
    Finding,
    LintRule,
    Project,
    register_rule,
)
from repro.analysis.lint.rules import _SHARED_ACCESSORS, _SHARED_ATTRIBUTES

__all__ = ["flow_graph", "lock_graph"]


def flow_graph(project: Project) -> CallGraph:
    """The project's call graph, built once and cached on the project."""
    graph = getattr(project, "_flow_callgraph", None)
    if graph is None:
        graph = CallGraph(project)
        project._flow_callgraph = graph
    return graph


def lock_graph(project: Project) -> LockGraph:
    graph = getattr(project, "_flow_lockgraph", None)
    if graph is None:
        graph = LockGraph(flow_graph(project))
        project._flow_lockgraph = graph
    return graph


def _qual_short(qualname: str) -> str:
    return ".".join(qualname.split(".")[-2:])


@register_rule
class CrossModuleLockCycle(LintRule):
    """RPR014: the project-wide lock-order graph must be acyclic.

    RPR004 checks nested ``with`` blocks inside one function;  this rule
    follows acquisitions *through calls* — holding
    ``ParseService._lock`` while calling a metrics method that takes
    ``Histogram._lock`` is an edge, and any cycle among such edges is a
    latent deadlock no single file shows.  ``LOCK_ORDER`` graduates from
    a per-module escape hatch to a project-level declaration: every
    declaration must agree with every other and with the edges the code
    actually exhibits."""

    code = "RPR014"
    name = "cross-module-lock-cycle"
    description = "cycle or declaration conflict in the project-wide lock order"

    def check_project(self, project: Project) -> Iterable[Finding]:
        locks = lock_graph(project)

        for cycle in locks.cycles():
            chain = " -> ".join(
                [_short(edge.outer) for edge in cycle] + [_short(cycle[0].outer)]
            )
            hops = "; ".join(edge.describe() for edge in cycle)
            witness = cycle[0]
            yield self.finding(
                witness.module,
                witness.node,
                f"lock-order cycle {chain} across the project ({hops}); "
                "two threads taking these locks in different orders deadlock — "
                "pick one global order and restructure the offending path",
            )

        declared = locks.declared_before()
        reported: set[frozenset[str]] = set()
        for (first, second), declaration in sorted(
            declared.items(), key=lambda item: (item[1].module.rel, item[0])
        ):
            reverse = declared.get((second, first))
            pair = frozenset((first, second))
            if reverse is None or pair in reported or first == second:
                continue
            reported.add(pair)
            yield self.finding(
                declaration.module,
                declaration.node,
                f"LOCK_ORDER declarations disagree: this module declares "
                f"'{_short(first)}' before '{_short(second)}' but "
                f"{reverse.module.rel} declares the opposite; one global "
                "order must hold everywhere",
            )

        for edge in locks.unique_edges():
            if (edge.inner, edge.outer) in declared:
                declaration = declared[(edge.inner, edge.outer)]
                yield self.finding(
                    edge.module,
                    edge.node,
                    f"'{_short(edge.inner)}' is acquired while "
                    f"'{_short(edge.outer)}' is held"
                    + (f" (via {_qual_short(edge.via)})" if edge.via else "")
                    + f", but {declaration.module.rel} declares LOCK_ORDER "
                    f"'{_short(edge.inner)}' before '{_short(edge.outer)}'; "
                    "the code contradicts the declared global order",
                )


@register_rule
class BlockingInAsync(LintRule):
    """RPR015: nothing reachable from a ``repro.cluster`` coroutine may
    block the event-loop thread.  A shard's loop serves every
    connection; one ``time.sleep``/``sock.recv``/lock ``acquire``/file
    write in any transitively-called sync helper freezes heartbeats and
    every in-flight parse at once.  Blocking work belongs behind
    ``loop.run_in_executor`` (whose lambdas the call graph deliberately
    ignores) or an ``await``-able asyncio primitive."""

    code = "RPR015"
    name = "blocking-in-async"
    description = "blocking call reachable from a repro.cluster coroutine"

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = flow_graph(project)
        analysis = BlockingAnalysis(graph)
        for site, coroutine, path in analysis.findings():
            function = graph.functions[site.function]
            if len(path) == 1:
                where = f"in coroutine '{_qual_short(coroutine)}'"
            else:
                rendered = " -> ".join(_qual_short(q) for q in path)
                where = (
                    f"reachable from coroutine '{_qual_short(coroutine)}' "
                    f"({rendered})"
                )
            yield self.finding(
                function.module,
                site.node,
                f"blocking call ({site.reason}) {where}; the cluster event "
                "loop serves every connection from one thread — await an "
                "asyncio primitive or move this into loop.run_in_executor",
            )


@register_rule
class EscapingFrozenRef(LintRule):
    """RPR016: the frozen-template taint rules (RPR003/RPR010) stop at
    function boundaries, so a helper that *returns* a frozen-derived
    array — or parks one on ``self`` — launders the taint and its
    callers mutate shared state without a finding.  This rule closes the
    hole interprocedurally: a fixpoint over the call graph marks every
    function whose return value (and every ``self`` attribute whose
    stored value) derives from frozen template/attached state, then
    flags the mutation sites in their consumers.  Reaching definitions
    keep it honest: a name rebound to fresh state between the frozen
    call and the write is not flagged."""

    code = "RPR016"
    name = "escaping-frozen-ref"
    description = "caller mutates a frozen reference escaping through a return/attribute"

    _SOURCE_CALLS = frozenset(_SHARED_ACCESSORS | {"attach", "attach_template"})
    _SOURCE_ATTRS = frozenset(_SHARED_ATTRIBUTES)
    _MAX_ROUNDS = 32

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = flow_graph(project)
        own_map = {
            qualname: list(_own_nodes(function.node))
            for qualname, function in graph.functions.items()
        }
        frozen_returners: set[str] = set()
        frozen_attrs: dict[str, set[str]] = {}

        def spec_for(qualname: str, interprocedural: bool) -> TaintSpec:
            function = graph.functions[qualname]
            source_attrs = set(self._SOURCE_ATTRS)
            source_nodes: frozenset[int] = frozenset()
            if interprocedural:
                if function.cls is not None:
                    source_attrs |= frozen_attrs.get(function.cls.qualname, set())
                source_nodes = frozenset(
                    id(edge.node)
                    for edge in graph.edges.get(qualname, ())
                    if edge.callee in frozen_returners
                )
            return TaintSpec(
                source_calls=self._SOURCE_CALLS,
                source_attrs=frozenset(source_attrs),
                source_nodes=source_nodes,
            )

        for _ in range(self._MAX_ROUNDS):
            changed = False
            for qualname, function in graph.functions.items():
                spec = spec_for(qualname, interprocedural=True)
                result = taint_names(own_map[qualname], spec)
                if self._returns_tainted(own_map[qualname], result, spec):
                    if qualname not in frozen_returners:
                        frozen_returners.add(qualname)
                        changed = True
                if function.cls is not None:
                    for attr in self._frozen_attr_stores(
                        own_map[qualname], result, spec
                    ):
                        bucket = frozen_attrs.setdefault(function.cls.qualname, set())
                        if attr not in bucket:
                            bucket.add(attr)
                            changed = True
            if not changed:
                break

        for qualname, function in graph.functions.items():
            yield from self._check_function(
                graph, function, own_map[qualname], frozen_returners, frozen_attrs,
                spec_for,
            )

    @staticmethod
    def _returns_tainted(
        own: list[ast.AST], result: TaintResult, spec: TaintSpec
    ) -> bool:
        return any(
            isinstance(node, ast.Return)
            and node.value is not None
            and _mentions_source(node.value, result.names, spec)
            for node in own
        )

    @staticmethod
    def _frozen_attr_stores(
        own: list[ast.AST], result: TaintResult, spec: TaintSpec
    ) -> Iterator[str]:
        for node in own:
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and _mentions_source(node.value, result.names, spec)
            ):
                yield target.attr

    def _check_function(
        self,
        graph: CallGraph,
        function: FunctionInfo,
        own: list[ast.AST],
        frozen_returners: set[str],
        frozen_attrs: dict[str, set[str]],
        spec_for,
    ) -> Iterator[Finding]:
        full_spec = spec_for(function.qualname, True)
        if not (
            full_spec.source_nodes
            or (
                function.cls is not None
                and frozen_attrs.get(function.cls.qualname)
            )
        ):
            return  # nothing interprocedural feeds this function
        local = taint_names(own, spec_for(function.qualname, False))
        full = taint_names(own, full_spec)
        escaped = full.names - local.names
        class_attrs = (
            frozenset(frozen_attrs.get(function.cls.qualname, set()))
            if function.cls is not None
            else frozenset()
        )
        if not escaped and not class_attrs:
            return

        callees = sorted(
            {
                _qual_short(edge.callee)
                for edge in graph.edges.get(function.qualname, ())
                if edge.callee in frozen_returners
            }
        )
        provenance = (
            f"returned by {', '.join(callees)}" if callees else "stored on self"
        )

        analysis: "ReachingDefinitions | None" = None
        for node, kind in iter_mutations(
            own, escaped, tainted_self_attrs=class_attrs
        ):
            root = self._root_name(node)
            if root is not None and root in escaped:
                if analysis is None:
                    analysis = ReachingDefinitions(ControlFlowGraph(function.node))
                if not self._frozen_def_reaches(
                    function, analysis, full, root, node
                ):
                    continue
            yield self.finding(
                function.module,
                node,
                f"in-place write ({kind}) to a frozen template/attached "
                f"reference that escaped its owner ({provenance}); the array "
                "is shared beyond this function — copy it before mutating",
            )

    @staticmethod
    def _root_name(node: ast.AST) -> "str | None":
        if isinstance(node, ast.AugAssign):
            node = node.target
        elif isinstance(node, ast.Assign):
            node = node.targets[0]
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            node = node.func.value
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        return node.id if isinstance(node, ast.Name) else None

    def _frozen_def_reaches(
        self,
        function: FunctionInfo,
        analysis: ReachingDefinitions,
        taint: TaintResult,
        name: str,
        node: ast.AST,
    ) -> bool:
        """Does a frozen-binding def of *name* reach the mutation *node*?

        Conservative on lookup failure (statement outside the CFG — e.g.
        inside a lambda): the finding stands."""
        stmt: "ast.AST | None" = node
        while stmt is not None and id(stmt) not in analysis.cfg.stmt_site:
            stmt = function.module.parents.get(stmt)
        if stmt is None:
            return True
        reaching = analysis.reaching_at(stmt).get(name)
        if reaching is None:
            return True
        binding_sites = taint.binding_sites.get(name)
        if not binding_sites:
            return True
        reaching_ids = {id(site) for site in reaching}
        return any(id(site) in reaching_ids for site in binding_sites)
