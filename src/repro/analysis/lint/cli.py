"""The ``repro-lint`` command line (also ``python -m repro.analysis``).

Exit codes: 0 = clean, 1 = findings, 2 = usage or parse errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

import repro
from repro.analysis.lint.baseline import (
    GitUnavailable,
    changed_files,
    load_baseline,
    restrict_to_changed,
    subtract_baseline,
    write_baseline,
)
from repro.analysis.lint.framework import all_rules, lint_paths
from repro.analysis.lint.sarif import to_sarif


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Check repro's project invariants (RPR001..) over a source tree.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="fail only on findings not recorded in FILE "
        "(see --write-baseline)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current findings into the --baseline file and exit 0",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="report only findings in files changed per git "
        "(diff vs HEAD plus untracked); the whole tree is still analysed",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    return parser


def main(argv: "Sequence[str] | None" = None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name}: {rule.description}", file=out)
        return 0

    if args.write_baseline and not args.baseline:
        print("error: --write-baseline requires --baseline FILE", file=sys.stderr)
        return 2

    select = None
    if args.select:
        select = {code.strip().upper() for code in args.select.split(",") if code.strip()}
        known = {rule.code for rule in all_rules()}
        unknown = select - known
        if unknown:
            print(
                f"error: unknown rule code(s) {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(known))}",
                file=sys.stderr,
            )
            return 2

    try:
        findings = lint_paths(args.paths, select=select)
    except (OSError, SyntaxError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.changed_only:
        try:
            changed = changed_files()
        except GitUnavailable as error:
            print(f"error: --changed-only needs git: {error}", file=sys.stderr)
            return 2
        findings = restrict_to_changed(findings, changed)

    if args.write_baseline:
        entries = write_baseline(findings, args.baseline)
        print(
            f"wrote {entries} baseline entr{'y' if entries == 1 else 'ies'} "
            f"({len(findings)} findings) to {args.baseline}",
            file=out,
        )
        return 0

    absorbed = 0
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        fresh = subtract_baseline(findings, baseline)
        absorbed = len(findings) - len(fresh)
        findings = fresh

    if args.format == "json":
        counts: dict[str, int] = {}
        for finding in findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        payload = {
            "findings": [finding.to_dict() for finding in findings],
            "counts": counts,
            "rules": [
                {"code": rule.code, "name": rule.name, "description": rule.description}
                for rule in all_rules()
            ],
        }
        print(json.dumps(payload, indent=2), file=out)
    elif args.format == "sarif":
        document = to_sarif(findings, all_rules(), version=repro.__version__)
        print(json.dumps(document, indent=2), file=out)
    else:
        for finding in findings:
            print(finding.render(), file=out)
        noun = "finding" if len(findings) == 1 else "findings"
        summary = (
            f"{len(findings)} {noun} "
            f"({len(all_rules())} rules over {', '.join(args.paths)})"
        )
        if absorbed:
            summary += f"; {absorbed} absorbed by baseline {args.baseline}"
        print(summary, file=out)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
