"""``python -m repro.analysis`` runs the invariant linter (repro-lint)."""

from repro.analysis.lint.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
