"""Runtime sanitizer for the packed-core and session-threading invariants.

``repro-lint`` (:mod:`repro.analysis.lint`) checks the *source* for
invariant violations; this module checks *executions*.  When enabled it
monkey-patches the hot seams of the execution core and asserts the three
properties everything downstream assumes:

1. **Monotonicity** — arc-matrix bits and alive bits only ever go
   1 -> 0 (the paper's "entries are only cleared, never set"); any
   mutation helper or materialize/repack bracket that flips a bit
   0 -> 1 raises immediately, at the call that did it.
2. **Frozen shares stay frozen** — the template's shared arrays and the
   packed-mode boolean views must keep ``writeable=False``; a thawed
   buffer means some engine is about to scribble on state shared across
   sentences (or silently desynchronize the packed truth).
3. **Thread ownership** — a :class:`~repro.pipeline.session.ParserSession`
   and each :class:`~repro.network.network.ConstraintNetwork` belong to
   the first thread that uses them; any other thread touching them is a
   data race (the session's own guard only catches *concurrent* entry,
   not handoff races).

Enabling
--------

* environment: ``REPRO_SANITIZE=1`` before importing :mod:`repro`
  (checked once at import via :func:`maybe_enable_from_env`);
* programmatic: :func:`enable` / :func:`disable`;
* pytest: the ``sanitized`` fixture from ``tests/conftest.py``
  (``pytest -m sanitize`` runs the suite that exercises it).

The checks copy packed arrays around, so leave the sanitizer off for
benchmarks; it is a debugging/CI tool, not a production mode.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field

import numpy as np

from repro.kernels import bitops

#: Environment variable that switches the sanitizer on at import time.
ENV_VAR = "REPRO_SANITIZE"


class SanitizerError(AssertionError):
    """An execution violated a core invariant (see module docstring)."""


@dataclass
class Diagnostic:
    """One recorded violation (also carried by :class:`SanitizerError`)."""

    kind: str
    message: str
    thread: str = field(default_factory=lambda: threading.current_thread().name)

    def render(self) -> str:
        return f"[{self.kind}] {self.message} (thread {self.thread!r})"


def _raise(kind: str, message: str) -> None:
    diagnostic = Diagnostic(kind=kind, message=message)
    _STATE.diagnostics.append(diagnostic)
    raise SanitizerError(diagnostic.render())


class _State:
    def __init__(self) -> None:
        self.enabled = False
        self.originals: dict = {}
        self.diagnostics: list[Diagnostic] = []


_STATE = _State()


def _new_bits(old: np.ndarray, new: np.ndarray) -> int:
    """How many bits are set in *new* that were clear in *old*."""
    if old.shape != new.shape:
        return 0  # shape changed: not a monotonicity question
    return bitops.count_ones(np.asarray(new & ~old))


def _describe_network(network) -> str:
    words = getattr(getattr(network, "sentence", None), "words", None)
    label = " ".join(words) if words else "<unbound>"
    return f"network({label!r}, nv={network.nv})"


def _claim_thread(obj, what: str) -> None:
    """First toucher owns *obj*; later cross-thread touches raise."""
    current = threading.get_ident()
    owner = getattr(obj, "_san_owner", None)
    if owner is None:
        obj._san_owner = current
        obj._san_owner_name = threading.current_thread().name
    elif owner != current:
        _raise(
            "cross-thread",
            f"{what} used from thread {threading.current_thread().name!r} "
            f"but owned by thread {obj._san_owner_name!r}; sessions and "
            "networks are single-threaded — give each worker its own",
        )


def _check_frozen(array: "np.ndarray | None", what: str) -> None:
    if array is not None and array.flags.writeable:
        _raise("thawed-frozen", f"{what} is writeable; shared arrays must stay frozen")


# -- patches ----------------------------------------------------------------


def _patch(cls, name: str, wrapper_factory) -> None:
    original = getattr(cls, name)
    _STATE.originals[(cls, name)] = original
    setattr(cls, name, wrapper_factory(original))


def _monotonic_mutation(original):
    """Wrap a packed-mode mutation helper with a before/after bit check."""

    def wrapper(self, *args, **kwargs):
        _claim_thread(self, _describe_network(self))
        if self.packed_active:
            alive_before = self.alive_bits.copy()
            matrix_before = self.matrix_bits.copy()
            result = original(self, *args, **kwargs)
            grew = _new_bits(alive_before, self.alive_bits) + _new_bits(
                matrix_before, self.matrix_bits
            )
            if grew:
                _raise(
                    "monotonicity",
                    f"{original.__name__} set {grew} bit(s) 0->1 on "
                    f"{_describe_network(self)}; packed state may only be cleared",
                )
            return result
        return original(self, *args, **kwargs)

    wrapper.__name__ = original.__name__
    wrapper.__doc__ = original.__doc__
    return wrapper


def _materialize_wrapper(original):
    def wrapper(self):
        _claim_thread(self, _describe_network(self))
        if self.packed_active:
            # Snapshot the packed truth: repack must not grow it.
            self._san_alive_snapshot = self.alive_bits.copy()
            self._san_matrix_snapshot = self.matrix_bits.copy()
        return original(self)

    wrapper.__name__ = original.__name__
    wrapper.__doc__ = original.__doc__
    return wrapper


def _repack_wrapper(original):
    def wrapper(self):
        _claim_thread(self, _describe_network(self))
        was_bool = not self.packed_active
        result = original(self)
        if was_bool:
            for attr, snapshot_attr in (
                ("alive_bits", "_san_alive_snapshot"),
                ("matrix_bits", "_san_matrix_snapshot"),
            ):
                snapshot = getattr(self, snapshot_attr, None)
                if snapshot is None:
                    continue
                grew = _new_bits(snapshot, getattr(self, attr))
                if grew:
                    _raise(
                        "monotonicity",
                        f"repack() of {_describe_network(self)} set {grew} "
                        f"bit(s) 0->1 in {attr} relative to the "
                        "materialize_bool() snapshot; the boolean interlude "
                        "revived role values or arcs",
                    )
            self._san_alive_snapshot = None
            self._san_matrix_snapshot = None
            _check_frozen(self.alive, f"{_describe_network(self)}.alive view")
            _check_frozen(self.matrix, f"{_describe_network(self)}.matrix view")
        return result

    wrapper.__name__ = original.__name__
    wrapper.__doc__ = original.__doc__
    return wrapper


def _clone_wrapper(original):
    def wrapper(self):
        other = original(self)
        # The clone is fresh: it inherits neither owner nor snapshots.
        for attr in ("_san_owner", "_san_owner_name", "_san_alive_snapshot",
                     "_san_matrix_snapshot"):
            other.__dict__.pop(attr, None)
        return other

    wrapper.__name__ = original.__name__
    wrapper.__doc__ = original.__doc__
    return wrapper


def _bind_wrapper(original):
    def wrapper(self, sentence):
        # Every bind re-checks that the template's shared arrays are
        # still frozen — a thawed one would leak writes across networks.
        for name in ("pos", "role_kind", "cat", "lab", "mod", "role_index",
                     "base_bits", "canbe_array", "nonempty_roles", "nonempty_starts"):
            _check_frozen(getattr(self, name, None), f"NetworkTemplate.{name}")
        return original(self, sentence)

    wrapper.__name__ = original.__name__
    wrapper.__doc__ = original.__doc__
    return wrapper


def _session_parse_wrapper(original):
    def wrapper(self, *args, **kwargs):
        _claim_thread(self, f"ParserSession(engine={self.engine.name!r})")
        return original(self, *args, **kwargs)

    wrapper.__name__ = original.__name__
    wrapper.__doc__ = original.__doc__
    return wrapper


# -- public API -------------------------------------------------------------


def enable() -> None:
    """Install the sanitizer patches (idempotent)."""
    if _STATE.enabled:
        return
    from repro.network.network import ConstraintNetwork
    from repro.pipeline.session import ParserSession
    from repro.pipeline.template import NetworkTemplate

    _patch(ConstraintNetwork, "kill", _monotonic_mutation)
    _patch(ConstraintNetwork, "apply_pair_mask", _monotonic_mutation)
    _patch(ConstraintNetwork, "apply_pair_mask_bits", _monotonic_mutation)
    _patch(ConstraintNetwork, "materialize_bool", _materialize_wrapper)
    _patch(ConstraintNetwork, "repack", _repack_wrapper)
    _patch(ConstraintNetwork, "clone", _clone_wrapper)
    _patch(NetworkTemplate, "bind", _bind_wrapper)
    _patch(ParserSession, "parse", _session_parse_wrapper)
    _STATE.enabled = True


def disable() -> None:
    """Remove the patches and forget recorded diagnostics (idempotent)."""
    if not _STATE.enabled:
        return
    for (cls, name), original in _STATE.originals.items():
        setattr(cls, name, original)
    _STATE.originals.clear()
    _STATE.diagnostics.clear()
    _STATE.enabled = False


def is_enabled() -> bool:
    return _STATE.enabled


def diagnostics() -> list[Diagnostic]:
    """Violations recorded so far (each also raised a SanitizerError)."""
    return list(_STATE.diagnostics)


def maybe_enable_from_env() -> bool:
    """Enable iff ``REPRO_SANITIZE`` is set to a truthy value."""
    value = os.environ.get(ENV_VAR, "").strip().lower()
    if value in {"1", "true", "yes", "on"}:
        enable()
        return True
    return False
