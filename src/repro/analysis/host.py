"""Host metadata for honest benchmark records.

Every benchmark writer embeds :func:`host_metadata` in its JSON record,
and every scaling claim is gated on it: a "2x with 2 shards" line from
a single-core container is dispatch overhead arithmetic, not a scaling
measurement.  :func:`scaling_claim_allowed` centralizes that gate so
the parallel bench, the cluster harness, and CI all apply the same
rule — *annotate* what was measured on a small host, *claim* only what
the cores could actually exhibit.
"""

from __future__ import annotations

import multiprocessing
import os
import platform


def host_metadata() -> dict:
    """The facts a benchmark record needs to be interpreted honestly."""
    try:
        start_method = multiprocessing.get_start_method(allow_none=True) or "default"
    except (ValueError, RuntimeError):  # pragma: no cover - exotic hosts
        start_method = "unknown"
    return {
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "start_method": start_method,
    }


def scaling_claim_allowed(parallelism: int, *, cpus: "int | None" = None) -> bool:
    """May a record claim "Nx scaling" at this *parallelism* on this host?

    True only when the host has at least as many cores as concurrent
    workers — fewer cores means the workers time-share and the measured
    ratio reflects scheduling, not parallel speedup.
    """
    available = (os.cpu_count() or 1) if cpus is None else cpus
    return parallelism <= available


def scaling_note(parallelism: int, *, cpus: "int | None" = None) -> "str | None":
    """The annotation a record carries when the claim gate fails (else None)."""
    available = (os.cpu_count() or 1) if cpus is None else cpus
    if scaling_claim_allowed(parallelism, cpus=available):
        return None
    return (
        f"host has {available} CPU(s) for {parallelism} workers: ratios measure "
        "scheduling and dispatch overhead, not parallel scaling"
    )
