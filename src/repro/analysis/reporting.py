"""Plain-text table rendering for the benchmark harness output."""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render an aligned monospace table (benchmarks print these)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]

    def line(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(row, widths, strict=True)).rstrip()

    out = []
    if title:
        out.append(title)
        out.append("=" * max(len(title), 8))
    out.append(line(cells[0]))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in cells[1:])
    return "\n".join(out)


def format_seconds(seconds: float) -> str:
    """Human-scale time rendering: 12.3 us / 4.56 ms / 1.23 s."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    if seconds < 120:
        return f"{seconds:.2f} s"
    return f"{seconds / 60:.1f} min"
