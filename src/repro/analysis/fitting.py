"""Empirical complexity estimation: log-log exponent fits.

Figure 8's running-time column is asymptotic; the benchmarks back it
with measured growth exponents.  ``fit_power_law`` performs the standard
least-squares fit of ``log y = e * log x + c``, returning the exponent
``e`` and the coefficient of determination so a bench can assert both
the slope and that a power law describes the data at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PowerLawFit:
    """y ≈ scale * x^exponent."""

    exponent: float
    scale: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.scale * x**self.exponent


def fit_power_law(xs, ys) -> PowerLawFit:
    """Fit ``y = c * x^e`` by linear regression in log-log space.

    Raises:
        ValueError: with fewer than two points or non-positive data.
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if len(xs) < 2 or len(xs) != len(ys):
        raise ValueError("need at least two (x, y) pairs of equal length")
    if (xs <= 0).any() or (ys <= 0).any():
        raise ValueError("power-law fits need strictly positive data")
    lx = np.log(xs)
    ly = np.log(ys)
    exponent, intercept = np.polyfit(lx, ly, 1)
    predicted = exponent * lx + intercept
    residual = ((ly - predicted) ** 2).sum()
    total = ((ly - ly.mean()) ** 2).sum()
    r_squared = 1.0 if total == 0 else 1.0 - residual / total
    return PowerLawFit(exponent=float(exponent), scale=float(np.exp(intercept)), r_squared=float(r_squared))


def fit_log_growth(xs, ys) -> tuple[float, float, float]:
    """Fit ``y = a * log2(x) + b``; returns (a, b, r_squared)."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if len(xs) < 2 or len(xs) != len(ys):
        raise ValueError("need at least two (x, y) pairs of equal length")
    lx = np.log2(xs)
    a, b = np.polyfit(lx, ys, 1)
    predicted = a * lx + b
    residual = ((ys - predicted) ** 2).sum()
    total = ((ys - ys.mean()) ** 2).sum()
    r_squared = 1.0 if total == 0 else 1.0 - residual / total
    return float(a), float(b), float(r_squared)
