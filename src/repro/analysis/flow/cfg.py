"""Per-function control-flow graphs and reaching definitions.

The lint rules that predate this module are flow-*insensitive*: RPR003's
taint, for instance, treats a name as tainted everywhere in a function
once any assignment taints it, so ``m = frozen(); m = np.zeros(4);
m[0] = 1`` is a false positive.  This module supplies the missing
precision: :class:`ControlFlowGraph` splits a function body into basic
blocks with explicit edges for ``if``/``while``/``for``/``try``/
``match``/``break``/``continue``/``return``, and
:class:`ReachingDefinitions` runs the textbook forward may-analysis over
it, so a rule can ask "which assignments to ``m`` can still be live
here?" at any statement.

Design notes, in the spirit of the rest of the lint package — small and
deliberately boring:

* Blocks hold *statements*.  A compound statement (``if``/``for``/...)
  appears in the block that evaluates its header; its body lives in
  successor blocks.  Header bindings (a ``for`` target, a ``with ... as``
  name) are attributed to the header statement.
* ``try`` is approximated conservatively: every block of the protected
  body gets an edge to every handler, as if any statement could raise.
  Over-approximation is the safe direction for a may-analysis consumer
  ("some frozen def may reach this write").
* Walrus (``:=``) bindings are ignored — the codebase style avoids them,
  and missing a def only *widens* what the consumer flags, never hides
  a real reaching def that an assignment created.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "Block",
    "ControlFlowGraph",
    "ReachingDefinitions",
    "bound_names",
]

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _target_names(target: ast.AST) -> Iterator[str]:
    """Plain names bound by an assignment target (tuples/starred unpacked)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)
    # Attribute / Subscript targets mutate an object, they bind no name.


def bound_names(stmt: ast.AST) -> set[str]:
    """Names (re)bound by *stmt*'s header — not by nested-body statements."""
    names: set[str] = set()
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            names.update(_target_names(target))
    elif isinstance(stmt, ast.AnnAssign):
        if stmt.value is not None:
            names.update(_target_names(stmt.target))
    elif isinstance(stmt, ast.AugAssign):
        names.update(_target_names(stmt.target))
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        names.update(_target_names(stmt.target))
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                names.update(_target_names(item.optional_vars))
    elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            bound = alias.asname or alias.name.split(".")[0]
            if bound != "*":
                names.add(bound)
    elif isinstance(stmt, (*_FUNCTION_NODES, ast.ClassDef)):
        names.add(stmt.name)
    elif isinstance(stmt, ast.ExceptHandler):
        if stmt.name:
            names.add(stmt.name)
    return names


@dataclass
class Block:
    """One basic block: straight-line statements plus edge sets."""

    index: int
    stmts: list[ast.stmt] = field(default_factory=list)
    succs: set[int] = field(default_factory=set)
    preds: set[int] = field(default_factory=set)


class ControlFlowGraph:
    """Basic-block CFG for one function definition.

    ``blocks[0]`` is the entry; :attr:`exit_index` is a distinguished
    empty block every ``return``/falloff path reaches.  ``stmt_site``
    maps each recorded statement (by identity) to its ``(block, index)``
    slot so reaching-definitions lookups are O(block length).
    """

    def __init__(self, func: "ast.FunctionDef | ast.AsyncFunctionDef"):
        self.func = func
        self.blocks: list[Block] = []
        self._loops: list[tuple[int, int]] = []  # (continue target, break target)
        entry = self._new_block()
        self.exit_index = self._new_block().index
        self._current = entry.index
        self._reachable = True
        self._build(func.body)
        self._edge(self._current, self.exit_index)
        self.stmt_site: dict[int, tuple[int, int]] = {}
        for block in self.blocks:
            for position, stmt in enumerate(block.stmts):
                self.stmt_site[id(stmt)] = (block.index, position)

    # -- construction ------------------------------------------------------

    def _new_block(self) -> Block:
        block = Block(index=len(self.blocks))
        self.blocks.append(block)
        return block

    def _edge(self, src: int, dst: int) -> None:
        if self._reachable or src != self._current:
            self.blocks[src].succs.add(dst)
            self.blocks[dst].preds.add(src)

    def _start(self, block: Block) -> None:
        self._current = block.index
        self._reachable = True

    def _emit(self, stmt: ast.stmt) -> None:
        self.blocks[self._current].stmts.append(stmt)

    def _build(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.If):
                self._build_if(stmt)
            elif isinstance(stmt, (ast.While,)):
                self._build_while(stmt)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._build_for(stmt)
            elif isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
                self._build_try(stmt)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                # A with-block runs straight through; the header binds names.
                self._emit(stmt)
                self._build(stmt.body)
            elif isinstance(stmt, ast.Match):
                self._build_match(stmt)
            elif isinstance(stmt, (ast.Return, ast.Raise)):
                self._emit(stmt)
                self._edge(self._current, self.exit_index)
                self._start(self._new_block())
                self._reachable = False
            elif isinstance(stmt, ast.Break):
                self._emit(stmt)
                if self._loops:
                    self._edge(self._current, self._loops[-1][1])
                self._start(self._new_block())
                self._reachable = False
            elif isinstance(stmt, ast.Continue):
                self._emit(stmt)
                if self._loops:
                    self._edge(self._current, self._loops[-1][0])
                self._start(self._new_block())
                self._reachable = False
            else:
                self._emit(stmt)

    def _build_if(self, stmt: ast.If) -> None:
        self._emit(stmt)
        header = self._current
        after = self._new_block()
        then_block = self._new_block()
        self._edge(header, then_block.index)
        self._start(then_block)
        self._build(stmt.body)
        self._edge(self._current, after.index)
        if stmt.orelse:
            else_block = self._new_block()
            self._edge(header, else_block.index)
            self._start(else_block)
            self._build(stmt.orelse)
            self._edge(self._current, after.index)
        else:
            self._edge(header, after.index)
        self._start(after)

    def _build_while(self, stmt: ast.While) -> None:
        header = self._new_block()
        self._edge(self._current, header.index)
        self._start(header)
        self._emit(stmt)
        after = self._new_block()
        body = self._new_block()
        self._edge(header.index, body.index)
        self._loops.append((header.index, after.index))
        self._start(body)
        self._build(stmt.body)
        self._edge(self._current, header.index)
        self._loops.pop()
        if stmt.orelse:
            orelse = self._new_block()
            self._edge(header.index, orelse.index)
            self._start(orelse)
            self._build(stmt.orelse)
            self._edge(self._current, after.index)
        else:
            self._edge(header.index, after.index)
        self._start(after)

    def _build_for(self, stmt: "ast.For | ast.AsyncFor") -> None:
        header = self._new_block()
        self._edge(self._current, header.index)
        self._start(header)
        self._emit(stmt)  # the header binds the loop target
        after = self._new_block()
        body = self._new_block()
        self._edge(header.index, body.index)
        self._loops.append((header.index, after.index))
        self._start(body)
        self._build(stmt.body)
        self._edge(self._current, header.index)
        self._loops.pop()
        if stmt.orelse:
            orelse = self._new_block()
            self._edge(header.index, orelse.index)
            self._start(orelse)
            self._build(stmt.orelse)
            self._edge(self._current, after.index)
        else:
            self._edge(header.index, after.index)
        self._start(after)

    def _build_try(self, stmt: ast.AST) -> None:
        before = self._current
        body = self._new_block()
        self._edge(before, body.index)
        self._start(body)
        first_body_block = len(self.blocks) - 1
        self._build(stmt.body)
        body_end = self._current
        body_blocks = range(first_body_block, len(self.blocks))

        after = self._new_block()
        tails = []

        if stmt.orelse:
            orelse = self._new_block()
            self._edge(body_end, orelse.index)
            self._start(orelse)
            self._build(stmt.orelse)
            tails.append(self._current)
        else:
            tails.append(body_end)

        for handler in stmt.handlers:
            caught = self._new_block()
            # Any statement of the protected body may raise into the handler.
            for block_index in body_blocks:
                self._edge(block_index, caught.index)
            self._start(caught)
            self._emit(handler)  # binds ``except ... as name``
            self._build(handler.body)
            tails.append(self._current)

        if stmt.finalbody:
            final = self._new_block()
            for tail in tails:
                self._edge(tail, final.index)
            self._start(final)
            self._build(stmt.finalbody)
            self._edge(self._current, after.index)
        else:
            for tail in tails:
                self._edge(tail, after.index)
        self._start(after)

    def _build_match(self, stmt: ast.Match) -> None:
        self._emit(stmt)
        header = self._current
        after = self._new_block()
        for case in stmt.cases:
            arm = self._new_block()
            self._edge(header, arm.index)
            self._start(arm)
            self._build(case.body)
            self._edge(self._current, after.index)
        self._edge(header, after.index)  # no case may match
        self._start(after)


class ReachingDefinitions:
    """Forward may-analysis: which defs of each name can reach each point.

    A *definition* is ``(name, site)`` where ``site`` is the statement
    that bound the name, or the function node itself for parameters
    (parameters are seeded at entry).  :meth:`reaching_at` answers the
    query rules care about: the possible binding sites of every name
    just *before* a given statement executes.
    """

    def __init__(self, cfg: ControlFlowGraph):
        self.cfg = cfg
        func = cfg.func
        args = func.args
        params = {
            arg.arg
            for arg in (
                *args.posonlyargs, *args.args, *args.kwonlyargs,
                *filter(None, (args.vararg, args.kwarg)),
            )
        }
        entry_defs = frozenset((name, id(func)) for name in params)
        self._site_nodes: dict[int, ast.AST] = {id(func): func}

        gen: list[dict[str, int]] = []
        for block in cfg.blocks:
            block_gen: dict[str, int] = {}
            for stmt in block.stmts:
                self._site_nodes[id(stmt)] = stmt
                for name in bound_names(stmt):
                    block_gen[name] = id(stmt)
            gen.append(block_gen)

        n = len(cfg.blocks)
        self._in: list[set[tuple[str, int]]] = [set() for _ in range(n)]
        out: list[set[tuple[str, int]]] = [set() for _ in range(n)]
        self._in[0] = set(entry_defs)
        worklist = list(range(n))
        while worklist:
            index = worklist.pop(0)
            incoming = set(entry_defs) if index == 0 else set()
            for pred in cfg.blocks[index].preds:
                incoming |= out[pred]
            self._in[index] = incoming
            killed = set(gen[index])
            new_out = {d for d in incoming if d[0] not in killed}
            new_out |= {(name, site) for name, site in gen[index].items()}
            if new_out != out[index]:
                out[index] = new_out
                worklist.extend(
                    s for s in cfg.blocks[index].succs if s not in worklist
                )

    def reaching_at(self, stmt: ast.stmt) -> dict[str, set[ast.AST]]:
        """Binding sites per name that may reach the point just before *stmt*.

        *stmt* must be a statement recorded in the CFG (use the enclosing
        statement when querying about an expression).  Raises ``KeyError``
        for statements outside this function.
        """
        block_index, position = self.cfg.stmt_site[id(stmt)]
        live = dict(self._group(self._in[block_index]))
        for earlier in self.cfg.blocks[block_index].stmts[:position]:
            bound = bound_names(earlier)
            for name in bound:
                live[name] = {earlier}
        return live

    def _group(
        self, defs: set[tuple[str, int]]
    ) -> Iterator[tuple[str, set[ast.AST]]]:
        grouped: dict[str, set[ast.AST]] = {}
        for name, site in defs:
            grouped.setdefault(name, set()).add(self._site_nodes[site])
        yield from grouped.items()
