"""A module-resolved call graph over a lint :class:`Project`.

The per-module rules stop at call boundaries; the concurrency rules
(RPR014/RPR015) and the interprocedural taint rule (RPR016) cannot.
This module builds the project-wide structure they share:

* a **module registry** — every linted file gets a dotted module name
  derived from its path (``src/repro/serve/service.py`` →
  ``repro.serve.service``), and every module's import table is resolved
  against the registry, *through* package ``__init__`` re-exports
  (``from repro.serve import ParseService`` lands on
  ``repro.serve.service.ParseService``);
* a **class registry** with project-local MRO (bases that resolve to
  project classes) and per-class attribute types inferred from
  ``self.x: T`` annotations and ``self.x = Ctor(...)`` assignments;
* a **call graph**: for every function, each call site resolved to the
  project function it lands on, through typed attribute chains
  (``self.metrics.batch_size.observe`` →
  ``serve.metrics.Histogram.observe``).

Resolution is deliberately *typed, never name-matched*: an attribute
call that cannot be traced through imports or inferred types stays
unresolved rather than being guessed by method name (a unique-name
fallback would happily resolve ``writer.write`` onto ``ShardLog.write``
and poison every consumer).  Unresolved calls are kept — the blocking
analysis treats some of them (``.recv``, ``.acquire``) as primitives.

Calls inside a ``lambda`` are attributed to the enclosing function —
``lambda t: self.service.submit(words, timeout=t)`` really does run on
the caller's thread — *except* when the lambda is an argument to a
deferral primitive (``run_in_executor``, ``to_thread``, ``Thread``,
``submit`` on an executor, ``call_soon``...), where the body runs on
another thread/loop turn and must not contribute edges.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # imported lazily: lint/__init__ imports back into us
    from repro.analysis.lint.framework import Project, SourceModule

__all__ = [
    "CallGraph",
    "ClassInfo",
    "FunctionInfo",
    "FILE_TYPE",
    "module_name_for",
]

#: Sentinel "type" for values produced by the ``open()`` builtin.
FILE_TYPE = "<file>"

#: Call names whose function-valued arguments run elsewhere (another
#: thread, executor, or a later event-loop turn): lambdas passed to them
#: contribute no call edges from the enclosing function.
_DEFERRAL_CALLS = frozenset(
    {
        "run_in_executor",
        "to_thread",
        "Thread",
        "Timer",
        "submit",
        "call_soon",
        "call_soon_threadsafe",
        "call_later",
        "call_at",
        "add_done_callback",
        "apply_async",
    }
)


def module_name_for(path: str) -> str:
    """Dotted module name for a source path.

    Anchors at the last ``src`` path segment when present (the repo
    layout), else at the first ``repro`` segment (fixture paths like
    ``src/repro/cluster/x.py`` hit the first branch already; bare
    ``repro/...`` paths hit the second), else falls back to the stem so
    single-file fixtures still get a usable name.
    """
    parts = list(PurePosixPath(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "src" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("src")
        parts = parts[anchor + 1 :]
    elif "repro" in parts:
        parts = parts[parts.index("repro") :]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else path


def _terminal_name(node: ast.AST) -> "str | None":
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _dotted(node: ast.AST) -> "str | None":
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    chain: list[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        chain.append(node.id)
        return ".".join(reversed(chain))
    return None


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    qualname: str
    name: str
    module: SourceModule
    module_name: str
    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    cls: "ClassInfo | None" = None

    @property
    def is_async(self) -> bool:
        return isinstance(self.node, ast.AsyncFunctionDef)


@dataclass
class ClassInfo:
    """One class definition plus its inferred attribute types."""

    qualname: str
    name: str
    module: SourceModule
    module_name: str
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: attribute name -> class qualname (or FILE_TYPE) inferred from
    #: ``self.x: T`` / ``self.x = Ctor(...)``.
    attr_types: dict[str, str] = field(default_factory=dict)
    base_names: list[str] = field(default_factory=list)


@dataclass(frozen=True)
class CallEdge:
    """One resolved call site: *caller* invokes *callee* at *node*."""

    caller: str
    callee: str
    node: ast.Call


class _ModuleInfo:
    """Per-module naming, import table, and top-level symbol table."""

    def __init__(self, module: SourceModule):
        self.module = module
        self.name = module_name_for(module.rel)
        is_package = module.rel.endswith("__init__.py")
        self.package = self.name if is_package else self.name.rpartition(".")[0]
        #: local name -> dotted target (module or module-qualified symbol)
        self.imports: dict[str, str] = {}
        for node in module.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.imports[bound] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._from_base(node, is_package)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.imports[alias.asname or alias.name] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )

    def _from_base(self, node: ast.ImportFrom, is_package: bool) -> "str | None":
        if node.level == 0:
            return node.module or ""
        # Relative import: level 1 is the containing package.
        base = self.name if is_package else self.package
        for _ in range(node.level - 1):
            base = base.rpartition(".")[0]
        if node.module:
            base = f"{base}.{node.module}" if base else node.module
        return base or None


class CallGraph:
    """The whole-project view: modules, classes, functions, call edges."""

    def __init__(self, project: Project):
        self.project = project
        self._infos: dict[str, _ModuleInfo] = {}
        self.module_names: dict[str, SourceModule] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        #: caller qualname -> resolved outgoing edges.
        self.edges: dict[str, list[CallEdge]] = {}
        self.callers: dict[str, list[CallEdge]] = {}
        #: caller qualname -> call nodes no project function claimed.
        self.unresolved: dict[str, list[ast.Call]] = {}
        self._local_types: dict[str, dict[str, str]] = {}

        for module in project.modules:
            info = _ModuleInfo(module)
            self._infos[module.rel] = info
            self.module_names[info.name] = module
        for module in project.modules:
            self._index_definitions(module)
        for cls in self.classes.values():
            self._infer_attr_types(cls)
        for function in self.functions.values():
            self._resolve_calls(function)

    # -- indexing ----------------------------------------------------------

    def _index_definitions(self, module: SourceModule) -> None:
        info = self._infos[module.rel]

        def visit(node: ast.AST, scope: str, cls: "ClassInfo | None") -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    qualname = f"{scope}.{child.name}"
                    class_info = ClassInfo(
                        qualname=qualname,
                        name=child.name,
                        module=module,
                        module_name=info.name,
                        node=child,
                        base_names=[d for b in child.bases if (d := _dotted(b))],
                    )
                    self.classes[qualname] = class_info
                    visit(child, qualname, class_info)
                elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{scope}.{child.name}"
                    function = FunctionInfo(
                        qualname=qualname,
                        name=child.name,
                        module=module,
                        module_name=info.name,
                        node=child,
                        cls=cls,
                    )
                    self.functions[qualname] = function
                    if cls is not None and node is cls.node:
                        cls.methods[child.name] = function
                    # Nested defs are their own scope; the class context
                    # does not extend into them.
                    visit(child, qualname, None)
                else:
                    visit(child, scope, cls)

        visit(module.tree, info.name, None)

    # -- symbol resolution -------------------------------------------------

    def resolve_symbol(self, dotted: str) -> "FunctionInfo | ClassInfo | str | None":
        """Resolve a dotted path to a function, class, or module name.

        Follows import re-exports (a package ``__init__`` importing a
        symbol makes ``package.symbol`` resolve to the original), with a
        visited set to survive import cycles.
        """
        return self._resolve(dotted, visited=set())

    def _resolve(
        self, dotted: str, visited: set[str]
    ) -> "FunctionInfo | ClassInfo | str | None":
        if dotted in visited:
            return None
        visited.add(dotted)
        if dotted in self.functions:
            return self.functions[dotted]
        if dotted in self.classes:
            return self.classes[dotted]
        if dotted in self.module_names:
            return dotted
        # Longest module prefix, then follow that module's import table.
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix not in self.module_names:
                continue
            info = self._infos[self.module_names[prefix].rel]
            head, rest = parts[cut], parts[cut + 1 :]
            if head in info.imports:
                target = ".".join([info.imports[head], *rest])
                return self._resolve(target, visited)
            # ``repro.serve.service`` imported nowhere but present as a
            # submodule file: handled by the module_names check above.
            return None
        return None

    def _resolve_in_module(
        self, info: _ModuleInfo, name: str
    ) -> "FunctionInfo | ClassInfo | str | None":
        """Resolve a bare name as seen from inside a module."""
        local = f"{info.name}.{name}"
        if local in self.functions:
            return self.functions[local]
        if local in self.classes:
            return self.classes[local]
        if name in info.imports:
            return self.resolve_symbol(info.imports[name])
        return None

    # -- type inference ----------------------------------------------------

    def _annotation_type(
        self, info: _ModuleInfo, annotation: "ast.expr | None"
    ) -> "str | None":
        """Class qualname an annotation denotes, unwrapping ``X | None``
        and ``Optional[X]``; containers and unknowns resolve to None."""
        if annotation is None:
            return None
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
            for side in (annotation.left, annotation.right):
                resolved = self._annotation_type(info, side)
                if resolved is not None:
                    return resolved
            return None
        if isinstance(annotation, ast.Subscript):
            head = _terminal_name(annotation.value)
            if head == "Optional":
                return self._annotation_type(info, annotation.slice)
            return None  # list[X]/dict[...] — container, not the element
        if isinstance(annotation, ast.Constant) and annotation.value is None:
            return None
        dotted = _dotted(annotation)
        if dotted is None:
            return None
        resolved = (
            self._resolve_in_module(info, dotted)
            if "." not in dotted
            else self.resolve_symbol(dotted)
        )
        if isinstance(resolved, ClassInfo):
            return resolved.qualname
        return None

    def _constructed_type(
        self, info: _ModuleInfo, expr: ast.AST
    ) -> "str | None":
        """Type of ``Ctor(...)`` / ``open(...)`` expressions, if inferable."""
        if not isinstance(expr, ast.Call):
            return None
        if isinstance(expr.func, ast.Name) and expr.func.id == "open":
            return FILE_TYPE
        dotted = _dotted(expr.func)
        if dotted is None:
            return None
        resolved = (
            self._resolve_in_module(info, dotted)
            if "." not in dotted
            else self.resolve_symbol(dotted)
        )
        if isinstance(resolved, ClassInfo):
            return resolved.qualname
        if isinstance(resolved, FunctionInfo):
            return self._annotation_type(
                self._infos[resolved.module.rel], resolved.node.returns
            )
        return None

    def _infer_attr_types(self, cls: ClassInfo) -> None:
        info = self._infos[cls.module.rel]
        annotated: dict[str, str] = {}
        constructed: dict[str, str] = {}
        for method in cls.methods.values():
            for node in ast.walk(method.node):
                target = None
                value = None
                if isinstance(node, ast.AnnAssign):
                    target, value = node.target, node.value
                elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                if isinstance(node, ast.AnnAssign):
                    resolved = self._annotation_type(info, node.annotation)
                    if resolved is not None:
                        annotated.setdefault(target.attr, resolved)
                if value is not None:
                    resolved = self._constructed_type(info, value)
                    if resolved is not None:
                        constructed.setdefault(target.attr, resolved)
        cls.attr_types = {**constructed, **annotated}

    def class_attr_type(self, cls: ClassInfo, attr: str) -> "str | None":
        """Attribute type looked up through the project-local MRO."""
        for klass in self._mro(cls):
            if attr in klass.attr_types:
                return klass.attr_types[attr]
        return None

    def class_method(self, cls: ClassInfo, name: str) -> "FunctionInfo | None":
        for klass in self._mro(cls):
            if name in klass.methods:
                return klass.methods[name]
        return None

    def _mro(self, cls: ClassInfo) -> Iterator[ClassInfo]:
        seen: set[str] = set()
        stack = [cls]
        while stack:
            current = stack.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            yield current
            info = self._infos[current.module.rel]
            for base_name in current.base_names:
                resolved = (
                    self._resolve_in_module(info, base_name)
                    if "." not in base_name
                    else self.resolve_symbol(base_name)
                )
                if isinstance(resolved, ClassInfo):
                    stack.append(resolved)

    # -- local environments ------------------------------------------------

    def local_types(self, function: FunctionInfo) -> dict[str, str]:
        """name -> class qualname (or FILE_TYPE) for a function's locals."""
        cached = self._local_types.get(function.qualname)
        if cached is not None:
            return cached
        info = self._infos[function.module.rel]
        env: dict[str, str] = {}
        args = function.node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            resolved = self._annotation_type(info, arg.annotation)
            if resolved is not None:
                env[arg.arg] = resolved
        for node in _own_nodes(function.node):
            target = None
            value = None
            if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                annotated = self._annotation_type(info, node.annotation)
                if annotated is not None:
                    env[node.target.id] = annotated
                continue
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                target, value = node.targets[0], node.value
            if target is None or value is None:
                continue
            constructed = self._constructed_type(info, value)
            if constructed is not None:
                env.setdefault(target.id, constructed)
                continue
            aliased = self._expr_type_shallow(function, env, value)
            if aliased is not None:
                env.setdefault(target.id, aliased)
        self._local_types[function.qualname] = env
        return env

    def _expr_type_shallow(
        self, function: FunctionInfo, env: dict[str, str], expr: ast.AST
    ) -> "str | None":
        """Type of ``self.a.b`` / typed-name attribute chains (no calls)."""
        chain: list[str] = []
        node = expr
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        chain.reverse()
        current = self._root_type(function, env, node.id)
        for attr in chain:
            if current is None or current == FILE_TYPE:
                return None
            cls = self.classes.get(current)
            if cls is None:
                return None
            current = self.class_attr_type(cls, attr)
        return current

    def _root_type(
        self, function: FunctionInfo, env: dict[str, str], name: str
    ) -> "str | None":
        if name in ("self", "cls") and function.cls is not None:
            return function.cls.qualname
        return env.get(name)

    # -- call resolution ---------------------------------------------------

    def _resolve_calls(self, function: FunctionInfo) -> None:
        env = self.local_types(function)
        info = self._infos[function.module.rel]
        resolved_edges: list[CallEdge] = []
        unresolved: list[ast.Call] = []
        for call in _own_calls(function.node):
            target = self._resolve_call_target(function, info, env, call)
            if target is not None:
                edge = CallEdge(
                    caller=function.qualname, callee=target.qualname, node=call
                )
                resolved_edges.append(edge)
                self.callers.setdefault(target.qualname, []).append(edge)
            else:
                unresolved.append(call)
        self.edges[function.qualname] = resolved_edges
        self.unresolved[function.qualname] = unresolved

    def _resolve_call_target(
        self,
        function: FunctionInfo,
        info: _ModuleInfo,
        env: dict[str, str],
        call: ast.Call,
    ) -> "FunctionInfo | None":
        func = call.func
        if isinstance(func, ast.Name):
            resolved = self._resolve_in_module(info, func.id)
            if isinstance(resolved, FunctionInfo):
                return resolved
            if isinstance(resolved, ClassInfo):
                return self.class_method(resolved, "__init__")
            # Nested function defined in an enclosing scope of this one.
            scope = function.qualname
            while "." in scope:
                scope = scope.rpartition(".")[0]
                nested = self.functions.get(f"{scope}.{func.id}")
                if nested is not None and nested.cls is None:
                    return nested
            return None
        if not isinstance(func, ast.Attribute):
            return None

        chain: list[str] = []
        node: ast.AST = func
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        chain.reverse()
        method_name = chain[-1]
        walk = chain[:-1]

        if isinstance(node, ast.Call):
            root_type = self._constructed_type(info, node)
            return self._walk_typed_chain(root_type, walk, method_name)
        if not isinstance(node, ast.Name):
            return None

        root_type = self._root_type(function, env, node.id)
        if root_type is not None:
            return self._walk_typed_chain(root_type, walk, method_name)

        # Module-rooted chain: resolve progressively through imports.
        resolved = self._resolve_in_module(info, node.id)
        for index, attr in enumerate(chain):
            if isinstance(resolved, str):  # a module name
                resolved = self.resolve_symbol(f"{resolved}.{attr}")
            elif isinstance(resolved, ClassInfo):
                remaining = chain[index:]
                return self._walk_typed_chain(
                    resolved.qualname, remaining[:-1], remaining[-1]
                )
            else:
                return None
        if isinstance(resolved, FunctionInfo):
            return resolved
        if isinstance(resolved, ClassInfo):
            return self.class_method(resolved, "__init__")
        return None

    def _walk_typed_chain(
        self, root_type: "str | None", walk: list[str], method_name: str
    ) -> "FunctionInfo | None":
        current = root_type
        for attr in walk:
            if current is None:
                return None
            cls = self.classes.get(current)
            if cls is None:
                return None
            current = self.class_attr_type(cls, attr)
        if current is None:
            return None
        cls = self.classes.get(current)
        if cls is None:
            return None
        return self.class_method(cls, method_name)

    # -- traversal helpers -------------------------------------------------

    def callees_of(self, qualname: str) -> list[CallEdge]:
        return self.edges.get(qualname, [])

    def transitive_callees(self, qualname: str) -> set[str]:
        """Every function reachable from *qualname* along resolved edges."""
        seen: set[str] = set()
        stack = [qualname]
        while stack:
            current = stack.pop()
            for edge in self.edges.get(current, ()):
                if edge.callee not in seen:
                    seen.add(edge.callee)
                    stack.append(edge.callee)
        return seen


def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body excluding nested function/class bodies
    (lambdas included — they run in the enclosing frame)."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _own_calls(func: ast.AST) -> Iterator[ast.Call]:
    """Call nodes attributable to *func*: its own body plus lambda bodies,
    minus lambdas handed to deferral primitives (their bodies run on
    another thread or a later loop turn)."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if isinstance(node, ast.Call):
            yield node
            deferred = _terminal_name(node.func) in _DEFERRAL_CALLS
            for child in ast.iter_child_nodes(node):
                if deferred and isinstance(child, ast.Lambda):
                    continue
                if (
                    deferred
                    and isinstance(child, ast.keyword)
                    and isinstance(child.value, ast.Lambda)
                ):
                    continue
                stack.append(child)
            continue
        stack.extend(ast.iter_child_nodes(node))
