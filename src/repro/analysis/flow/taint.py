"""The shared "derived from" engine behind every taint rule.

RPR003 (shared template accessors), RPR010 (attached segments), RPR011
(extend predecessors) and RPR016 (interprocedural frozen refs) all ask
the same question — *is this name derived from a protected source?* —
but until this module each rule carried its own near-copy of the
propagation loop.  One engine, one definition:

* **Sources** are call results (``vector_masks(...)``,
  ``attach_template(...)``), attribute reads (``.base_bits``), function
  parameters (RPR011), or — for the interprocedural rule — specific
  call *nodes* a caller has resolved to frozen-returning functions.
* **Propagation** comes in two strengths.  *Mention* mode (RPR003/
  RPR010/RPR016) taints an assignment target when the value mentions a
  source or tainted name anywhere — except as the object of an
  attribute read (``entry.nbytes``, ``.copy()`` yield scalars or fresh
  arrays, not the protected buffer).  *Alias* mode (RPR011) is
  stricter: only bare Name/Attribute/Subscript chains and the
  view-preserving numpy calls keep taint; a general call result
  (``template.bind(...)``) is fresh state.
* **Shedding**: in alias mode a name rebound to untainted fresh state
  drops its taint (``prev = None`` shadows the parameter).  Mention
  mode keeps it — those rules are deliberately may-analyses.

Two propagation passes reach one level of indirection through loop
targets and re-assignments, which is what the codebase's idioms need;
rules that want real flow sensitivity layer
:class:`~repro.analysis.flow.cfg.ReachingDefinitions` on top (RPR016
does, to let a rebind kill a stale frozen def).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["TaintSpec", "TaintResult", "taint_names", "iter_mutations"]

#: ndarray methods that mutate their receiver in place.
INPLACE_METHODS = frozenset({"fill", "sort", "partition", "put", "resize", "setflags"})

#: Calls whose result aliases their input's buffer (alias mode only).
VIEWISH_CALLS = frozenset({"view", "asarray", "ascontiguousarray", "reshape", "ravel"})


@dataclass(frozen=True)
class TaintSpec:
    """What counts as a source and how taint travels."""

    source_calls: frozenset[str] = frozenset()
    source_attrs: frozenset[str] = frozenset()
    #: Specific call nodes (by identity) known to return tainted values —
    #: the interprocedural rule resolves these through the call graph.
    source_nodes: frozenset[int] = frozenset()
    seed_params: bool = False
    #: "mention" (RPR003/RPR010-style) or "alias" (RPR011-style).
    mode: str = "mention"
    shed_on_rebind: bool = False
    #: Whether iterating a tainted value taints the loop target.  RPR011
    #: keeps this off: its contract reasons about alias chains only.
    loop_targets: bool = True
    passes: int = 2


@dataclass
class TaintResult:
    """Tainted names plus, per name, the assignments that tainted it."""

    names: set[str] = field(default_factory=set)
    binding_sites: dict[str, set[ast.AST]] = field(default_factory=dict)

    def bind(self, name: str, site: "ast.AST | None") -> None:
        self.names.add(name)
        if site is not None:
            self.binding_sites.setdefault(name, set()).add(site)


def _terminal_name(node: ast.AST) -> "str | None":
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _target_names(target: ast.AST) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


def _param_names(func: "ast.FunctionDef | ast.AsyncFunctionDef") -> set[str]:
    args = func.args
    return {
        arg.arg
        for arg in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *filter(None, (args.vararg, args.kwarg)),
        )
    }


def _mentions_source(expr: ast.AST, tainted: set[str], spec: TaintSpec) -> bool:
    """Mention-mode hit test, with the parent-Attribute exclusion."""
    parents: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(expr):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    for node in ast.walk(expr):
        hit = (
            (
                isinstance(node, ast.Call)
                and (
                    _terminal_name(node.func) in spec.source_calls
                    or id(node) in spec.source_nodes
                )
            )
            or (isinstance(node, ast.Attribute) and node.attr in spec.source_attrs)
            or (isinstance(node, ast.Name) and node.id in tainted)
        )
        if hit and not isinstance(parents.get(node), ast.Attribute):
            return True
    return False


def _aliases_tainted(expr: ast.AST, tainted: set[str], spec: TaintSpec) -> bool:
    """Alias-mode hit test: bare chains and view-preserving calls only."""
    node = expr
    while True:
        if isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in VIEWISH_CALLS
        ):
            node = node.func.value
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in VIEWISH_CALLS
            and node.args
        ):
            node = node.args[0]
        else:
            break
    return isinstance(node, ast.Name) and node.id in tainted


def taint_names(
    own: list[ast.AST],
    spec: TaintSpec,
    func: "ast.FunctionDef | ast.AsyncFunctionDef | None" = None,
) -> TaintResult:
    """Propagate taint over a function's own statements.

    *own* is the function body walked without nested defs (the rules'
    ``_own_nodes`` discipline); *func* is required when
    ``spec.seed_params`` is set.
    """
    result = TaintResult()
    if spec.seed_params:
        if func is None:
            raise ValueError("seed_params requires the function node")
        result.names.update(_param_names(func))

    hits = _mentions_source if spec.mode == "mention" else _aliases_tainted

    rebound: set[str] = set()
    for _ in range(spec.passes):
        for node in own:
            if isinstance(node, ast.Assign):
                names = [n for t in node.targets for n in _target_names(t)]
                if hits(node.value, result.names, spec):
                    for name in names:
                        result.bind(name, node)
                elif spec.shed_on_rebind:
                    rebound.update(n for n in names if n in result.names)
            elif (
                spec.loop_targets
                and isinstance(node, (ast.For, ast.AsyncFor))
                and hits(node.iter, result.names, spec)
            ):
                for name in _target_names(node.target):
                    result.bind(name, node)
    result.names -= rebound
    for name in rebound:
        result.binding_sites.pop(name, None)
    return result


def iter_mutations(
    own: list[ast.AST],
    tainted: set[str],
    *,
    deep_roots: bool = True,
    attr_targets: bool = False,
    tainted_self_attrs: frozenset[str] = frozenset(),
) -> Iterator[tuple[ast.AST, str]]:
    """In-place writes landing in tainted storage: ``(node, kind)`` pairs.

    ``deep_roots`` walks ``entry[0].base_bits[i]`` down to ``entry``
    (RPR010/RPR011/RPR016); off, only the immediate name is checked
    (RPR003's historical shallow behaviour).  ``attr_targets`` also
    counts plain attribute stores as mutation (RPR010 — a store through
    an attached object lands in the mapped segment; everywhere else a
    plain attribute rebind is construction, not mutation).
    ``tainted_self_attrs`` extends the root test to ``self.<attr>``
    chains whose attribute the class-level analysis marked frozen.
    """

    def root_tainted(node: ast.AST) -> bool:
        if not deep_roots:
            return isinstance(node, ast.Name) and node.id in tainted
        previous = None
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            previous = node
            node = node.value
        if isinstance(node, ast.Name) and node.id in tainted:
            return True
        return (
            isinstance(node, ast.Name)
            and node.id == "self"
            and isinstance(previous, ast.Attribute)
            and previous.attr in tainted_self_attrs
        )

    def shallow_subscript_tainted(node: ast.AST) -> bool:
        return isinstance(node, ast.Subscript) and root_tainted(node.value)

    for node in own:
        if isinstance(node, ast.AugAssign):
            target_hit = (
                root_tainted(node.target)
                if deep_roots
                else root_tainted(node.target) or shallow_subscript_tainted(node.target)
            )
            if target_hit:
                yield node, "augmented assignment"
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                hit = (
                    isinstance(target, (ast.Subscript, ast.Attribute))
                    if attr_targets
                    else isinstance(target, ast.Subscript)
                ) and root_tainted(target if deep_roots else target.value)
                if hit:
                    yield node, "item assignment"
                    break
        elif isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in INPLACE_METHODS
                and root_tainted(node.func.value)
            ):
                yield node, f".{node.func.attr}()"
            for keyword in node.keywords:
                if keyword.arg == "out" and any(
                    isinstance(n, ast.Name) and n.id in tainted
                    for n in ast.walk(keyword.value)
                ):
                    yield node, "out= argument"
