"""``repro.analysis.flow``: whole-project dataflow for the lint layer.

The per-module lint rules (RPR001–RPR013) reason one file and one
function at a time.  This package supplies the project-wide structure
the concurrency and interprocedural-taint rules need:

* :mod:`~repro.analysis.flow.callgraph` — module-resolved call graph
  (imports, package re-exports, class registry, typed attribute chains);
* :mod:`~repro.analysis.flow.cfg` — per-function control-flow graphs
  and reaching definitions;
* :mod:`~repro.analysis.flow.taint` — the shared "derived from" engine
  behind every taint rule (RPR003/RPR010/RPR011/RPR016);
* :mod:`~repro.analysis.flow.locks` — interprocedural lock-order graph
  (cycle = latent deadlock; project-level ``LOCK_ORDER`` consistency);
* :mod:`~repro.analysis.flow.blocking` — blocking primitives reachable
  from ``repro.cluster`` coroutines.

Everything here is pure AST analysis over the lint framework's
:class:`~repro.analysis.lint.framework.Project`; nothing imports the
runtime parser.
"""

from repro.analysis.flow.callgraph import (
    CallEdge,
    CallGraph,
    ClassInfo,
    FunctionInfo,
    module_name_for,
)
from repro.analysis.flow.cfg import Block, ControlFlowGraph, ReachingDefinitions
from repro.analysis.flow.taint import TaintResult, TaintSpec, iter_mutations, taint_names
from repro.analysis.flow.locks import LockGraph, LockOrderEdge
from repro.analysis.flow.blocking import BlockingAnalysis, BlockingSite

__all__ = [
    "Block",
    "BlockingAnalysis",
    "BlockingSite",
    "CallEdge",
    "CallGraph",
    "ClassInfo",
    "ControlFlowGraph",
    "FunctionInfo",
    "LockGraph",
    "LockOrderEdge",
    "ReachingDefinitions",
    "TaintResult",
    "TaintSpec",
    "iter_mutations",
    "taint_names",
    "module_name_for",
]
