"""Interprocedural lock-order graph.

RPR004 sees nested ``with lock:`` blocks inside one function of one
file.  The deadlocks worth losing sleep over are the other kind: thread
A holds ``ParseService._lock`` and calls into a metrics instrument that
takes ``Histogram._lock``, while thread B holds the instrument lock and
calls back into the service.  Neither function nests two ``with``
statements; only the project-wide graph shows the cycle.

This module builds that graph from the call graph:

* **Lock identity** is class-qualified — ``repro.serve.service.
  ParseService._lock`` — never name-matched (every class in this repo
  calls its mutex ``_lock``; identifying them by name would weld the
  whole project into one false cycle).  Identity is seeded from
  ``self.x = threading.Lock()/RLock()/Semaphore()`` assignments;
  ``threading.Condition(self._lock)`` *aliases* the underlying mutex
  (``with self._work:`` acquires ``ParseService._lock``), and
  ``asyncio`` primitives are excluded — the event-loop domain cannot
  deadlock against thread mutexes through ``await``.  A name heuristic
  (RPR004's ``lock``/``guard``/``mutex``/``cond``) covers locks whose
  constructor the analysis cannot see, scoped to their class or module.
* **Acquisition sites** come from ``with``-items and blocking
  ``.acquire()`` calls; each records the locks *syntactically held*
  around it.
* **Edges** ``outer → inner`` arise from nested acquisitions and from
  call sites executed while a lock is held: the callee's transitive
  acquisitions (a call-graph fixpoint) all become inner locks.
* ``LOCK_ORDER`` tuples are collected project-wide: entries are bare
  attribute names (module-scoped, RPR004-compatible) or qualified
  ``"Class.attr"`` strings, and declarations must agree with each other
  and with the observed edges.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.flow.callgraph import (
    CallGraph,
    ClassInfo,
    FunctionInfo,
    _own_calls,
    _own_nodes,
    _terminal_name,
)
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported lazily: lint/__init__ imports back into us
    from repro.analysis.lint.framework import SourceModule

__all__ = ["LockGraph", "LockOrderEdge", "LockOrderDeclaration"]

_THREADING_LOCKS = frozenset({"Lock", "RLock", "Semaphore", "BoundedSemaphore"})
_LOCKISH = ("lock", "guard", "mutex", "cond")


def _is_lockish(name: str) -> bool:
    lowered = name.lower()
    return any(piece in lowered for piece in _LOCKISH)


def _short(lock_id: str) -> str:
    """Display form: the last two dotted components (``Class.attr``)."""
    return ".".join(lock_id.rsplit(".", 2)[-2:])


@dataclass(frozen=True)
class LockOrderEdge:
    """Witness that *inner* can be acquired while *outer* is held."""

    outer: str
    inner: str
    module: SourceModule
    node: ast.AST
    #: Qualname of the callee the inner acquisition happens in, when the
    #: edge is interprocedural (None for a syntactic nesting).
    via: "str | None" = None

    def describe(self) -> str:
        site = f"{self.module.rel}:{getattr(self.node, 'lineno', '?')}"
        hop = f"'{_short(self.outer)}' -> '{_short(self.inner)}' at {site}"
        if self.via:
            hop += f" (via {self.via})"
        return hop


@dataclass(frozen=True)
class LockOrderDeclaration:
    """One module-level ``LOCK_ORDER`` tuple, entries canonicalized."""

    module: SourceModule
    node: ast.AST
    raw: tuple[str, ...]
    resolved: tuple[str, ...]


class LockGraph:
    """Project-wide lock acquisition order, built over a call graph."""

    def __init__(self, graph: CallGraph):
        self.graph = graph
        #: class qualname -> {attr: canonical attr} (Condition aliasing).
        self._class_locks: dict[str, dict[str, str]] = {}
        #: class qualname -> attrs holding asyncio primitives (excluded).
        self._async_attrs: dict[str, set[str]] = {}
        #: module name -> {global name} holding threading locks.
        self._module_locks: dict[str, set[str]] = {}
        #: function qualname -> {local name} assigned a lock constructor.
        self._local_locks: dict[str, set[str]] = {}
        #: function qualname -> lock ids it acquires directly.
        self.own_acquires: dict[str, set[str]] = {}
        #: function qualname -> lock ids acquired here or in callees.
        self.reachable_acquires: dict[str, set[str]] = {}
        self.edges: list[LockOrderEdge] = []
        self.declarations: list[LockOrderDeclaration] = []

        self._scan_lock_definitions()
        self._scan_acquisitions()
        self._propagate()
        self._collect_declarations()

    # -- lock identity -----------------------------------------------------

    def _ctor_kind(self, module: SourceModule, expr: ast.AST) -> "str | None":
        """'threading' / 'asyncio' / 'condition' when *expr* constructs a
        synchronization primitive, else None."""
        if not isinstance(expr, ast.Call):
            return None
        func = expr.func
        terminal = _terminal_name(func)
        if terminal not in _THREADING_LOCKS and terminal != "Condition":
            return None
        root = func
        while isinstance(root, ast.Attribute):
            root = root.value
        origin = None
        if isinstance(root, ast.Name):
            if root.id in ("threading", "multiprocessing"):
                origin = "threading"
            elif root.id == "asyncio":
                origin = "asyncio"
            else:
                info = self.graph._infos[module.rel]
                imported = info.imports.get(root.id, "")
                if imported.startswith("asyncio"):
                    origin = "asyncio"
                elif imported.startswith(("threading", "multiprocessing")):
                    origin = "threading"
        if origin == "asyncio":
            return "asyncio"
        if origin != "threading":
            return None
        return "condition" if terminal == "Condition" else "threading"

    def _scan_lock_definitions(self) -> None:
        for cls in self.graph.classes.values():
            attrs: dict[str, str] = {}
            async_attrs: set[str] = set()
            aliases: dict[str, str] = {}
            for method in cls.methods.values():
                for node in ast.walk(method.node):
                    if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                        continue
                    target = node.targets[0]
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    kind = self._ctor_kind(cls.module, node.value)
                    if kind == "asyncio":
                        async_attrs.add(target.attr)
                    elif kind == "threading":
                        attrs[target.attr] = target.attr
                    elif kind == "condition":
                        arg = node.value.args[0] if node.value.args else None
                        if (
                            isinstance(arg, ast.Attribute)
                            and isinstance(arg.value, ast.Name)
                            and arg.value.id == "self"
                        ):
                            aliases[target.attr] = arg.attr
                        else:
                            attrs[target.attr] = target.attr
            for attr, underlying in aliases.items():
                seen = {attr}
                while underlying in aliases and underlying not in seen:
                    seen.add(underlying)
                    underlying = aliases[underlying]
                attrs[attr] = attrs.get(underlying, underlying)
            if attrs:
                self._class_locks[cls.qualname] = attrs
            if async_attrs:
                self._async_attrs[cls.qualname] = async_attrs

        for module in self.graph.project.modules:
            info = self.graph._infos[module.rel]
            globals_: set[str] = set()
            for node in module.tree.body:
                if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                    continue
                target = node.targets[0]
                if isinstance(target, ast.Name) and self._ctor_kind(
                    module, node.value
                ) in ("threading", "condition"):
                    globals_.add(target.id)
            if globals_:
                self._module_locks[info.name] = globals_

    def _class_lock_id(self, cls: ClassInfo, attr: str) -> "str | None":
        for klass in self.graph._mro(cls):
            if attr in self._async_attrs.get(klass.qualname, ()):
                return None
            canonical = self._class_locks.get(klass.qualname, {}).get(attr)
            if canonical is not None:
                return f"{klass.qualname}.{canonical}"
        if _is_lockish(attr):
            return f"{cls.qualname}.{attr}"
        return None

    def lock_id(self, function: FunctionInfo, expr: ast.AST) -> "str | None":
        """Canonical id of the lock *expr* denotes, or None."""
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "acquire"
        ):
            return self.lock_id(function, expr.func.value)
        if isinstance(expr, ast.Attribute):
            owner = expr.value
            if isinstance(owner, ast.Name) and owner.id in ("self", "cls"):
                if function.cls is not None:
                    return self._class_lock_id(function.cls, expr.attr)
                return None
            env = self.graph.local_types(function)
            owner_type = self.graph._expr_type_shallow(function, env, owner)
            if owner_type is not None:
                cls = self.graph.classes.get(owner_type)
                if cls is not None:
                    return self._class_lock_id(cls, expr.attr)
            return None
        if isinstance(expr, ast.Name):
            if expr.id in self._local_locks.get(function.qualname, ()):
                return f"{function.qualname}.{expr.id}"
            if expr.id in self._module_locks.get(function.module_name, ()):
                return f"{function.module_name}.{expr.id}"
            if _is_lockish(expr.id):
                return f"{function.module_name}.{expr.id}"
        return None

    # -- acquisitions and edges --------------------------------------------

    @staticmethod
    def _nonblocking_acquire(call: ast.Call) -> bool:
        if call.args and isinstance(call.args[0], ast.Constant):
            if call.args[0].value in (False, 0):
                return True
        return any(
            kw.arg == "blocking"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value in (False, 0)
            for kw in call.keywords
        )

    def _scan_local_locks(self, function: FunctionInfo) -> None:
        locals_: set[str] = set()
        for node in _own_nodes(function.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and self._ctor_kind(function.module, node.value)
                in ("threading", "condition")
            ):
                locals_.add(node.targets[0].id)
        if locals_:
            self._local_locks[function.qualname] = locals_

    def _held_around(self, function: FunctionInfo, node: ast.AST) -> list[str]:
        """Locks held by enclosing ``with`` items, innermost last."""
        held: list[str] = []
        module = function.module
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break
            if isinstance(ancestor, ast.With):
                for item in ancestor.items:
                    lock = self.lock_id(function, item.context_expr)
                    if lock is not None and lock not in held:
                        held.append(lock)
        return held

    def _scan_acquisitions(self) -> None:
        for function in self.graph.functions.values():
            self._scan_local_locks(function)
        for function in self.graph.functions.values():
            acquired: set[str] = set()
            for node in _own_nodes(function.node):
                sites: list[tuple[str, ast.AST]] = []
                if isinstance(node, ast.With):
                    running: list[str] = []
                    for item in node.items:
                        lock = self.lock_id(function, item.context_expr)
                        if lock is None:
                            continue
                        for outer in running:
                            if outer != lock:
                                self.edges.append(
                                    LockOrderEdge(
                                        outer=outer,
                                        inner=lock,
                                        module=function.module,
                                        node=node,
                                    )
                                )
                        running.append(lock)
                        sites.append((lock, node))
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "acquire"
                    and not self._nonblocking_acquire(node)
                    and not self._in_await(function.module, node)
                ):
                    lock = self.lock_id(function, node)
                    if lock is not None:
                        sites.append((lock, node))
                for lock, site in sites:
                    acquired.add(lock)
                    for outer in self._held_around(function, site):
                        if outer != lock:
                            self.edges.append(
                                LockOrderEdge(
                                    outer=outer,
                                    inner=lock,
                                    module=function.module,
                                    node=site,
                                )
                            )
            self.own_acquires[function.qualname] = acquired

    @staticmethod
    def _in_await(module: SourceModule, node: ast.AST) -> bool:
        return any(isinstance(a, ast.Await) for a in module.ancestors(node))

    def _propagate(self) -> None:
        reachable = {q: set(own) for q, own in self.own_acquires.items()}
        changed = True
        while changed:
            changed = False
            for qualname, edges in self.graph.edges.items():
                bucket = reachable.setdefault(qualname, set())
                before = len(bucket)
                for edge in edges:
                    bucket |= reachable.get(edge.callee, set())
                if len(bucket) != before:
                    changed = True
        self.reachable_acquires = reachable

        # Call sites executed under a held lock pull the callee's
        # transitive acquisitions in as inner locks.
        for function in self.graph.functions.values():
            call_targets = {
                id(edge.node): edge for edge in self.graph.edges.get(function.qualname, ())
            }
            for call in _own_calls(function.node):
                edge = call_targets.get(id(call))
                if edge is None:
                    continue
                held = self._held_around(function, call)
                if not held:
                    continue
                inner_locks = reachable.get(edge.callee, set())
                for outer in held:
                    for inner in inner_locks:
                        if inner != outer:
                            self.edges.append(
                                LockOrderEdge(
                                    outer=outer,
                                    inner=inner,
                                    module=function.module,
                                    node=call,
                                    via=edge.callee,
                                )
                            )

    # -- declarations ------------------------------------------------------

    def _collect_declarations(self) -> None:
        known_ids = {lock for edge in self.edges for lock in (edge.outer, edge.inner)}
        for qualname, attrs in self._class_locks.items():
            known_ids.update(f"{qualname}.{attr}" for attr in set(attrs.values()))
        for module_name, names in self._module_locks.items():
            known_ids.update(f"{module_name}.{name}" for name in names)

        for module in self.graph.project.modules:
            info = self.graph._infos[module.rel]
            for node in module.tree.body:
                if not (
                    isinstance(node, ast.Assign)
                    and any(
                        isinstance(t, ast.Name) and t.id == "LOCK_ORDER"
                        for t in node.targets
                    )
                    and isinstance(node.value, (ast.Tuple, ast.List))
                ):
                    continue
                raw = tuple(
                    element.value
                    for element in node.value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                )
                resolved = tuple(
                    self._resolve_entry(info.name, entry, known_ids) for entry in raw
                )
                self.declarations.append(
                    LockOrderDeclaration(
                        module=module, node=node, raw=raw, resolved=resolved
                    )
                )

    def _resolve_entry(
        self, module_name: str, entry: str, known_ids: set[str]
    ) -> str:
        """Map a LOCK_ORDER entry to a canonical lock id.

        ``"Class.attr"`` matches a project class of that name;
        a bare name matches a unique lock in the declaring module;
        unresolved entries stay module-scoped raw strings.
        """
        if "." in entry:
            matches = sorted(i for i in known_ids if i.endswith(f".{entry}"))
            if len(matches) == 1:
                return matches[0]
            return f"{module_name}.{entry}"
        in_module = sorted(
            i
            for i in known_ids
            if i.rsplit(".", 1)[-1] == entry and i.startswith(module_name + ".")
        )
        if len(in_module) == 1:
            return in_module[0]
        return f"{module_name}.{entry}"

    # -- queries -----------------------------------------------------------

    def unique_edges(self) -> list[LockOrderEdge]:
        """Edges deduplicated on (outer, inner), first witness kept,
        syntactic witnesses preferred over interprocedural ones."""
        best: dict[tuple[str, str], LockOrderEdge] = {}
        for edge in self.edges:
            key = (edge.outer, edge.inner)
            current = best.get(key)
            if current is None or (current.via and not edge.via):
                best[key] = edge
        return [best[key] for key in sorted(best)]

    def cycles(self) -> list[list[LockOrderEdge]]:
        """Every elementary lock-order cycle, as its witness-edge list."""
        edges = self.unique_edges()
        adjacency: dict[str, dict[str, LockOrderEdge]] = {}
        for edge in edges:
            adjacency.setdefault(edge.outer, {})[edge.inner] = edge

        cycles: list[list[LockOrderEdge]] = []
        seen_keys: set[frozenset[str]] = set()
        for start in sorted(adjacency):
            stack = [(start, [])]
            while stack:
                node, path = stack.pop()
                for nxt, edge in sorted(adjacency.get(node, {}).items()):
                    if nxt == start and path:
                        cycle = [*path, edge]
                        key = frozenset(e.outer for e in cycle)
                        if key not in seen_keys:
                            seen_keys.add(key)
                            cycles.append(cycle)
                    elif all(nxt != e.outer for e in path) and nxt >= start:
                        stack.append((nxt, [*path, edge]))
        return cycles

    def declared_before(self) -> dict[tuple[str, str], LockOrderDeclaration]:
        """(x, y) -> declaration stating x must be acquired before y."""
        order: dict[tuple[str, str], LockOrderDeclaration] = {}
        for declaration in self.declarations:
            entries = declaration.resolved
            for i, first in enumerate(entries):
                for second in entries[i + 1 :]:
                    order.setdefault((first, second), declaration)
        return order
