"""Blocking primitives reachable from ``repro.cluster`` coroutines.

One ``time.sleep`` (or socket recv, or lock wait, or line-buffered file
write) inside a coroutine stalls the *entire* shard: the event loop
serves every connection from one thread, so a blocked callee freezes
heartbeats, accepts, and every in-flight parse at once.  The rule
precedent is flake8-async/BLE: a coroutine may only wait through
``await``-able primitives or by shipping the blocking work to an
executor.

The analysis has two halves:

* :func:`blocking_sites` — the per-function catalogue of primitives.
  Attribute calls count only when the call graph could *not* resolve
  them to a project function (a resolved ``self._send(...)`` is
  whatever its body is; an unresolved ``sock.recv(...)`` is the OS).
  ``await``-wrapped calls are exempt (``await lock.acquire()`` is the
  asyncio primitive), as are try-acquires (``acquire(blocking=False)``
  returns immediately) and ``.join(...)`` calls whose argument shape
  matches ``str.join`` rather than ``Thread.join``.
* :class:`BlockingAnalysis` — reachability: walk the call graph from
  every coroutine defined in a ``repro.cluster`` module, collect the
  primitive sites in everything reachable.  Lambdas handed to
  ``run_in_executor``/``to_thread``/``Thread`` were already excluded
  when the graph was built, so the executor escape hatch needs no
  special casing here.

Findings anchor at the *primitive site* (with one witness path in the
message), so a single suppression covers every coroutine that reaches
the same line.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.flow.callgraph import (
    FILE_TYPE,
    CallGraph,
    FunctionInfo,
    _own_calls,
    _terminal_name,
)

__all__ = ["BlockingAnalysis", "BlockingSite", "blocking_sites"]

_SOCKET_METHODS = frozenset(
    {"recv", "recv_into", "recvfrom", "recvfrom_into", "send", "sendall",
     "sendto", "accept", "connect"}
)
_WAIT_METHODS = frozenset({"wait", "result"})
_FILE_METHODS = frozenset(
    {"write", "read", "readline", "readlines", "writelines", "flush"}
)
_PATH_METHODS = frozenset(
    {"write_text", "read_text", "write_bytes", "read_bytes", "mkdir",
     "unlink", "touch", "hardlink_to", "symlink_to"}
)
_SUBPROCESS_CALLS = frozenset(
    {"run", "call", "check_call", "check_output", "Popen"}
)


@dataclass(frozen=True)
class BlockingSite:
    """One blocking primitive inside one function."""

    function: str  # qualname of the function containing the call
    node: ast.Call
    reason: str


def _in_await(function: FunctionInfo, node: ast.AST) -> bool:
    return any(
        isinstance(a, ast.Await) for a in function.module.ancestors(node)
    )


def _str_join_shaped(call: ast.Call) -> bool:
    """``sep.join(iterable)`` — one non-constant positional argument."""
    return (
        len(call.args) == 1
        and not call.keywords
        and not isinstance(call.args[0], ast.Constant)
    )


def blocking_sites(graph: CallGraph, function: FunctionInfo) -> list[BlockingSite]:
    """Blocking primitives appearing directly in *function*'s body."""
    module = function.module
    info = graph._infos[module.rel]
    env = graph.local_types(function)
    time_imports = {
        name
        for name, target in info.imports.items()
        if target in ("time.sleep",)
    }
    resolved_nodes = {
        id(edge.node) for edge in graph.edges.get(function.qualname, ())
    }

    sites: list[BlockingSite] = []

    def add(call: ast.Call, reason: str) -> None:
        sites.append(
            BlockingSite(function=function.qualname, node=call, reason=reason)
        )

    for call in _own_calls(function.node):
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in time_imports:
                add(call, "time.sleep()")
            elif func.id == "open":
                add(call, "open()")
            elif func.id == "input":
                add(call, "input()")
            continue
        if not isinstance(func, ast.Attribute):
            continue
        root = func.value
        root_name = root.id if isinstance(root, ast.Name) else None
        if root_name == "time" and func.attr == "sleep":
            add(call, "time.sleep()")
            continue
        if root_name == "subprocess" and func.attr in _SUBPROCESS_CALLS:
            add(call, f"subprocess.{func.attr}()")
            continue
        if root_name == "select" and func.attr == "select":
            add(call, "select.select()")
            continue
        if id(call) in resolved_nodes:
            continue  # resolved to a project function; its body decides
        if _in_await(function, call):
            continue  # await x.acquire()/wait() is the asyncio primitive
        if func.attr in _PATH_METHODS:
            add(call, f"filesystem I/O (.{func.attr}())")
            continue
        if func.attr in _SOCKET_METHODS:
            add(call, f"socket I/O (.{func.attr}())")
        elif func.attr == "acquire":
            nonblocking = (
                call.args
                and isinstance(call.args[0], ast.Constant)
                and call.args[0].value in (False, 0)
            ) or any(
                kw.arg == "blocking"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value in (False, 0)
                for kw in call.keywords
            )
            if not nonblocking:
                add(call, "lock .acquire()")
        elif func.attr in _WAIT_METHODS:
            add(call, f"thread/future .{func.attr}()")
        elif func.attr == "join" and not _str_join_shaped(call):
            add(call, "thread .join()")
        elif func.attr == "communicate":
            add(call, "subprocess .communicate()")
        elif func.attr in _FILE_METHODS:
            receiver_type = graph._expr_type_shallow(function, env, root)
            if receiver_type == FILE_TYPE:
                add(call, f"file I/O (.{func.attr}() on an open() handle)")
    return sites


class BlockingAnalysis:
    """Reachability of blocking primitives from cluster coroutines."""

    def __init__(self, graph: CallGraph):
        self.graph = graph
        self._site_cache: dict[str, list[BlockingSite]] = {}

    def _sites_in(self, qualname: str) -> list[BlockingSite]:
        cached = self._site_cache.get(qualname)
        if cached is None:
            function = self.graph.functions[qualname]
            cached = blocking_sites(self.graph, function)
            self._site_cache[qualname] = cached
        return cached

    def cluster_coroutines(self) -> list[FunctionInfo]:
        return sorted(
            (
                f
                for f in self.graph.functions.values()
                if f.is_async and "cluster" in f.module_name.split(".")
            ),
            key=lambda f: f.qualname,
        )

    def findings(self) -> list[tuple[BlockingSite, str, tuple[str, ...]]]:
        """``(site, coroutine, path)`` per blocking primitive reachable
        from a cluster coroutine — deduplicated on the primitive site,
        shortest witness path kept."""
        best: dict[int, tuple[BlockingSite, str, tuple[str, ...]]] = {}
        for coroutine in self.cluster_coroutines():
            # BFS so the recorded path is a shortest one.
            queue: list[tuple[str, tuple[str, ...]]] = [
                (coroutine.qualname, (coroutine.qualname,))
            ]
            visited = {coroutine.qualname}
            while queue:
                current, path = queue.pop(0)
                for site in self._sites_in(current):
                    key = id(site.node)
                    held = best.get(key)
                    if held is None or len(path) < len(held[2]):
                        best[key] = (site, coroutine.qualname, path)
                for edge in self.graph.edges.get(current, ()):
                    if edge.callee not in visited:
                        visited.add(edge.callee)
                        queue.append((edge.callee, (*path, edge.callee)))
        return sorted(
            best.values(),
            key=lambda item: (
                item[0].function,
                getattr(item[0].node, "lineno", 0),
                getattr(item[0].node, "col_offset", 0),
            ),
        )
