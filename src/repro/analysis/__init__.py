"""Measurement analysis, static analysis, and runtime sanitizers.

Three members, deliberately not imported eagerly where they are heavy:

* complexity fits and report formatting (imported below);
* :mod:`repro.analysis.lint` — the ``repro-lint`` invariant linter
  (also ``python -m repro.analysis``);
* :mod:`repro.analysis.sanitizer` — opt-in runtime invariant checks
  (``REPRO_SANITIZE=1``).
"""

from repro.analysis.fitting import PowerLawFit, fit_log_growth, fit_power_law
from repro.analysis.host import host_metadata, scaling_claim_allowed, scaling_note
from repro.analysis.profiler import ConstraintRecord, ParseProfile, profile_parse
from repro.analysis.reporting import format_seconds, format_table

__all__ = [
    "PowerLawFit",
    "fit_power_law",
    "fit_log_growth",
    "format_table",
    "format_seconds",
    "ConstraintRecord",
    "ParseProfile",
    "profile_parse",
    "host_metadata",
    "scaling_claim_allowed",
    "scaling_note",
]
