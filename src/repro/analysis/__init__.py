"""Measurement analysis: complexity fits and report formatting."""

from repro.analysis.fitting import PowerLawFit, fit_log_growth, fit_power_law
from repro.analysis.profiler import ConstraintRecord, ParseProfile, profile_parse
from repro.analysis.reporting import format_seconds, format_table

__all__ = [
    "PowerLawFit",
    "fit_power_law",
    "fit_log_growth",
    "format_table",
    "format_seconds",
    "ConstraintRecord",
    "ParseProfile",
    "profile_parse",
]
