"""The kernel-backend registry: name -> Boolean-kernel provider.

Mirrors :mod:`repro.engines.registry`: the CLI, ``ParserSession`` and
the benchmarks resolve kernel backends through one table, so adding a
native/GPU backend is one :func:`register_backend` call.  Unlike the
engine registry, resolution has a fallback contract: a *registered but
unavailable* backend (e.g. ``cupy`` without CuPy installed) raises
:class:`KernelBackendUnavailable` from its factory, and
:func:`create_backend` warns and falls back to the default ``packed``
backend instead of failing the parse.

Resolution order — one rule, shared by every entry point
(:func:`resolve_backend_name` implements it; :func:`create_backend`
and :func:`default_backend` both call it): an explicit ``backend=``
argument wins, else the ``REPRO_KERNEL_BACKEND`` environment variable,
else the ``"packed"`` default.  Resolution is memoized per resolved
name (including the warn-once fallback instance for unavailable
backends), so repeated resolution — one per network bind on the hot
path — is a dict hit.

A backend provides the Boolean-linear-algebra surface both parsers run
on:

* ``bmm(a_bits, b_bits)`` — packed Boolean matrix product (CYK span
  combination).
* ``support_any(matrix_words, alive_words, seg_byte_starts)`` — the
  consistency sweep's OR-reduction: does row *a* keep an alive partner
  in each segment?  The packed backend computes it as a word-wide AND
  plus a segmented byte OR; the numpy backend computes the same truth
  table as a literal Boolean matrix product against the byte-segment
  membership matrix — the Lee/Valiant recast, used as a cross-check.
* ``and_accumulate`` / ``count_ones`` — the fused-mask apply and the
  popcount bookkeeping around it.
"""

from __future__ import annotations

import os
import warnings
from typing import Callable

import numpy as np

from repro.errors import ReproError
from repro.kernels import bitops
from repro.kernels.bmm import _check_operands, bmm_four_russians, bmm_planes

#: Environment variable consulted when no explicit backend is given.
ENV_VAR = "REPRO_KERNEL_BACKEND"

#: The always-available default.
DEFAULT_BACKEND = "packed"


class KernelBackendUnavailable(ReproError):
    """A registered kernel backend cannot run on this host.

    Raised by backend *factories* (e.g. the CuPy scaffold when CuPy is
    not installed); :func:`create_backend` catches it and falls back to
    the default backend with a warning.
    """


class KernelBackend:
    """Base class: word-level primitives shared by every backend."""

    name = "abstract"

    def bmm(self, a_bits: np.ndarray, b_bits: np.ndarray) -> np.ndarray:
        """Packed Boolean matrix product (see :mod:`repro.kernels.bmm`)."""
        raise NotImplementedError

    def support_any(
        self,
        matrix_words: np.ndarray,
        alive_words: np.ndarray,
        seg_byte_starts: np.ndarray,
        *,
        out: "np.ndarray | None" = None,
    ) -> np.ndarray:
        """(rows, n_segments) bool: does each row keep an alive bit per segment?"""
        raise NotImplementedError

    def and_accumulate(self, target_words: np.ndarray, mask_words: np.ndarray) -> int:
        """AND *mask* into *target* in place; return bits cleared."""
        return bitops.and_accumulate(target_words, mask_words)

    def count_ones(self, words: np.ndarray) -> int:
        """Total population count of a packed array."""
        return bitops.count_ones(words)

    def dispatch_snapshot(self) -> "dict[str, str] | None":
        """The per-(kernel, size-bucket) dispatch table, for backends
        that route between implementations (the ``auto`` backend);
        None for single-implementation backends.  Sessions surface a
        non-None snapshot as ``stats.extra["kernel_dispatch"]``."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<KernelBackend {self.name!r}>"


class PackedBackend(KernelBackend):
    """Word-at-a-time kernels: four-Russians BMM, reduceat sweeps."""

    name = "packed"

    def bmm(self, a_bits: np.ndarray, b_bits: np.ndarray) -> np.ndarray:
        return bmm_four_russians(a_bits, b_bits)

    def support_any(
        self,
        matrix_words: np.ndarray,
        alive_words: np.ndarray,
        seg_byte_starts: np.ndarray,
        *,
        out: "np.ndarray | None" = None,
    ) -> np.ndarray:
        masked = np.bitwise_and(matrix_words, alive_words[None, :], out=out)
        return bitops.or_segments(masked, seg_byte_starts) != 0


class PlanesBackend(KernelBackend):
    """Bit-plane fallback: plain numpy matmuls in the Boolean semiring.

    Slower and allocation-heavier than ``packed``, but every operation
    is a literal Boolean matrix product — the form Lee's reduction talks
    about, and the form a dense-linear-algebra accelerator implements —
    so it doubles as the cross-check oracle for the word-level kernels.
    """

    name = "numpy"

    def bmm(self, a_bits: np.ndarray, b_bits: np.ndarray) -> np.ndarray:
        return bmm_planes(a_bits, b_bits)

    def support_any(
        self,
        matrix_words: np.ndarray,
        alive_words: np.ndarray,
        seg_byte_starts: np.ndarray,
        *,
        out: "np.ndarray | None" = None,
    ) -> np.ndarray:
        # support = (M AND alive) ∘ S in the Boolean semiring, where
        # S[b, j] = byte b belongs to segment j.  Byte granularity is
        # enough: a nonzero masked byte means a kept bit, and padding
        # bytes (mapped to the last segment) are zero by invariant.
        masked = np.bitwise_and(matrix_words, alive_words[None, :], out=out)
        nonzero8 = bitops.bytes_view(masked) != 0
        n_bytes = nonzero8.shape[-1]
        seg_of_byte = (
            np.searchsorted(seg_byte_starts, np.arange(n_bytes), side="right") - 1
        )
        membership = seg_of_byte[:, None] == np.arange(len(seg_byte_starts))[None, :]
        return nonzero8 @ membership


class CuPyBackend(KernelBackend):  # pragma: no cover - requires CuPy
    """GPU scaffold: bit-plane matmul on the device, pack/unpack on host.

    Registered so ``REPRO_KERNEL_BACKEND=cupy`` resolves; on hosts
    without CuPy the factory raises :class:`KernelBackendUnavailable`
    and resolution falls back to ``packed``.
    """

    name = "cupy"

    def __init__(self):
        import cupy  # raises ImportError when absent; factory translates

        self._cp = cupy

    def bmm(self, a_bits: np.ndarray, b_bits: np.ndarray) -> np.ndarray:
        cp = self._cp
        a, b = _check_operands(a_bits, b_bits)
        k_rows, n_words = b.shape[0], b.shape[1]
        if a.shape[0] == 0 or k_rows == 0 or n_words == 0:
            return np.zeros((a.shape[0], n_words), dtype=bitops.WORD_DTYPE)
        a_plane = cp.asarray(
            bitops.unpack_bits(a, a.shape[1] * bitops.WORD_BITS)[:, :k_rows],
            dtype=cp.float32,
        )
        b_plane = cp.asarray(
            bitops.unpack_bits(b, n_words * bitops.WORD_BITS), dtype=cp.float32
        )
        product = cp.asnumpy(a_plane @ b_plane) > 0.5
        return bitops.pack_bits(product)

    def support_any(self, matrix_words, alive_words, seg_byte_starts, *, out=None):
        # The sweep is reduction-bound, not matmul-bound; run it packed.
        return PackedBackend().support_any(
            matrix_words, alive_words, seg_byte_starts, out=out
        )


def _cupy_factory() -> KernelBackend:
    try:
        return CuPyBackend()
    except ImportError:
        raise KernelBackendUnavailable("cupy is not installed") from None


def _native_factory() -> KernelBackend:
    # Deferred import: constructing the backend compiles the C library
    # on first use, and hosts without a toolchain must still import
    # this module cheaply.
    from repro.kernels.native import NativeBackend

    return NativeBackend()


def _auto_factory() -> KernelBackend:
    from repro.kernels.autotune import AutoBackend

    return AutoBackend()


# -- registry ----------------------------------------------------------------

BackendFactory = Callable[[], KernelBackend]

_REGISTRY: dict[str, BackendFactory] = {}
_INSTANCES: dict[str, KernelBackend] = {}


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register *factory* under *name* (later registrations win)."""
    _REGISTRY[name] = factory
    _INSTANCES.pop(name, None)


def reset_backend_cache(name: "str | None" = None) -> None:
    """Drop memoized backend instances (one name, or all).

    Resolution caches aggressively — including the warn-once fallback
    instance for unavailable backends — so tests that change the
    environment (compiler overrides, autotune cache paths) reset here
    to re-run factories.
    """
    if name is None:
        _INSTANCES.clear()
    else:
        _INSTANCES.pop(name, None)


def available_backends() -> tuple[str, ...]:
    """Registered kernel-backend names, as a deterministic sorted tuple.

    Deterministic because the CLI embeds it in ``--kernel-backend``
    help text and validation messages; registration order must not
    leak into user-facing strings.
    """
    _ensure_builtin()
    return tuple(sorted(_REGISTRY))


def resolve_backend_name(backend: "str | None" = None) -> str:
    """The one resolution rule: explicit arg > ``REPRO_KERNEL_BACKEND``
    environment variable > the ``packed`` default.

    Every resolution path (:func:`create_backend`,
    :func:`default_backend`, the CLI, child-process initializers) goes
    through this function, so "which backend would run?" has exactly
    one answer per process state.
    """
    return backend or os.environ.get(ENV_VAR) or DEFAULT_BACKEND


def create_backend(backend: "str | KernelBackend | None" = None) -> KernelBackend:
    """Resolve *backend*: instance passes through, a name is resolved
    via :func:`resolve_backend_name` and built (memoized per name).

    Raises:
        ReproError: for a name that is not registered at all.

    A registered backend whose factory raises
    :class:`KernelBackendUnavailable` falls back to the default backend
    with a single ``RuntimeWarning`` per process — requesting an
    optional accelerator must degrade, not fail.  The fallback instance
    is memoized under the requested name, so the warning fires once and
    later resolutions are silent dict hits
    (:func:`reset_backend_cache` re-arms the factory).
    """
    if isinstance(backend, KernelBackend):
        return backend
    _ensure_builtin()
    requested = resolve_backend_name(backend)
    instance = _INSTANCES.get(requested)
    if instance is not None:
        return instance
    try:
        factory = _REGISTRY[requested]
    except KeyError:
        raise ReproError(
            f"unknown kernel backend {requested!r}; available: "
            f"{', '.join(available_backends())}"
        ) from None
    try:
        instance = factory()
    except KernelBackendUnavailable as exc:
        if requested == DEFAULT_BACKEND:
            raise
        warnings.warn(
            f"kernel backend {requested!r} unavailable ({exc}); "
            f"falling back to {DEFAULT_BACKEND!r}",
            RuntimeWarning,
            stacklevel=2,
        )
        instance = create_backend(DEFAULT_BACKEND)
    _INSTANCES[requested] = instance
    return instance


def probe_backend(name: str) -> "KernelBackend | None":
    """*name*'s backend instance, or None when it cannot run here.

    Unlike :func:`create_backend` this neither warns nor falls back —
    it is the autotuner's candidate-enumeration primitive ("which
    backends could race?"), where an unavailable backend is an expected
    non-event rather than a degraded selection.  Successful probes
    share the resolution memo.
    """
    _ensure_builtin()
    instance = _INSTANCES.get(name)
    if instance is not None:
        return instance
    factory = _REGISTRY.get(name)
    if factory is None:
        return None
    try:
        instance = factory()
    except KernelBackendUnavailable:
        return None
    _INSTANCES[name] = instance
    return instance


def default_backend() -> KernelBackend:
    """The backend for callers with no explicit selection.

    Used by networks built outside a :class:`ParserSession`.  Same
    resolution rule and same per-name memo as :func:`create_backend`
    (this *is* ``create_backend(None)``, kept as a named entry point
    because the hot path reads better at call sites).
    """
    return create_backend(None)


def _ensure_builtin() -> None:
    """Populate the registry with the built-in backends, lazily."""
    if DEFAULT_BACKEND in _REGISTRY:
        return
    _REGISTRY.setdefault("packed", PackedBackend)
    _REGISTRY.setdefault("numpy", PlanesBackend)
    _REGISTRY.setdefault("cupy", _cupy_factory)
    _REGISTRY.setdefault("native", _native_factory)
    _REGISTRY.setdefault("auto", _auto_factory)
