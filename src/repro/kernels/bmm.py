"""Boolean matrix multiplication over packed words.

``C = A ∘ B`` in the Boolean semiring: ``C[i, j] = OR_k A[i, k] AND
B[k, j]``.  Operands and result are bit-packed along their second
axis (little-endian uint64 words, see :mod:`repro.kernels.bitops`):

* ``a_bits`` — shape ``(m, a_words)``; bit *k* of row *i* is ``A[i, k]``.
  Bits at positions >= ``k_rows`` must be zero (the dense-pack padding
  invariant).
* ``b_bits`` — shape ``(k_rows, n_words)``; bit *j* of row *k* is
  ``B[k, j]``.
* result — shape ``(m, n_words)``, same column packing as ``b_bits``;
  its padding bits are zero because ``b_bits``'s are.

Two kernels with identical results:

* :func:`bmm_four_russians` — the blocked "Four Russians" method: B's
  rows are grouped 8 at a time, each group expanded into a 256-entry
  table of precomputed row ORs (built in 8 vectorized DP steps), and
  each byte of A gathers its table entry — 8 rows of work per byte
  lookup, word-wide ORs throughout.
* :func:`bmm_planes` — plain numpy fallback: unpack both operands to
  boolean planes, multiply in the Boolean semiring (``@`` on bool
  arrays), repack.  Simple, allocation-heavy, and the shape every
  dense-linear-algebra accelerator (CuPy, BLAS via float planes)
  implements directly.

:func:`bmm_reference` is the O(m*k*n) broadcast oracle used by tests.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.bitops import WORD_BITS, WORD_DTYPE, bytes_view, pack_bits, unpack_bits


def _check_operands(a_bits: np.ndarray, b_bits: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Validate and normalize a packed operand pair."""
    a = np.ascontiguousarray(np.asarray(a_bits, dtype=WORD_DTYPE))
    b = np.ascontiguousarray(np.asarray(b_bits, dtype=WORD_DTYPE))
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError(
            f"bmm operands must be 2-D packed word arrays, got shapes "
            f"{a.shape} and {b.shape}"
        )
    if a.shape[1] * WORD_BITS < b.shape[0]:
        raise ValueError(
            f"bmm inner dimensions disagree: A packs {a.shape[1] * WORD_BITS} "
            f"bit columns but B has {b.shape[0]} rows"
        )
    return a, b


def bmm_four_russians(a_bits: np.ndarray, b_bits: np.ndarray) -> np.ndarray:
    """Packed Boolean matrix product via 8-row blocked table lookup."""
    a, b = _check_operands(a_bits, b_bits)
    m, k_rows, n_words = a.shape[0], b.shape[0], b.shape[1]
    out = np.zeros((m, n_words), dtype=WORD_DTYPE)
    if m == 0 or k_rows == 0 or n_words == 0:
        return out
    a8 = bytes_view(a)  # (m, a_words * 8): byte t covers A columns 8t..8t+7
    subsets = np.arange(256)
    for t in range((k_rows + 7) // 8):
        column = a8[:, t]
        if not column.any():
            continue
        rows = b[8 * t : min(8 * t + 8, k_rows)]
        # table[s] = OR of the block rows selected by byte value s, built
        # bottom-up: entries containing bit r extend the entry without it.
        table = np.zeros((256, n_words), dtype=WORD_DTYPE)
        for r in range(rows.shape[0]):
            with_r = (subsets & (1 << r)) != 0
            table[with_r] = table[subsets[with_r] ^ (1 << r)] | rows[r]
        np.bitwise_or(out, table[column], out=out)
    return out


def bmm_planes(a_bits: np.ndarray, b_bits: np.ndarray) -> np.ndarray:
    """Packed Boolean matrix product via unpacked bit-plane matmul."""
    a, b = _check_operands(a_bits, b_bits)
    k_rows, n_words = b.shape[0], b.shape[1]
    if a.shape[0] == 0 or k_rows == 0 or n_words == 0:
        return np.zeros((a.shape[0], n_words), dtype=WORD_DTYPE)
    a_plane = unpack_bits(a, a.shape[1] * WORD_BITS)[:, :k_rows]
    b_plane = unpack_bits(b, n_words * WORD_BITS)
    return pack_bits(a_plane @ b_plane)  # bool @ bool is the Boolean semiring


def bmm_reference(a_plane: np.ndarray, b_plane: np.ndarray) -> np.ndarray:
    """O(m*k*n) broadcast oracle on boolean planes (tests/bench only)."""
    a_plane = np.asarray(a_plane, dtype=bool)
    b_plane = np.asarray(b_plane, dtype=bool)
    return (a_plane[:, :, None] & b_plane[None, :, :]).any(axis=1)
