"""Profile-guided kernel dispatch: the ``auto`` backend.

The static backends trade places as operands grow — the bit-plane
``numpy`` backend wins small Boolean matrix products where the
four-Russians table build dominates, the ``packed``/``native`` blocked
kernels win once the byte-gather amortizes — and the crossover point is
a *host* property (cache sizes, BLAS build, compiler), not something a
hard-coded threshold can capture.  :class:`AutoBackend` measures
instead of guessing: the first call per (kernel, operand-size bucket)
races every available backend on the **actual operands**, gates each
candidate on bit-identity with the ``packed`` reference, caches the
winner in an in-process dispatch table, and persists that table to a
versioned JSON file so later processes skip the race entirely.

Size buckets are powers of two over a per-kernel work measure (bit
count touched), so one calibration covers the whole neighborhood of
sizes that behave alike.  A candidate whose result ever disagrees with
``packed`` is excluded for the rest of the process with a
``RuntimeWarning`` — the race must never trade correctness for speed.

Environment knobs:

* ``REPRO_AUTOTUNE_CACHE`` — path of the persisted dispatch table
  (default ``~/.cache/repro/autotune.json``).  The file is versioned
  and keyed to a host fingerprint; a stale or foreign table is ignored,
  never trusted.
"""

from __future__ import annotations

import json
import os
import threading
import time
import warnings
from pathlib import Path

import numpy as np

from repro.kernels import bitops
from repro.kernels.backend import (
    DEFAULT_BACKEND,
    KernelBackend,
    available_backends,
    probe_backend,
)

#: Dispatch-table file override (default: ``~/.cache/repro/autotune.json``).
ENV_CACHE = "REPRO_AUTOTUNE_CACHE"

#: Persisted-table schema version; bump on any format change.
CACHE_VERSION = 1

#: Timing repetitions per candidate per race (best-of).
_RACE_REPS = 2


def cache_path() -> Path:
    """Where the persisted dispatch table lives."""
    override = os.environ.get(ENV_CACHE)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "autotune.json"


def host_fingerprint() -> dict:
    """The host facts a dispatch table is only valid under.

    Platform, machine, and core count: a table tuned on one machine
    says nothing about another, and a mismatch silently re-calibrates
    rather than importing someone else's crossover points.
    """
    import platform

    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }


def work_bucket(work_bits: int) -> int:
    """The power-of-two bucket a work measure falls into.

    Bucket ``b`` covers work in ``[2**(b-1), 2**b)``; sizes inside one
    bucket behave alike enough to share a calibrated winner.
    """
    return int(max(work_bits, 1)).bit_length()


class AutoBackend(KernelBackend):
    """Dispatching backend: races candidates once per size bucket,
    then routes every later call of that shape to the measured winner.

    The candidate pool is whatever :func:`available_backends` can
    actually construct on this host (``auto`` itself excluded), so a
    toolchain-less machine transparently races ``packed`` against
    ``numpy`` and a GPU-less machine never sees ``cupy``.
    """

    name = "auto"

    def __init__(self):
        self._lock = threading.Lock()
        self._table: dict[str, str] = {}
        self._excluded: set[str] = set()
        #: Races run by *this* process (persisted-cache hits don't count).
        self.calibrations = 0
        self._dirty = False
        self._persist_warned = False
        self._load_table()

    # -- candidate pool ---------------------------------------------------

    def _candidates(self) -> "list[KernelBackend]":
        pool = []
        for name in available_backends():
            if name == self.name or name in self._excluded:
                continue
            instance = probe_backend(name)
            if instance is not None and not isinstance(instance, AutoBackend):
                pool.append(instance)
        return pool

    def _reference(self) -> KernelBackend:
        ref = probe_backend(DEFAULT_BACKEND)
        if ref is None:  # pragma: no cover - packed is always constructible
            raise RuntimeError(f"reference backend {DEFAULT_BACKEND!r} unavailable")
        return ref

    # -- persistence ------------------------------------------------------

    def _load_table(self) -> None:
        path = cache_path()
        try:
            raw = path.read_text()
        except OSError:
            return
        try:
            record = json.loads(raw)
        except ValueError:
            return
        if not isinstance(record, dict) or record.get("version") != CACHE_VERSION:
            return
        if record.get("host") != host_fingerprint():
            return
        table = record.get("table")
        if not isinstance(table, dict):
            return
        known = set(available_backends())
        self._table.update(
            {
                str(key): str(winner)
                for key, winner in table.items()
                if str(winner) in known
            }
        )

    def _persist_table(self) -> None:
        if not self._dirty:
            return
        path = cache_path()
        payload = json.dumps(
            {
                "version": CACHE_VERSION,
                "host": host_fingerprint(),
                "table": dict(sorted(self._table.items())),
            },
            indent=2,
            sort_keys=True,
        )
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(payload + "\n")
            os.replace(tmp, path)
        except OSError as exc:
            if not self._persist_warned:
                self._persist_warned = True
                warnings.warn(
                    f"could not persist autotune dispatch table to {path}: {exc}",
                    RuntimeWarning,
                    stacklevel=3,
                )
            return
        self._dirty = False

    # -- the race ---------------------------------------------------------

    def _race(self, kernel: str, bucket: int, run, check_identity) -> KernelBackend:
        """Race all candidates on the live operands; return the winner.

        *run(backend)* executes the kernel and returns its result;
        *check_identity(reference_result, candidate_result)* decides
        bit-equality.  The reference (``packed``) always participates
        and is the floor: a candidate only wins by being both correct
        and faster.
        """
        key = f"{kernel}:{bucket}"
        reference = self._reference()

        def timed(candidate: KernelBackend):
            elapsed, result = None, None
            for _ in range(_RACE_REPS):
                start = time.perf_counter()
                attempt = run(candidate)
                took = time.perf_counter() - start
                if elapsed is None or took < elapsed:
                    elapsed, result = took, attempt
            return elapsed, result

        # The reference runs first: it is both the correctness oracle
        # and the time to beat.
        best_time, ref_result = timed(reference)
        best_name = reference.name
        for candidate in self._candidates():
            if candidate.name == reference.name:
                continue
            elapsed, result = timed(candidate)
            if not check_identity(ref_result, result):
                self._excluded.add(candidate.name)
                warnings.warn(
                    f"kernel backend {candidate.name!r} disagreed with "
                    f"{reference.name!r} on {kernel} (bucket {bucket}); "
                    "excluding it from dispatch",
                    RuntimeWarning,
                    stacklevel=4,
                )
                continue
            if best_time is None or elapsed < best_time:
                best_name, best_time = candidate.name, elapsed
        self._table[key] = best_name
        self.calibrations += 1
        self._dirty = True
        self._persist_table()
        winner = probe_backend(best_name)
        return winner if winner is not None else reference

    def _dispatch(self, kernel: str, bucket: int) -> "KernelBackend | None":
        name = self._table.get(f"{kernel}:{bucket}")
        if name is None or name in self._excluded:
            return None
        return probe_backend(name)

    # -- kernel entry points ----------------------------------------------

    def bmm(self, a_bits: np.ndarray, b_bits: np.ndarray) -> np.ndarray:
        a = np.asarray(a_bits)
        b = np.asarray(b_bits)
        m = a.shape[0] if a.ndim == 2 else 0
        k_rows = b.shape[0] if b.ndim == 2 else 0
        n_words = b.shape[1] if b.ndim == 2 else 0
        work = m * k_rows * n_words * 64
        if work == 0:
            return self._reference().bmm(a_bits, b_bits)
        bucket = work_bucket(work)
        chosen = self._dispatch("bmm", bucket)
        if chosen is not None:
            return chosen.bmm(a_bits, b_bits)
        with self._lock:
            chosen = self._dispatch("bmm", bucket)
            if chosen is not None:
                return chosen.bmm(a_bits, b_bits)
            winner = self._race(
                "bmm",
                bucket,
                lambda backend: backend.bmm(a_bits, b_bits),
                lambda ref, got: np.array_equal(ref, got),
            )
        return winner.bmm(a_bits, b_bits)

    def support_any(
        self,
        matrix_words: np.ndarray,
        alive_words: np.ndarray,
        seg_byte_starts: np.ndarray,
        *,
        out: "np.ndarray | None" = None,
    ) -> np.ndarray:
        matrix = np.asarray(matrix_words)
        rows = matrix.shape[0] if matrix.ndim == 2 else 0
        n_words = matrix.shape[1] if matrix.ndim == 2 else 0
        work = rows * n_words * 64
        if work == 0:
            return self._reference().support_any(
                matrix_words, alive_words, seg_byte_starts, out=out
            )
        bucket = work_bucket(work)
        chosen = self._dispatch("support_any", bucket)
        if chosen is not None:
            return chosen.support_any(
                matrix_words, alive_words, seg_byte_starts, out=out
            )
        with self._lock:
            chosen = self._dispatch("support_any", bucket)
            if chosen is not None:
                return chosen.support_any(
                    matrix_words, alive_words, seg_byte_starts, out=out
                )
            winner = self._race(
                "support_any",
                bucket,
                lambda backend: backend.support_any(
                    matrix_words, alive_words, seg_byte_starts
                ),
                lambda ref, got: np.array_equal(ref, got),
            )
        return winner.support_any(matrix_words, alive_words, seg_byte_starts, out=out)

    def and_accumulate(self, target_words: np.ndarray, mask_words: np.ndarray) -> int:
        work = int(np.asarray(target_words).size) * 64
        if work == 0:
            return self._reference().and_accumulate(target_words, mask_words)
        bucket = work_bucket(work)
        chosen = self._dispatch("and_accumulate", bucket)
        if chosen is not None:
            return chosen.and_accumulate(target_words, mask_words)
        with self._lock:
            chosen = self._dispatch("and_accumulate", bucket)
            if chosen is not None:
                return chosen.and_accumulate(target_words, mask_words)
            # In-place kernel: each racer mutates its own pristine copy,
            # and only the winner's re-run lands in the caller's array.
            pristine = np.array(target_words, copy=True)

            def run(backend: KernelBackend):
                work_copy = pristine.copy()
                delta = backend.and_accumulate(work_copy, mask_words)
                return (delta, work_copy)

            winner = self._race(
                "and_accumulate",
                bucket,
                run,
                lambda ref, got: ref[0] == got[0] and np.array_equal(ref[1], got[1]),
            )
        return winner.and_accumulate(target_words, mask_words)

    def count_ones(self, words: np.ndarray) -> int:
        work = int(np.asarray(words).size) * 64
        if work == 0:
            return bitops.count_ones(np.asarray(words))
        bucket = work_bucket(work)
        chosen = self._dispatch("count_ones", bucket)
        if chosen is not None:
            return chosen.count_ones(words)
        with self._lock:
            chosen = self._dispatch("count_ones", bucket)
            if chosen is not None:
                return chosen.count_ones(words)
            winner = self._race(
                "count_ones",
                bucket,
                lambda backend: backend.count_ones(words),
                lambda ref, got: ref == got,
            )
        return winner.count_ones(words)

    # -- introspection / warm-up ------------------------------------------

    def dispatch_snapshot(self) -> "dict[str, str] | None":
        """A copy of the dispatch table (``"kernel:bucket" -> backend``)."""
        with self._lock:
            return dict(sorted(self._table.items()))

    def warm(self, *, quick: bool = False, seed: int = 0) -> dict[str, str]:
        """Calibrate representative operand sizes ahead of real traffic.

        The ``repro calibrate`` CLI and the BMM bench both call this so
        a fresh host pays the race cost once, offline, instead of
        inside the first parse.  Returns the dispatch table.
        """
        rng = np.random.default_rng(seed)
        cubes = (64, 128) if quick else (64, 128, 256, 512)
        for n in cubes:
            a = bitops.pack_bits(rng.random((n, n)) < 0.25)
            b = bitops.pack_bits(rng.random((n, n)) < 0.25)
            self.bmm(a, b)
        widths = (256,) if quick else (256, 2048, 16384)
        for cols in widths:
            rows = max(cols // 8, 8)
            matrix = bitops.pack_bits(rng.random((rows, cols)) < 0.1)
            alive = bitops.pack_bits((rng.random(cols) < 0.5)[None, :])[0]
            n_segs = max(cols // 64, 1)
            row_bytes = matrix.shape[1] * 8
            seg_starts = np.linspace(0, row_bytes, n_segs, endpoint=False).astype(
                np.int64
            )
            self.support_any(matrix, alive, seg_starts)
            flat = matrix.copy()
            mask = bitops.pack_bits(rng.random((rows, cols)) < 0.5)
            self.and_accumulate(flat, mask)
            self.count_ones(flat)
        snapshot = self.dispatch_snapshot()
        return snapshot if snapshot is not None else {}
