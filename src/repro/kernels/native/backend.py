"""The ``native`` kernel backend: compiled C behind the registry contract.

Thin ctypes wrappers over the library :mod:`repro.kernels.native.build`
compiles on demand.  Every wrapper validates dtype and contiguity
*before* handing a buffer across the foreign-function boundary — a
misdeclared stride that numpy would re-interpret is memory corruption
in C — and the RPR017 lint rule (*native-boundary hygiene*) enforces
that discipline structurally: a ``.ctypes`` access on an array that did
not flow through one of the validators below is a finding.

Read-only operands go through :func:`_as_words` (contiguous ``'<u8'``,
copying when needed); the one in-place target (``and_accumulate``'s)
goes through :func:`_require_words`, which refuses rather than copies —
a silent copy would break the in-place contract the callers rely on.
"""

from __future__ import annotations

import ctypes

import numpy as np

from repro.errors import ReproError
from repro.kernels import bitops
from repro.kernels.backend import KernelBackend
from repro.kernels.bitops import WORD_DTYPE
from repro.kernels.bmm import _check_operands
from repro.kernels.native.build import load_library

_U64 = ctypes.POINTER(ctypes.c_uint64)
_U8 = ctypes.POINTER(ctypes.c_uint8)
_I64 = ctypes.POINTER(ctypes.c_int64)


def _as_words(array) -> np.ndarray:
    """A C-contiguous ``'<u8'`` view/copy of *array* (read-only use)."""
    return np.ascontiguousarray(np.asarray(array), dtype=WORD_DTYPE)


def _require_words(array) -> np.ndarray:
    """Validate an *in-place* target: contiguous, writable, ``'<u8'``.

    Raises instead of copying — a copy would silently drop the caller's
    mutation.
    """
    if not isinstance(array, np.ndarray) or array.dtype != WORD_DTYPE:
        raise ReproError(
            "native in-place kernels need a numpy '<u8' packed word array, "
            f"got {type(array).__name__}"
        )
    if not array.flags["C_CONTIGUOUS"] or not array.flags["WRITEABLE"]:
        raise ReproError(
            "native in-place kernels need a C-contiguous, writable target "
            "(pack with repro.kernels.bitops first)"
        )
    return array


class NativeBackend(KernelBackend):
    """Compiled word-level kernels loaded through ctypes.

    Bit-identical to ``packed`` by contract (the kernel identity suite
    sweeps all four primitives plus full-session parses); construction
    raises :class:`~repro.kernels.backend.KernelBackendUnavailable`
    when the host cannot compile or load the library, which the
    registry turns into the fall-back-to-``packed`` path.
    """

    name = "native"

    def __init__(self):
        self._lib = load_library()

    def bmm(self, a_bits: np.ndarray, b_bits: np.ndarray) -> np.ndarray:
        a, b = _check_operands(a_bits, b_bits)  # contiguous '<u8', shape-checked
        m, k_rows, n_words = a.shape[0], b.shape[0], b.shape[1]
        out = np.empty((m, n_words), dtype=WORD_DTYPE)
        if m == 0 or k_rows == 0 or n_words == 0:
            out[...] = 0
            return out
        table = np.empty((256, n_words), dtype=WORD_DTYPE)
        self._lib.repro_bmm(
            a.ctypes.data_as(_U64), m, a.shape[1],
            b.ctypes.data_as(_U64), k_rows, n_words,
            out.ctypes.data_as(_U64), table.ctypes.data_as(_U64),
        )
        return out

    def support_any(
        self,
        matrix_words: np.ndarray,
        alive_words: np.ndarray,
        seg_byte_starts: np.ndarray,
        *,
        out: "np.ndarray | None" = None,
    ) -> np.ndarray:
        # `out` is the other backends' masked-product scratch; the C
        # kernel masks on the fly and needs none.
        matrix = _as_words(matrix_words)
        alive = _as_words(alive_words)
        segs = np.ascontiguousarray(np.asarray(seg_byte_starts, dtype=np.int64))
        if matrix.ndim != 2:
            raise ReproError(f"support_any needs a 2-D matrix, got shape {matrix.shape}")
        rows, n_words = matrix.shape
        if alive.shape != (n_words,):
            raise ReproError(
                f"alive vector shape {alive.shape} does not match {n_words} matrix words"
            )
        n_segs = len(segs)
        result = np.empty((rows, n_segs), dtype=np.uint8)
        if rows and n_segs:
            self._lib.repro_support_any(
                matrix.ctypes.data_as(_U64), rows, n_words,
                alive.ctypes.data_as(_U64),
                segs.ctypes.data_as(_I64), n_segs,
                result.ctypes.data_as(_U8),
            )
        return result.view(bool)

    def and_accumulate(self, target_words: np.ndarray, mask_words: np.ndarray) -> int:
        target = _require_words(target_words)
        mask = np.asarray(mask_words, dtype=WORD_DTYPE)
        if mask.shape != target.shape:
            mask = np.broadcast_to(mask, target.shape)
        mask = np.ascontiguousarray(mask)
        return int(
            self._lib.repro_and_accumulate(
                target.ctypes.data_as(_U64), mask.ctypes.data_as(_U64), target.size
            )
        )

    def count_ones(self, words: np.ndarray) -> int:
        arr = np.ascontiguousarray(words)
        if arr.dtype != WORD_DTYPE or arr.size == 0:
            # Non-word inputs (uint8 scratch, empty arrays) take the
            # generic byte-popcount path; only packed words cross into C.
            return bitops.count_ones(arr)
        return int(self._lib.repro_count_ones(arr.ctypes.data_as(_U64), arr.size))
