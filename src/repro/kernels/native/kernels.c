/* Native word-level kernels for the repro parser family.
 *
 * Compiled on demand by repro.kernels.native.build (cc -O3 -shared
 * -fPIC) and called through ctypes.  The contract mirrors
 * repro.kernels.bitops exactly:
 *
 *   - words are little-endian uint64 bit-planes; bit i of a packed row
 *     lives in byte i >> 3 at in-byte position i & 7.  x86-64 and
 *     aarch64 are little-endian, so a uint64 load sees the same bit
 *     order numpy's '<u8' view does; the Python wrapper refuses to
 *     load this library on a big-endian host.
 *   - padding / slack bits are zero on every input, and every routine
 *     here preserves that invariant (AND against zero stays zero, the
 *     four-Russians tables OR rows whose padding is already clear), so
 *     popcount deltas are exact.
 *   - 2-D inputs are dense row-major: row i of an (m, w) operand
 *     starts at element i * w.
 *
 * Nothing here allocates: callers pass every output and scratch
 * buffer, so the Python wrapper stays in charge of lifetimes and the
 * hot loops stay malloc-free.
 */

#include <stdint.h>
#include <stddef.h>
#include <string.h>

/* C = A o B in the Boolean semiring, blocked "Four Russians".
 *
 * a: (m, a_words) packed rows of A; bit k of row i is A[i, k].
 * b: (k_rows, n_words) packed rows of B; bit j of row k is B[k, j].
 * out: (m, n_words), zeroed here.
 * table: (256, n_words) scratch for the per-block subset-OR tables.
 *
 * B's rows are taken 8 at a time; each block expands into a 256-entry
 * table of row ORs built in one DP pass (table[s] = table[s without
 * its lowest bit] | B[block row of that bit]), and every byte of A
 * then gathers its table entry — 8 rows of work per byte lookup.
 */
void repro_bmm(const uint64_t *a, size_t m, size_t a_words,
               const uint64_t *b, size_t k_rows, size_t n_words,
               uint64_t *out, uint64_t *table)
{
    memset(out, 0, m * n_words * sizeof(uint64_t));
    const uint8_t *a8 = (const uint8_t *)a;
    size_t row_bytes = a_words * 8;
    size_t n_blocks = (k_rows + 7) / 8;
    for (size_t t = 0; t < n_blocks; ++t) {
        size_t rows_in_block = k_rows - 8 * t;
        if (rows_in_block > 8)
            rows_in_block = 8;
        memset(table, 0, 256 * n_words * sizeof(uint64_t));
        for (size_t s = 1; s < 256; ++s) {
            size_t r = (size_t)__builtin_ctzll((unsigned long long)s);
            const uint64_t *base = table + (s & (s - 1)) * n_words;
            uint64_t *dst = table + s * n_words;
            if (r < rows_in_block) {
                const uint64_t *brow = b + (8 * t + r) * n_words;
                for (size_t j = 0; j < n_words; ++j)
                    dst[j] = base[j] | brow[j];
            } else {
                /* Bits beyond the block's rows never appear in A's
                 * bytes (padding invariant); keep the entry coherent
                 * anyway. */
                memcpy(dst, base, n_words * sizeof(uint64_t));
            }
        }
        for (size_t i = 0; i < m; ++i) {
            uint8_t byte = a8[i * row_bytes + t];
            if (!byte)
                continue;
            const uint64_t *src = table + (size_t)byte * n_words;
            uint64_t *orow = out + i * n_words;
            for (size_t j = 0; j < n_words; ++j)
                orow[j] |= src[j];
        }
    }
}

/* The consistency sweep's OR-reduction: out[i, s] = 1 iff row i of
 * (matrix AND alive) keeps a set bit inside byte segment s.
 *
 * Segments are byte-aligned half-open ranges [seg_starts[s],
 * seg_starts[s + 1]) over each packed row's byte view, the last one
 * running to row_bytes = n_words * 8 — exactly the ranges
 * bitops.or_segments reduces over.
 */
void repro_support_any(const uint64_t *matrix, size_t rows, size_t n_words,
                       const uint64_t *alive,
                       const int64_t *seg_starts, size_t n_segs,
                       uint8_t *out)
{
    const uint8_t *alive8 = (const uint8_t *)alive;
    size_t row_bytes = n_words * 8;
    for (size_t i = 0; i < rows; ++i) {
        const uint8_t *mrow = (const uint8_t *)(matrix + i * n_words);
        uint8_t *orow = out + i * n_segs;
        for (size_t s = 0; s < n_segs; ++s) {
            size_t start = (size_t)seg_starts[s];
            size_t end = (s + 1 < n_segs) ? (size_t)seg_starts[s + 1] : row_bytes;
            uint8_t acc = 0;
            for (size_t p = start; p < end; ++p)
                acc |= mrow[p] & alive8[p];
            orow[s] = acc != 0;
        }
    }
}

/* AND mask into target in place; return the number of bits cleared.
 * Exact popcount arithmetic: both sides keep their padding zero. */
uint64_t repro_and_accumulate(uint64_t *target, const uint64_t *mask, size_t n)
{
    uint64_t cleared = 0;
    for (size_t i = 0; i < n; ++i) {
        uint64_t before = target[i];
        uint64_t after = before & mask[i];
        target[i] = after;
        cleared += (uint64_t)__builtin_popcountll(before)
                 - (uint64_t)__builtin_popcountll(after);
    }
    return cleared;
}

/* Total population count of a packed word array. */
uint64_t repro_count_ones(const uint64_t *words, size_t n)
{
    uint64_t total = 0;
    for (size_t i = 0; i < n; ++i)
        total += (uint64_t)__builtin_popcountll(words[i]);
    return total;
}
