"""On-demand compilation of the native kernel library.

The C source (``kernels.c``, shipped inside the package) is compiled
once per (source, compiler, platform) into a shared object under the
repro cache directory and loaded through :mod:`ctypes` — no build-time
dependency, no wheel-per-platform, just ``cc -O3 -shared -fPIC`` at
first use.  Hosts without a working C toolchain raise
:class:`~repro.kernels.backend.KernelBackendUnavailable` from
:func:`load_library`, which the backend registry translates into the
documented fall-back-to-``packed`` path.

Environment knobs:

* ``REPRO_NATIVE_CC`` — compiler executable (default: first of ``cc``,
  ``gcc``, ``clang`` on ``PATH``).  Pointing it at a non-existent path
  is the supported way to *simulate* a compiler-less host in tests/CI.
* ``REPRO_NATIVE_CACHE`` — directory for built libraries (default:
  ``~/.cache/repro``).  The library file name embeds a digest of the
  source, the compiler, and the platform, so upgrades and toolchain
  switches rebuild instead of loading a stale binary.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import shutil
import subprocess
import sys
import threading
from pathlib import Path

from repro.kernels.backend import KernelBackendUnavailable

#: Compiler override; a non-existent path simulates a toolchain-less host.
ENV_CC = "REPRO_NATIVE_CC"

#: Build-cache directory override.
ENV_CACHE = "REPRO_NATIVE_CACHE"

#: Compilers probed on PATH, in order, when ``REPRO_NATIVE_CC`` is unset.
_COMPILERS = ("cc", "gcc", "clang")

_CFLAGS = ("-O3", "-shared", "-fPIC")

_COMPILE_TIMEOUT = 120.0

SOURCE_PATH = Path(__file__).with_name("kernels.c")

_lock = threading.Lock()
_loaded: "dict[str, ctypes.CDLL]" = {}


def find_compiler() -> "str | None":
    """The C compiler to use, or None when the host has none."""
    override = os.environ.get(ENV_CC)
    if override:
        return override if Path(override).exists() else None
    for name in _COMPILERS:
        found = shutil.which(name)
        if found:
            return found
    return None


def cache_dir() -> Path:
    """Where built libraries (and sibling repro caches) live."""
    override = os.environ.get(ENV_CACHE)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro"


def library_path(compiler: str) -> Path:
    """The cache path for the library this source + toolchain produces."""
    digest = hashlib.sha256(
        SOURCE_PATH.read_bytes()
        + compiler.encode()
        + f"{sys.platform}-{platform.machine()}".encode()
    ).hexdigest()[:16]
    return cache_dir() / f"repro-kernels-{digest}.so"


def build_library() -> Path:
    """Compile ``kernels.c`` into the cache (idempotent); return its path.

    Raises:
        KernelBackendUnavailable: no compiler, or the compile failed.
    """
    if sys.byteorder != "little":  # pragma: no cover - no BE host in CI
        raise KernelBackendUnavailable(
            "native kernels assume a little-endian host (packed words are '<u8')"
        )
    compiler = find_compiler()
    if compiler is None:
        raise KernelBackendUnavailable(
            f"no C compiler found (set {ENV_CC} or install cc/gcc/clang)"
        )
    target = library_path(compiler)
    if target.exists():
        return target
    target.parent.mkdir(parents=True, exist_ok=True)
    # Build to a pid-suffixed temp name, then rename: concurrent
    # processes racing the first build each produce a whole file and
    # os.replace keeps whichever lands last — never a partial library.
    tmp = target.with_name(f"{target.stem}.{os.getpid()}.tmp.so")
    command = [compiler, *_CFLAGS, "-o", str(tmp), str(SOURCE_PATH)]
    try:
        proc = subprocess.run(
            command, capture_output=True, text=True, timeout=_COMPILE_TIMEOUT
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        raise KernelBackendUnavailable(
            f"could not run the C compiler {compiler!r}: {exc}"
        ) from exc
    if proc.returncode != 0:
        tmp.unlink(missing_ok=True)
        detail = (proc.stderr or proc.stdout or "").strip().splitlines()
        raise KernelBackendUnavailable(
            f"C compile failed (exit {proc.returncode}): "
            + (detail[-1] if detail else "no compiler output")
        )
    os.replace(tmp, target)
    return target


def load_library() -> ctypes.CDLL:
    """Build (if needed) and load the native library, with signatures set.

    Memoized per library path; thread-safe.  Raises
    :class:`KernelBackendUnavailable` when the host cannot produce or
    load the library.
    """
    with _lock:
        compiler = find_compiler()
        if compiler is None:
            raise KernelBackendUnavailable(
                f"no C compiler found (set {ENV_CC} or install cc/gcc/clang)"
            )
        key = str(library_path(compiler))
        lib = _loaded.get(key)
        if lib is not None:
            return lib
        path = build_library()
        try:
            lib = ctypes.CDLL(str(path))
        except OSError as exc:
            raise KernelBackendUnavailable(
                f"built native library failed to load: {exc}"
            ) from exc
        _declare_signatures(lib)
        _loaded[key] = lib
        return lib


def _declare_signatures(lib: ctypes.CDLL) -> None:
    u64p = ctypes.POINTER(ctypes.c_uint64)
    u8p = ctypes.POINTER(ctypes.c_uint8)
    i64p = ctypes.POINTER(ctypes.c_int64)
    size_t = ctypes.c_size_t

    lib.repro_bmm.argtypes = [
        u64p, size_t, size_t,  # a, m, a_words
        u64p, size_t, size_t,  # b, k_rows, n_words
        u64p, u64p,  # out, table scratch
    ]
    lib.repro_bmm.restype = None

    lib.repro_support_any.argtypes = [
        u64p, size_t, size_t,  # matrix, rows, n_words
        u64p,  # alive
        i64p, size_t,  # seg_byte_starts, n_segs
        u8p,  # out
    ]
    lib.repro_support_any.restype = None

    lib.repro_and_accumulate.argtypes = [u64p, u64p, size_t]
    lib.repro_and_accumulate.restype = ctypes.c_uint64

    lib.repro_count_ones.argtypes = [u64p, size_t]
    lib.repro_count_ones.restype = ctypes.c_uint64
