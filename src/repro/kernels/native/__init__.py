"""Native compiled kernel backend: C word-level primitives via ctypes.

* :mod:`repro.kernels.native.build` — on-demand ``cc -O3 -shared``
  compile of the packaged ``kernels.c`` into the repro cache, loaded
  through ctypes; raises
  :class:`~repro.kernels.backend.KernelBackendUnavailable` on hosts
  without a toolchain.
* :mod:`repro.kernels.native.backend` — :class:`NativeBackend`, the
  registry provider (``backend="native"``), with dtype/contiguity
  validation at every foreign-function boundary (lint rule RPR017).
"""

from repro.kernels.native.backend import NativeBackend
from repro.kernels.native.build import (
    ENV_CACHE,
    ENV_CC,
    SOURCE_PATH,
    build_library,
    find_compiler,
    load_library,
)

__all__ = [
    "NativeBackend",
    "ENV_CACHE",
    "ENV_CC",
    "SOURCE_PATH",
    "build_library",
    "find_compiler",
    "load_library",
]
