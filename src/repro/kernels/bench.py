"""BMM — the shared kernel core measured: microbench + both parsers on it.

The kernel extraction's claims, in falsifiability order:

* **Bit-identity** (always checkable, gated before any timing):

  - the four-Russians product, the bit-plane (``bool @ bool``) product
    and the O(m·k·n) broadcast oracle agree on every microbench
    operand;
  - a CDG parse on the ``packed`` backend and on the ``numpy`` backend
    settles to the same packed network, word for word;
  - the packed fence-matrix CYK and the pre-kernel set-based chart
    agree on the accepted flag, every chart cell, and the operation
    count.

  A record whose identity sweep fails is written with ``ok: false``
  and no timing section is trusted (the standalone runner exits 1).

* **Kernel throughput** (host-relative): per matrix size, best-of
  wall-clock of the BMM implementations — four-Russians, bit-plane
  ``bool @ bool``, the compiled ``native`` backend (when the host can
  build it) and the profile-guided ``auto`` dispatcher (timed *after*
  its calibration race, so the row shows steady-state dispatch, and
  gated on bit-identity like everything else).  The size grid brackets
  the packed/planes crossover on purpose.  The broadcast oracle
  materializes an m·k·n intermediate, so full runs cap its size and
  the record says so (``naive_capped_at``) instead of silently
  claiming coverage.  The record embeds the autotuner's dispatch table
  (``kernel_dispatch``) so the routing behind the ``auto`` rows is
  inspectable.

* **End-to-end** (host-relative): the same sentence through a CDG
  :class:`~repro.pipeline.session.ParserSession` per kernel backend,
  and through packed CYK per backend versus the set-based chart — one
  table showing both parsers riding the one kernel core.

All timings are single-core wall clock; the record embeds
:func:`repro.analysis.host.host_metadata` so numbers are read against
the host that produced them, and no cross-host scaling claim is made.

Run standalone to (re)generate the committed record::

    PYTHONPATH=src python -m repro bench-bmm [--quick]

which writes ``BENCH_bmm.json`` at the repo root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.analysis.host import host_metadata
from repro.kernels import bitops
from repro.kernels.backend import probe_backend
from repro.kernels.bmm import bmm_four_russians, bmm_planes, bmm_reference

#: Microbench operand shapes (m, k, n).  Deliberately not all square
#: and not all word-aligned (the padding discipline is part of what is
#: being timed), and dense enough around 128-384 to bracket the
#: packed/planes/native crossover points the autotuner dispatches on.
SIZES = (
    (64, 64, 64),
    (96, 96, 96),
    (128, 128, 128),
    (192, 192, 192),
    (250, 250, 250),
    (384, 384, 384),
    (512, 512, 512),
)
QUICK_SIZES = ((64, 64, 64), (130, 130, 130))

#: Largest dimension product the broadcast oracle is timed at (its
#: m·k·n boolean intermediate is the memory hog).
NAIVE_CAP = 256**3

REPEATS = 3
QUICK_REPEATS = 2


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _micro_identity_and_timing(sizes, repeats: int) -> tuple[bool, list[dict]]:
    rows = []
    ok = True
    rng = np.random.default_rng(8)
    native = probe_backend("native")
    auto = probe_backend("auto")
    for m, k, n in sizes:
        a_plane = rng.random((m, k)) < 0.3
        b_plane = rng.random((k, n)) < 0.3
        a_bits = bitops.pack_bits(a_plane)
        b_bits = bitops.pack_bits(b_plane)
        expected = bmm_reference(a_plane, b_plane)
        four = bmm_four_russians(a_bits, b_bits)
        planes = bmm_planes(a_bits, b_bits)
        identical = bool(
            np.array_equal(bitops.unpack_bits(four, n), expected)
            and np.array_equal(four, planes)
        )
        row = {
            "shape": [m, k, n],
            "four_russians_ms": round(
                _best_of(lambda: bmm_four_russians(a_bits, b_bits), repeats) * 1e3, 4
            ),
            "planes_ms": round(
                _best_of(lambda: bmm_planes(a_bits, b_bits), repeats) * 1e3, 4
            ),
        }
        if native is not None:
            identical = identical and bool(
                np.array_equal(native.bmm(a_bits, b_bits), four)
            )
            row["native_ms"] = round(
                _best_of(lambda: native.bmm(a_bits, b_bits), repeats) * 1e3, 4
            )
        if auto is not None:
            # The first call calibrates this size bucket; the timed
            # runs after it measure steady-state dispatch.
            identical = identical and bool(np.array_equal(auto.bmm(a_bits, b_bits), four))
            row["auto_ms"] = round(
                _best_of(lambda: auto.bmm(a_bits, b_bits), repeats) * 1e3, 4
            )
        row["identical"] = identical
        ok = ok and identical
        if m * k * n <= NAIVE_CAP:
            row["naive_ms"] = round(
                _best_of(lambda: bmm_reference(a_plane, b_plane), repeats) * 1e3, 4
            )
        rows.append(row)
    return ok, rows


def _session_backends() -> tuple[str, ...]:
    """Backends the end-to-end tables time: statics that can run here,
    then ``auto`` (which exists on every host — its floor is packed)."""
    names = ["packed", "numpy"]
    if probe_backend("native") is not None:
        names.append("native")
    names.append("auto")
    return tuple(names)


def _cdg_end_to_end(n_words: int, repeats: int, batch: int) -> tuple[bool, dict]:
    from repro.grammar.builtin.english import english_grammar
    from repro.pipeline.session import ParserSession
    from repro.workloads import sentence_of_length

    grammar = english_grammar()
    words = sentence_of_length(n_words)
    results = {}
    timings = {}
    backends = _session_backends()
    for backend in backends:
        session = ParserSession(grammar, engine="vector", backend=backend)
        result = session.parse(words)  # warm the template cache (and autotuner)
        timings[backend] = round(
            _best_of(lambda: [session.parse(words) for _ in range(batch)], repeats)
            / batch * 1e3,
            4,
        )
        results[backend] = result
    reference = results["packed"]
    identical = all(
        bool(
            other.locally_consistent == reference.locally_consistent
            and np.array_equal(other.network.alive_bits, reference.network.alive_bits)
            and np.array_equal(other.network.matrix_bits, reference.network.matrix_bits)
        )
        for other in results.values()
    )
    return identical, {
        "sentence_words": n_words,
        "engine": "vector",
        "backends": list(backends),
        "identical": identical,
        "latency_ms": timings,
    }


def _cfg_end_to_end(n_words: int, repeats: int) -> tuple[bool, dict]:
    from repro.cfg import cyk_parse, cyk_parse_sets, english_cfg, to_cnf
    from repro.workloads import sentence_of_length

    cnf = to_cnf(english_cfg())
    words = sentence_of_length(n_words)
    oracle = cyk_parse_sets(cnf, words)
    identical = True
    timings = {}
    backends = _session_backends()
    for backend in backends:
        packed = cyk_parse(cnf, words, backend=backend)
        identical = identical and bool(
            packed.accepted == oracle.accepted
            and packed.chart_sets == oracle.chart_sets
            and packed.split_operations == oracle.split_operations
        )
        timings[backend] = round(
            _best_of(lambda: cyk_parse(cnf, words, backend=backend), repeats) * 1e3, 4
        )
    timings["sets-oracle"] = round(
        _best_of(lambda: cyk_parse_sets(cnf, words), repeats) * 1e3, 4
    )
    return identical, {
        "sentence_words": n_words,
        "accepted": oracle.accepted,
        "backends": list(backends),
        "identical": identical,
        "latency_ms": timings,
    }


def run_bench(*, quick: bool = False, out_path: "Path | str | None" = None) -> dict:
    """Run the identity-gated kernel benchmark; optionally write JSON."""
    sizes = QUICK_SIZES if quick else SIZES
    repeats = QUICK_REPEATS if quick else REPEATS
    micro_ok, micro = _micro_identity_and_timing(sizes, repeats)
    cdg_ok, cdg = _cdg_end_to_end(7 if quick else 10, repeats, batch=4)
    cfg_ok, cfg = _cfg_end_to_end(8 if quick else 12, repeats)
    auto = probe_backend("auto")
    record = {
        "bench": "bmm",
        "quick": quick,
        "host": host_metadata(),
        "backends": list(_session_backends()),
        "kernel_dispatch": auto.dispatch_snapshot() if auto is not None else None,
        "bit_identity": {
            "ok": micro_ok and cdg_ok and cfg_ok,
            "micro": micro_ok,
            "cdg_packed_vs_numpy": cdg_ok,
            "cyk_packed_vs_sets": cfg_ok,
        },
        "micro": micro,
        "naive_capped_at": NAIVE_CAP,
        "end_to_end": {"cdg": cdg, "cfg": cfg},
        "notes": (
            "single-core wall clock on the recorded host; bit-identity "
            "asserted before timing; the broadcast oracle is only timed "
            "up to naive_capped_at elements"
        ),
    }
    if out_path is not None:
        Path(out_path).write_text(json.dumps(record, indent=2) + "\n")
    return record


def print_report(record: dict, out) -> None:
    """Render *record* as the terminal tables the harness snapshots."""
    from repro.analysis import format_table

    has_native = any("native_ms" in row for row in record["micro"])
    has_auto = any("auto_ms" in row for row in record["micro"])
    headers = ["shape", "identical", "four-Russians ms", "bool@bool ms"]
    if has_native:
        headers.append("native ms")
    if has_auto:
        headers.append("auto ms")
    headers.append("naive ms")
    rows = []
    for row in record["micro"]:
        m, k, n = row["shape"]
        line = [
            f"{m}x{k}x{n}",
            "yes" if row["identical"] else "NO",
            row["four_russians_ms"],
            row["planes_ms"],
        ]
        if has_native:
            line.append(row.get("native_ms", "-"))
        if has_auto:
            line.append(row.get("auto_ms", "-"))
        line.append(row.get("naive_ms", "capped"))
        rows.append(line)
    print(
        format_table(
            headers,
            rows,
            title=f"BMM microbench ({record['host']['cpu_count']} CPU host)",
        ),
        file=out,
    )
    cdg = record["end_to_end"]["cdg"]
    cfg = record["end_to_end"]["cfg"]
    backends = record.get("backends") or ["packed", "numpy"]
    parser_headers = ["parser", "identical", *[f"{b} ms" for b in backends], "oracle ms"]
    print(
        format_table(
            parser_headers,
            [
                [
                    f"CDG n={cdg['sentence_words']} ({cdg['engine']})",
                    "yes" if cdg["identical"] else "NO",
                    *[cdg["latency_ms"].get(b, "-") for b in backends],
                    "-",
                ],
                [
                    f"CFG/CYK n={cfg['sentence_words']}",
                    "yes" if cfg["identical"] else "NO",
                    *[cfg["latency_ms"].get(b, "-") for b in backends],
                    cfg["latency_ms"]["sets-oracle"],
                ],
            ],
            title="Both parsers on the shared kernel core",
        ),
        file=out,
    )
    dispatch = record.get("kernel_dispatch")
    if dispatch:
        routed = ", ".join(f"{key}->{winner}" for key, winner in dispatch.items())
        print(f"auto dispatch: {routed}", file=out)
    print(record["notes"], file=out)
