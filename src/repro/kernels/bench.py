"""BMM — the shared kernel core measured: microbench + both parsers on it.

The kernel extraction's claims, in falsifiability order:

* **Bit-identity** (always checkable, gated before any timing):

  - the four-Russians product, the bit-plane (``bool @ bool``) product
    and the O(m·k·n) broadcast oracle agree on every microbench
    operand;
  - a CDG parse on the ``packed`` backend and on the ``numpy`` backend
    settles to the same packed network, word for word;
  - the packed fence-matrix CYK and the pre-kernel set-based chart
    agree on the accepted flag, every chart cell, and the operation
    count.

  A record whose identity sweep fails is written with ``ok: false``
  and no timing section is trusted (the standalone runner exits 1).

* **Kernel throughput** (host-relative): per matrix size, best-of
  wall-clock of the three BMM implementations.  The broadcast oracle
  materializes an m·k·n intermediate, so full runs cap its size and
  the record says so (``naive_capped_at``) instead of silently
  claiming coverage.

* **End-to-end** (host-relative): the same sentence through a CDG
  :class:`~repro.pipeline.session.ParserSession` per kernel backend,
  and through packed CYK per backend versus the set-based chart — one
  table showing both parsers riding the one kernel core.

All timings are single-core wall clock; the record embeds
:func:`repro.analysis.host.host_metadata` so numbers are read against
the host that produced them, and no cross-host scaling claim is made.

Run standalone to (re)generate the committed record::

    PYTHONPATH=src python -m repro bench-bmm [--quick]

which writes ``BENCH_bmm.json`` at the repo root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.analysis.host import host_metadata
from repro.kernels import bitops
from repro.kernels.bmm import bmm_four_russians, bmm_planes, bmm_reference

#: Microbench operand shapes (m, k, n).  Deliberately not all square
#: and not all word-aligned: the padding discipline is part of what is
#: being timed.
SIZES = ((64, 64, 64), (128, 128, 128), (250, 250, 250), (512, 512, 512))
QUICK_SIZES = ((64, 64, 64), (130, 130, 130))

#: Largest dimension product the broadcast oracle is timed at (its
#: m·k·n boolean intermediate is the memory hog).
NAIVE_CAP = 256**3

REPEATS = 3
QUICK_REPEATS = 2


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _micro_identity_and_timing(sizes, repeats: int) -> tuple[bool, list[dict]]:
    rows = []
    ok = True
    rng = np.random.default_rng(8)
    for m, k, n in sizes:
        a_plane = rng.random((m, k)) < 0.3
        b_plane = rng.random((k, n)) < 0.3
        a_bits = bitops.pack_bits(a_plane)
        b_bits = bitops.pack_bits(b_plane)
        expected = bmm_reference(a_plane, b_plane)
        four = bmm_four_russians(a_bits, b_bits)
        planes = bmm_planes(a_bits, b_bits)
        identical = bool(
            np.array_equal(bitops.unpack_bits(four, n), expected)
            and np.array_equal(four, planes)
        )
        ok = ok and identical
        row = {
            "shape": [m, k, n],
            "identical": identical,
            "four_russians_ms": round(
                _best_of(lambda: bmm_four_russians(a_bits, b_bits), repeats) * 1e3, 4
            ),
            "planes_ms": round(
                _best_of(lambda: bmm_planes(a_bits, b_bits), repeats) * 1e3, 4
            ),
        }
        if m * k * n <= NAIVE_CAP:
            row["naive_ms"] = round(
                _best_of(lambda: bmm_reference(a_plane, b_plane), repeats) * 1e3, 4
            )
        rows.append(row)
    return ok, rows


def _cdg_end_to_end(n_words: int, repeats: int, batch: int) -> tuple[bool, dict]:
    from repro.grammar.builtin.english import english_grammar
    from repro.pipeline.session import ParserSession
    from repro.workloads import sentence_of_length

    grammar = english_grammar()
    words = sentence_of_length(n_words)
    results = {}
    timings = {}
    for backend in ("packed", "numpy"):
        session = ParserSession(grammar, engine="vector", backend=backend)
        result = session.parse(words)  # warm the template cache
        timings[backend] = round(
            _best_of(lambda: [session.parse(words) for _ in range(batch)], repeats)
            / batch * 1e3,
            4,
        )
        results[backend] = result
    a, b = results["packed"], results["numpy"]
    identical = bool(
        a.locally_consistent == b.locally_consistent
        and np.array_equal(a.network.alive_bits, b.network.alive_bits)
        and np.array_equal(a.network.matrix_bits, b.network.matrix_bits)
    )
    return identical, {
        "sentence_words": n_words,
        "engine": "vector",
        "identical": identical,
        "latency_ms": timings,
    }


def _cfg_end_to_end(n_words: int, repeats: int) -> tuple[bool, dict]:
    from repro.cfg import cyk_parse, cyk_parse_sets, english_cfg, to_cnf
    from repro.workloads import sentence_of_length

    cnf = to_cnf(english_cfg())
    words = sentence_of_length(n_words)
    oracle = cyk_parse_sets(cnf, words)
    identical = True
    timings = {}
    for backend in ("packed", "numpy"):
        packed = cyk_parse(cnf, words, backend=backend)
        identical = identical and bool(
            packed.accepted == oracle.accepted
            and packed.chart_sets == oracle.chart_sets
            and packed.split_operations == oracle.split_operations
        )
        timings[backend] = round(
            _best_of(lambda: cyk_parse(cnf, words, backend=backend), repeats) * 1e3, 4
        )
    timings["sets-oracle"] = round(
        _best_of(lambda: cyk_parse_sets(cnf, words), repeats) * 1e3, 4
    )
    return identical, {
        "sentence_words": n_words,
        "accepted": oracle.accepted,
        "identical": identical,
        "latency_ms": timings,
    }


def run_bench(*, quick: bool = False, out_path: "Path | str | None" = None) -> dict:
    """Run the identity-gated kernel benchmark; optionally write JSON."""
    sizes = QUICK_SIZES if quick else SIZES
    repeats = QUICK_REPEATS if quick else REPEATS
    micro_ok, micro = _micro_identity_and_timing(sizes, repeats)
    cdg_ok, cdg = _cdg_end_to_end(7 if quick else 10, repeats, batch=4)
    cfg_ok, cfg = _cfg_end_to_end(8 if quick else 12, repeats)
    record = {
        "bench": "bmm",
        "quick": quick,
        "host": host_metadata(),
        "bit_identity": {
            "ok": micro_ok and cdg_ok and cfg_ok,
            "micro": micro_ok,
            "cdg_packed_vs_numpy": cdg_ok,
            "cyk_packed_vs_sets": cfg_ok,
        },
        "micro": micro,
        "naive_capped_at": NAIVE_CAP,
        "end_to_end": {"cdg": cdg, "cfg": cfg},
        "notes": (
            "single-core wall clock on the recorded host; bit-identity "
            "asserted before timing; the broadcast oracle is only timed "
            "up to naive_capped_at elements"
        ),
    }
    if out_path is not None:
        Path(out_path).write_text(json.dumps(record, indent=2) + "\n")
    return record


def print_report(record: dict, out) -> None:
    """Render *record* as the terminal tables the harness snapshots."""
    from repro.analysis import format_table

    rows = []
    for row in record["micro"]:
        m, k, n = row["shape"]
        rows.append(
            [
                f"{m}x{k}x{n}",
                "yes" if row["identical"] else "NO",
                row["four_russians_ms"],
                row["planes_ms"],
                row.get("naive_ms", "capped"),
            ]
        )
    print(
        format_table(
            ["shape", "identical", "four-Russians ms", "bool@bool ms", "naive ms"],
            rows,
            title=f"BMM microbench ({record['host']['cpu_count']} CPU host)",
        ),
        file=out,
    )
    cdg = record["end_to_end"]["cdg"]
    cfg = record["end_to_end"]["cfg"]
    print(
        format_table(
            ["parser", "identical", "packed ms", "numpy ms", "oracle ms"],
            [
                [
                    f"CDG n={cdg['sentence_words']} ({cdg['engine']})",
                    "yes" if cdg["identical"] else "NO",
                    cdg["latency_ms"]["packed"],
                    cdg["latency_ms"]["numpy"],
                    "-",
                ],
                [
                    f"CFG/CYK n={cfg['sentence_words']}",
                    "yes" if cfg["identical"] else "NO",
                    cfg["latency_ms"]["packed"],
                    cfg["latency_ms"]["numpy"],
                    cfg["latency_ms"]["sets-oracle"],
                ],
            ],
            title="Both parsers on the shared kernel core",
        ),
        file=out,
    )
    print(record["notes"], file=out)
