"""Boolean-linear-algebra kernels: the word-level core under both parsers.

Lee 1997 ("Fast Context-Free Parsing Requires Fast BMM", via Valiant)
shows the asymptotic ceiling of this parser family *is* Boolean matrix
multiplication.  This package owns every primitive that touches packed
little-endian uint64 bit-planes, so the CDG side (consistency sweep,
fused binary-mask apply) and the CFG side (packed CYK) run on one
shared kernel core instead of three disconnected inner loops:

* :mod:`repro.kernels.bitops` — word-level primitives: popcounts,
  AND-accumulate with exact delta counting, segmented OR/popcount
  reductions, row/column clears, dense bit pack/unpack.
* :mod:`repro.kernels.bmm` — Boolean matrix multiplication over packed
  words: a blocked four-Russians kernel and a plain-numpy bit-plane
  fallback.
* :mod:`repro.kernels.backend` — the kernel-backend registry (mirrors
  :mod:`repro.engines.registry`): ``packed`` (default), ``numpy``
  (bit-plane matmul oracle), ``native`` (compiled C via ctypes),
  ``auto`` (profile-guided dispatch between the others) and a ``cupy``
  scaffold — every optional backend falls back cleanly to ``packed``
  when its substrate is absent.  Selected via the
  ``REPRO_KERNEL_BACKEND`` environment variable or the ``backend=``
  argument of :class:`repro.pipeline.session.ParserSession`; one
  resolution rule (explicit > environment > default) lives in
  :func:`repro.kernels.backend.resolve_backend_name`.
* :mod:`repro.kernels.native` — the C source + on-demand ``cc`` build
  behind the ``native`` backend.
* :mod:`repro.kernels.autotune` — the calibration races and persisted
  dispatch table behind the ``auto`` backend (``repro calibrate``).

Layering: ``kernels`` sits *below* :mod:`repro.network.bitset` — the
layout layer packs/unpacks and delegates its word-level work here —
which sits below propagation/template, which sits below the engines.
``repro.cfg`` reaches the kernels directly (no BitLayout involved).
"""

from repro.kernels.backend import (
    KernelBackend,
    KernelBackendUnavailable,
    available_backends,
    create_backend,
    default_backend,
    probe_backend,
    register_backend,
    reset_backend_cache,
    resolve_backend_name,
)
from repro.kernels.bitops import WORD_BITS, WORD_BYTES, WORD_DTYPE
from repro.kernels.bmm import bmm_four_russians, bmm_planes, bmm_reference

__all__ = [
    "KernelBackend",
    "KernelBackendUnavailable",
    "available_backends",
    "create_backend",
    "default_backend",
    "probe_backend",
    "register_backend",
    "reset_backend_cache",
    "resolve_backend_name",
    "WORD_BITS",
    "WORD_BYTES",
    "WORD_DTYPE",
    "bmm_four_russians",
    "bmm_planes",
    "bmm_reference",
]
