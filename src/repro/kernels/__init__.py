"""Boolean-linear-algebra kernels: the word-level core under both parsers.

Lee 1997 ("Fast Context-Free Parsing Requires Fast BMM", via Valiant)
shows the asymptotic ceiling of this parser family *is* Boolean matrix
multiplication.  This package owns every primitive that touches packed
little-endian uint64 bit-planes, so the CDG side (consistency sweep,
fused binary-mask apply) and the CFG side (packed CYK) run on one
shared kernel core instead of three disconnected inner loops:

* :mod:`repro.kernels.bitops` — word-level primitives: popcounts,
  AND-accumulate with exact delta counting, segmented OR/popcount
  reductions, row/column clears, dense bit pack/unpack.
* :mod:`repro.kernels.bmm` — Boolean matrix multiplication over packed
  words: a blocked four-Russians kernel and a plain-numpy bit-plane
  fallback.
* :mod:`repro.kernels.backend` — the kernel-backend registry (mirrors
  :mod:`repro.engines.registry`): ``packed`` (default), ``numpy``
  (bit-plane matmul oracle) and a ``cupy`` scaffold that falls back
  cleanly when CuPy is absent.  Selected via the
  ``REPRO_KERNEL_BACKEND`` environment variable or the ``backend=``
  argument of :class:`repro.pipeline.session.ParserSession`.

Layering: ``kernels`` sits *below* :mod:`repro.network.bitset` — the
layout layer packs/unpacks and delegates its word-level work here —
which sits below propagation/template, which sits below the engines.
``repro.cfg`` reaches the kernels directly (no BitLayout involved).
"""

from repro.kernels.backend import (
    KernelBackend,
    KernelBackendUnavailable,
    available_backends,
    create_backend,
    default_backend,
    register_backend,
)
from repro.kernels.bitops import WORD_BITS, WORD_BYTES, WORD_DTYPE
from repro.kernels.bmm import bmm_four_russians, bmm_planes, bmm_reference

__all__ = [
    "KernelBackend",
    "KernelBackendUnavailable",
    "available_backends",
    "create_backend",
    "default_backend",
    "register_backend",
    "WORD_BITS",
    "WORD_BYTES",
    "WORD_DTYPE",
    "bmm_four_russians",
    "bmm_planes",
    "bmm_reference",
]
