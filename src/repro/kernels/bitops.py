"""Word-level bit kernels over little-endian uint64 planes.

The leaf module of the kernel core: everything here operates on packed
word arrays and plain index/offset arrays — no ``BitLayout``, no
network, no grammar.  The layout layer (:mod:`repro.network.bitset`)
computes byte-aligned segment starts and per-index byte/mask tables and
delegates the actual bit arithmetic to these functions.

Conventions
-----------

* Words are explicit little-endian (``'<u8'``) so the ``uint8`` view of
  a word array is host-independent; bit *i* of a packed row lives in
  byte ``i >> 3`` at in-byte position ``i & 7``.
* 2-D inputs are independent rows: axis 0 indexes rows, axis 1 packed
  words.
* Callers guarantee that padding/slack bits are zero; that invariant is
  what makes popcount-delta counting exact, and every mutating kernel
  here preserves it (AND against zero stays zero, cleared rows are
  zero).
"""

from __future__ import annotations

import numpy as np

#: Words are explicit little-endian so uint8 views are host-independent.
WORD_DTYPE = np.dtype("<u8")
WORD_BYTES = 8
WORD_BITS = 64

if hasattr(np, "bitwise_count"):  # numpy >= 2: native popcount
    def popcount_bytes(view8: np.ndarray) -> np.ndarray:
        """Per-byte population counts of a uint8 array."""
        return np.bitwise_count(view8)
else:  # pragma: no cover - numpy < 2 fallback
    _POP8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

    def popcount_bytes(view8: np.ndarray) -> np.ndarray:
        """Per-byte population counts of a uint8 array."""
        return _POP8[view8]


def bytes_view(words: np.ndarray) -> np.ndarray:
    """The uint8 view of a word array (rows must be C-contiguous)."""
    return np.ascontiguousarray(words).view(np.uint8)


# -- dense pack / unpack -----------------------------------------------------

def pack_bits(bools: np.ndarray) -> np.ndarray:
    """Pack (..., n) booleans densely into (..., ceil(n/64)) words.

    Dense means bit *i* of the row is element *i* of the input — the
    single-segment special case of the layout layer's ``pack_rows``.
    Padding bits (positions >= n) are zero.
    """
    bools = np.asarray(bools, dtype=bool)
    n = bools.shape[-1]
    padded_bits = max(WORD_BITS, -(-n // WORD_BITS) * WORD_BITS)
    padded = np.zeros(bools.shape[:-1] + (padded_bits,), dtype=bool)
    padded[..., :n] = bools
    return np.packbits(padded, axis=-1, bitorder="little").view(WORD_DTYPE)


def unpack_bits(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Unpack (..., n_words) words densely into (..., n_bits) booleans."""
    bits = np.unpackbits(bytes_view(words), axis=-1, bitorder="little")
    return bits[..., :n_bits].astype(bool)


def set_bit(row_words: np.ndarray, index: int) -> None:
    """Set dense bit *index* of a packed row in place."""
    row_words[index >> 6] |= WORD_DTYPE.type(1) << WORD_DTYPE.type(index & 63)


def test_bit(row_words: np.ndarray, index: int) -> bool:
    """Read dense bit *index* of a packed row."""
    word = row_words[..., index >> 6]
    return bool(word >> WORD_DTYPE.type(index & 63) & WORD_DTYPE.type(1))


# -- counting ----------------------------------------------------------------

def count_ones(words: np.ndarray) -> int:
    """Total population count of a packed array (any shape)."""
    return int(popcount_bytes(bytes_view(words)).sum())


def segment_counts(row_words: np.ndarray, seg_byte_starts: np.ndarray) -> np.ndarray:
    """Per-segment popcounts of one packed row.

    Byte-aligned segments make this a byte-popcount followed by one
    ``add.reduceat`` at the segment starts; slack bits are zero by
    construction so the counts are exact.
    """
    per_byte = popcount_bytes(bytes_view(row_words)).astype(np.int64)
    return np.add.reduceat(per_byte, seg_byte_starts)


# -- segmented OR (the consistency-maintenance row sweep) --------------------

def or_segments(matrix_words: np.ndarray, seg_byte_starts: np.ndarray) -> np.ndarray:
    """OR each packed row within each byte segment: (rows, n_segments) uint8.

    A nonzero entry ``[a, j]`` means row *a* keeps at least one set bit
    in segment *j* — the OR-along-rows half of the paper's
    scanOr/scanAnd sweep, one ``bitwise_or.reduceat`` over the byte view.
    """
    return np.bitwise_or.reduceat(bytes_view(matrix_words), seg_byte_starts, axis=-1)


# -- mutation kernels --------------------------------------------------------

def scatter_mask(
    byte_offsets: np.ndarray, byte_masks: np.ndarray, row_bytes: int
) -> np.ndarray:
    """A packed (row_bytes/8,) row built by OR-scattering per-index byte masks."""
    mask8 = np.zeros(row_bytes, dtype=np.uint8)
    np.bitwise_or.at(mask8, byte_offsets, byte_masks)
    return mask8.view(WORD_DTYPE)


def and_accumulate(target_words: np.ndarray, mask_words: np.ndarray) -> int:
    """AND *mask* into *target* in place; return the number of bits cleared.

    The delta is exact popcount arithmetic (padding is zero on both
    sides), replacing the boolean path's ``count_nonzero(M & ~mask)``
    materialization with two popcounts over 8x less memory.
    """
    before = count_ones(target_words)
    np.bitwise_and(target_words, mask_words, out=target_words)
    return before - count_ones(target_words)


def clear_rows_and_columns(
    alive_words: np.ndarray,
    matrix_words: np.ndarray,
    indices: np.ndarray,
    keep_words: np.ndarray,
) -> None:
    """Kill *indices*: clear their alive bits, matrix rows and columns.

    ``keep_words`` is the packed complement of the indices' member mask
    (the layout layer computes it, since bit positions are its concern).
    The numpy analogue of MasPar design decision 4 ("zero the rows or
    columns ... rather than reducing their dimensions"), as three
    word-wide operations: one broadcast column-clear AND, one
    fancy-index row clear, one alive-vector AND.
    """
    alive_words &= keep_words
    matrix_words &= keep_words  # broadcast over rows: clears the columns
    matrix_words[indices] = 0  # clears the rows
