"""Consistency maintenance (paper section 1.4).

A role value *a* is still supported after constraint propagation iff, for
every other role j, the row of the arc matrix between role(a) and j
indexed by *a* contains at least one 1 over j's alive values — the
logical OR along rows followed by the logical AND across arcs that
Figures 10 and 12 illustrate.  Unsupported role values are removed, and
their rows/columns zeroed everywhere.

Two implementations with identical semantics:

* :func:`unsupported_vector` — one numpy pass over whichever view the
  network currently holds.  On a packed network (the default) the sweep
  is the kernel backend's ``support_any``: mask the bit matrix with the
  packed alive vector, then OR-reduce each row per role segment — the
  same OR-then-AND dataflow the MasPar performs with
  ``scanOr``/``scanAnd``, touching 1/8th of the memory the boolean
  sweep reads.  Which kernels run depends on the network's backend
  (:mod:`repro.kernels.backend`): ``packed`` does a word-wide AND plus
  a byte ``reduceat``; ``numpy`` computes the identical truth table as
  a literal Boolean matrix product against the byte-segment membership
  matrix (the Lee/Valiant recast).  On a boolean-mode network it is the
  original ``logical_or.reduceat`` over bytes.
* :func:`unsupported_serial` — explicit loops over arcs and rows, used by
  the faithful sequential engine and for cross-checking.

Both return an ``np.ndarray`` of *all* currently unsupported role
values (one contract); callers kill them simultaneously, which matches
the parallel semantics and keeps every engine on the same trajectory.
"""

from __future__ import annotations

import numpy as np

from repro.network.network import ConstraintNetwork


def unsupported_vector(net: ConstraintNetwork) -> np.ndarray:
    """Global indices of alive role values that currently lack support."""
    if getattr(net, "packed_active", False):
        return _unsupported_packed(net)
    alive = net.alive
    roles, starts = net.support_segments()
    if len(roles) < net.n_roles:
        # A role with a structurally empty domain supports nothing:
        # every alive role value is unsupported.
        return np.nonzero(alive)[0]
    # has[a, j] = does a keep an alive partner in role j?  One segmented
    # OR over the alive-masked matrix; the scratch buffer is reused
    # across sweeps (and, via the template, across sentences).
    masked = np.logical_and(net.matrix, alive[None, :], out=net.scratch_matrix())
    has = np.logical_or.reduceat(masked, starts, axis=1)
    # a's own role is exempt ("every *other* role").
    has[np.arange(net.nv), net.role_index] = True
    return np.nonzero(alive & ~has.all(axis=1))[0]


def _unsupported_packed(net: ConstraintNetwork) -> np.ndarray:
    """The packed-word sweep behind :func:`unsupported_vector`."""
    alive = net.alive  # frozen boolean view, for the final index extraction
    roles, _ = net.support_segments()
    if len(roles) < net.n_roles:
        return np.nonzero(alive)[0]
    # has[a, j] = does a keep an alive partner in role j?  One kernel
    # call: alive masking plus the segmented OR (or its BMM recast,
    # depending on the backend); the packed scratch buffer is reused
    # across sweeps (and, via the template, across sentences).
    has = net.kernels().support_any(
        net.matrix_bits,
        net.alive_bits,
        net.bit_layout.seg_byte_starts,
        out=net.scratch_bits(),
    )
    has[np.arange(net.nv), net.role_index] = True
    return np.nonzero(alive & ~has.all(axis=1))[0]


def unsupported_serial(net: ConstraintNetwork) -> np.ndarray:
    """Loop implementation of :func:`unsupported_vector` (same result)."""
    out: list[int] = []
    alive_by_role = [
        [b for b in range(sl.start, sl.stop) if net.alive[b]] for sl in net.role_slices
    ]
    for a in range(net.nv):
        if not net.alive[a]:
            continue
        role_a = int(net.role_index[a])
        for j in range(net.n_roles):
            if j == role_a:
                continue
            # OR along the row of the arc matrix between role_a and j.
            if not any(net.matrix[a, b] for b in alive_by_role[j]):
                out.append(a)
                break
    return np.asarray(out, dtype=np.int64)


def consistency_step_vector(net: ConstraintNetwork) -> int:
    """One parallel consistency-maintenance step; returns #role values killed."""
    dead = unsupported_vector(net)
    net.kill(dead)
    return len(dead)


def consistency_step_serial(net: ConstraintNetwork) -> int:
    """One sequential consistency-maintenance step (same semantics)."""
    dead = unsupported_serial(net)
    net.kill(dead)
    return len(dead)
