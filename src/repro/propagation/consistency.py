"""Consistency maintenance (paper section 1.4).

A role value *a* is still supported after constraint propagation iff, for
every other role j, the row of the arc matrix between role(a) and j
indexed by *a* contains at least one 1 over j's alive values — the
logical OR along rows followed by the logical AND across arcs that
Figures 10 and 12 illustrate.  Unsupported role values are removed, and
their rows/columns zeroed everywhere.

Two implementations with identical semantics:

* :func:`unsupported_vector` — one numpy pass: role slices tile the
  global index space contiguously, so the OR along each arc-matrix row
  is a segmented ``logical_or.reduceat`` at the role starts, and the
  AND across arcs an ``all`` over the resulting (NV, n_roles) table —
  the same OR-then-AND dataflow the MasPar performs with
  ``scanOr``/``scanAnd``, without materializing support *counts*;
* :func:`unsupported_serial` — explicit loops over arcs and rows, used by
  the faithful sequential engine and for cross-checking.

Both report *all* currently unsupported role values; callers kill them
simultaneously, which matches the parallel semantics and keeps every
engine on the same trajectory.
"""

from __future__ import annotations

import numpy as np

from repro.network.network import ConstraintNetwork


def unsupported_vector(net: ConstraintNetwork) -> np.ndarray:
    """Global indices of alive role values that currently lack support."""
    alive = net.alive
    roles, starts = net.support_segments()
    if len(roles) < net.n_roles:
        # A role with a structurally empty domain supports nothing:
        # every alive role value is unsupported.
        return np.nonzero(alive)[0]
    # has[a, j] = does a keep an alive partner in role j?  One segmented
    # OR over the alive-masked matrix; the scratch buffer is reused
    # across sweeps (and, via the template, across sentences).
    masked = np.logical_and(net.matrix, alive[None, :], out=net.scratch_matrix())
    has = np.logical_or.reduceat(masked, starts, axis=1)
    # a's own role is exempt ("every *other* role").
    has[np.arange(net.nv), net.role_index] = True
    return np.nonzero(alive & ~has.all(axis=1))[0]


def unsupported_serial(net: ConstraintNetwork) -> list[int]:
    """Loop implementation of :func:`unsupported_vector` (same result)."""
    out: list[int] = []
    alive_by_role = [
        [b for b in range(sl.start, sl.stop) if net.alive[b]] for sl in net.role_slices
    ]
    for a in range(net.nv):
        if not net.alive[a]:
            continue
        role_a = int(net.role_index[a])
        for j in range(net.n_roles):
            if j == role_a:
                continue
            # OR along the row of the arc matrix between role_a and j.
            if not any(net.matrix[a, b] for b in alive_by_role[j]):
                out.append(a)
                break
    return out


def consistency_step_vector(net: ConstraintNetwork) -> int:
    """One parallel consistency-maintenance step; returns #role values killed."""
    dead = unsupported_vector(net)
    net.kill(dead)
    return len(dead)


def consistency_step_serial(net: ConstraintNetwork) -> int:
    """One sequential consistency-maintenance step (same semantics)."""
    dead = unsupported_serial(net)
    net.kill(np.asarray(dead, dtype=np.int64))
    return len(dead)
