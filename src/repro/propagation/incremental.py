"""Incremental constraint propagation over an existing network.

Paper section 1.5: "Since CNs compactly store multiple parses and such
ambiguity is easy to detect, additional constraints can be applied as
needed to further refine the analysis of an ambiguous sentence" — the
core-then-contextual constraint staging of the authors' spoken-language
programme.  :func:`apply_constraint` is that operation: propagate one
extra constraint (not necessarily from the grammar) over a settled CN
and restore local consistency.

The same machinery is what makes parses *resumable*.  Eliminations are
monotone, and elementwise constraint evaluation over the old role
values does not depend on sentence length, so a streamed
(n+1)-word network seeded from an embedded n-word state
(:meth:`~repro.network.network.ConstraintNetwork.extend_from`) reaches
the settled network of a fresh full parse by re-applying the extended
masks — idempotent on the carried-over bits, so only the new word's
blocks actually change — and running consistency to quiescence.
:func:`apply_masks` / :func:`run_filtering` are that resumable fixpoint
entry point, split so the streaming layer can snapshot the
pre-filtering state between them; :func:`resume_propagation` is the
composed convenience form.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.constraints import Constraint, VectorEnv
from repro.network import bitset
from repro.network.network import ConstraintNetwork
from repro.propagation.consistency import consistency_step_vector
from repro.propagation.filtering import filter_network


def apply_constraint(
    network: ConstraintNetwork,
    constraint: Constraint,
    filter_limit: int | None = None,
) -> int:
    """Propagate one extra constraint over *network*, in place.

    Works for unary and binary constraints; afterwards consistency
    maintenance runs to quiescence (or to *filter_limit* passes).
    Operates directly on the packed ``alive_bits``/``matrix_bits``
    representation when the network is in packed mode — the binary mask
    is symmetrized and packed once, then ANDed word-wide — and falls
    back to the boolean arrays only for a boolean-mode network.

    Returns:
        The number of role values eliminated, including knock-on
        consistency eliminations.
    """
    before = network.alive_count()
    if constraint.is_unary:
        env = VectorEnv(x=network.unary_fields(), y=None, canbe=network.canbe_array)
        permitted = constraint.vector(env)
        network.kill(np.nonzero(network.alive & ~permitted)[0])
    else:
        x_fields, y_fields = network.pair_fields()
        env = VectorEnv(x=x_fields, y=y_fields, canbe=network.canbe_array)
        permitted = constraint.vector(env)
        both = permitted & permitted.T
        if network.packed_active:
            network.apply_pair_mask_bits(bitset.pack_rows(both, network.bit_layout))
        else:
            network.apply_pair_mask(both, presymmetrized=True)
    filter_network(network, consistency_step_vector, limit=filter_limit)
    return before - network.alive_count()


def apply_constraints(
    network: ConstraintNetwork,
    constraints: list[Constraint],
    filter_limit: int | None = None,
) -> int:
    """Propagate a staged constraint set (e.g. a contextual module)."""
    return sum(
        apply_constraint(network, constraint, filter_limit=filter_limit)
        for constraint in constraints
    )


# -- the resumable fixpoint (streaming) --------------------------------------


class MaskStats(NamedTuple):
    """Per-mask elimination counts of one :func:`apply_masks` call."""

    unary_killed: tuple[int, ...]  # role values killed per unary mask, in order
    matrix_entries_zeroed: int  # bits cleared by the fused mask application


class FixpointStats(NamedTuple):
    """Counters of one :func:`run_filtering` fixpoint."""

    role_values_killed: int
    consistency_passes: int  # sweeps executed, including the final quiet one
    filtering_iterations: int  # sweeps that eliminated something


def apply_masks(
    network: ConstraintNetwork,
    unary_masks: "tuple[np.ndarray, ...]",
    fused_mask: "np.ndarray | None",
) -> MaskStats:
    """Apply precomputed unary vectors and a fused packed binary mask.

    The masks are applied over the *whole* index space: on a network
    seeded from an embedded prefix state this degenerates to exactly
    the new word's work, because the carried-over bits already satisfy
    every mask (old-value eliminations are prefix-stable), and a
    word-wide AND is how the packed core expresses "only the new
    blocks" anyway.  Unary kills run in constraint order, matching the
    fused vector engine's schedule bit for bit.
    """
    killed: list[int] = []
    for permitted in unary_masks:
        dead = np.nonzero(network.alive & ~permitted)[0]
        network.kill(dead)
        killed.append(len(dead))
    zeroed = 0
    if fused_mask is not None:
        zeroed = network.apply_pair_mask_bits(fused_mask)
    return MaskStats(unary_killed=tuple(killed), matrix_entries_zeroed=zeroed)


def run_filtering(
    network: ConstraintNetwork, *, filter_limit: int | None = None
) -> FixpointStats:
    """Run consistency maintenance to quiescence, with engine-grade counts.

    The pass accounting matches :class:`~repro.engines.vector.VectorEngine`
    exactly (every sweep counts as a pass, including the final one that
    eliminates nothing; ``filtering_iterations`` counts only productive
    sweeps), so streamed stats can be reconciled with fresh-parse stats.
    """
    kills = 0
    passes = 0

    def counting_step(net: ConstraintNetwork) -> int:
        nonlocal kills, passes
        step_kills = consistency_step_vector(net)
        kills += step_kills
        passes += 1
        return step_kills

    iterations = filter_network(network, counting_step, limit=filter_limit)
    return FixpointStats(
        role_values_killed=kills,
        consistency_passes=passes,
        filtering_iterations=iterations,
    )


def resume_propagation(
    network: ConstraintNetwork,
    unary_masks: "tuple[np.ndarray, ...]",
    fused_mask: "np.ndarray | None",
    *,
    filter_limit: int | None = None,
) -> "tuple[MaskStats, FixpointStats]":
    """Masks, then consistency to quiescence: the one-call resume form."""
    mask_stats = apply_masks(network, unary_masks, fused_mask)
    fixpoint = run_filtering(network, filter_limit=filter_limit)
    return mask_stats, fixpoint
