"""Incremental constraint propagation over an existing network.

Paper section 1.5: "Since CNs compactly store multiple parses and such
ambiguity is easy to detect, additional constraints can be applied as
needed to further refine the analysis of an ambiguous sentence" — the
core-then-contextual constraint staging of the authors' spoken-language
programme.  :func:`apply_constraint` is that operation: propagate one
extra constraint (not necessarily from the grammar) over a settled CN
and restore local consistency.
"""

from __future__ import annotations

import numpy as np

from repro.constraints import Constraint, VectorEnv
from repro.network.network import ConstraintNetwork
from repro.propagation.consistency import consistency_step_vector
from repro.propagation.filtering import filter_network


def apply_constraint(
    network: ConstraintNetwork,
    constraint: Constraint,
    filter_limit: int | None = None,
) -> int:
    """Propagate one extra constraint over *network*, in place.

    Works for unary and binary constraints; afterwards consistency
    maintenance runs to quiescence (or to *filter_limit* passes).

    Returns:
        The number of role values eliminated, including knock-on
        consistency eliminations.
    """
    before = int(network.alive.sum())
    if constraint.is_unary:
        env = VectorEnv(x=network.unary_fields(), y=None, canbe=network.canbe_array)
        permitted = constraint.vector(env)
        network.kill(np.nonzero(network.alive & ~permitted)[0])
    else:
        x_fields, y_fields = network.pair_fields()
        env = VectorEnv(x=x_fields, y=y_fields, canbe=network.canbe_array)
        network.apply_pair_mask(constraint.vector(env))
    filter_network(network, consistency_step_vector, limit=filter_limit)
    return before - int(network.alive.sum())


def apply_constraints(
    network: ConstraintNetwork,
    constraints: list[Constraint],
    filter_limit: int | None = None,
) -> int:
    """Propagate a staged constraint set (e.g. a contextual module)."""
    return sum(
        apply_constraint(network, constraint, filter_limit=filter_limit)
        for constraint in constraints
    )
