"""Constraint propagation, consistency maintenance and filtering."""

from repro.propagation.consistency import (
    consistency_step_serial,
    consistency_step_vector,
    unsupported_serial,
    unsupported_vector,
)
from repro.propagation.filtering import filter_network
from repro.propagation.incremental import apply_constraint, apply_constraints

__all__ = [
    "apply_constraint",
    "apply_constraints",
    "consistency_step_serial",
    "consistency_step_vector",
    "unsupported_serial",
    "unsupported_vector",
    "filter_network",
]
