"""Constraint propagation, consistency maintenance and filtering."""

from repro.propagation.consistency import (
    consistency_step_serial,
    consistency_step_vector,
    unsupported_serial,
    unsupported_vector,
)
from repro.propagation.filtering import filter_network
from repro.propagation.incremental import (
    FixpointStats,
    MaskStats,
    apply_constraint,
    apply_constraints,
    apply_masks,
    resume_propagation,
    run_filtering,
)

__all__ = [
    "apply_constraint",
    "apply_constraints",
    "apply_masks",
    "run_filtering",
    "resume_propagation",
    "MaskStats",
    "FixpointStats",
    "consistency_step_serial",
    "consistency_step_vector",
    "unsupported_serial",
    "unsupported_vector",
    "filter_network",
]
