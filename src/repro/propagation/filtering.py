"""Filtering: iterate consistency maintenance to a fixpoint.

"A single application of consistency maintenance may be insufficient ...
Filtering continues until there are no role values indexing matrix rows
or columns containing only zeros" (section 1.4).  The paper notes the
worst case is sequential (they reduce the Monotone Circuit Value Problem
to it) but observes that real grammars settle in "typically fewer than
10" iterations, which is why the MasPar implementation bounds the
iteration count (design decision 5).  Both behaviours are available here
via *limit*.

The driver is representation-agnostic: the *step* callables from
:mod:`repro.propagation.consistency` dispatch per network on the packed
bit matrices (word-wide AND + segmented byte OR) or the boolean view,
so one fixpoint loop serves both execution cores.
"""

from __future__ import annotations

from typing import Callable

from repro.network.network import ConstraintNetwork

ConsistencyStep = Callable[[ConstraintNetwork], int]


def filter_network(
    net: ConstraintNetwork,
    step: ConsistencyStep,
    limit: int | None = None,
) -> int:
    """Run consistency steps until quiescent (or until *limit* steps).

    Args:
        net: the network to filter, mutated in place.
        step: one consistency-maintenance pass returning #killed.
        limit: maximum number of passes; ``None`` runs to the fixpoint.

    Returns:
        The number of passes that actually removed something.
    """
    iterations = 0
    while limit is None or iterations < limit:
        killed = step(net)
        if killed == 0:
            break
        iterations += 1
    return iterations
