"""Parse tracing and diffing — grammar debugging tooling.

The paper singles out the MasPar's "data visualization capabilities and
the well integrated and extensive debugging support" as what "made the
job of implementing the algorithm much easier".  This module is that
facility for the reproduction: a :class:`TraceRecorder` captures the
constraint network after every propagation phase, and the diff renderer
shows exactly which role values each phase eliminated — the constraint
writer's primary question.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.network.network import ConstraintNetwork

Snapshot = dict[tuple[int, str], frozenset[str]]


def _snapshot(net: ConstraintNetwork) -> Snapshot:
    out: Snapshot = {}
    for pos in range(1, net.n_words + 1):
        for role_name in net.grammar.roles:
            out[(pos, role_name)] = frozenset(net.domain(pos, role_name))
    return out


@dataclass
class TraceStep:
    """One recorded phase: its name and the domains after it ran."""

    event: str
    domains: Snapshot
    alive: int


@dataclass
class TraceRecorder:
    """Trace hook that snapshots the CN after every phase.

    Use::

        recorder = TraceRecorder()
        engine.parse(grammar, sentence, trace=recorder)
        print(recorder.explain())
    """

    steps: list[TraceStep] = field(default_factory=list)
    words: tuple[str, ...] = ()

    def __call__(self, event: str, net: ConstraintNetwork) -> None:
        self.words = net.sentence.words
        self.steps.append(TraceStep(event, _snapshot(net), int(net.alive.sum())))

    # -- queries ------------------------------------------------------------

    def step(self, event: str) -> TraceStep:
        for step in self.steps:
            if step.event == event:
                return step
        raise KeyError(f"no trace step {event!r}; have {[s.event for s in self.steps]}")

    def eliminations(self, before: Snapshot, after: Snapshot) -> dict[tuple[int, str], frozenset[str]]:
        """Role values present in *before* but gone in *after*, per role."""
        out = {}
        for key, values in before.items():
            gone = values - after.get(key, frozenset())
            if gone:
                out[key] = frozenset(gone)
        return out

    # -- rendering ------------------------------------------------------------

    def explain(self, skip_quiet: bool = True) -> str:
        """A phase-by-phase elimination report.

        Args:
            skip_quiet: omit phases that eliminated nothing.
        """
        lines = []
        previous: Snapshot | None = None
        for step in self.steps:
            if previous is None:
                lines.append(f"[{step.event}] {step.alive} role values")
                previous = step.domains
                continue
            gone = self.eliminations(previous, step.domains)
            if gone or not skip_quiet:
                total = sum(len(v) for v in gone.values())
                lines.append(f"[{step.event}] eliminated {total}:")
                for (pos, role_name), values in sorted(gone.items()):
                    word = self.words[pos - 1]
                    rendered = ", ".join(sorted(values))
                    lines.append(f"    {word}[{pos}].{role_name}: {rendered}")
            previous = step.domains
        return "\n".join(lines)

    def timeline(self) -> list[tuple[str, int]]:
        """(event, surviving role values) pairs, in order."""
        return [(step.event, step.alive) for step in self.steps]
