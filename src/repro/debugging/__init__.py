"""Grammar-debugging tooling: parse traces and elimination diffs."""

from repro.debugging.recorder import TraceRecorder, TraceStep

__all__ = ["TraceRecorder", "TraceStep"]
