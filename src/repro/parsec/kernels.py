"""PARSEC kernels: the MPL programs, run on the simulated MP-1.

Every function here is written the way the MPL original is structured:
the ACU broadcasts a constraint (or a phase command), all PEs execute
the same straight-line code on their local ``S x S`` label submatrix,
and the global router's segmented scans implement consistency
maintenance (Figures 10 and 12).  All data a PE touches is either local,
computed from its processor id (paper: "There is no need to broadcast to
each PE which arc elements it should process, because each PE can
calculate that from its processor ID number"), fetched through the
router, or broadcast by the ACU — design decision 2: no shared memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.constraints import VectorEnv
from repro.maspar.machine import MP1
from repro.network.network import ConstraintNetwork
from repro.parsec.layout import PELayout

#: Rough instruction count charged per compiled-constraint evaluation —
#: the paper's constraints are short straight-line predicate programs.
CONSTRAINT_OPS = 24


class ConstraintLike(Protocol):
    """What the kernels need of a constraint: a name and a vector form.

    Satisfied both by :class:`repro.constraints.Constraint` and by the
    pipeline's :class:`repro.pipeline.compiled.CompiledConstraint`.
    """

    name: str

    def vector(self, env: VectorEnv) -> np.ndarray: ...


@dataclass
class ParsecState:
    """Plural (per-PE) state of one PARSEC run.

    Attributes:
        submat: (V, S, S) arc-matrix bits — ``submat[pe, sr, sc]`` is the
            entry for (row rv = (row_role, row_mod, sr),
            col rv = (col_role, col_mod, sc)).
        col_alive: (V, S) liveness of each PE's column role values.
        row_alive: (V, S) liveness of each PE's row role values.
        rv_alive: (R, n_mods, S) the ACU's role-value liveness table.
    """

    submat: np.ndarray
    col_alive: np.ndarray
    row_alive: np.ndarray
    rv_alive: np.ndarray

    # Cached per-PE field arrays for constraint evaluation:
    col_fields: dict[str, np.ndarray]  # each (V, 1, S) for broadcasting
    row_fields: dict[str, np.ndarray]  # each (V, S, 1)
    unary_fields: dict[str, np.ndarray]  # each (V, S) — column role values


def _gather_fields(machine: MP1, layout: PELayout, roles: np.ndarray, mod_idx: np.ndarray) -> dict[str, np.ndarray]:
    """Per-PE field arrays, shape (V, S), for the given role/mod coords.

    Each PE derives them from its processor id plus the (broadcast)
    per-role tables — charged as local table lookups.
    """
    S = layout.n_slots
    pos = layout.role_pos[roles]
    kind = layout.role_kind[roles]
    mod = layout.mod_value[roles, mod_idx]
    fields = {
        "pos": np.broadcast_to(pos[:, None], (layout.n_pes, S)),
        "role": np.broadcast_to(kind[:, None], (layout.n_pes, S)),
        "mod": np.broadcast_to(mod[:, None], (layout.n_pes, S)),
        "cat": layout.slot_cat[roles],
        "lab": layout.slot_lab[roles],
    }
    machine.elementwise(lambda: None, ops=5)
    return fields


def initialize(machine: MP1, layout: PELayout, network: ConstraintNetwork) -> ParsecState:
    """Build the initial arc matrices on the PE array (design decision 1).

    All entries start at 1 across distinct roles; padding slots and the
    category-coherence pairs (same word, different assumed category) are
    zeroed.  The matrices exist *before* unary propagation, matching
    Figure 9.
    """
    S = layout.n_slots
    V = layout.n_pes

    col_flat = _gather_fields(machine, layout, layout.col_role, layout.col_mod_idx)
    row_flat = _gather_fields(machine, layout, layout.row_role, layout.row_mod_idx)
    col_valid = layout.slot_valid[layout.col_role]  # (V, S)
    row_valid = layout.slot_valid[layout.row_role]

    submat = machine.alloc(dtype=bool, shape_tail=(S, S))
    ok = (
        layout.enabled[:, None, None]
        & row_valid[:, :, None]
        & col_valid[:, None, :]
    )
    # Category coherence: role values of the same word must agree on its
    # category (no-op for unambiguous words).
    same_word = layout.role_pos[layout.row_role] == layout.role_pos[layout.col_role]
    cat_clash = row_flat["cat"][:, :, None] != col_flat["cat"][:, None, :]
    ok &= ~(same_word[:, None, None] & cat_clash)
    submat[:] = ok
    machine.elementwise(lambda: None, ops=S * S)

    col_alive = machine.alloc(dtype=bool, shape_tail=(S,))
    row_alive = machine.alloc(dtype=bool, shape_tail=(S,))
    col_alive[:] = col_valid
    row_alive[:] = row_valid
    machine.elementwise(lambda: None, ops=2)

    rv_alive = layout.slot_valid[:, None, :].repeat(layout.n_mods, axis=1).copy()

    return ParsecState(
        submat=submat,
        col_alive=col_alive,
        row_alive=row_alive,
        rv_alive=rv_alive,
        col_fields={k: v[:, None, :] for k, v in col_flat.items()},
        row_fields={k: v[:, :, None] for k, v in row_flat.items()},
        unary_fields=col_flat,
    )


def _propagate_eliminations(
    machine: MP1,
    layout: PELayout,
    state: ParsecState,
    eliminated: np.ndarray,
) -> int:
    """Zero rows/columns of eliminated role values everywhere.

    ``eliminated`` is an (R, n_mods, S) bool table of *newly* eliminated
    role values.  Every PE fetches the flags of its own column and row
    role values through the router (two fetches) and zeroes the matching
    submatrix lines — design decision 4: zero, never shrink.

    Returns the number of role values eliminated.
    """
    count = int(eliminated.sum())
    if count == 0:
        return 0
    state.rv_alive &= ~eliminated

    flat = eliminated.reshape(-1, layout.n_slots)  # (R * n_mods, S)
    col_key = layout.col_role.astype(np.int64) * layout.n_mods + layout.col_mod_idx
    row_key = layout.row_role.astype(np.int64) * layout.n_mods + layout.row_mod_idx
    col_gone = machine.router_fetch(flat, col_key)  # (V, S)
    row_gone = machine.router_fetch(flat, row_key)

    state.col_alive &= ~col_gone
    state.row_alive &= ~row_gone
    state.submat &= ~row_gone[:, :, None]
    state.submat &= ~col_gone[:, None, :]
    machine.elementwise(lambda: None, ops=2 + 2 * layout.n_slots)
    return count


def apply_unary(machine: MP1, layout: PELayout, state: ParsecState, constraint: "ConstraintLike", canbe: np.ndarray) -> int:
    """Broadcast one unary constraint; each PE tests its column role values.

    Returns the number of role values eliminated.
    """
    machine.broadcast(constraint.name)
    permitted = machine.elementwise(
        lambda: constraint.vector(VectorEnv(x=state.unary_fields, y=None, canbe=canbe)),
        ops=CONSTRAINT_OPS,
    )  # (V, S)
    violated = state.col_alive & ~permitted

    # The ACU collects the verdicts from one representative PE per column
    # role value (the first PE of its coarse segment).
    rep = np.fromiter(
        (
            layout.representative_pe(role, mod_idx)
            for role in range(layout.n_roles)
            for mod_idx in range(layout.n_mods)
        ),
        dtype=np.int64,
        count=layout.n_roles * layout.n_mods,
    )
    eliminated = machine.router_fetch(violated, rep).reshape(
        layout.n_roles, layout.n_mods, layout.n_slots
    )
    return _propagate_eliminations(machine, layout, state, eliminated)


def apply_binary(machine: MP1, layout: PELayout, state: ParsecState, constraint: "ConstraintLike", canbe: np.ndarray) -> int:
    """Broadcast one binary constraint; each PE tests its S x S pairs.

    Each pair is tested in both orientations (x=row, y=col and the
    swap), because the two stored copies of every arc matrix must stay
    identical.  Returns the number of matrix entries zeroed.
    """
    machine.broadcast(constraint.name)
    forward = machine.elementwise(
        lambda: constraint.vector(VectorEnv(x=state.row_fields, y=state.col_fields, canbe=canbe)),
        ops=CONSTRAINT_OPS * layout.n_slots * layout.n_slots,
    )
    backward = machine.elementwise(
        lambda: constraint.vector(VectorEnv(x=state.col_fields, y=state.row_fields, canbe=canbe)),
        ops=CONSTRAINT_OPS * layout.n_slots * layout.n_slots,
    )
    permitted = forward & backward
    before = int(state.submat.sum())
    state.submat &= permitted
    machine.elementwise(lambda: None, ops=layout.n_slots * layout.n_slots)
    return before - int(state.submat.sum())


def consistency_step(machine: MP1, layout: PELayout, state: ParsecState) -> int:
    """One consistency-maintenance step via scanOr / scanAnd (Figure 12).

    For every column role value: OR each incident arc-matrix column
    (fine segments, ``scanOr``), then AND the per-arc results across the
    coarse segment (``scanAnd``, self-arc PEs feeding the neutral 1).
    Unsupported role values are eliminated simultaneously.

    Returns the number of role values eliminated.
    """
    S = layout.n_slots
    eliminated = np.zeros((layout.n_roles, layout.n_mods, S), dtype=bool)
    rep = np.fromiter(
        (
            layout.representative_pe(role, mod_idx)
            for role in range(layout.n_roles)
            for mod_idx in range(layout.n_mods)
        ),
        dtype=np.int64,
        count=layout.n_roles * layout.n_mods,
    )

    for s in range(S):  # the constant-factor label loop of Figure 13
        # OR over the rows of the local submatrix column s.
        local_or = machine.elementwise(lambda s=s: state.submat[:, :, s].any(axis=1), ops=S)
        # OR across the row modifiees of each arc (scanOr segments).
        arc_or = machine.segment_or(local_or, layout.fine_seg)
        # AND across the arcs (scanAnd segments); disabled self-arc PEs
        # contribute the neutral element.
        and_input = machine.select(layout.enabled, arc_or, True)
        supported = machine.segment_and(and_input, layout.coarse_seg)
        violated = state.col_alive[:, s] & ~supported
        eliminated[:, :, s] = machine.router_fetch(violated, rep).reshape(
            layout.n_roles, layout.n_mods
        )

    return _propagate_eliminations(machine, layout, state, eliminated)


def read_back(layout: PELayout, state: ParsecState, network: ConstraintNetwork) -> None:
    """Copy the settled PE state into *network* (front-end readout).

    Not a machine operation: the host reads results off the array after
    parsing, so no cycles are charged.
    """
    # The readout writes the boolean view in place; repack afterward so
    # the caller gets the network back in packed mode.
    network.materialize_bool()
    try:
        S = layout.n_slots
        valid = layout.rv_id >= 0
        alive = np.zeros(network.nv, dtype=bool)
        alive[layout.rv_id[valid]] = state.rv_alive[valid]
        network.alive[:] = alive

        matrix = np.zeros((network.nv, network.nv), dtype=bool)
        row_ids_all = layout.rv_id[layout.row_role, layout.row_mod_idx]  # (V, S)
        col_ids_all = layout.rv_id[layout.col_role, layout.col_mod_idx]
        for sr in range(S):
            row_ids = row_ids_all[:, sr]
            for sc in range(S):
                col_ids = col_ids_all[:, sc]
                ok = (row_ids >= 0) & (col_ids >= 0) & layout.enabled
                matrix[row_ids[ok], col_ids[ok]] = state.submat[ok, sr, sc]
        network.matrix[:] = matrix
    finally:
        network.repack()
