"""PARSEC: the paper's MasPar implementation of parallel CDG parsing."""

from repro.parsec.layout import PELayout, build_layout
from repro.parsec.parser import MasParEngine
from repro.parsec.timing import (
    PAPER_TOY_PARSE_SECONDS,
    calibration_factor,
    step_function_seconds,
    virtualization_units,
)

__all__ = [
    "PELayout",
    "build_layout",
    "MasParEngine",
    "virtualization_units",
    "step_function_seconds",
    "calibration_factor",
    "PAPER_TOY_PARSE_SECONDS",
]
