"""PE allocation for PARSEC on the MasPar (paper Figures 11 and 13).

Virtual PE space
----------------

One virtual PE is allocated per

    (column role, column modifiee, row role, row modifiee)

quadruple, giving ``(q n)^2 * n^2 = q^2 n^4`` virtual PEs — the paper's
O(n^4) processor bound (324 PEs for the 3-word example, exactly Figure
11's count).  Each PE owns the ``S x S`` *label submatrix* of the arc
between its row role and column role, restricted to its (row, col)
modifiee pair — Figure 13's "each PE processes a 3 x 3 element
submatrix", generalized: a *slot* is a (category, label) pair admitted
by the table T for that role, padded to the sentence-wide maximum S so
the SIMD arrays stay rectangular (the padding slots are permanently
dead).

The linear PE numbering groups, from slowest to fastest,

    column role -> column modifiee -> row role -> row modifiee

so that the two segment granularities the consistency kernel needs are
contiguous, exactly as in Figure 12:

* *fine* segments — one per (column role, column modifiee, row role):
  ``n`` PEs whose ``scanOr()`` ORs an arc-matrix column;
* *coarse* segments — one per (column role, column modifiee):
  ``q n * n`` PEs whose ``scanAnd()`` ANDs the per-arc ORs, with the
  self-arc PEs disabled ("a PE disabled from the beginning of parsing").

``rv_id`` maps (role, modifiee index, slot) to the global role-value
index of :class:`~repro.network.network.ConstraintNetwork`, which is
what lets the MasPar engine hand its settled state back for extraction
and for the cross-engine equivalence tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.constraints.symbols import NIL_MOD
from repro.network.network import ConstraintNetwork


@dataclass(frozen=True)
class PELayout:
    """Index structure of the PARSEC PE allocation for one sentence."""

    n_words: int
    n_roles: int  # R = q * n
    n_mods: int  # modifiee values per role = n (nil + the n-1 other words)
    n_slots: int  # S = padded (category, label) slots per role
    n_pes: int  # V = R^2 * n_mods^2 = q^2 n^4

    # Per-role tables, shape (R, ...):
    role_pos: np.ndarray  # (R,) word position of each role
    role_kind: np.ndarray  # (R,) role-kind code
    mod_value: np.ndarray  # (R, n_mods) modifiee value per mod index
    slot_cat: np.ndarray  # (R, S) category code, -1 = padding
    slot_lab: np.ndarray  # (R, S) label code, -1 = padding
    slot_valid: np.ndarray  # (R, S) bool
    rv_id: np.ndarray  # (R, n_mods, S) global role-value index, -1 = padding

    # Per-PE coordinate arrays, shape (V,):
    col_role: np.ndarray
    col_mod_idx: np.ndarray
    row_role: np.ndarray
    row_mod_idx: np.ndarray
    enabled: np.ndarray  # (V,) bool: self-arc PEs are disabled
    fine_seg: np.ndarray  # (V,) scanOr segment ids
    coarse_seg: np.ndarray  # (V,) scanAnd segment ids

    @property
    def virtualization_units(self) -> int:
        """The paper's ceil(q^2 n^4 / 16384) time-multiplexing factor."""
        return -(-self.n_pes // 16384)

    def pe_index(self, col_role: int, col_mod_idx: int, row_role: int, row_mod_idx: int) -> int:
        """Linear PE number for a coordinate quadruple."""
        return ((col_role * self.n_mods + col_mod_idx) * self.n_roles + row_role) * self.n_mods + row_mod_idx

    def representative_pe(self, role: int, mod_idx: int) -> int:
        """First PE of the coarse segment owning column (role, mod_idx)."""
        return (role * self.n_mods + mod_idx) * self.n_roles * self.n_mods


def build_layout(network: ConstraintNetwork) -> PELayout:
    """Derive the PE allocation from a constraint network.

    The slot enumeration must match the network's role-value enumeration
    (sorted categories, then sorted labels, then modifiees in nil-first
    order) so that ``rv_id`` is a simple affine map into the network's
    global index space.
    """
    n = network.n_words
    q = network.n_roles_per_word
    R = n * q
    grammar = network.grammar

    # Per-role slot lists, in the network's enumeration order.
    slots_per_role: list[list[tuple[int, int]]] = []
    mods_per_role: list[list[int]] = []
    for role_index in range(R):
        ref = network.role_ref(role_index)
        cats = network.sentence.category_sets[ref.pos - 1]
        slots = [
            (cat, lab)
            for cat in sorted(cats)
            for lab in sorted(grammar.allowed_labels(ref.role, cat))
        ]
        slots_per_role.append(slots)
        mods_per_role.append([NIL_MOD] + [m for m in range(1, n + 1) if m != ref.pos])

    S = max(len(slots) for slots in slots_per_role)
    n_mods = n  # nil + (n - 1) other words

    role_pos = np.fromiter((network.role_ref(r).pos for r in range(R)), dtype=np.int32, count=R)
    role_kind = np.fromiter((network.role_ref(r).role for r in range(R)), dtype=np.int32, count=R)
    mod_value = np.array(mods_per_role, dtype=np.int32)
    slot_cat = np.full((R, S), -1, dtype=np.int32)
    slot_lab = np.full((R, S), -1, dtype=np.int32)
    slot_valid = np.zeros((R, S), dtype=bool)
    rv_id = np.full((R, n_mods, S), -1, dtype=np.int64)
    for role_index, slots in enumerate(slots_per_role):
        start = network.role_slices[role_index].start
        for s, (cat, lab) in enumerate(slots):
            slot_cat[role_index, s] = cat
            slot_lab[role_index, s] = lab
            slot_valid[role_index, s] = True
            # Network order within a role: slot-major, modifiee-minor.
            rv_id[role_index, :, s] = start + s * n_mods + np.arange(n_mods)

    coords = _coordinate_arrays(R, n_mods)

    return PELayout(
        n_words=n,
        n_roles=R,
        n_mods=n_mods,
        n_slots=S,
        n_pes=R * R * n_mods * n_mods,
        role_pos=role_pos,
        role_kind=role_kind,
        mod_value=mod_value,
        slot_cat=slot_cat,
        slot_lab=slot_lab,
        slot_valid=slot_valid,
        rv_id=rv_id,
        col_role=coords[0],
        col_mod_idx=coords[1],
        row_role=coords[2],
        row_mod_idx=coords[3],
        enabled=coords[4],
        fine_seg=coords[5],
        coarse_seg=coords[6],
    )


@lru_cache(maxsize=32)
def _coordinate_arrays(R: int, n_mods: int) -> tuple[np.ndarray, ...]:
    """The V = R^2 * n_mods^2 per-PE coordinate block, cached per (R, n_mods).

    These arrays are pure functions of the grid shape — every sentence of
    the same length under the same role count reuses them, which matters
    because V grows as q^2 n^4.  The cached arrays are shared between
    layouts, so they are frozen; kernels only ever read them.
    """
    V = R * R * n_mods * n_mods
    pe = np.arange(V, dtype=np.int64)
    row_mod_idx = pe % n_mods
    row_role = (pe // n_mods) % R
    col_mod_idx = (pe // (n_mods * R)) % n_mods
    col_role = pe // (n_mods * R * n_mods)

    enabled = row_role != col_role
    fine_seg = (col_role * n_mods + col_mod_idx) * R + row_role
    coarse_seg = col_role * n_mods + col_mod_idx

    arrays = (
        col_role.astype(np.int32),
        col_mod_idx.astype(np.int32),
        row_role.astype(np.int32),
        row_mod_idx.astype(np.int32),
        enabled,
        fine_seg,
        coarse_seg,
    )
    for array in arrays:
        array.setflags(write=False)
    return arrays
