"""The MasPar engine: PARSEC run end-to-end on the simulated MP-1.

The engine follows the paper's phase order under its six design
decisions (section 2.2.1): arc matrices first, then unary constraints,
then binary constraints each followed by one consistency-maintenance
step, then filtering — bounded on the parallel path if ``filter_limit``
is given (decision 5), to the fixpoint otherwise so results stay
bit-identical with the serial/vector engines.

Instrumentation: ``stats.simulated_seconds`` is the modelled MP-1
wall-clock (cycle count / 12.5 MHz, times the calibration factor of
:mod:`repro.parsec.timing`), ``stats.processors`` the virtual PE count
q^2 n^4, and ``stats.extra`` carries the raw cycle/op counts and the
virtualization factor.
"""

from __future__ import annotations

from repro.engines.base import EngineStats, ParserEngine, TraceHook
from repro.maspar.cost import DEFAULT_COST_MODEL, CostModel
from repro.maspar.machine import MP1
from repro.network.network import ConstraintNetwork
from repro.parsec import kernels
from repro.parsec.layout import build_layout
from repro.pipeline.compiled import CompiledGrammar, compile_grammar
from repro.propagation.filtering import filter_network


class MasParEngine(ParserEngine):
    """CDG parsing on the simulated MasPar MP-1 (the paper's PARSEC)."""

    name = "maspar"

    def __init__(self, cost: CostModel = DEFAULT_COST_MODEL, calibrate: bool = True):
        self.cost = cost
        self.calibrate = calibrate

    def run(
        self,
        network: ConstraintNetwork,
        *,
        compiled: CompiledGrammar | None = None,
        filter_limit: int | None = None,
        trace: TraceHook | None = None,
    ) -> EngineStats:
        compiled = compiled or compile_grammar(network.grammar)
        stats = EngineStats()
        layout = build_layout(network)
        machine = MP1(n_virtual=layout.n_pes, cost=self.cost)
        canbe = network.canbe_array
        state = kernels.initialize(machine, layout, network)

        def sync(event: str) -> None:
            if trace:
                kernels.read_back(layout, state, network)
                trace(event, network)

        cycles_before_constraints = machine.cycles

        for constraint in compiled.unary:
            killed = kernels.apply_unary(machine, layout, state, constraint, canbe)
            stats.unary_checks += layout.n_pes * layout.n_slots
            stats.role_values_killed += killed
            sync(f"unary:{constraint.name}")
        sync("unary-done")

        per_constraint_cycles = []
        for constraint in compiled.binary:
            start_cycles = machine.cycles
            zeroed = kernels.apply_binary(machine, layout, state, constraint, canbe)
            stats.pair_checks += layout.n_pes * layout.n_slots**2
            stats.matrix_entries_zeroed += zeroed
            sync(f"binary:{constraint.name}")

            killed = kernels.consistency_step(machine, layout, state)
            stats.role_values_killed += killed
            stats.consistency_passes += 1
            per_constraint_cycles.append(machine.cycles - start_cycles)
            sync(f"consistency:{constraint.name}")

        def counting_step(_net: ConstraintNetwork) -> int:
            killed = kernels.consistency_step(machine, layout, state)
            stats.role_values_killed += killed
            stats.consistency_passes += 1
            return killed

        # filter_network drives the PE-array steps; the network argument
        # is unused by the step closure.
        stats.filtering_iterations = filter_network(network, counting_step, limit=filter_limit)

        kernels.read_back(layout, state, network)
        if trace:
            trace("filtering-done", network)

        factor = 1.0
        if self.calibrate:
            from repro.parsec.timing import calibration_factor

            factor = calibration_factor(self.cost)
        stats.processors = layout.n_pes
        stats.parallel_steps = machine.ops.total()
        stats.simulated_seconds = machine.simulated_seconds * factor
        stats.extra.update(
            {
                "cycles": machine.cycles,
                "virtualization_factor": machine.vfactor,
                "virtualization_units": layout.virtualization_units,
                "ops": machine.ops,
                "n_slots": layout.n_slots,
                "calibration_factor": factor,
                "constraint_cycles": per_constraint_cycles,
                "setup_cycles": cycles_before_constraints,
                "bytes_per_pe": machine.allocated_bytes_per_pe,
            }
        )
        return stats
