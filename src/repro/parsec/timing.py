"""Timing model and calibration against the paper's reported numbers.

The paper reports, for its grammar on the real MP-1 (section 3):

* "less than 10 milliseconds to propagate a constraint in a network of
  one to seven words";
* "the total time for the MasPar to parse the example sentence is
  approximately 0.15 seconds", and "0.45 seconds" for a 10-word
  sentence "because of processor virtualization";
* growth as a discrete step function in ceil(q^2 n^4 / 16384).

The simulator's cost model fixes every *architectural* constant (clock,
ALU width, scan stages); what it cannot know is the effective MPL/ACU
software overhead of the 1992 toolchain.  That is absorbed into a single
multiplicative calibration factor, chosen so the simulated toy-grammar
parse of "The program runs" costs exactly 0.15 s.  Everything else —
the 3x step to 0.45 s at n = 10, the flat per-constraint time through
n = 7, the O(log n) scan growth — must then *emerge* from the model;
EXPERIMENTS.md records how well it does.
"""

from __future__ import annotations

import math
from functools import lru_cache

#: Paper-reported anchors (section 3).
PAPER_TOY_PARSE_SECONDS = 0.15
PAPER_TEN_WORD_PARSE_SECONDS = 0.45
PAPER_PER_CONSTRAINT_BOUND_SECONDS = 0.010
PAPER_SERIAL_PER_CONSTRAINT_SECONDS = 15.0
PAPER_SERIAL_SEVEN_WORD_SECONDS = 180.0
PHYSICAL_PES = 16384


def virtualization_units(n_words: int, q: int = 2) -> int:
    """The paper's ceil(q^2 n^4 / 16K) step function of sentence length."""
    return math.ceil(q * q * n_words**4 / PHYSICAL_PES)


def step_function_seconds(n_words: int, q: int = 2, base: float = PAPER_TOY_PARSE_SECONDS) -> float:
    """The paper's headline timing claim as a closed form.

    Parse time = (virtualization units) x (one-unit parse time).  With
    base = 0.15 s this reproduces both reported points: n=3 -> 0.15 s,
    n=10 -> 0.45 s.
    """
    return virtualization_units(n_words, q) * base


@lru_cache(maxsize=4)
def _raw_toy_cycles(cost_key: tuple) -> int:
    """Uncalibrated simulated cycles for the paper's example parse."""
    from repro.grammar.builtin import program_grammar
    from repro.maspar.cost import CostModel
    from repro.parsec.parser import MasParEngine

    cost = CostModel(*cost_key)
    engine = MasParEngine(cost=cost, calibrate=False)
    result = engine.parse(program_grammar(), "The program runs")
    return result.stats.extra["cycles"]


def calibration_factor(cost=None) -> float:
    """Multiplier mapping simulated cycles to 1992 wall-clock.

    Solves ``factor * simulated_toy_seconds == 0.15 s`` once per cost
    model and caches the answer.
    """
    from repro.maspar.cost import DEFAULT_COST_MODEL

    cost = cost or DEFAULT_COST_MODEL
    key = (
        cost.clock_hz,
        cost.n_physical,
        cost.pe_bits,
        cost.broadcast_cycles,
        cost.instruction_overhead,
        cost.scan_cycles_per_stage,
        cost.router_cycles,
    )
    raw_seconds = _raw_toy_cycles(key) / cost.clock_hz
    return PAPER_TOY_PARSE_SECONDS / raw_seconds
