"""Chomsky-normal-form conversion (START, TERM, BIN, DEL, UNIT).

CYK — sequential and cellular — requires CNF; Earley does not, which is
one of the cross-checks in the test suite: a grammar and its CNF must
accept exactly the same strings (modulo the empty string, which CYK
handles via the start-epsilon special case).
"""

from __future__ import annotations

import itertools

from repro.cfg.grammar import CFG, Production


def to_cnf(grammar: CFG) -> CFG:
    """Return an equivalent grammar in Chomsky normal form."""
    counter = itertools.count()

    def fresh(tag: str) -> str:
        return f"_{tag}{next(counter)}"

    start = grammar.start
    productions: list[tuple[str, tuple[str, ...]]] = [
        (p.lhs, p.rhs) for p in grammar.productions
    ]

    # START: a new start symbol never on any RHS.
    new_start = fresh("S")
    productions.insert(0, (new_start, (start,)))
    start = new_start

    # TERM: terminals only in unit productions.
    nonterminals = {lhs for lhs, _ in productions}
    term_map: dict[str, str] = {}
    rewritten: list[tuple[str, tuple[str, ...]]] = []
    for lhs, rhs in productions:
        if len(rhs) >= 2:
            new_rhs = []
            for symbol in rhs:
                if symbol not in nonterminals:
                    if symbol not in term_map:
                        term_map[symbol] = fresh("T")
                    new_rhs.append(term_map[symbol])
                else:
                    new_rhs.append(symbol)
            rewritten.append((lhs, tuple(new_rhs)))
        else:
            rewritten.append((lhs, rhs))
    for terminal, nt in term_map.items():
        rewritten.append((nt, (terminal,)))
    productions = rewritten

    # BIN: break long right-hand sides into binary chains.
    binned: list[tuple[str, tuple[str, ...]]] = []
    for lhs, rhs in productions:
        while len(rhs) > 2:
            helper = fresh("B")
            binned.append((lhs, (rhs[0], helper)))
            lhs, rhs = helper, rhs[1:]
        binned.append((lhs, rhs))
    productions = binned

    # DEL: remove epsilon productions (except from the start symbol).
    interim = CFG(start, productions)
    nullable = interim.nullable()
    deleted: set[tuple[str, tuple[str, ...]]] = set()
    for lhs, rhs in productions:
        # Every subset of nullable symbols may be omitted.
        options = [
            [symbol] if symbol not in nullable else [symbol, None] for symbol in rhs
        ]
        for choice in itertools.product(*options):
            new_rhs = tuple(symbol for symbol in choice if symbol is not None)
            if new_rhs or lhs == start:
                deleted.add((lhs, new_rhs))
    productions = [(lhs, rhs) for lhs, rhs in deleted if rhs or lhs == start]

    # UNIT: eliminate A -> B chains.
    nonterminals = {lhs for lhs, _ in productions}
    unit_pairs: set[tuple[str, str]] = {(nt, nt) for nt in nonterminals}
    changed = True
    while changed:
        changed = False
        for lhs, rhs in productions:
            if len(rhs) == 1 and rhs[0] in nonterminals:
                for a, b in list(unit_pairs):
                    if b == lhs and (a, rhs[0]) not in unit_pairs:
                        unit_pairs.add((a, rhs[0]))
                        changed = True
    final: set[tuple[str, tuple[str, ...]]] = set()
    for a, b in unit_pairs:
        for lhs, rhs in productions:
            if lhs != b:
                continue
            if len(rhs) == 1 and rhs[0] in nonterminals:
                continue  # unit productions are replaced by their closures
            if not rhs and a != start:
                continue
            final.add((a, rhs))

    result = CFG(start, sorted(final))
    assert result.is_cnf(), "CNF conversion produced a non-CNF grammar"
    return result
