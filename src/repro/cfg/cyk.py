"""Sequential CYK recognition — the Figure-8 "Sequential Machine" CFG row.

Classic O(|G| * n^3) bottom-up dynamic programming over a CNF grammar.
The chart is kept as boolean numpy matrices per nonterminal so the inner
split loop is a vectorized AND/any, but the asymptotics (and the counted
``split_operations``) are the textbook ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GrammarError
from repro.cfg.grammar import CFG


@dataclass
class CYKResult:
    accepted: bool
    chart_sets: list[list[frozenset[str]]]  # chart_sets[i][j]: span i..j (incl.)
    split_operations: int  # counted (length, split, rule) combination steps


def cyk_parse(grammar: CFG, words: list[str] | tuple[str, ...]) -> CYKResult:
    """Recognize *words* with CYK.

    Raises:
        GrammarError: if *grammar* is not in CNF.
    """
    if not grammar.is_cnf():
        raise GrammarError("CYK requires a CNF grammar; call to_cnf() first")
    n = len(words)
    if n == 0:
        accepted = any(
            p.lhs == grammar.start and not p.rhs for p in grammar.productions
        )
        return CYKResult(accepted, [], 0)

    nts = sorted(grammar.nonterminals)
    nt_index = {nt: i for i, nt in enumerate(nts)}
    unary = [(p.lhs, p.rhs[0]) for p in grammar.productions if len(p.rhs) == 1]
    binary = [
        (nt_index[p.lhs], nt_index[p.rhs[0]], nt_index[p.rhs[1]])
        for p in grammar.productions
        if len(p.rhs) == 2
    ]

    # chart[a, i, j] = nonterminal a derives words[i..j] inclusive.
    chart = np.zeros((len(nts), n, n), dtype=bool)
    for i, word in enumerate(words):
        for lhs, terminal in unary:
            if terminal == word:
                chart[nt_index[lhs], i, i] = True

    operations = 0
    for length in range(2, n + 1):
        for i in range(0, n - length + 1):
            j = i + length - 1
            for lhs, left, right in binary:
                # All split points k in one vector operation.
                lefts = chart[left, i, i : j]  # spans (i, k)
                rights = chart[right, i + 1 : j + 1, j]  # spans (k+1, j)
                operations += length - 1
                if (lefts & rights).any():
                    chart[lhs, i, j] = True

    chart_sets = [
        [
            frozenset(nts[a] for a in range(len(nts)) if chart[a, i, j])
            for j in range(n)
        ]
        for i in range(n)
    ]
    accepted = bool(chart[nt_index[grammar.start], 0, n - 1])
    return CYKResult(accepted, chart_sets, operations)


def cyk_accepts(grammar: CFG, words) -> bool:
    return cyk_parse(grammar, list(words)).accepted
