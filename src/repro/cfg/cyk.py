"""CYK recognition on the packed kernel core — the Figure-8 CFG row.

Classic O(|G| * n^3) bottom-up dynamic programming over a CNF grammar,
recast so its span-combination step is a Boolean matrix product from
:mod:`repro.kernels.bmm` — the Valiant/Lee form, and the same kernels
the CDG side's consistency sweep runs on.

Representation: for each nonterminal *b* a packed *fence matrix*
``F[b]`` over fence positions ``0..n`` (one bitset row per start
fence, bits indexing end fences): bit *j* of row *i* means *b* derives
``words[i:j]``.  A binary rule ``A -> B C`` then fills spans via
``bmm(F[B], F[C])``: bit *j* of row *i* of the product is "some split
*k* has B deriving ``words[i:k]`` and C deriving ``words[k:j]``".  Per
span length only the product bits at distance ``length`` are read;
since both children of a length-``l`` span are strictly shorter, the
result is bit-identical to the length-by-length set-based chart
(:func:`cyk_parse_sets`, kept as the oracle).  Alongside the fence
matrices the packed chart keeps one bitset row per (start, end) span
with nonterminals as bit positions — the ``BitLayout``-style row the
rendered ``chart_sets`` are unpacked from.

``split_operations`` counts the same (length, split, rule) combination
steps the textbook loop performs — the count is input-shape arithmetic,
independent of chart content, so both implementations report identical
values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cfg.grammar import CFG
from repro.errors import GrammarError
from repro.kernels import bitops
from repro.kernels.backend import KernelBackend, create_backend


@dataclass
class CYKResult:
    accepted: bool
    chart_sets: list[list[frozenset[str]]]  # chart_sets[i][j]: span i..j (incl.)
    split_operations: int  # counted (length, split, rule) combination steps
    kernel_backend: str | None = None  # None on the set-based oracle path


def _cnf_tables(grammar: CFG):
    """Shared precomputation: sorted nonterminals, unary and binary rules."""
    if not grammar.is_cnf():
        raise GrammarError("CYK requires a CNF grammar; call to_cnf() first")
    nts = sorted(grammar.nonterminals)
    nt_index = {nt: i for i, nt in enumerate(nts)}
    unary = [(p.lhs, p.rhs[0]) for p in grammar.productions if len(p.rhs) == 1]
    binary = [
        (nt_index[p.lhs], nt_index[p.rhs[0]], nt_index[p.rhs[1]])
        for p in grammar.productions
        if len(p.rhs) == 2
    ]
    return nts, nt_index, unary, binary


def _accepts_empty(grammar: CFG) -> bool:
    return any(p.lhs == grammar.start and not p.rhs for p in grammar.productions)


def cyk_parse(
    grammar: CFG,
    words: list[str] | tuple[str, ...],
    *,
    backend: "str | KernelBackend | None" = None,
) -> CYKResult:
    """Recognize *words* with CYK on the packed kernel core.

    Args:
        grammar: a CNF grammar.
        backend: kernel backend for the span-combination products (see
            :mod:`repro.kernels.backend`); None resolves the default.

    Raises:
        GrammarError: if *grammar* is not in CNF.
    """
    kernels = create_backend(backend)
    if not grammar.is_cnf():
        raise GrammarError("CYK requires a CNF grammar; call to_cnf() first")
    n = len(words)
    if n == 0:
        return CYKResult(_accepts_empty(grammar), [], 0, kernels.name)
    nts, nt_index, unary, binary = _cnf_tables(grammar)

    fence_words = -(-(n + 1) // bitops.WORD_BITS)
    nt_words = -(-len(nts) // bitops.WORD_BITS)
    # fence[b, i]: packed end-fence row of nonterminal b at start fence i.
    fence = np.zeros((len(nts), n + 1, fence_words), dtype=bitops.WORD_DTYPE)
    # span_bits[i, j]: packed nonterminal memberships of span i..j (incl.).
    span_bits = np.zeros((n, n, nt_words), dtype=bitops.WORD_DTYPE)

    for i, word in enumerate(words):
        for lhs, terminal in unary:
            if terminal == word:
                b = nt_index[lhs]
                bitops.set_bit(fence[b, i], i + 1)
                bitops.set_bit(span_bits[i, i], b)

    # Group binary rules by child pair: one product per (B, C) feeds
    # every A -> B C.  split_operations stays counted per *rule*.
    by_pair: dict[tuple[int, int], list[int]] = {}
    for lhs, left, right in binary:
        by_pair.setdefault((left, right), []).append(lhs)

    operations = 0
    for length in range(2, n + 1):
        starts = np.arange(0, n - length + 1)
        ends = starts + length
        operations += len(binary) * len(starts) * (length - 1)
        end_word = ends >> 6
        end_shift = (ends & 63).astype(np.uint64)
        for (left, right), lhs_list in by_pair.items():
            product = kernels.bmm(fence[left], fence[right])
            # Read only the bits at distance `length`: both children of
            # such a span are strictly shorter, so every contributing
            # split was already settled in earlier iterations.
            hits = (product[starts, end_word] >> end_shift) & np.uint64(1)
            for i in starts[hits != 0]:
                for a in lhs_list:
                    bitops.set_bit(fence[a, i], i + length)
                    bitops.set_bit(span_bits[i, i + length - 1], a)

    membership = bitops.unpack_bits(span_bits, len(nts))
    chart_sets = [
        [
            frozenset(nts[a] for a in np.nonzero(membership[i, j])[0])
            for j in range(n)
        ]
        for i in range(n)
    ]
    accepted = bitops.test_bit(fence[nt_index[grammar.start], 0], n)
    return CYKResult(accepted, chart_sets, operations, kernels.name)


def cyk_parse_sets(grammar: CFG, words: list[str] | tuple[str, ...]) -> CYKResult:
    """The pre-kernel set-based CYK, kept verbatim as the oracle.

    The chart is boolean numpy matrices per nonterminal and the inner
    split loop a vectorized AND/any; :func:`cyk_parse` must agree with
    this bit for bit (accepted flag, every chart cell, the operation
    count) — asserted by the test suite and by the benchmark harness
    before any timing.
    """
    n = len(words)
    if n == 0:
        if not grammar.is_cnf():
            raise GrammarError("CYK requires a CNF grammar; call to_cnf() first")
        return CYKResult(_accepts_empty(grammar), [], 0)
    nts, nt_index, unary, binary = _cnf_tables(grammar)

    # chart[a, i, j] = nonterminal a derives words[i..j] inclusive.
    chart = np.zeros((len(nts), n, n), dtype=bool)
    for i, word in enumerate(words):
        for lhs, terminal in unary:
            if terminal == word:
                chart[nt_index[lhs], i, i] = True

    operations = 0
    for length in range(2, n + 1):
        for i in range(0, n - length + 1):
            j = i + length - 1
            for lhs, left, right in binary:
                # All split points k in one vector operation.
                lefts = chart[left, i, i : j]  # spans (i, k)
                rights = chart[right, i + 1 : j + 1, j]  # spans (k+1, j)
                operations += length - 1
                if (lefts & rights).any():
                    chart[lhs, i, j] = True

    chart_sets = [
        [
            frozenset(nts[a] for a in range(len(nts)) if chart[a, i, j])
            for j in range(n)
        ]
        for i in range(n)
    ]
    accepted = bool(chart[nt_index[grammar.start], 0, n - 1])
    return CYKResult(accepted, chart_sets, operations)


def cyk_accepts(grammar: CFG, words) -> bool:
    return cyk_parse(grammar, list(words)).accepted
