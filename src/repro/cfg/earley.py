"""Earley recognition — the general-CFG sequential baseline.

Standard Earley with predictor/scanner/completer and the usual fix for
nullable nonterminals (the completer re-runs items already in the set;
prediction of a nullable nonterminal immediately advances the dot).
Works on any CFG, CNF or not, which makes it the oracle the CNF
conversion and CYK are property-tested against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfg.grammar import CFG, Production


@dataclass(frozen=True)
class Item:
    production: Production
    dot: int
    origin: int

    @property
    def complete(self) -> bool:
        return self.dot >= len(self.production.rhs)

    @property
    def next_symbol(self) -> str | None:
        if self.complete:
            return None
        return self.production.rhs[self.dot]

    def advanced(self) -> "Item":
        return Item(self.production, self.dot + 1, self.origin)


def earley_accepts(grammar: CFG, words: list[str] | tuple[str, ...]) -> bool:
    """True iff *grammar* derives *words*."""
    words = list(words)
    n = len(words)
    by_lhs = grammar.by_lhs()
    nullable = grammar.nullable()

    chart: list[list[Item]] = [[] for _ in range(n + 1)]
    chart_sets: list[set[Item]] = [set() for _ in range(n + 1)]

    def add(position: int, item: Item) -> None:
        if item not in chart_sets[position]:
            chart_sets[position].add(item)
            chart[position].append(item)

    for production in by_lhs.get(grammar.start, []):
        add(0, Item(production, 0, 0))

    for position in range(n + 1):
        index = 0
        while index < len(chart[position]):
            item = chart[position][index]
            index += 1
            symbol = item.next_symbol
            if symbol is None:
                # Completer.
                for waiting in list(chart[item.origin]):
                    if waiting.next_symbol == item.production.lhs:
                        add(position, waiting.advanced())
            elif symbol in grammar.nonterminals:
                # Predictor (+ Aycock-Horspool nullable shortcut).
                for production in by_lhs.get(symbol, []):
                    add(position, Item(production, 0, position))
                if symbol in nullable:
                    add(position, item.advanced())
            else:
                # Scanner.
                if position < n and words[position] == symbol:
                    add(position + 1, item.advanced())

    return any(
        item.complete and item.production.lhs == grammar.start and item.origin == 0
        for item in chart[n]
    )
