"""Random derivation sampling from a CFG (workload generation)."""

from __future__ import annotations

import random

from repro.errors import GrammarError
from repro.cfg.grammar import CFG


def random_derivation(
    grammar: CFG, rng: random.Random, max_symbols: int = 40, max_attempts: int = 200
) -> list[str]:
    """Sample one terminal string by expanding the leftmost nonterminal.

    Expansion prefers shorter productions once the sentential form grows
    past *max_symbols*, which bounds the expected derivation size for
    recursive grammars.

    Raises:
        GrammarError: if no derivation fits within the budget after
            *max_attempts* restarts.
    """
    by_lhs = grammar.by_lhs()
    for _ in range(max_attempts):
        form: list[str] = [grammar.start]
        budget = max_symbols * 8
        while budget > 0:
            budget -= 1
            index = next(
                (i for i, s in enumerate(form) if s in grammar.nonterminals), None
            )
            if index is None:
                return form
            options = by_lhs[form[index]]
            if len(form) > max_symbols:
                shortest = min(len(p.rhs) for p in options)
                options = [p for p in options if len(p.rhs) == shortest]
            production = rng.choice(options)
            form[index : index + 1] = list(production.rhs)
        # Budget exhausted: restart.
    raise GrammarError(
        f"could not sample a derivation within {max_symbols} symbols "
        f"after {max_attempts} attempts"
    )


def random_corpus(grammar: CFG, seed: int = 0, size: int = 20, **kwargs) -> list[list[str]]:
    rng = random.Random(seed)
    return [random_derivation(grammar, rng, **kwargs) for _ in range(size)]
