"""CYK on a 2-D processor mesh — Figure 8's "2D Cellular Automata" CFG row.

Kosaraju [SIAM J. Comput. 1975] showed context-free recognition in O(n)
time on an n x n array automaton.  This module implements the wavefront
form of that computation: a triangular mesh of n(n+1)/2 cells, one per
span (i, j), where *global step* d (d = 1..n-1) lets every cell on
diagonal d combine the pairs of shorter spans along its row and column.
All cells execute the same rule in lock step; the recorded
``wavefront_steps`` is exactly n - 1, linear in n — the property the
Figure-8 row claims (per step each cell does O(k * d) rule work, which
the strict neighbour-only Kosaraju construction pipelines away; we count
it separately as ``cell_operations`` and report both).

The result is cross-checked against sequential CYK by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GrammarError
from repro.cfg.grammar import CFG


@dataclass
class MeshResult:
    accepted: bool
    cells: int  # processors used: n (n + 1) / 2
    wavefront_steps: int  # parallel steps: n - 1
    cell_operations: int  # total rule applications, all cells


def mesh_cyk(grammar: CFG, words: list[str] | tuple[str, ...]) -> MeshResult:
    """Recognize *words* on the simulated mesh."""
    if not grammar.is_cnf():
        raise GrammarError("the mesh recognizer requires a CNF grammar")
    words = list(words)
    n = len(words)
    if n == 0:
        accepted = any(p.lhs == grammar.start and not p.rhs for p in grammar.productions)
        return MeshResult(accepted, 0, 0, 0)

    nts = sorted(grammar.nonterminals)
    nt_index = {nt: i for i, nt in enumerate(nts)}
    unary = [(nt_index[p.lhs], p.rhs[0]) for p in grammar.productions if len(p.rhs) == 1]
    binary = [
        (nt_index[p.lhs], nt_index[p.rhs[0]], nt_index[p.rhs[1]])
        for p in grammar.productions
        if len(p.rhs) == 2
    ]

    # Cell state: chart[a, i, j] for span (i, j); diagonal 0 loads the input.
    chart = np.zeros((len(nts), n, n), dtype=bool)
    for i, word in enumerate(words):
        for lhs, terminal in unary:
            if terminal == word:
                chart[lhs, i, i] = True

    operations = 0
    steps = 0
    for d in range(1, n):  # one wavefront per diagonal
        steps += 1
        new_bits = []
        for i in range(0, n - d):  # every cell of the diagonal, in lock step
            j = i + d
            for lhs, left, right in binary:
                operations += d
                if (chart[left, i, i:j] & chart[right, i + 1 : j + 1, j]).any():
                    new_bits.append((lhs, i, j))
        # Lock-step commit: all cells update simultaneously.
        for lhs, i, j in new_bits:
            chart[lhs, i, j] = True

    accepted = bool(chart[nt_index[grammar.start], 0, n - 1])
    return MeshResult(
        accepted=accepted,
        cells=n * (n + 1) // 2,
        wavefront_steps=steps,
        cell_operations=operations,
    )
