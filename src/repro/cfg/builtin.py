"""Built-in CFGs: the English baseline and classic formal languages.

``english_cfg`` covers the same fragment as the CDG English grammar
(:mod:`repro.grammar.builtin.english`), so the Figure-8 benchmarks
compare the two formalisms on the same sentences; the test suite
cross-checks that the two grammars agree on the workload corpus.
"""

from __future__ import annotations

from functools import lru_cache

from repro.cfg.grammar import CFG
from repro.grammar.builtin.english import LEXICON


@lru_cache(maxsize=1)
def english_cfg() -> CFG:
    """A CFG for the English fragment of the CDG grammar.

    S -> NP VP; NP -> (Det) Adj* N (PP*); VP -> V (NP) PP* (Adv);
    PP -> P NP.  Lexical rules come from the shared LEXICON.
    """
    productions: list[tuple[str, tuple[str, ...]]] = [
        ("S", ("NP", "VP")),
        ("NP", ("CORE",)),
        ("NP", ("CORE", "PPS")),
        ("CORE", ("N",)),
        ("CORE", ("Det", "NBAR")),
        ("CORE", ("NBAR",)),
        ("NBAR", ("N",)),
        ("NBAR", ("Adj", "NBAR")),
        ("VP", ("V",)),
        ("VP", ("V", "NP")),
        ("VP", ("VP", "PP")),
        ("VP", ("VP", "Adv")),
        ("PPS", ("PP",)),
        ("PPS", ("PPS", "PP")),
        ("PP", ("P", "NP")),
    ]
    pos_to_nt = {
        "det": "Det",
        "adj": "Adj",
        "noun": "N",
        "verb": "V",
        "prep": "P",
        "adv": "Adv",
    }
    for word, cats in LEXICON.items():
        for cat in cats:
            productions.append((pos_to_nt[cat], (word,)))
    return CFG("S", productions)


@lru_cache(maxsize=1)
def anbn_cfg() -> CFG:
    """The canonical context-free language a^n b^n (n >= 1)."""
    return CFG("S", [("S", ("a", "b")), ("S", ("a", "S", "b"))])


@lru_cache(maxsize=1)
def balanced_brackets_cfg() -> CFG:
    """Balanced bracket strings (Dyck language, possibly empty)."""
    return CFG(
        "S",
        [
            ("S", ()),
            ("S", ("S", "S")),
            ("S", ("(", "S", ")")),
        ],
    )


@lru_cache(maxsize=1)
def typed_brackets_cfg() -> CFG:
    """Two-flavour balanced brackets D2, non-empty (matches the CDG
    :func:`repro.grammar.builtin.dyck.dyck_grammar`)."""
    return CFG(
        "S",
        [
            ("S", ("U",)),
            ("S", ("S", "U")),
            ("U", ("(", ")")),
            ("U", ("[", "]")),
            ("U", ("(", "S", ")")),
            ("U", ("[", "S", "]")),
        ],
    )


@lru_cache(maxsize=1)
def palindrome_cfg() -> CFG:
    """Even-length palindromes over {a, b} — CFL that ww is often confused
    with (w w^R is context-free; w w is not)."""
    return CFG(
        "S",
        [
            ("S", ()),
            ("S", ("a", "S", "a")),
            ("S", ("b", "S", "b")),
        ],
    )
