"""CFG substrate: the baseline formalism compared against in Figure 8."""

from repro.cfg.builtin import (
    anbn_cfg,
    balanced_brackets_cfg,
    english_cfg,
    palindrome_cfg,
    typed_brackets_cfg,
)
from repro.cfg.cellular import MeshResult, mesh_cyk
from repro.cfg.cnf import to_cnf
from repro.cfg.cyk import CYKResult, cyk_accepts, cyk_parse, cyk_parse_sets
from repro.cfg.earley import earley_accepts
from repro.cfg.generator import random_corpus, random_derivation
from repro.cfg.grammar import CFG, Production

__all__ = [
    "CFG",
    "Production",
    "to_cnf",
    "cyk_parse",
    "cyk_parse_sets",
    "cyk_accepts",
    "CYKResult",
    "earley_accepts",
    "mesh_cyk",
    "MeshResult",
    "english_cfg",
    "anbn_cfg",
    "balanced_brackets_cfg",
    "typed_brackets_cfg",
    "palindrome_cfg",
    "random_derivation",
    "random_corpus",
]
