"""Context-free grammars — the baseline formalism of paper Figure 8.

A small but complete CFG toolkit: grammar construction/validation,
nullable computation, and the derived properties the parsers need.
Symbols are plain strings; by convention terminals are the strings that
never appear on a left-hand side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import GrammarError


@dataclass(frozen=True)
class Production:
    """One rule ``lhs -> rhs`` (rhs may be empty = epsilon)."""

    lhs: str
    rhs: tuple[str, ...]

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.lhs} -> {' '.join(self.rhs) or 'ε'}"


class CFG:
    """An immutable context-free grammar.

    Args:
        start: the start symbol.
        productions: iterable of (lhs, rhs-sequence) pairs.
    """

    def __init__(self, start: str, productions: Iterable[tuple[str, Sequence[str]]]):
        self.start = start
        self.productions: tuple[Production, ...] = tuple(
            Production(lhs, tuple(rhs)) for lhs, rhs in productions
        )
        if not self.productions:
            raise GrammarError("a CFG needs at least one production")
        self.nonterminals: frozenset[str] = frozenset(p.lhs for p in self.productions)
        if start not in self.nonterminals:
            raise GrammarError(f"start symbol {start!r} has no productions")
        symbols = {s for p in self.productions for s in p.rhs}
        self.terminals: frozenset[str] = frozenset(symbols - self.nonterminals)

    @property
    def size(self) -> int:
        """|G| = total length of all right-hand sides (the k of Figure 8)."""
        return sum(max(1, len(p.rhs)) for p in self.productions)

    def by_lhs(self) -> dict[str, list[Production]]:
        table: dict[str, list[Production]] = {}
        for p in self.productions:
            table.setdefault(p.lhs, []).append(p)
        return table

    def nullable(self) -> frozenset[str]:
        """Nonterminals that derive the empty string."""
        nullable: set[str] = set()
        changed = True
        while changed:
            changed = False
            for p in self.productions:
                if p.lhs not in nullable and all(s in nullable for s in p.rhs):
                    nullable.add(p.lhs)
                    changed = True
        return frozenset(nullable)

    def is_cnf(self) -> bool:
        """Chomsky normal form: A -> B C or A -> a (start may derive ε)."""
        for p in self.productions:
            if len(p.rhs) == 1 and p.rhs[0] in self.terminals:
                continue
            if (
                len(p.rhs) == 2
                and all(s in self.nonterminals for s in p.rhs)
            ):
                continue
            if len(p.rhs) == 0 and p.lhs == self.start:
                continue
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CFG(start={self.start!r}, |N|={len(self.nonterminals)}, "
            f"|Σ|={len(self.terminals)}, |P|={len(self.productions)}, size={self.size})"
        )
