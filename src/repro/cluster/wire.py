"""The cluster wire protocol: framing, a small binary codec, packed stats.

Frames are length-prefixed: a 4-byte big-endian payload length followed
by the payload.  :func:`read_frame` tolerates the failure modes a real
socket has — partial reads (``readexactly`` semantics), EOF mid-frame
(:class:`~repro.cluster.errors.ConnectionClosed`), and oversized
declarations, which are *drained* off the stream when boundedly sized so
one bad frame never poisons the connection
(:class:`~repro.cluster.errors.FrameTooLarge` with ``recoverable=True``).

Payloads use a deliberately tiny self-describing binary codec instead of
pickle: pickle over a socket executes the peer's bytes, while this codec
can only produce ``None`` / bools / 64-bit ints / floats / strings /
bytes / lists / string-keyed dicts / whitelisted numpy arrays, and every
malformed input raises :class:`~repro.cluster.errors.WireError` instead
of running code.  Numpy arrays travel as dtype + shape + raw
little-endian bytes, which is exactly what the packed execution core
needs: a settled network is two small ``uint64`` arrays
(``alive_bits`` / ``matrix_bits``), so results cross the wire in
kilobytes while the megabyte template artifacts never leave the shard.

Messages are plain dicts with a ``"type"`` key; :func:`pack_stats` /
:func:`unpack_stats` flatten :class:`~repro.engines.base.EngineStats`
into codec-safe scalars (non-scalar ``extra`` entries are dropped).
"""

from __future__ import annotations

import asyncio
import struct

import numpy as np

from repro.cluster.errors import ConnectionClosed, FrameTooLarge, WireError
from repro.engines.base import EngineStats

#: Default bound on one frame's payload.  Results are packed-bit
#: kilobytes; 8 MiB leaves room for large batches without letting a
#: corrupt length prefix allocate unbounded memory.
DEFAULT_MAX_FRAME = 8 * 1024 * 1024

#: Oversized frames up to this multiple of ``max_frame`` are drained
#: (read and discarded) so the stream stays framed; beyond it the
#: declared length is treated as corruption and the connection drops.
_DRAIN_FACTOR = 4

_HEADER = struct.Struct("!I")
_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")
_U32 = struct.Struct("!I")

_I64_MIN, _I64_MAX = -(2**63), 2**63 - 1

#: Wire dtype codes — the only array dtypes allowed across the wire.
_DTYPES = {b"U": np.uint64, b"B": np.bool_, b"q": np.int64, b"d": np.float64}
_DTYPE_CODES = {np.dtype(dtype): code for code, dtype in _DTYPES.items()}


# -- the codec ---------------------------------------------------------------


def encode(obj) -> bytes:
    """Encode *obj* (None/bool/int/float/str/bytes/list/tuple/dict/ndarray)."""
    out = bytearray()
    _enc(obj, out)
    return bytes(out)


def _enc(obj, out: bytearray) -> None:
    if obj is None:
        out += b"N"
    elif obj is True:
        out += b"T"
    elif obj is False:
        out += b"F"
    elif isinstance(obj, int):
        if not _I64_MIN <= obj <= _I64_MAX:
            raise WireError(f"integer {obj} does not fit the wire's 64 bits")
        out += b"i"
        out += _I64.pack(obj)
    elif isinstance(obj, float):
        out += b"f"
        out += _F64.pack(obj)
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        out += b"s"
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(obj, (bytes, bytearray)):
        out += b"b"
        out += _U32.pack(len(obj))
        out += bytes(obj)
    elif isinstance(obj, (list, tuple)):
        out += b"l"
        out += _U32.pack(len(obj))
        for item in obj:
            _enc(item, out)
    elif isinstance(obj, dict):
        out += b"d"
        out += _U32.pack(len(obj))
        for key, value in obj.items():
            if not isinstance(key, str):
                raise WireError(f"dict keys must be str on the wire, got {type(key).__name__}")
            raw = key.encode("utf-8")
            out += _U32.pack(len(raw))
            out += raw
            _enc(value, out)
    elif isinstance(obj, np.ndarray):
        code = _DTYPE_CODES.get(obj.dtype)
        if code is None:
            raise WireError(f"array dtype {obj.dtype} is not wire-encodable")
        if obj.ndim > 255:
            raise WireError(f"array rank {obj.ndim} exceeds the wire limit")
        out += b"a"
        out += code
        out += bytes([obj.ndim])
        for dim in obj.shape:
            out += _U32.pack(dim)
        out += np.ascontiguousarray(obj).tobytes()
    elif isinstance(obj, (np.integer,)):
        _enc(int(obj), out)
    elif isinstance(obj, (np.floating,)):
        _enc(float(obj), out)
    elif isinstance(obj, (np.bool_,)):
        _enc(bool(obj), out)
    else:
        raise WireError(f"{type(obj).__name__} is not wire-encodable")


def decode(data: bytes):
    """Decode one codec payload; raises :class:`WireError` on any malformation."""
    value, offset = _dec(data, 0)
    if offset != len(data):
        raise WireError(f"{len(data) - offset} trailing bytes after payload")
    return value


def _take(data: bytes, offset: int, n: int) -> tuple[bytes, int]:
    end = offset + n
    if end > len(data):
        raise WireError("payload truncated")
    return data[offset:end], end


def _dec(data: bytes, offset: int):
    tag, offset = _take(data, offset, 1)
    if tag == b"N":
        return None, offset
    if tag == b"T":
        return True, offset
    if tag == b"F":
        return False, offset
    if tag == b"i":
        raw, offset = _take(data, offset, 8)
        return _I64.unpack(raw)[0], offset
    if tag == b"f":
        raw, offset = _take(data, offset, 8)
        return _F64.unpack(raw)[0], offset
    if tag in (b"s", b"b"):
        raw, offset = _take(data, offset, 4)
        raw, offset = _take(data, offset, _U32.unpack(raw)[0])
        if tag == b"b":
            return raw, offset
        try:
            return raw.decode("utf-8"), offset
        except UnicodeDecodeError as error:
            raise WireError(f"invalid utf-8 string payload: {error}") from None
    if tag == b"l":
        raw, offset = _take(data, offset, 4)
        count = _U32.unpack(raw)[0]
        items = []
        for _ in range(count):
            item, offset = _dec(data, offset)
            items.append(item)
        return items, offset
    if tag == b"d":
        raw, offset = _take(data, offset, 4)
        count = _U32.unpack(raw)[0]
        table = {}
        for _ in range(count):
            raw, offset = _take(data, offset, 4)
            raw, offset = _take(data, offset, _U32.unpack(raw)[0])
            try:
                key = raw.decode("utf-8")
            except UnicodeDecodeError as error:
                raise WireError(f"invalid utf-8 dict key: {error}") from None
            table[key], offset = _dec(data, offset)
        return table, offset
    if tag == b"a":
        code, offset = _take(data, offset, 1)
        dtype = _DTYPES.get(code)
        if dtype is None:
            raise WireError(f"unknown wire dtype code {code!r}")
        raw, offset = _take(data, offset, 1)
        shape = []
        for _ in range(raw[0]):
            raw_dim, offset = _take(data, offset, 4)
            shape.append(_U32.unpack(raw_dim)[0])
        count = 1
        for dim in shape:
            count *= dim
        nbytes = count * np.dtype(dtype).itemsize
        raw, offset = _take(data, offset, nbytes)
        # Copy: frombuffer views are read-only and the decoded arrays
        # become live network state the caller may mutate.
        array = np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
        return array, offset
    raise WireError(f"unknown wire tag {tag!r}")


# -- framing -----------------------------------------------------------------


async def read_frame(
    reader: asyncio.StreamReader, *, max_frame: int = DEFAULT_MAX_FRAME
) -> bytes:
    """Read one length-prefixed frame; survives what sockets do.

    Raises:
        ConnectionClosed: EOF before or inside a frame (partial reads
            of an honest peer are absorbed by ``readexactly``; a short
            read at EOF is a closed connection, not garbage data).
        WireError: zero-length frame (nothing to drain; recoverable).
        FrameTooLarge: declared length above *max_frame*.  When the
            length is boundedly oversized the payload is drained first,
            so the caller can answer with an error frame and keep the
            connection; an absurd length is unrecoverable.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except (asyncio.IncompleteReadError, ConnectionResetError) as error:
        raise ConnectionClosed("peer closed the connection") from error
    (length,) = _HEADER.unpack(header)
    if length == 0:
        raise WireError("zero-length frame")
    if length > max_frame:
        if length <= _DRAIN_FACTOR * max_frame:
            remaining = length
            while remaining:
                chunk = await reader.read(min(65536, remaining))
                if not chunk:
                    raise ConnectionClosed("peer closed while draining an oversized frame")
                remaining -= len(chunk)
            raise FrameTooLarge(length, max_frame, recoverable=True)
        raise FrameTooLarge(length, max_frame, recoverable=False)
    try:
        return await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionResetError) as error:
        raise ConnectionClosed("peer closed mid-frame") from error


def write_frame(writer: asyncio.StreamWriter, payload: bytes) -> None:
    """Queue one frame on *writer* (callers ``await writer.drain()``)."""
    writer.write(_HEADER.pack(len(payload)) + payload)


def frame_bytes(message) -> bytes:
    """Encode *message* and prepend the length header (for raw sockets)."""
    payload = encode(message)
    return _HEADER.pack(len(payload)) + payload


# -- packed stats ------------------------------------------------------------

_STAT_FIELDS = (
    "engine",
    "unary_checks",
    "pair_checks",
    "role_values_killed",
    "matrix_entries_zeroed",
    "consistency_passes",
    "filtering_iterations",
    "parallel_steps",
    "processors",
    "wall_seconds",
    "simulated_seconds",
)

_SCALARS = (bool, int, float, str, type(None))


def pack_stats(stats: EngineStats) -> dict:
    """Flatten *stats* into codec-safe scalars (non-scalar extras drop)."""
    packed = {field: getattr(stats, field) for field in _STAT_FIELDS}
    packed["extra"] = {
        key: value
        for key, value in stats.extra.items()
        if isinstance(value, _SCALARS)
    }
    return packed


def unpack_stats(payload: dict) -> EngineStats:
    """Rebuild an :class:`EngineStats` from a :func:`pack_stats` payload."""
    if not isinstance(payload, dict):
        raise WireError(f"packed stats must be a dict, got {type(payload).__name__}")
    fields = {field: payload.get(field) for field in _STAT_FIELDS if field in payload}
    extra = payload.get("extra")
    stats = EngineStats(**fields)
    if isinstance(extra, dict):
        stats.extra.update(extra)
    return stats
