"""The shard server: a :class:`ParseService` behind a TCP wire.

One :class:`ParseServer` owns one :class:`~repro.serve.ParseService`
(thread or process workers — the whole PR-5 data plane rides along
unchanged) and fronts it on a localhost socket speaking the
length-prefixed frame protocol of :mod:`repro.cluster.wire`.  The
asyncio side stays thin: frames are decoded, validated, and turned into
``service.submit`` / ``ServiceStream.feed`` calls whose futures are
awaited as tasks, so the event loop never blocks on a parse and replies
go out in *completion* order (request ids, not arrival order, pair
replies to requests — the router reassembles).

Deadline propagation: a request frame carries its remaining budget in
seconds, measured by the router at *send* time.  The shard converts the
budget to its own monotonic deadline on receipt, so queue linger counts
against the request exactly once, on the machine whose queue it is; a
frame whose budget is already spent is rejected with a typed error and
the connection stays healthy (the satellite contract: bad frames never
poison the wire).

Every shard writes timestamped structured logs (``event=recv`` /
``event=done`` / ``event=reject`` lines keyed by connection and request
id) that :mod:`repro.cluster.logs` parses into merged throughput and
latency numbers — the BFT-MVBA ``LogParser`` pattern, where the bench
record is derived from what the nodes actually logged rather than what
the load generator hoped.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import threading
from datetime import datetime, timezone
from pathlib import Path

from repro.cluster.errors import ClusterError, ConnectionClosed, FrameTooLarge, WireError
from repro.cluster.wire import (
    DEFAULT_MAX_FRAME,
    decode,
    encode,
    pack_stats,
    read_frame,
    write_frame,
)
from repro.errors import LexiconError, ReproError, StreamError
from repro.grammar.grammar import CDGGrammar
from repro.serve import (
    DeadlineExceeded,
    ParseService,
    ServiceOverloaded,
    ServiceUnavailable,
)

#: Wire error kinds, mapped back to local exception types by the router.
KIND_DEADLINE = "deadline"
KIND_OVERLOADED = "overloaded"
KIND_UNAVAILABLE = "unavailable"
KIND_LEXICON = "lexicon"
KIND_STREAM = "stream"
KIND_WIRE = "wire"
KIND_INTERNAL = "internal"


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat()


class ShardLog:
    """Timestamped structured shard log: one line per event.

    Format (space-separated ``key=value`` pairs after a fixed prefix)::

        2026-08-08T12:00:00.000001+00:00 shard=1 event=recv conn=2 id=7 kind=parse n=5

    Values never contain spaces (counts, flags, short kind names), so
    the harness parses lines with anchored regexes.  Writes are
    line-buffered and serialized under a lock — the asyncio loop and
    the service's worker threads both log.
    """

    def __init__(self, path: "Path | str | None", shard_id: int):
        self.path = None if path is None else Path(path)
        self.shard_id = shard_id
        self._lock = threading.Lock()
        self._file = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # Held for the server's lifetime; closed by ShardLog.close().
            self._file = open(self.path, "a", buffering=1, encoding="utf-8")  # noqa: SIM115

    def write(self, event: str, **fields) -> None:
        if self._file is None:
            return
        parts = [f"{_utc_now()} shard={self.shard_id} event={event}"]
        parts.extend(f"{key}={value}" for key, value in fields.items())
        line = " ".join(parts)
        with self._lock:
            if self._file is not None:
                # Line-buffered append to a local file — the logging-module
                # precedent; pushing it off-loop would reorder shard log lines.
                self._file.write(line + "\n")  # repro-lint: ignore[RPR015]

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


class _Connection:
    """Per-connection state: serialized writes plus live reply tasks."""

    __slots__ = ("conn_id", "writer", "write_lock", "tasks", "streams")

    def __init__(self, conn_id: int, writer: asyncio.StreamWriter):
        self.conn_id = conn_id
        self.writer = writer
        self.write_lock = asyncio.Lock()
        self.tasks: set[asyncio.Task] = set()
        self.streams: dict = {}  # client stream id -> ServiceStream


class ParseServer:
    """One cluster shard: a TCP server fronting a :class:`ParseService`.

    Args:
        grammar: the grammar this shard parses under.
        engine: engine *name* from the registry (instances cannot be
            configured per worker over the wire).
        host / port: bind address; ``port=0`` asks the OS for a free
            port (read it back from :attr:`port` after start).
        shard_id: stamped into every log line and pong.
        workers / workers_mode / start_method / kernel_backend /
        max_queue / max_batch_size / max_linger / filter_limit:
            forwarded to the underlying :class:`ParseService`.  Admission is always
            ``"reject"`` — blocking admission would park the event
            loop; overload travels to the router as a typed error.
        log_path: shard log file (None disables logging).
        port_file: when set, ``host:port`` is written there once
            listening — the launcher's readiness and discovery channel.
        max_frame: wire frame bound, both directions.
    """

    def __init__(
        self,
        grammar: CDGGrammar,
        engine: str = "vector",
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        shard_id: int = 0,
        workers: int = 1,
        workers_mode: str = "thread",
        start_method: str | None = None,
        kernel_backend: "str | None" = None,
        max_queue: int = 1024,
        max_batch_size: int = 16,
        max_linger: float = 0.002,
        filter_limit: int | None = None,
        log_path: "Path | str | None" = None,
        port_file: "Path | str | None" = None,
        max_frame: int = DEFAULT_MAX_FRAME,
    ):
        self.grammar = grammar
        self.engine = engine
        self.host = host
        self.port = port
        self.shard_id = shard_id
        self.max_frame = max_frame
        self.log = ShardLog(log_path, shard_id)
        self._port_file = None if port_file is None else Path(port_file)
        self._service_kwargs = dict(
            workers=workers,
            workers_mode=workers_mode,
            start_method=start_method,
            kernel_backend=kernel_backend,
            max_queue=max_queue,
            max_batch_size=max_batch_size,
            max_linger=max_linger,
            filter_limit=filter_limit,
            admission="reject",
        )
        self.service: ParseService | None = None
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._conn_ids = itertools.count(1)
        self._connections: set[_Connection] = set()
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # -- lifecycle ---------------------------------------------------------

    async def _start_async(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.service = ParseService(self.grammar, engine=self.engine, **self._service_kwargs)
        self.service.start()
        self._server = await asyncio.start_server(self._handle_conn, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self.log.write("ready", addr=self.address, engine=self.engine,
                       workers=self._service_kwargs["workers"],
                       workers_mode=self._service_kwargs["workers_mode"])
        if self._port_file is not None:
            # Disk I/O off the event loop: a slow or network-mounted run
            # directory must not stall connection handling at startup.
            await self._loop.run_in_executor(None, self._publish_port_file)

    def _publish_port_file(self) -> None:
        """Write ``host:port`` to the port file (runs in an executor)."""
        self._port_file.parent.mkdir(parents=True, exist_ok=True)
        tmp = self._port_file.with_suffix(self._port_file.suffix + ".tmp")
        tmp.write_text(f"{self.address}\n")
        tmp.replace(self._port_file)  # atomic: readers never see a partial write

    async def _shutdown_async(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for conn in list(self._connections):
            for task in list(conn.tasks):
                task.cancel()
            conn.writer.close()
        # Drain accepted work, then stop the service — in an executor so
        # the loop stays responsive while worker threads finish.
        if self.service is not None:
            await asyncio.get_running_loop().run_in_executor(None, self.service.drain)
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: self.service.shutdown(wait=True)
            )
        self.log.write("stop")
        self.log.close()

    async def _run_until_stopped(self, *, signals: bool = False) -> None:
        try:
            await self._start_async()
        except BaseException as error:  # noqa: BLE001 - reported to the starter
            self._startup_error = error
            self._ready.set()
            raise
        if signals:
            import signal as _signal

            loop = asyncio.get_running_loop()
            for signum in (_signal.SIGTERM, _signal.SIGINT):
                loop.add_signal_handler(signum, self._stop.set)
        self._ready.set()
        await self._stop.wait()
        await self._shutdown_async()

    def serve_forever(self) -> None:
        """Run in the calling thread until SIGTERM/SIGINT (shard entry point)."""
        asyncio.run(self._run_until_stopped(signals=True))

    def start_background(self, timeout: float = 30.0) -> "ParseServer":
        """Run the server on a daemon thread; returns once listening."""
        if self._thread is not None:
            raise ClusterError("ParseServer.start_background called twice")
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._run_until_stopped()),
            name=f"parse-server-{self.shard_id}",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ClusterError(f"shard {self.shard_id} did not start within {timeout}s")
        if self._startup_error is not None:
            raise ClusterError(
                f"shard {self.shard_id} failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Stop a background server: drain, shut the service down, join."""
        if self._loop is not None and self._stop is not None:
            with contextlib.suppress(RuntimeError):  # loop already closed
                self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "ParseServer":
        return self.start_background()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- the connection protocol -------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        conn = _Connection(next(self._conn_ids), writer)
        self._connections.add(conn)
        self.log.write("conn", conn=conn.conn_id)
        try:
            # A peer reset mid-read is a disconnect, not a server error.
            with contextlib.suppress(ConnectionResetError, BrokenPipeError):
                while True:
                    try:
                        payload = await read_frame(reader, max_frame=self.max_frame)
                    except ConnectionClosed:
                        break
                    except FrameTooLarge as error:
                        if not error.recoverable:
                            self.log.write("reject", conn=conn.conn_id, kind="frame-corrupt")
                            break
                        self.log.write("reject", conn=conn.conn_id, kind="frame-oversized")
                        await self._send(conn, _error_message(None, KIND_WIRE, str(error)))
                        continue
                    except WireError as error:
                        self.log.write("reject", conn=conn.conn_id, kind="frame-malformed")
                        await self._send(conn, _error_message(None, KIND_WIRE, str(error)))
                        continue
                    await self._handle_frame(conn, payload)
        finally:
            self._connections.discard(conn)
            for stream in conn.streams.values():
                stream.close()
            conn.streams.clear()
            self.log.write("disconnect", conn=conn.conn_id)
            writer.close()
            with contextlib.suppress(ConnectionResetError, BrokenPipeError, OSError):
                await writer.wait_closed()

    async def _handle_frame(self, conn: _Connection, payload: bytes) -> None:
        try:
            message = decode(payload)
            if not isinstance(message, dict):
                raise WireError("message payload must be a dict")
            mtype = _field(message, "type", str)
        except WireError as error:
            self.log.write("reject", conn=conn.conn_id, kind="payload-malformed")
            await self._send(conn, _error_message(None, KIND_WIRE, str(error)))
            return
        handler = {
            "parse": self._on_parse,
            "stream_open": self._on_stream_open,
            "stream_feed": self._on_stream_feed,
            "stream_close": self._on_stream_close,
            "ping": self._on_ping,
            "snapshot": self._on_snapshot,
            "drain": self._on_drain,
        }.get(mtype)
        if handler is None:
            await self._send(conn, _error_message(
                message.get("id"), KIND_WIRE, f"unknown message type {mtype!r}"
            ))
            return
        try:
            await handler(conn, message)
        except WireError as error:
            self.log.write("reject", conn=conn.conn_id, kind="payload-invalid")
            await self._send(conn, _error_message(message.get("id"), KIND_WIRE, str(error)))

    # -- request handlers --------------------------------------------------

    async def _on_parse(self, conn: _Connection, message: dict) -> None:
        rid = _field(message, "id", int)
        words = _field(message, "words", list)
        budget = message.get("budget")
        if budget is not None and not isinstance(budget, (int, float)):
            raise WireError("budget must be a number or None")
        if not all(isinstance(word, str) for word in words):
            raise WireError("words must be a list of strings")
        self.log.write("recv", conn=conn.conn_id, id=rid, kind="parse", n=len(words))
        future = self._submit(conn, rid, budget, lambda t: self.service.submit(words, timeout=t))
        if future is not None:
            self._spawn_reply(conn, rid, future)

    async def _on_stream_open(self, conn: _Connection, message: dict) -> None:
        rid = _field(message, "id", int)
        sid = _field(message, "stream", int)
        self.log.write("recv", conn=conn.conn_id, id=rid, kind="stream-open", stream=sid)
        if sid in conn.streams:
            await self._send(conn, _error_message(
                rid, KIND_STREAM, f"stream {sid} is already open on this connection"
            ))
            return
        try:
            conn.streams[sid] = self.service.submit_stream()
        except ServiceUnavailable as error:
            await self._reject(conn, rid, KIND_UNAVAILABLE, str(error))
            return
        await self._send(conn, {"type": "ok", "id": rid})
        self.log.write("done", conn=conn.conn_id, id=rid, ok=1)

    async def _on_stream_feed(self, conn: _Connection, message: dict) -> None:
        rid = _field(message, "id", int)
        sid = _field(message, "stream", int)
        word = _field(message, "word", str)
        budget = message.get("budget")
        if budget is not None and not isinstance(budget, (int, float)):
            raise WireError("budget must be a number or None")
        self.log.write("recv", conn=conn.conn_id, id=rid, kind="stream-feed", stream=sid)
        stream = conn.streams.get(sid)
        if stream is None:
            await self._reject(conn, rid, KIND_STREAM,
                               f"stream {sid} is not open on this connection")
            return
        future = self._submit(conn, rid, budget,
                              lambda t: stream.feed(word, timeout=t))
        if future is not None:
            self._spawn_reply(conn, rid, future)

    async def _on_stream_close(self, conn: _Connection, message: dict) -> None:
        rid = _field(message, "id", int)
        sid = _field(message, "stream", int)
        stream = conn.streams.pop(sid, None)
        if stream is not None:
            stream.close()
        await self._send(conn, {"type": "ok", "id": rid})
        self.log.write("done", conn=conn.conn_id, id=rid, ok=1)

    async def _on_ping(self, conn: _Connection, message: dict) -> None:
        rid = _field(message, "id", int)
        await self._send(conn, {
            "type": "pong",
            "id": rid,
            "shard": self.shard_id,
            "addr": self.address,
            "state": "stopped" if self.service is None else self.service.state,
        })

    async def _on_snapshot(self, conn: _Connection, message: dict) -> None:
        rid = _field(message, "id", int)
        snap = self.service.snapshot()
        await self._send(conn, {"type": "snapshot", "id": rid, "snapshot": snap})

    async def _on_drain(self, conn: _Connection, message: dict) -> None:
        rid = _field(message, "id", int)
        self.log.write("drain", conn=conn.conn_id)
        ok = await asyncio.get_running_loop().run_in_executor(None, self.service.drain)
        await self._send(conn, {"type": "ok", "id": rid, "idle": bool(ok)})

    # -- submission and replies --------------------------------------------

    def _submit(self, conn: _Connection, rid: int, budget, submit_call):
        """Admission at the shard door; returns the future or None (rejected).

        The budget was measured by the router at send time, so it is
        the single deadline source here: an already-expired budget is
        refused before touching the service, and a live one becomes the
        service deadline from *this* instant — queue linger on this
        shard counts against it exactly once.
        """
        if budget is not None and budget <= 0:
            # Fire-and-forget reply: the reject path must not await
            # inside the frame handler's critical path.
            self._spawn(conn, self._reject(
                conn, rid, KIND_DEADLINE,
                f"request budget was spent before the frame arrived ({budget:.6f}s)",
            ))
            return None
        try:
            return submit_call(budget)
        except DeadlineExceeded as error:
            self._spawn(conn, self._reject(conn, rid, KIND_DEADLINE, str(error)))
        except ServiceOverloaded as error:
            self._spawn(conn, self._reject(conn, rid, KIND_OVERLOADED, str(error)))
        except ServiceUnavailable as error:
            self._spawn(conn, self._reject(conn, rid, KIND_UNAVAILABLE, str(error)))
        except LexiconError as error:
            self._spawn(conn, self._reject(conn, rid, KIND_LEXICON, str(error)))
        except StreamError as error:
            self._spawn(conn, self._reject(conn, rid, KIND_STREAM, str(error)))
        return None

    def _spawn(self, conn: _Connection, coro) -> None:
        task = asyncio.get_running_loop().create_task(coro)
        conn.tasks.add(task)
        task.add_done_callback(conn.tasks.discard)

    def _spawn_reply(self, conn: _Connection, rid: int, future) -> None:
        self._spawn(conn, self._reply(conn, rid, future))

    async def _reply(self, conn: _Connection, rid: int, future) -> None:
        try:
            result = await asyncio.wrap_future(future)
        except DeadlineExceeded as error:
            await self._reject(conn, rid, KIND_DEADLINE, str(error))
            return
        except StreamError as error:
            await self._reject(conn, rid, KIND_STREAM, str(error))
            return
        except ReproError as error:
            await self._reject(conn, rid, KIND_INTERNAL,
                               f"{type(error).__name__}: {error}")
            return
        except asyncio.CancelledError:
            return
        except BaseException as error:  # noqa: BLE001 - reported to the peer
            await self._reject(conn, rid, KIND_INTERNAL,
                               f"{type(error).__name__}: {error}")
            return
        network = result.network
        await self._send(conn, {
            "type": "result",
            "id": rid,
            "alive_bits": network.alive_bits,
            "matrix_bits": network.matrix_bits,
            "locally_consistent": result.locally_consistent,
            "ambiguous": result.ambiguous,
            "stats": pack_stats(result.stats),
        })
        self.log.write("done", conn=conn.conn_id, id=rid, ok=1,
                       consistent=int(result.locally_consistent),
                       ms=round(result.stats.wall_seconds * 1000, 3))

    async def _reject(self, conn: _Connection, rid: int, kind: str, message: str) -> None:
        await self._send(conn, _error_message(rid, kind, message))
        self.log.write("reject", conn=conn.conn_id, id=rid, kind=kind)

    async def _send(self, conn: _Connection, message: dict) -> None:
        payload = encode(message)
        # A vanished peer is the disconnect path's problem, not the sender's.
        with contextlib.suppress(ConnectionResetError, BrokenPipeError, RuntimeError):
            async with conn.write_lock:
                write_frame(conn.writer, payload)
                await conn.writer.drain()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParseServer(shard={self.shard_id}, addr={self.address!r})"


def _field(message: dict, name: str, expected: type):
    value = message.get(name)
    if not isinstance(value, expected) or (expected is int and isinstance(value, bool)):
        raise WireError(
            f"field {name!r} must be {expected.__name__}, got {type(value).__name__}"
        )
    return value


def _error_message(rid, kind: str, message: str) -> dict:
    return {"type": "error", "id": rid, "kind": kind, "message": message}
