"""The cluster launcher: shards as subprocesses, lifecycle as a value.

:class:`ClusterLauncher` turns ``repro cluster up --shards N`` into N
shard subprocesses (each running ``python -m repro cluster shard``,
i.e. one :class:`~repro.cluster.server.ParseServer` owning one
:class:`~repro.serve.ParseService`), discovers their OS-assigned ports
through per-shard *port files* (written atomically by the shard once it
listens — stdout pipes would deadlock and signals would race), and
mirrors the service lifecycle: ``start()`` → running, ``drain()`` →
idle shards, ``shutdown()`` → SIGTERM, graceful drain inside each
shard, ``SIGKILL`` only for the unresponsive.

Per-shard process isolation is the point, not an implementation detail:
each shard owns its slice of the shape space, so its template cache and
(in process mode) its :class:`~repro.parallel.shared.SharedTemplateStore`
hold only the shapes the ring routes to it, and a shard crash loses one
slice rather than the fleet.
"""

from __future__ import annotations

import contextlib
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import repro
from repro.cluster.errors import ClusterError
from repro.cluster.router import ClusterClient
from repro.grammar.grammar import CDGGrammar

_POLL = 0.05


class ClusterLauncher:
    """Spawn, watch, and stop a fleet of shard subprocesses.

    Args:
        grammar_spec: a built-in grammar name or a ``.cdg`` path — a
            *string*, because each shard re-resolves it in its own
            process (grammars do not cross the spawn boundary).
        shards: shard count.
        engine / workers / workers_mode / kernel_backend /
        max_batch_size / max_linger:
            forwarded to every shard's service (``kernel_backend`` is a
            backend *name* — it crosses the process boundary on the
            shard command line and each shard resolves it locally,
            falling back to ``packed`` on hosts that cannot build it).
        run_dir: where port files, shard logs, and captured
            stdout/stderr live.  Defaults to ``.repro-cluster/<pid>``
            under the working directory.
        host: bind address for every shard (localhost clusters are the
            supported shape; the wire protocol itself is host-agnostic).
    """

    def __init__(
        self,
        grammar_spec: str,
        *,
        shards: int = 2,
        engine: str = "vector",
        workers: int = 1,
        workers_mode: str = "thread",
        kernel_backend: "str | None" = None,
        max_batch_size: int = 16,
        max_linger: float = 0.002,
        run_dir: "Path | str | None" = None,
        host: str = "127.0.0.1",
    ):
        if shards < 1:
            raise ClusterError(f"a cluster needs at least one shard, got {shards}")
        self.grammar_spec = grammar_spec
        self.shards = shards
        self.engine = engine
        self.workers = workers
        self.workers_mode = workers_mode
        self.kernel_backend = kernel_backend
        self.max_batch_size = max_batch_size
        self.max_linger = max_linger
        self.host = host
        self.run_dir = Path(run_dir) if run_dir is not None else (
            Path.cwd() / ".repro-cluster" / str(os.getpid())
        )
        self._procs: list[subprocess.Popen] = []
        self._addresses: list[str] = []
        self._stdio: list = []

    # -- paths -------------------------------------------------------------

    def log_path(self, index: int) -> Path:
        return self.run_dir / f"shard-{index}.log"

    def port_path(self, index: int) -> Path:
        return self.run_dir / f"shard-{index}.port"

    @property
    def addresses(self) -> "tuple[str, ...]":
        return tuple(self._addresses)

    @property
    def log_dir(self) -> Path:
        return self.run_dir

    # -- lifecycle ---------------------------------------------------------

    def start(self, timeout: float = 60.0) -> "ClusterLauncher":
        """Spawn every shard and wait until all of them are listening."""
        if self._procs:
            raise ClusterError("cluster is already started")
        self.run_dir.mkdir(parents=True, exist_ok=True)
        env = dict(os.environ)
        # The shards must import the same repro the launcher runs; the
        # launcher's copy wins over whatever PYTHONPATH says.
        package_root = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = package_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        for index in range(self.shards):
            self.port_path(index).unlink(missing_ok=True)
            command = [
                sys.executable, "-m", "repro", "cluster", "shard",
                "--grammar", self.grammar_spec,
                "--engine", self.engine,
                "--host", self.host,
                "--port", "0",
                "--shard-id", str(index),
                "--workers", str(self.workers),
                "--workers-mode", self.workers_mode,
                "--max-batch-size", str(self.max_batch_size),
                "--max-linger", str(self.max_linger),
                "--log", str(self.log_path(index)),
                "--port-file", str(self.port_path(index)),
            ]
            if self.kernel_backend is not None:
                command += ["--kernel-backend", self.kernel_backend]
            # Held for the shard's lifetime; closed in shutdown().
            stdio = open(self.run_dir / f"shard-{index}.out", "ab")  # noqa: SIM115
            self._stdio.append(stdio)
            self._procs.append(subprocess.Popen(
                command, env=env, stdout=stdio, stderr=subprocess.STDOUT
            ))
        try:
            self._addresses = self._await_ports(timeout)
        except ClusterError:
            self.shutdown(timeout=10.0)
            raise
        return self

    def _await_ports(self, timeout: float) -> "list[str]":
        deadline = time.monotonic() + timeout
        addresses: "list[str | None]" = [None] * self.shards
        while time.monotonic() < deadline:
            for index, proc in enumerate(self._procs):
                if addresses[index] is not None:
                    continue
                if proc.poll() is not None:
                    raise ClusterError(
                        f"shard {index} exited with code {proc.returncode} before "
                        f"listening (see {self.run_dir / f'shard-{index}.out'})"
                    )
                path = self.port_path(index)
                if path.exists():
                    text = path.read_text().strip()
                    if text:
                        addresses[index] = text
            if all(address is not None for address in addresses):
                return list(addresses)
            time.sleep(_POLL)
        missing = [index for index, address in enumerate(addresses) if address is None]
        raise ClusterError(f"shards {missing} did not start within {timeout}s")

    def client(self, grammar: CDGGrammar, **kwargs) -> ClusterClient:
        """A :class:`ClusterClient` wired to this cluster's shards."""
        if not self._addresses:
            raise ClusterError("cluster is not started")
        return ClusterClient(grammar, self._addresses, engine=self.engine, **kwargs)

    def alive(self) -> "list[bool]":
        """Liveness per shard (subprocess still running)."""
        return [proc.poll() is None for proc in self._procs]

    def shutdown(self, timeout: float = 30.0) -> None:
        """SIGTERM every shard (graceful drain inside), SIGKILL stragglers."""
        for proc in self._procs:
            if proc.poll() is None:
                with contextlib.suppress(ProcessLookupError, OSError):
                    proc.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + timeout
        for proc in self._procs:
            remaining = max(0.0, deadline - time.monotonic())
            try:
                proc.wait(remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(10.0)
        for stdio in self._stdio:
            stdio.close()
        self._stdio.clear()
        self._procs.clear()
        self._addresses.clear()

    def __enter__(self) -> "ClusterLauncher":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self._procs else "down"
        return f"ClusterLauncher({self.shards} shards, {state}, dir={str(self.run_dir)!r})"
