"""Consistent-hash routing by sentence shape.

The cluster's unit of placement is the *shape* — a sentence's category
signature, which is also the :class:`~repro.pipeline.template.NetworkTemplate`
cache key and the :class:`~repro.serve.batcher.ShapeBatcher` group key.
Routing every sentence of one shape to one shard means each shard's
template cache (and, in process mode, its
:class:`~repro.parallel.shared.SharedTemplateStore`) owns a *slice* of
the shape space instead of replicating all of it, and every batch a
shard dispatches stays single-shape.

A :class:`HashRing` places each node at ``replicas`` pseudo-random
points on a 64-bit circle (SHA-1 of ``"node#i"``) and routes a key to
the first node clockwise of the key's own point.  Adding or removing a
node therefore remaps only the keys that fell between the changed
node's points and their predecessors — roughly ``1/n`` of the space —
which is the property that makes shard-count changes cheap.

Hashes are derived from canonical byte strings, never from Python's
randomized ``hash()``: the same shape routes to the same shard across
processes, restarts, and interpreter versions, so a router restart does
not reshuffle every shard's warmed template cache.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Hashable, Sequence

#: Virtual points per node.  64 keeps the max/min shape-count ratio per
#: node low (empirically < 2 at a few nodes) while the ring stays tiny.
DEFAULT_REPLICAS = 64


def _digest(raw: bytes) -> int:
    return int.from_bytes(hashlib.sha1(raw).digest()[:8], "big")


def hash_key(key: Hashable) -> int:
    """A stable 64-bit point for *key* (shape tuples, strings, ints).

    Frozenset iteration order is insertion-dependent, so shape keys
    (tuples of frozensets of category codes) are canonicalized by
    sorting each set before hashing.
    """
    if isinstance(key, (tuple, list)):
        parts = []
        for element in key:
            if isinstance(element, (frozenset, set)):
                parts.append(tuple(sorted(element)))
            else:
                parts.append(element)
        canonical = repr(tuple(parts))
    else:
        canonical = repr(key)
    return _digest(canonical.encode("utf-8"))


class HashRing:
    """An immutable consistent-hash ring over named nodes.

    Args:
        nodes: node identifiers (the router uses ``"host:port"``
            address strings).  Order does not matter; placement depends
            only on the identifiers themselves.
        replicas: virtual points per node.
    """

    def __init__(self, nodes: Sequence[str], replicas: int = DEFAULT_REPLICAS):
        if not nodes:
            raise ValueError("a HashRing needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ValueError(f"duplicate ring nodes: {sorted(nodes)}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.nodes = tuple(nodes)
        self.replicas = replicas
        points: list[tuple[int, str]] = []
        for node in nodes:
            for index in range(replicas):
                points.append((_digest(f"{node}#{index}".encode()), node))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [node for _, node in points]

    def node_for(self, key: Hashable) -> str:
        """The node owning *key*: first ring point clockwise of its hash."""
        index = bisect_right(self._points, hash_key(key))
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def spread(self, keys: Sequence[Hashable]) -> dict[str, int]:
        """How many of *keys* each node owns (diagnostics and tests)."""
        counts = {node: 0 for node in self.nodes}
        for key in keys:
            counts[self.node_for(key)] += 1
        return counts

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashRing({len(self.nodes)} nodes x {self.replicas} replicas)"
