"""The log-driven benchmark harness: shard logs in, honest numbers out.

Follows the BFT-MVBA ``LogParser`` discipline: the benchmark record is
derived from what the *nodes* logged, not from what the load generator
believes it did.  Each shard writes timestamped structured lines
(:class:`~repro.cluster.server.ShardLog`); this module parses every
shard's log in a worker pool, pairs each request's ``recv`` with its
``done``/``reject`` by ``(shard, conn, id)``, merges the per-node
timelines keeping the *earliest* timestamp per key (a retried or
duplicated line never shrinks a latency), and summarizes throughput
and latency percentiles over the merged window.

Client-observed latency (:mod:`repro.cluster.loadgen`) includes the
wire and the router; shard-log latency starts at frame receipt.  The
gap between the two *is* the wire cost — recording both makes it
visible instead of silently attributed.
"""

from __future__ import annotations

import multiprocessing
import os
import re
from dataclasses import dataclass, field
from datetime import datetime
from pathlib import Path

from repro.cluster.errors import ClusterError
from repro.cluster.loadgen import _percentile

_RECV = re.compile(
    r"^(?P<ts>\S+) shard=(?P<shard>\d+) event=recv conn=(?P<conn>\d+) "
    r"id=(?P<id>\d+) kind=(?P<kind>\S+)"
)
_DONE = re.compile(
    r"^(?P<ts>\S+) shard=(?P<shard>\d+) event=done conn=(?P<conn>\d+) id=(?P<id>\d+)"
)
_REJECT = re.compile(
    r"^(?P<ts>\S+) shard=(?P<shard>\d+) event=reject conn=(?P<conn>\d+)"
    r"(?: id=(?P<id>\d+))? kind=(?P<kind>\S+)"
)


def _ts(raw: str) -> float:
    """ISO-8601 (UTC) to an epoch float; 'Z' suffixes are tolerated."""
    return datetime.fromisoformat(raw.replace("Z", "+00:00")).timestamp()


def parse_log_text(text: str) -> dict:
    """Extract one shard log's event maps (pool task: text in, dicts out).

    Returns ``recv`` / ``done`` maps keyed by ``(shard, conn, id)`` —
    earliest timestamp wins on duplicates — plus reject tallies by kind
    and the shard ids seen.
    """
    recv: dict = {}
    done: dict = {}
    rejects: "dict[str, int]" = {}
    shards: set = set()
    for line in text.splitlines():
        match = _RECV.match(line)
        if match:
            key = (int(match["shard"]), int(match["conn"]), int(match["id"]))
            stamp = _ts(match["ts"])
            if key not in recv or stamp < recv[key]:
                recv[key] = stamp
            shards.add(int(match["shard"]))
            continue
        match = _DONE.match(line)
        if match:
            key = (int(match["shard"]), int(match["conn"]), int(match["id"]))
            stamp = _ts(match["ts"])
            if key not in done or stamp < done[key]:
                done[key] = stamp
            shards.add(int(match["shard"]))
            continue
        match = _REJECT.match(line)
        if match:
            kind = match["kind"]
            rejects[kind] = rejects.get(kind, 0) + 1
            shards.add(int(match["shard"]))
    return {"recv": recv, "done": done, "rejects": rejects, "shards": sorted(shards)}


@dataclass
class MergedTimeline:
    """All shards' logs merged: earliest timestamp per key, per event."""

    recv: dict = field(default_factory=dict)
    done: dict = field(default_factory=dict)
    rejects: "dict[str, int]" = field(default_factory=dict)
    shards: "list[int]" = field(default_factory=list)

    def merge(self, parsed: dict) -> None:
        for name in ("recv", "done"):
            ours = getattr(self, name)
            for key, stamp in parsed[name].items():
                if key not in ours or stamp < ours[key]:
                    ours[key] = stamp
        for kind, count in parsed["rejects"].items():
            self.rejects[kind] = self.rejects.get(kind, 0) + count
        self.shards = sorted(set(self.shards) | set(parsed["shards"]))

    def latencies_ms(self) -> "list[float]":
        return [
            (self.done[key] - self.recv[key]) * 1000.0
            for key in self.done
            if key in self.recv
        ]

    def summary(self) -> dict:
        """Throughput and latency percentiles over the merged window."""
        paired = self.latencies_ms()
        completed = len(paired)
        window = 0.0
        if self.recv and self.done:
            window = max(self.done.values()) - min(self.recv.values())
        ordered = sorted(paired)
        return {
            "shards": self.shards,
            "received": len(self.recv),
            "completed": completed,
            "rejected": sum(self.rejects.values()),
            "rejects_by_kind": dict(self.rejects),
            "window_seconds": round(window, 6),
            "throughput_rps": round(completed / window, 3) if window > 0 else 0.0,
            "latency": {
                "p50_ms": round(_percentile(ordered, 50), 3),
                "p95_ms": round(_percentile(ordered, 95), 3),
                "p99_ms": round(_percentile(ordered, 99), 3),
                "max_ms": round(ordered[-1], 3) if ordered else 0.0,
            },
        }


class ClusterLogParser:
    """Parse a directory of per-shard logs into one merged summary.

    Per-node parsing fans out over a process pool when the host has the
    cores for it (and more than one log to parse); on small hosts it
    degrades to a plain map — the result is identical, only the wall
    time differs, and the summary never claims otherwise.
    """

    def __init__(self, parsed_logs: "list[dict]"):
        self.timeline = MergedTimeline()
        for parsed in parsed_logs:
            self.timeline.merge(parsed)

    @classmethod
    def from_texts(cls, texts: "list[str]", *, pool: "bool | None" = None):
        use_pool = pool
        if use_pool is None:
            use_pool = len(texts) > 1 and (os.cpu_count() or 1) > 1
        if use_pool:
            with multiprocessing.Pool(min(len(texts), os.cpu_count() or 1)) as workers:
                parsed = workers.map(parse_log_text, texts)
        else:
            parsed = [parse_log_text(text) for text in texts]
        return cls(parsed)

    @classmethod
    def from_directory(cls, path: "Path | str", *, pool: "bool | None" = None):
        directory = Path(path)
        files = sorted(directory.glob("shard-*.log"))
        if not files:
            raise ClusterError(f"no shard-*.log files under {directory}")
        return cls.from_texts([file.read_text() for file in files], pool=pool)

    def summary(self) -> dict:
        return self.timeline.summary()
