"""Typed errors raised by the networked cluster layer.

All derive from :class:`ClusterError` (itself a
:class:`~repro.errors.ReproError`).  The wire protocol carries typed
failure *kinds* rather than pickled exceptions, and the router maps
each kind back onto the richest local type it knows — a shard replying
``deadline`` surfaces as the serving layer's own
:class:`~repro.serve.errors.DeadlineExceeded`, ``lexicon`` as
:class:`~repro.errors.LexiconError`, and so on — so callers migrating
from the in-process :class:`~repro.serve.ParseService` catch the same
exceptions they already handle.
"""

from __future__ import annotations

from repro.errors import ReproError


class ClusterError(ReproError):
    """Base class for all cluster-layer errors."""


class WireError(ClusterError):
    """A frame or payload violated the wire protocol (malformed bytes,
    unknown tag, missing field, empty frame).  The *connection* survives
    a recoverable wire error: the offender is answered with a typed
    error frame and the stream stays framed."""


class FrameTooLarge(WireError):
    """A frame's declared length exceeds the negotiated maximum.

    ``recoverable`` is True when the oversized payload was drained off
    the stream (so later frames still parse) and False when the
    declared length was too absurd to drain — the connection must be
    dropped to stay safe.
    """

    def __init__(self, length: int, max_frame: int, *, recoverable: bool):
        self.length = length
        self.max_frame = max_frame
        self.recoverable = recoverable
        super().__init__(
            f"frame of {length} bytes exceeds max_frame={max_frame}"
            + ("" if recoverable else " (unrecoverably; dropping connection)")
        )


class ConnectionClosed(ClusterError):
    """The peer closed the connection (EOF mid-frame or before one)."""


class ShardUnavailable(ClusterError):
    """A shard connection is gone; requests routed to it cannot complete."""
