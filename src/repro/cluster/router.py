"""The router: consistent-hash fan-out across shard servers.

:class:`ShardRouter` is the placement policy — shape in, shard address
out — and :class:`ClusterClient` is the data plane around it: one TCP
connection per shard, a background asyncio loop on a daemon thread, and
a synchronous facade (`submit` / `parse_many` / `submit_stream`) that
mirrors :class:`~repro.serve.ParseService` so call sites migrate by
swapping the constructor.

Three design points carry the correctness weight:

**Materialization.**  Shards reply with packed network bits only
(``alive_bits`` / ``matrix_bits``), kilobytes per sentence.  The client
owns a :class:`~repro.pipeline.session.ParserSession` whose template
cache rebinds those bits into full :class:`~repro.engines.base.ParseResult`
objects via :func:`~repro.parallel.pool.materialize_result` — the same
parent-side rebind the process pool uses, so cluster results are
bit-identical to in-process ones by construction.  All template work
happens on the loop thread; sessions are single-threaded by contract.

**Deadline propagation without double-counting.**  A caller timeout is
fixed as a monotonic deadline at ``submit``.  The *remaining* budget is
computed at the instant the frame is written and travels in the frame;
the shard restarts the clock from receipt.  The client never times out
an in-flight request — the shard owns the deadline once the frame is
sent — so batcher linger on the shard and wire latency each count once,
never twice.  A budget already spent at write time fails locally and
the frame is never sent.

**Drain before close.**  ``drain()`` waits until every in-flight
request has its reply; ``close(wait=True)`` drains first and only then
closes sockets, so shutdown cannot orphan verdicts that a shard already
computed.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import threading
import time
from concurrent.futures import Future
from typing import Hashable, Iterable, Sequence

from repro.cluster.errors import (
    ClusterError,
    ConnectionClosed,
    FrameTooLarge,
    ShardUnavailable,
    WireError,
)
from repro.cluster.ring import HashRing
from repro.cluster.wire import (
    DEFAULT_MAX_FRAME,
    decode,
    encode,
    read_frame,
    unpack_stats,
    write_frame,
)
from repro.engines.base import ParseResult
from repro.errors import LexiconError, StreamError
from repro.grammar.grammar import CDGGrammar, Sentence
from repro.parallel.pool import WireResult, materialize_result
from repro.pipeline.session import ParserSession
from repro.serve import DeadlineExceeded, ServiceOverloaded, ServiceUnavailable

_UNSET = object()

#: Wire error kinds mapped back onto the richest local exception type.
_KIND_ERRORS = {
    "deadline": DeadlineExceeded,
    "overloaded": ServiceOverloaded,
    "unavailable": ServiceUnavailable,
    "lexicon": LexiconError,
    "stream": StreamError,
    "wire": WireError,
}


def _error_for(kind: str, message: str) -> Exception:
    return _KIND_ERRORS.get(kind, ClusterError)(message)


class ShardRouter:
    """Placement policy: sentence shape → shard address.

    Routing by shape (the ``category_sets`` tuple — also the template
    cache key and the batcher group key) gives each shard a *slice* of
    the shape space: its template cache and, in process mode, its
    :class:`~repro.parallel.shared.SharedTemplateStore` hold only the
    shapes the ring assigns it, and every batch it forms stays
    single-shape.
    """

    def __init__(self, addresses: Sequence[str], *, replicas: int | None = None):
        kwargs = {} if replicas is None else {"replicas": replicas}
        self.ring = HashRing(addresses, **kwargs)

    @property
    def addresses(self) -> tuple[str, ...]:
        return self.ring.nodes

    def shape_of(self, sentence: Sentence) -> Hashable:
        return sentence.category_sets

    def shard_for(self, sentence: Sentence) -> str:
        """The address owning *sentence*'s shape."""
        return self.ring.node_for(self.shape_of(sentence))

    def spread(self, sentences: Iterable[Sentence]) -> dict[str, int]:
        """Sentences per shard (diagnostics and placement tests)."""
        return self.ring.spread([self.shape_of(sentence) for sentence in sentences])


class _Pending:
    """One in-flight request: reply routing plus materialization inputs."""

    __slots__ = ("rid", "future", "sentence", "stream", "conn", "deadline")

    def __init__(self, rid, future, sentence=None, stream=None, conn=None, deadline=None):
        self.rid = rid
        self.future = future
        self.sentence = sentence
        self.stream = stream
        self.conn = conn
        self.deadline = deadline


class _ShardConn:
    """One shard's connection state, touched only on the loop thread."""

    __slots__ = ("address", "reader", "writer", "task", "dead")

    def __init__(self, address: str):
        self.address = address
        self.reader = None
        self.writer = None
        self.task = None
        self.dead = False


class ClusterStream(object):
    """A word-at-a-time parse riding one shard's :class:`ServiceStream`.

    ``feed(word)`` returns a future whose result is the parse of the
    whole prefix fed so far, bit-identical to the in-process stream.
    The shard settles packed bits; the client grows the matching prefix
    template chain (``template_for(..., prefix=last)``) to rebind them,
    so template reuse stays incremental on both ends of the wire.
    """

    def __init__(self, client: "ClusterClient", sid: int, address: str):
        self._client = client
        self.stream_id = sid
        self.address = address
        self._words: list[str] = []
        self._template = None  # grown on the loop thread, reply by reply
        self._closed = False

    def feed(self, word: str, *, timeout=_UNSET) -> "Future[ParseResult]":
        """Feed one word; the future resolves to the grown prefix's result."""
        if self._closed:
            raise StreamError("cannot feed a closed cluster stream")
        if not isinstance(word, str) or not word:
            raise StreamError(f"stream words must be non-empty strings, got {word!r}")
        self._words.append(word)
        sentence = self._client.grammar.tokenize(list(self._words))
        return self._client._send_feed(self, sentence, word, timeout)

    def close(self) -> None:
        """Close the shard-side stream (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._client._send_stream_close(self)

    @property
    def words(self) -> tuple[str, ...]:
        return tuple(self._words)

    def __enter__(self) -> "ClusterStream":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ClusterClient:
    """Synchronous cluster facade: routes, sends, reassembles.

    Args:
        grammar: grammar shared with the shards (materialization needs
            the same templates the shards parsed under).
        addresses: ``"host:port"`` shard addresses; placement depends
            only on the address strings, so a stable fleet keeps a
            stable shape→shard map across client restarts.
        engine: engine name, for the materialization session (must
            match the shards for stats provenance; bits are engine-
            independent by the repo's bit-identity invariant).
        default_timeout: per-request deadline applied when ``submit``
            is called without one (None = no deadline).
        replicas: consistent-hash virtual points per shard.
        template_cache_size: client-side rebind cache (shapes, LRU).
        max_frame: wire frame bound, both directions.
        connect_timeout: bound on initial connection establishment.
    """

    def __init__(
        self,
        grammar: CDGGrammar,
        addresses: Sequence[str],
        *,
        engine: str = "vector",
        default_timeout: float | None = None,
        replicas: int | None = None,
        template_cache_size: int = 64,
        max_frame: int = DEFAULT_MAX_FRAME,
        connect_timeout: float = 10.0,
    ):
        self.grammar = grammar
        self.engine = engine
        self.default_timeout = default_timeout
        self.max_frame = max_frame
        self.router = ShardRouter(addresses, replicas=replicas)
        self._session = ParserSession(
            grammar, engine=engine, template_cache_size=template_cache_size
        )
        self._ids = itertools.count(1)
        self._stream_ids = itertools.count(1)
        self._stream_rr = itertools.count()
        self._pending: dict[int, _Pending] = {}
        self._conns: dict[str, _ShardConn] = {}
        self._closed = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._idle: asyncio.Event | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._run(connect_timeout)),
            name="cluster-client",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(connect_timeout + 5.0):
            raise ClusterError("cluster client failed to start in time")
        if self._startup_error is not None:
            self._thread.join(5.0)
            raise ClusterError(
                f"could not connect to shards: {self._startup_error}"
            ) from self._startup_error

    # -- loop-thread plumbing ----------------------------------------------

    async def _run(self, connect_timeout: float) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        try:
            for address in self.router.addresses:
                conn = _ShardConn(address)
                host, _, port = address.rpartition(":")
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(host, int(port)), connect_timeout
                )
                self._register_socket(conn, reader, writer)
        except BaseException as error:  # noqa: BLE001 - reported to the starter
            self._startup_error = error
            await self._teardown()
            self._ready.set()
            return
        self._ready.set()
        await self._stop.wait()
        await self._teardown()

    def _register_socket(self, conn: _ShardConn, reader, writer) -> None:
        """Adopt a socket into the client lifecycle: reader task now,
        writer close on teardown (the RPR012 contract, by registration)."""
        conn.reader = reader
        conn.writer = writer
        conn.task = self._loop.create_task(self._read_loop(conn))
        self._conns[conn.address] = conn

    async def _teardown(self) -> None:
        for conn in self._conns.values():
            if conn.task is not None:
                conn.task.cancel()
            if conn.writer is not None:
                conn.writer.close()
                with contextlib.suppress(ConnectionResetError, BrokenPipeError, OSError):
                    await conn.writer.wait_closed()
        for entry in list(self._pending.values()):
            if not entry.future.done():
                entry.future.set_exception(
                    ShardUnavailable("cluster client closed with requests in flight")
                )
        self._pending.clear()

    async def _read_loop(self, conn: _ShardConn) -> None:
        closed = (ConnectionClosed, FrameTooLarge, WireError, OSError, asyncio.CancelledError)
        try:
            with contextlib.suppress(*closed):
                while True:
                    payload = await read_frame(conn.reader, max_frame=self.max_frame)
                    try:
                        message = decode(payload)
                    except WireError:
                        continue  # a frame we cannot parse names no request
                    if isinstance(message, dict):
                        self._dispatch(conn, message)
        finally:
            self._fail_shard(conn)

    def _fail_shard(self, conn: _ShardConn) -> None:
        conn.dead = True
        dropped = [entry for entry in self._pending.values() if entry.conn is conn]
        for entry in dropped:
            self._pending.pop(entry.rid, None)
            if not entry.future.done():
                entry.future.set_exception(
                    ShardUnavailable(f"shard {conn.address} disconnected mid-request")
                )
        self._note_idle()

    def _note_idle(self) -> None:
        if not self._pending:
            self._idle.set()

    def _dispatch(self, conn: _ShardConn, message: dict) -> None:
        rid = message.get("id")
        entry = self._pending.pop(rid, None)
        if entry is None:
            return  # connection-level error frame or a reply we gave up on
        mtype = message.get("type")
        try:
            if mtype == "result":
                self._settle_result(entry, message)
            elif mtype == "error":
                entry.future.set_exception(_error_for(
                    str(message.get("kind")), str(message.get("message"))
                ))
            else:  # ok / pong / snapshot: control replies carry their payload
                entry.future.set_result(message)
        except BaseException as error:  # noqa: BLE001 - surfaced on the future
            if not entry.future.done():
                entry.future.set_exception(error)
        finally:
            self._note_idle()

    def _settle_result(self, entry: _Pending, message: dict) -> None:
        wire = WireResult(
            alive_bits=message["alive_bits"],
            matrix_bits=message["matrix_bits"],
            locally_consistent=bool(message["locally_consistent"]),
            ambiguous=bool(message["ambiguous"]),
            stats=unpack_stats(message["stats"]),
        )
        if entry.stream is not None:
            template = self._session.template_for(
                entry.sentence, prefix=entry.stream._template
            )
            entry.stream._template = template
        else:
            template = self._session.template_for(entry.sentence)
        entry.future.set_result(materialize_result(template, entry.sentence, wire))

    async def _send_async(self, address: str, message: dict, entry: _Pending) -> None:
        conn = self._conns.get(address)
        if conn is None or conn.dead:
            entry.future.set_exception(ShardUnavailable(f"shard {address} is not connected"))
            return
        entry.conn = conn
        self._pending[entry.rid] = entry
        self._idle.clear()
        if entry.deadline is not None:
            # The budget is measured NOW, at frame-write time: time the
            # caller spent before the send does not leak into the
            # shard's clock, and the shard's queue time will not be
            # counted again by the client.
            budget = entry.deadline - time.monotonic()
            if budget <= 0:
                self._pending.pop(entry.rid, None)
                self._note_idle()
                entry.future.set_exception(DeadlineExceeded(
                    f"deadline spent before the request reached shard {address}"
                ))
                return
            message["budget"] = budget
        try:
            write_frame(conn.writer, encode(message))
            await conn.writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError) as error:
            self._pending.pop(entry.rid, None)
            self._note_idle()
            if not entry.future.done():
                entry.future.set_exception(
                    ShardUnavailable(f"shard {address} went away during send: {error}")
                )

    def _post(self, address: str, message: dict, entry: _Pending) -> None:
        asyncio.run_coroutine_threadsafe(
            self._send_async(address, message, entry), self._loop
        )

    # -- the synchronous facade --------------------------------------------

    def submit(self, sentence, *, timeout=_UNSET) -> "Future[ParseResult]":
        """Route one sentence to its shard; returns a result future.

        Mirrors :meth:`ParseService.submit` semantics: tokenization (and
        its :class:`LexiconError`) happens synchronously at the door;
        deadlines start now; overload and deadline failures arrive
        through the future as the same exception types.
        """
        if self._closed:
            raise ServiceUnavailable("cluster client is closed")
        sent = self.grammar.tokenize(sentence) if not isinstance(sentence, Sentence) else sentence
        limit = self.default_timeout if timeout is _UNSET else timeout
        deadline = None if limit is None else time.monotonic() + limit
        address = self.router.shard_for(sent)
        future: Future[ParseResult] = Future()
        entry = _Pending(next(self._ids), future, sentence=sent, deadline=deadline)
        self._post(address, {"type": "parse", "id": entry.rid,
                             "words": list(sent.words), "budget": None}, entry)
        return future

    def parse_many(self, sentences, *, timeout=_UNSET) -> "list[ParseResult]":
        """Fan a batch across the ring; results come back in input order.

        Requests complete in whatever order shards finish; reassembly
        is by submission order (each future is awaited in turn), so the
        returned list is index-aligned with the input regardless of
        arrival order.
        """
        futures = [self.submit(sentence, timeout=timeout) for sentence in sentences]
        return [future.result() for future in futures]

    def submit_stream(self, *, timeout: float = 30.0) -> ClusterStream:
        """Open a streaming session on one shard (round-robin placement).

        A stream's shape changes with every word, so hash placement
        would hop shards mid-sentence; streams instead pin to one shard
        chosen round-robin and grow their template chain there.
        """
        if self._closed:
            raise ServiceUnavailable("cluster client is closed")
        addresses = self.router.addresses
        address = addresses[next(self._stream_rr) % len(addresses)]
        stream = ClusterStream(self, next(self._stream_ids), address)
        future: Future = Future()
        entry = _Pending(next(self._ids), future)
        self._post(address, {"type": "stream_open", "id": entry.rid,
                             "stream": stream.stream_id}, entry)
        future.result(timeout)  # surfaces ServiceUnavailable / StreamError now
        return stream

    def _send_feed(self, stream: ClusterStream, sentence, word, timeout):
        limit = self.default_timeout if timeout is _UNSET else timeout
        deadline = None if limit is None else time.monotonic() + limit
        future: Future[ParseResult] = Future()
        entry = _Pending(next(self._ids), future, sentence=sentence,
                         stream=stream, deadline=deadline)
        self._post(stream.address, {"type": "stream_feed", "id": entry.rid,
                                    "stream": stream.stream_id, "word": word,
                                    "budget": None}, entry)
        return future

    def _send_stream_close(self, stream: ClusterStream) -> None:
        future: Future = Future()
        entry = _Pending(next(self._ids), future)
        self._post(stream.address, {"type": "stream_close", "id": entry.rid,
                                    "stream": stream.stream_id}, entry)
        # A dead shard already tore the stream down with it.
        with contextlib.suppress(ClusterError, TimeoutError):
            future.result(10.0)

    # -- control plane ------------------------------------------------------

    def _control(self, address: str, mtype: str, timeout: float) -> dict:
        future: Future = Future()
        entry = _Pending(next(self._ids), future)
        self._post(address, {"type": mtype, "id": entry.rid}, entry)
        return future.result(timeout)

    def ping(self, *, timeout: float = 10.0) -> "dict[str, dict]":
        """Pong (shard id, address, service state) per shard."""
        return {address: self._control(address, "ping", timeout)
                for address in self.router.addresses}

    def snapshot(self, *, timeout: float = 30.0) -> "dict[str, dict]":
        """Each shard's full :meth:`ParseService.snapshot`."""
        return {address: self._control(address, "snapshot", timeout)["snapshot"]
                for address in self.router.addresses}

    def drain(self, timeout: float | None = None) -> bool:
        """Wait for every in-flight request's reply; True when idle.

        Shard-side service drains are separate (`ask via snapshot` or
        the launcher); this drains the *wire*: after it returns True
        there are no unanswered frames, which is the precondition
        ``close(wait=True)`` needs to never orphan a computed verdict.
        """
        async def _wait_idle():
            await self._idle.wait()

        handle = asyncio.run_coroutine_threadsafe(_wait_idle(), self._loop)
        try:
            handle.result(timeout)
            return True
        except TimeoutError:
            handle.cancel()
            return False

    def close(self, *, wait: bool = True, timeout: float | None = 30.0) -> None:
        """Shut the client down; with ``wait``, drain in-flight replies first."""
        if self._closed:
            return
        self._closed = True
        if wait and self._loop is not None and not self._loop.is_closed():
            self.drain(timeout)
        if self._loop is not None and self._stop is not None:
            with contextlib.suppress(RuntimeError):  # loop already closed
                self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout)

    def cache_info(self) -> "dict[str, int]":
        """The client-side rebind template cache's counters."""
        return self._session.cache_info()

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClusterClient({len(self.router.addresses)} shards, engine={self.engine!r})"
