"""The cluster benchmark: spin a fleet, load it, believe only the logs.

:func:`run_bench` is the one entry point (`repro cluster bench`, the
``benchmarks/bench_cluster.py`` wrapper, and the CI smoke job all call
it): launch N shard subprocesses, gate on *bit-identity* — every
verdict and packed network bit from the cluster must equal a
single-process parse of the same corpus, including a streaming
session — then drive closed- and open-loop load, and derive the
published throughput/latency numbers from the merged shard logs
(:mod:`repro.cluster.logs`), not from the generator's own bookkeeping.

The record is honest by construction: it embeds
:func:`~repro.analysis.host.host_metadata`, and on hosts with fewer
cores than cluster processes the scaling claim is *refused* and
replaced with an annotation (the PR-5 lesson — a 1-CPU container can
report a ratio, but that ratio measures scheduling, not scaling).
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.analysis.host import host_metadata, scaling_claim_allowed, scaling_note
from repro.cluster.launcher import ClusterLauncher
from repro.cluster.loadgen import closed_loop, open_loop, seeded_corpus
from repro.cluster.logs import ClusterLogParser
from repro.pipeline.session import ParserSession

#: The built-in grammar resolver lives in the CLI; imported lazily in
#: :func:`_resolve` to keep bench importable without argparse baggage.


def _resolve(grammar_spec: str):
    from repro.cli import _resolve_grammar

    return _resolve_grammar(grammar_spec)


def _bits_equal(a, b) -> bool:
    import numpy as np

    return (
        a.locally_consistent == b.locally_consistent
        and a.ambiguous == b.ambiguous
        and np.array_equal(a.network.alive_bits, b.network.alive_bits)
        and np.array_equal(a.network.matrix_bits, b.network.matrix_bits)
    )


def _check_bit_identity(client, grammar, engine: str, sentences) -> dict:
    """Cluster results vs one in-process session, bit for bit."""
    reference = ParserSession(grammar, engine=engine).parse_many(sentences)
    clustered = client.parse_many(sentences)
    mismatches = [
        index
        for index, (ours, theirs) in enumerate(zip(clustered, reference))
        if not _bits_equal(ours, theirs)
    ]
    # One streaming session rides along: per-prefix verdicts must match
    # the in-process incremental parse word for word.
    stream_sentence = max(sentences, key=len)
    session = ParserSession(grammar, engine=engine)
    stream_ok = True
    with client.submit_stream() as stream:
        local = session.stream()
        for word in stream_sentence:
            ours = stream.feed(word).result()
            theirs = local.extend(word)
            if not _bits_equal(ours, theirs):
                stream_ok = False
    return {
        "sentences": len(sentences),
        "mismatches": mismatches,
        "stream_ok": stream_ok,
        "ok": not mismatches and stream_ok,
    }


def run_bench(
    *,
    grammar: str = "english",
    engine: str = "vector",
    shards: int = 2,
    workers: int = 1,
    workers_mode: str = "thread",
    quick: bool = False,
    requests: "int | None" = None,
    concurrency: int = 4,
    open_rate: "float | None" = None,
    open_duration: "float | None" = None,
    corpus_seed: int = 0,
    run_dir: "Path | str | None" = None,
    out_path: "Path | str | None" = None,
) -> dict:
    """Run the full cluster benchmark; returns (and optionally writes) the record."""
    if requests is None:
        requests = 32 if quick else 160
    if open_rate is None:
        open_rate = 40.0 if quick else 120.0
    if open_duration is None:
        open_duration = 0.5 if quick else 2.0
    host = host_metadata()
    grammar_obj = _resolve(grammar)
    sentences = seeded_corpus(seed=corpus_seed, size=24 if quick else 48)
    cluster_procs = shards * max(1, workers)

    owned_dir = None
    if run_dir is None:
        owned_dir = tempfile.TemporaryDirectory(prefix="repro-cluster-bench-")
        run_dir = owned_dir.name
    try:
        with ClusterLauncher(
            grammar, shards=shards, engine=engine, workers=workers,
            workers_mode=workers_mode, run_dir=run_dir,
        ) as launcher, launcher.client(grammar_obj) as client:
            identity = _check_bit_identity(client, grammar_obj, engine, sentences)
            closed = closed_loop(
                client, sentences, requests=requests, concurrency=concurrency
            )
            opened = open_loop(
                client, sentences, rate=open_rate, duration=open_duration
            )
            client.drain()
            log_dir = launcher.log_dir
        # Shards have exited (logs are flushed and closed) — now parse them.
        logs = ClusterLogParser.from_directory(log_dir).summary()
    finally:
        # The logs were parsed inside the try; the run directory can go.
        if owned_dir is not None:
            owned_dir.cleanup()

    claim_allowed = scaling_claim_allowed(cluster_procs, cpus=host["cpu_count"])
    record = {
        "bench": "cluster",
        "host": host,
        "config": {
            "grammar": grammar,
            "engine": engine,
            "shards": shards,
            "workers_per_shard": workers,
            "workers_mode": workers_mode,
            "quick": quick,
            "corpus_seed": corpus_seed,
            "corpus_size": len(sentences),
        },
        "bit_identity": identity,
        "closed_loop": closed.to_record(),
        "open_loop": opened.to_record(),
        "shard_logs": logs,
        "scaling_claim_allowed": claim_allowed,
    }
    if not claim_allowed:
        record["scaling_note"] = scaling_note(cluster_procs, cpus=host["cpu_count"])
    if out_path is not None:
        Path(out_path).write_text(json.dumps(record, indent=2) + "\n")
    return record


def print_report(record: dict, out) -> None:
    """Human-readable summary of a :func:`run_bench` record."""
    config = record["config"]
    identity = record["bit_identity"]
    print(
        f"cluster bench: {config['shards']} shard(s) x {config['workers_per_shard']} "
        f"worker(s) [{config['workers_mode']}], grammar={config['grammar']}, "
        f"engine={config['engine']}",
        file=out,
    )
    verdict = "OK" if identity["ok"] else "FAILED"
    print(
        f"  bit-identity vs single process: {verdict} "
        f"({identity['sentences']} sentences, stream "
        f"{'ok' if identity['stream_ok'] else 'MISMATCH'})",
        file=out,
    )
    for name in ("closed_loop", "open_loop"):
        loop = record[name]
        print(
            f"  {loop['mode']} loop: {loop['completed']}/{loop['requests']} ok, "
            f"{loop['throughput_rps']} req/s, "
            f"p50 {loop['p50_ms']} ms / p95 {loop['p95_ms']} ms / p99 {loop['p99_ms']} ms",
            file=out,
        )
    logs = record["shard_logs"]
    print(
        f"  shard logs: {logs['completed']} completed on shards {logs['shards']}, "
        f"{logs['throughput_rps']} req/s over {logs['window_seconds']}s, "
        f"p50 {logs['latency']['p50_ms']} ms / p95 {logs['latency']['p95_ms']} ms "
        f"/ p99 {logs['latency']['p99_ms']} ms",
        file=out,
    )
    if record["scaling_claim_allowed"]:
        host = record["host"]
        print(
            f"  scaling: measured on {host['cpu_count']} CPUs — "
            "ratios are eligible as scaling claims",
            file=out,
        )
    else:
        print(f"  scaling: {record['scaling_note']}", file=out)
