"""repro.cluster — the networked sharded parse cluster.

The MasPar paper's architecture is a front end dispatching to a
parallel back end; this package is that shape over real sockets.  A
:class:`ClusterClient` consistent-hash routes each sentence's *shape*
to one of N :class:`ParseServer` shards (each fronting its own
:class:`~repro.serve.ParseService`, so the whole PR-5 process data
plane is per-shard), speaks a length-prefixed binary wire protocol
with per-request deadline budgets, and rebinds the packed verdict bits
it gets back into full results that are bit-identical to an in-process
parse.  A :class:`ClusterLauncher` runs shards as subprocesses with a
start/drain/shutdown lifecycle, and the load/bench harness
(:mod:`~repro.cluster.loadgen`, :mod:`~repro.cluster.logs`,
:mod:`~repro.cluster.bench`) derives its published numbers from merged
per-shard logs, with scaling claims gated on the host's actual cores.
"""

from repro.cluster.bench import run_bench
from repro.cluster.errors import (
    ClusterError,
    ConnectionClosed,
    FrameTooLarge,
    ShardUnavailable,
    WireError,
)
from repro.cluster.launcher import ClusterLauncher
from repro.cluster.loadgen import LoadReport, closed_loop, open_loop, seeded_corpus
from repro.cluster.logs import ClusterLogParser
from repro.cluster.ring import HashRing, hash_key
from repro.cluster.router import ClusterClient, ClusterStream, ShardRouter
from repro.cluster.server import ParseServer

__all__ = [
    "ClusterError",
    "WireError",
    "FrameTooLarge",
    "ConnectionClosed",
    "ShardUnavailable",
    "HashRing",
    "hash_key",
    "ParseServer",
    "ShardRouter",
    "ClusterClient",
    "ClusterStream",
    "ClusterLauncher",
    "LoadReport",
    "closed_loop",
    "open_loop",
    "seeded_corpus",
    "ClusterLogParser",
    "run_bench",
]
