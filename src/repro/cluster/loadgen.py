"""Closed- and open-loop load generation against a cluster client.

Two loops because they measure different things:

* :func:`closed_loop` — N workers, each waiting for its reply before
  sending the next request.  Concurrency is fixed, offered rate adapts
  to the cluster: this measures *capacity* (max sustainable throughput
  at a given parallelism) and its latencies are uncontended.
* :func:`open_loop` — requests fire on a fixed schedule whether or not
  earlier replies arrived.  Offered rate is fixed, queueing is allowed
  to happen: this measures *latency under load*, including the queueing
  the closed loop structurally cannot see (the coordinated-omission
  trap: a closed loop slows its own offered rate exactly when the
  system is slow).

Both return a :class:`LoadReport` of client-observed numbers.  The
cluster's *own* story — per-shard receive/done timelines — comes from
the shard logs via :mod:`repro.cluster.logs`; the bench harness records
both and they should agree.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field

from repro.workloads import corpus, sentence_of_length


def seeded_corpus(seed: int = 0, size: int = 48) -> "list[list[str]]":
    """A deterministic multi-shape corpus for cluster workloads.

    Mixes the random grammatical corpus with a length sweep so the
    shape space is wide enough for consistent hashing to spread it
    across shards (a single-shape corpus routes to a single shard by
    design — that is placement working, but a terrible load test).
    """
    sentences = corpus(seed=seed, size=max(1, size - size // 3))
    for n in range(2, 2 + size // 3):
        sentences.append(sentence_of_length(2 + (n % 9)))
    return sentences[:size]


def _percentile(sorted_values: "list[float]", q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample (q in [0, 100])."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(q / 100.0 * (len(sorted_values) - 1))))
    return sorted_values[rank]


@dataclass
class LoadReport:
    """One load run's client-observed outcome."""

    mode: str
    requests: int = 0
    completed: int = 0
    failed: int = 0
    elapsed_seconds: float = 0.0
    offered_rate: "float | None" = None
    latencies_ms: "list[float]" = field(default_factory=list, repr=False)
    errors: "dict[str, int]" = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.completed / self.elapsed_seconds

    def percentiles(self) -> "dict[str, float]":
        ordered = sorted(self.latencies_ms)
        return {
            "p50_ms": _percentile(ordered, 50),
            "p95_ms": _percentile(ordered, 95),
            "p99_ms": _percentile(ordered, 99),
            "max_ms": ordered[-1] if ordered else 0.0,
        }

    def to_record(self) -> dict:
        """A JSON-safe summary (raw latency samples are not embedded)."""
        record = {
            "mode": self.mode,
            "requests": self.requests,
            "completed": self.completed,
            "failed": self.failed,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "throughput_rps": round(self.throughput_rps, 3),
            "errors": dict(self.errors),
        }
        if self.offered_rate is not None:
            record["offered_rate_rps"] = round(self.offered_rate, 3)
        record.update({key: round(value, 3) for key, value in self.percentiles().items()})
        return record


def closed_loop(
    client,
    sentences: "list[list[str]]",
    *,
    requests: int = 96,
    concurrency: int = 4,
    timeout: "float | None" = None,
) -> LoadReport:
    """Fixed concurrency, adaptive rate: each worker waits for its reply."""
    report = LoadReport(mode="closed", requests=requests)
    lock = threading.Lock()
    counter = itertools.count()
    cycle = itertools.cycle(sentences)

    def worker() -> None:
        while True:
            with lock:
                index = next(counter)
                if index >= requests:
                    return
                sentence = next(cycle)
            begin = time.monotonic()
            try:
                client.submit(sentence, timeout=timeout).result()
            except Exception as error:  # noqa: BLE001 - tallied, run continues
                with lock:
                    report.failed += 1
                    name = type(error).__name__
                    report.errors[name] = report.errors.get(name, 0) + 1
                continue
            latency = (time.monotonic() - begin) * 1000.0
            with lock:
                report.completed += 1
                report.latencies_ms.append(latency)

    started = time.monotonic()
    threads = [threading.Thread(target=worker, daemon=True) for _ in range(concurrency)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.elapsed_seconds = time.monotonic() - started
    return report


def open_loop(
    client,
    sentences: "list[list[str]]",
    *,
    rate: float = 100.0,
    duration: float = 1.0,
    timeout: "float | None" = None,
    drain_timeout: float = 60.0,
) -> LoadReport:
    """Fixed offered rate: submissions are paced, replies are asynchronous.

    Latency is measured from each request's *scheduled* send time, so a
    slow cluster cannot hide queueing by slowing the generator down.
    """
    if rate <= 0:
        raise ValueError(f"open-loop rate must be positive, got {rate}")
    report = LoadReport(mode="open", offered_rate=rate)
    lock = threading.Lock()
    interval = 1.0 / rate
    cycle = itertools.cycle(sentences)
    pending: "list[threading.Event]" = []

    def finished(begin: float, done_event: threading.Event):
        def callback(future) -> None:
            error = future.exception()
            with lock:
                if error is None:
                    report.completed += 1
                    report.latencies_ms.append((time.monotonic() - begin) * 1000.0)
                else:
                    report.failed += 1
                    name = type(error).__name__
                    report.errors[name] = report.errors.get(name, 0) + 1
            done_event.set()

        return callback

    started = time.monotonic()
    deadline = started + duration
    tick = started
    while tick < deadline:
        scheduled = tick
        now = time.monotonic()
        if scheduled > now:
            time.sleep(scheduled - now)
        done_event = threading.Event()
        pending.append(done_event)
        report.requests += 1
        try:
            future = client.submit(next(cycle), timeout=timeout)
        except Exception as error:  # noqa: BLE001 - tallied, run continues
            with lock:
                report.failed += 1
                name = type(error).__name__
                report.errors[name] = report.errors.get(name, 0) + 1
            done_event.set()
        else:
            future.add_done_callback(finished(scheduled, done_event))
        tick += interval
    wait_until = time.monotonic() + drain_timeout
    for done_event in pending:
        done_event.wait(max(0.0, wait_until - time.monotonic()))
    report.elapsed_seconds = time.monotonic() - started
    return report
