"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch the whole family with a single
``except`` clause while still being able to distinguish the layers
(s-expression syntax, constraint semantics, grammar definition, machine
simulation) when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SexprSyntaxError(ReproError):
    """Malformed s-expression text (unbalanced parens, bad token, ...)."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class ConstraintError(ReproError):
    """A constraint expression is semantically invalid.

    Examples: unknown access function, wrong arity, a binary constraint
    using three distinct variables, or a type mismatch such as comparing a
    label with a position using ``gt``.
    """


class GrammarError(ReproError):
    """A CDG grammar definition is inconsistent.

    Examples: a constraint referring to a label that is not in ``L``, a
    role-table entry for an unknown role, or a lexicon entry with an
    unknown category.
    """


class LexiconError(GrammarError):
    """A word is not covered by the grammar's lexicon."""


class NetworkError(ReproError):
    """Invalid operation on a constraint network (e.g. mismatched shapes)."""


class ConcurrentSessionUse(ReproError):
    """Two threads entered one :class:`ParserSession` simultaneously.

    Sessions are single-threaded by contract (cached templates share
    scratch buffers across the sentences they bind, so interleaved
    parses would corrupt each other's state).  For concurrent callers
    use :class:`repro.serve.ParseService`, which gives every worker
    thread a private session.
    """


class StreamError(ReproError):
    """Invalid operation on a streaming parse.

    Raised when a :class:`~repro.pipeline.streaming.StreamingParse` is
    used before any word arrived, or after an earlier ``extend`` failed
    (a broken stream's retained state cannot be trusted; open a new one).
    """


class MachineError(ReproError):
    """Invalid operation on a simulated machine (PRAM or MasPar)."""


class VirtualizationError(MachineError):
    """A kernel requested more virtual PEs than the machine can virtualize."""


class ExtractionError(ReproError):
    """Parse-graph extraction failed (e.g. requested parses of a rejected CN)."""
