"""The CDG constraint language (paper section 1.3).

Access functions: ``(lab x) (mod x) (role x) (pos x) (word p) (cat w)``.
Predicates: ``(and ...) (or ...) (not p) (eq a b) (gt a b) (lt a b)``.
Constraints: ``(if antecedent consequent)`` over one variable (``x``,
unary) or two (``x`` and ``y``, binary).

The package type-checks constraints once (:mod:`repro.constraints.typing`)
and compiles them twice: to scalar Python closures for the sequential and
per-PE simulators, and to numpy broadcast evaluators for the data-parallel
engines.  The two backends are required to agree bit-for-bit; a
hypothesis test in ``tests/test_constraint_backends.py`` enforces it.
"""

from repro.constraints.constraint import Constraint
from repro.constraints.scalar import EvalEnv, compile_scalar
from repro.constraints.symbols import NIL_MOD, Interner, SymbolTable
from repro.constraints.typing import TypedConstraint, type_constraint
from repro.constraints.vector import VectorEnv, compile_vector

__all__ = [
    "Constraint",
    "EvalEnv",
    "VectorEnv",
    "SymbolTable",
    "Interner",
    "NIL_MOD",
    "TypedConstraint",
    "type_constraint",
    "compile_scalar",
    "compile_vector",
]
