"""Symbol namespaces shared by grammars and the constraint compilers.

A CDG grammar owns three independent namespaces — labels (``SUBJ``),
categories (``noun``) and roles (``governor``).  Each is an
:class:`Interner` mapping symbol text to a dense integer code; dense codes
let the vector backend store role-value fields as small integer arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConstraintError

#: Modifiee code reserved for ``nil`` ("modifies no word").
NIL_MOD = 0


class Interner:
    """Bidirectional symbol <-> dense-code table."""

    def __init__(self, namespace: str, symbols: tuple[str, ...] = ()):
        self.namespace = namespace
        self._codes: dict[str, int] = {}
        self._names: list[str] = []
        for symbol in symbols:
            self.intern(symbol)

    def intern(self, symbol: str) -> int:
        """Return the code for *symbol*, creating one if needed."""
        code = self._codes.get(symbol)
        if code is None:
            code = len(self._names)
            self._codes[symbol] = code
            self._names.append(symbol)
        return code

    def code(self, symbol: str) -> int:
        """Return the code for *symbol*; raises if unknown."""
        try:
            return self._codes[symbol]
        except KeyError:
            raise ConstraintError(
                f"unknown {self.namespace} symbol {symbol!r}; known: {sorted(self._codes)}"
            ) from None

    def name(self, code: int) -> str:
        return self._names[code]

    def __contains__(self, symbol: str) -> bool:
        return symbol in self._codes

    def __len__(self) -> int:
        return len(self._names)

    def names(self) -> tuple[str, ...]:
        return tuple(self._names)


@dataclass
class SymbolTable:
    """The three namespaces a constraint expression may reference."""

    labels: Interner = field(default_factory=lambda: Interner("label"))
    categories: Interner = field(default_factory=lambda: Interner("category"))
    roles: Interner = field(default_factory=lambda: Interner("role"))

    def resolve(self, namespace: str, symbol: str) -> int:
        """Resolve *symbol* in the named namespace ("label"/"category"/"role")."""
        interner = {
            "label": self.labels,
            "category": self.categories,
            "role": self.roles,
        }[namespace]
        return interner.code(symbol)
