"""Type checking and symbol resolution: s-expression AST -> typed IR.

This is the single place where the constraint language's semantics are
decided; both backends (scalar and vector) are mechanical walks of the
typed tree produced here.

The language, verbatim from the paper (section 1.3):

Access functions::

    (lab x)   label for role value x
    (mod x)   modifiee for role value x
    (role x)  role for role value x
    (pos x)   word position for role value x
    (word p)  word at sentence position p
    (cat w)   part of speech for word w

Predicates::

    (and p q) (or p q) (not p) (eq x y) (gt x y) (lt x y)

with ``gt``/``lt`` true only when both operands are integers (so a ``nil``
modifiee makes them false).  ``and``/``or`` accept two *or more* arguments
as a convenience; the paper only ever uses two.

A constraint is ``(if antecedent consequent)``; a role value (or pair)
*violates* the constraint iff the antecedent holds and the consequent does
not, so the compiled test is ``(not antecedent) or consequent``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConstraintError
from repro.sexpr.nodes import Atom, SList, SNode, sexpr_to_str
from repro.constraints.symbols import SymbolTable
from repro.constraints.texpr import (
    CODE_KINDS,
    EqMode,
    Kind,
    NUMERIC_KINDS,
    TAnd,
    TCatSet,
    TCmp,
    TConst,
    TEq,
    TExpr,
    TField,
    TNot,
    TOr,
    variables_used,
)

#: Role-value variables the language recognises (one for unary constraints,
#: two for binary ones; the paper argues more would be too slow).
VARIABLES = ("x", "y")

_FIELD_KINDS = {
    "lab": Kind.LABEL,
    "mod": Kind.MODV,
    "role": Kind.ROLE,
    "pos": Kind.POSN,
}

_KIND_NAMESPACE = {
    Kind.LABEL: "label",
    Kind.CAT: "category",
    Kind.ROLE: "role",
    Kind.CATSET: "category",
}


@dataclass(frozen=True)
class _Unresolved:
    """A bare symbol whose namespace depends on what it is compared against."""

    symbol: str
    line: int
    column: int


@dataclass(frozen=True)
class _WordRef:
    """Result of ``(word e)`` — a word designated by a position expression.

    Only ``(cat ...)`` may consume it.
    """

    position: TExpr


class TypedConstraint:
    """A fully resolved constraint, ready for compilation.

    Attributes:
        name: diagnostic name (auto-generated when the grammar omits one).
        source: canonical s-expression text.
        expr: the typed permitted-test (true = the role value(s) survive).
        arity: 1 for unary constraints, 2 for binary.
    """

    def __init__(self, name: str, source: str, expr: TExpr, arity: int):
        self.name = name
        self.source = source
        self.expr = expr
        self.arity = arity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TypedConstraint({self.name!r}, arity={self.arity})"


def type_constraint(node: SNode, symbols: SymbolTable, name: str = "") -> TypedConstraint:
    """Resolve and type-check one ``(if antecedent consequent)`` form."""
    if not isinstance(node, SList) or node.head_symbol != "if" or len(node) != 3:
        raise ConstraintError(
            f"a constraint must be (if antecedent consequent); got {sexpr_to_str(node)}"
        )
    checker = _Typer(symbols)
    antecedent = checker.boolean(node[1])
    consequent = checker.boolean(node[2])
    permitted = TOr((TNot(antecedent), consequent))
    used = variables_used(permitted)
    bad = used - set(VARIABLES)
    if bad:
        raise ConstraintError(f"constraint uses unknown variables {sorted(bad)}; only x and y are allowed")
    if "y" in used and "x" not in used:
        raise ConstraintError("a binary constraint must use variable x as well as y")
    arity = 2 if "y" in used else 1
    if not used:
        raise ConstraintError("constraint references no role-value variable")
    return TypedConstraint(name=name, source=sexpr_to_str(node), expr=permitted, arity=arity)


class _Typer:
    def __init__(self, symbols: SymbolTable):
        self.symbols = symbols

    # -- boolean layer -------------------------------------------------

    def boolean(self, node: SNode) -> TExpr:
        if not isinstance(node, SList) or node.head_symbol is None:
            raise ConstraintError(f"expected a predicate, got {sexpr_to_str(node)}")
        head = node.head_symbol
        args = node.args
        if head in ("and", "or"):
            if len(args) < 2:
                raise ConstraintError(f"({head} ...) needs at least two arguments")
            parts = tuple(self.boolean(arg) for arg in args)
            return TAnd(parts) if head == "and" else TOr(parts)
        if head == "not":
            if len(args) != 1:
                raise ConstraintError("(not ...) takes exactly one argument")
            return TNot(self.boolean(args[0]))
        if head == "eq":
            if len(args) != 2:
                raise ConstraintError("(eq ...) takes exactly two arguments")
            return self._eq(self.value(args[0]), self.value(args[1]))
        if head in ("gt", "lt"):
            if len(args) != 2:
                raise ConstraintError(f"({head} ...) takes exactly two arguments")
            return self._cmp(head, self.value(args[0]), self.value(args[1]))
        raise ConstraintError(f"unknown predicate {head!r} in {sexpr_to_str(node)}")

    # -- value layer ---------------------------------------------------

    def value(self, node: SNode):
        if isinstance(node, Atom):
            if node.is_int:
                return TConst(Kind.INT, int(node.value))
            symbol = node.symbol()
            if symbol.lower() == "nil":
                return TConst(Kind.NIL, 0)
            # Bare symbols are grammar constants; their namespace is fixed
            # when they meet the other operand of eq.
            return _Unresolved(symbol, node.line, node.column)
        if not isinstance(node, SList) or node.head_symbol is None:
            raise ConstraintError(f"expected a value expression, got {sexpr_to_str(node)}")
        head = node.head_symbol
        args = node.args
        if head in _FIELD_KINDS:
            if len(args) != 1:
                raise ConstraintError(f"({head} ...) takes exactly one argument")
            var = self._variable(args[0], head)
            return TField(_FIELD_KINDS[head], var, "pos" if head == "pos" else head)
        if head == "word":
            if len(args) != 1:
                raise ConstraintError("(word ...) takes exactly one argument")
            inner = self.value(args[0])
            if isinstance(inner, (_Unresolved, _WordRef)):
                raise ConstraintError("(word ...) needs a position expression")
            if inner.kind not in NUMERIC_KINDS:
                raise ConstraintError(f"(word ...) needs a position, got {inner.kind.value}")
            return _WordRef(inner)
        if head == "cat":
            if len(args) != 1:
                raise ConstraintError("(cat ...) takes exactly one argument")
            inner = self.value(args[0])
            if not isinstance(inner, _WordRef):
                raise ConstraintError("(cat ...) must be applied to (word ...)")
            position = inner.position
            # (cat (word (pos x))) is the category *assumed by* role value x
            # — with lexically ambiguous words this is a per-role-value
            # field, not a lookup.
            if isinstance(position, TField) and position.field == "pos":
                return TField(Kind.CAT, position.var, "cat")
            return TCatSet(position)
        raise ConstraintError(f"unknown access function {head!r} in {sexpr_to_str(node)}")

    def _variable(self, node: SNode, context: str) -> str:
        if isinstance(node, Atom) and node.is_symbol and node.symbol() in VARIABLES:
            return node.symbol()
        raise ConstraintError(f"({context} ...) expects a role-value variable x or y, got {sexpr_to_str(node)}")

    # -- comparisons ---------------------------------------------------

    def _resolve_pair(self, left, right):
        """Resolve unresolved bare symbols against the opposite operand."""
        if isinstance(left, _Unresolved) and isinstance(right, _Unresolved):
            raise ConstraintError(
                f"cannot compare two bare symbols {left.symbol!r} and {right.symbol!r}"
            )
        if isinstance(left, _Unresolved):
            right, left = self._resolve_pair(right, left)
            return left, right
        if isinstance(right, _Unresolved):
            if left.kind not in _KIND_NAMESPACE:
                raise ConstraintError(
                    f"symbol {right.symbol!r} compared against a {left.kind.value} expression"
                )
            namespace = _KIND_NAMESPACE[left.kind]
            code = self.symbols.resolve(namespace, right.symbol)
            kind = Kind.CAT if left.kind == Kind.CATSET else left.kind
            right = TConst(kind, code)
        return left, right

    def _eq(self, left, right) -> TExpr:
        if isinstance(left, _WordRef) or isinstance(right, _WordRef):
            raise ConstraintError("(word ...) can only be used inside (cat ...)")
        left, right = self._resolve_pair(left, right)

        lk, rk = left.kind, right.kind
        if lk == Kind.CATSET or rk == Kind.CATSET:
            if lk == Kind.CATSET and rk == Kind.CATSET:
                return TEq(EqMode.CATSET_CATSET, left, right)
            if lk == Kind.CATSET:
                catset, other = left, right
            else:
                catset, other = right, left
            if other.kind != Kind.CAT:
                raise ConstraintError(
                    f"category set compared against a {other.kind.value} expression"
                )
            return TEq(EqMode.CATSET_CODE, catset, other)
        if lk in CODE_KINDS or rk in CODE_KINDS:
            if lk != rk:
                raise ConstraintError(f"cannot eq a {lk.value} with a {rk.value}")
            return TEq(EqMode.CODE, left, right)
        if lk == Kind.NIL and rk == Kind.NIL:
            raise ConstraintError("(eq nil nil) is vacuous")
        if Kind.NIL in (lk, rk):
            other = right if lk == Kind.NIL else left
            if other.kind == Kind.MODV:
                return TEq(EqMode.NUMERIC, left, right)  # nil encodes as 0
            # Positions and integers are never nil.
            return TEq(EqMode.CONST_FALSE, left, right)
        if lk in NUMERIC_KINDS and rk in NUMERIC_KINDS:
            return TEq(EqMode.NUMERIC, left, right)
        raise ConstraintError(f"cannot eq a {lk.value} with a {rk.value}")

    def _cmp(self, op: str, left, right) -> TExpr:
        if isinstance(left, (_Unresolved, _WordRef)) or isinstance(right, (_Unresolved, _WordRef)):
            raise ConstraintError(f"({op} ...) compares positions; symbols are not ordered")
        lk, rk = left.kind, right.kind
        if lk == Kind.NIL or rk == Kind.NIL:
            # "true if x > y and x, y in Integers" — nil is not an integer.
            return TEq(EqMode.CONST_FALSE, TConst(Kind.INT, 0), TConst(Kind.INT, 0))
        if lk not in NUMERIC_KINDS or rk not in NUMERIC_KINDS:
            raise ConstraintError(f"({op} ...) needs integer operands, got {lk.value} and {rk.value}")
        return TCmp(
            op=op,
            left=left,
            right=right,
            guard_left=lk == Kind.MODV,
            guard_right=rk == Kind.MODV,
        )
