"""Vector backend: compile a typed constraint to a numpy evaluator.

This backend is the numpy stand-in for the MasPar's SIMD lock-step
execution: one compiled constraint evaluates over *all* role values (or
all pairs of role values) at once, exactly the way the ACU broadcasts one
instruction to every PE.

Calling convention
------------------

The compiled function takes a :class:`VectorEnv` whose field arrays may be
any mutually broadcastable shapes.  The two standard uses are:

* unary: ``x`` fields of shape ``(NV,)`` -> result ``(NV,)``;
* binary: ``x`` fields of shape ``(NV, 1)`` and ``y`` fields of shape
  ``(1, NV)`` -> result ``(NV, NV)``, the full pair matrix in one shot.

Per the hpc-parallel guides, the evaluators avoid Python-level loops and
temporaries where practical (in-place logical ops on the accumulators).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.constraints.texpr import (
    EqMode,
    TAnd,
    TCatSet,
    TCmp,
    TConst,
    TEq,
    TExpr,
    TField,
    TNot,
    TOr,
)
from repro.constraints.typing import TypedConstraint

#: Field arrays for one variable: keys "pos", "role", "cat", "lab", "mod".
FieldArrays = Mapping[str, np.ndarray]


@dataclass
class VectorEnv:
    """Bindings for one vectorized constraint evaluation.

    Attributes:
        x: field arrays for variable ``x``.
        y: field arrays for ``y`` (unused by unary constraints).
        canbe: bool array of shape ``(n + 1, n_categories)``;
            ``canbe[0]`` is all-False (nil has no category).
    """

    x: FieldArrays
    y: FieldArrays | None
    canbe: np.ndarray
    #: Memoized broadcast result shape — envs are reused across every
    #: constraint of a template build, and each expression node needs
    #: the same answer, so it is computed once per env rather than per
    #: node (per-node ``broadcast_shapes`` calls dominated small builds).
    _shape: "tuple[int, ...] | None" = None


VectorFn = Callable[[VectorEnv], np.ndarray]


def compile_vector(constraint: TypedConstraint) -> VectorFn:
    """Compile *constraint* to: env -> bool array of surviving tests."""
    return _compile_bool(constraint.expr)


def _broadcast_shape(env: VectorEnv) -> tuple[int, ...]:
    if env._shape is None:
        shapes = [env.x["pos"].shape]
        if env.y is not None:
            shapes.append(env.y["pos"].shape)
        env._shape = np.broadcast_shapes(*shapes)
    return env._shape


def _expand(out: np.ndarray, env: VectorEnv) -> np.ndarray:
    """*out* broadcast to the env's result shape (a no-op when it fits).

    Equal-shape results pass through untouched: ``np.broadcast_to`` has
    measurable per-call cost, and at sentence-sized NV the expression
    walk is call-overhead-bound, not element-bound.
    """
    shape = _broadcast_shape(env)
    return out if out.shape == shape else np.broadcast_to(out, shape)


def _compile_bool(expr: TExpr) -> VectorFn:
    if isinstance(expr, TAnd):
        parts = [_compile_bool(part) for part in expr.parts]

        def run_and(env: VectorEnv) -> np.ndarray:
            out = _expand(parts[0](env), env).copy()
            for part in parts[1:]:
                out &= part(env)
            return out

        return run_and
    if isinstance(expr, TOr):
        parts = [_compile_bool(part) for part in expr.parts]

        def run_or(env: VectorEnv) -> np.ndarray:
            out = _expand(parts[0](env), env).copy()
            for part in parts[1:]:
                out |= part(env)
            return out

        return run_or
    if isinstance(expr, TNot):
        inner = _compile_bool(expr.part)
        return lambda env: ~inner(env)
    if isinstance(expr, TEq):
        return _compile_eq(expr)
    if isinstance(expr, TCmp):
        return _compile_cmp(expr)
    raise TypeError(f"not a boolean expression: {expr!r}")


def _compile_value(expr: TExpr) -> Callable[[VectorEnv], np.ndarray | int]:
    if isinstance(expr, TConst):
        value = expr.value
        return lambda env: value
    if isinstance(expr, TField):
        field = expr.field
        if expr.var == "x":
            return lambda env: env.x[field]
        return lambda env: env.y[field]  # type: ignore[index]
    raise TypeError(f"not a value expression: {expr!r}")


def _compile_eq(expr: TEq) -> VectorFn:
    if expr.mode == EqMode.CONST_FALSE:
        return lambda env: np.zeros(_broadcast_shape(env), dtype=bool)
    if expr.mode in (EqMode.CODE, EqMode.NUMERIC):
        left = _compile_value(expr.left)
        right = _compile_value(expr.right)

        def run_eq(env: VectorEnv) -> np.ndarray:
            return _expand(np.asarray(left(env) == right(env)), env)

        return run_eq
    if expr.mode == EqMode.CATSET_CODE:
        assert isinstance(expr.left, TCatSet)
        position = _compile_value(expr.left.position)
        code = _compile_value(expr.right)

        def run_member(env: VectorEnv) -> np.ndarray:
            pos = np.asarray(position(env))
            cat = code(env)
            if isinstance(cat, (int, np.integer)):
                return _expand(env.canbe[pos, cat], env)
            pos_b, cat_b = np.broadcast_arrays(pos, cat)
            return _expand(env.canbe[pos_b, cat_b], env)

        return run_member
    if expr.mode == EqMode.CATSET_CATSET:
        assert isinstance(expr.left, TCatSet) and isinstance(expr.right, TCatSet)
        lpos = _compile_value(expr.left.position)
        rpos = _compile_value(expr.right.position)

        def run_intersect(env: VectorEnv) -> np.ndarray:
            lsets = env.canbe[np.asarray(lpos(env))]
            rsets = env.canbe[np.asarray(rpos(env))]
            return _expand((lsets & rsets).any(axis=-1), env)

        return run_intersect
    raise AssertionError(f"unhandled eq mode {expr.mode}")  # pragma: no cover


def _compile_cmp(expr: TCmp) -> VectorFn:
    left = _compile_value(expr.left)
    right = _compile_value(expr.right)
    guard_left = expr.guard_left
    guard_right = expr.guard_right
    greater = expr.op == "gt"

    def run_cmp(env: VectorEnv) -> np.ndarray:
        lv = np.asarray(left(env))
        rv = np.asarray(right(env))
        out = lv > rv if greater else lv < rv
        if guard_left:
            out = out & (lv != 0)
        if guard_right:
            out = out & (rv != 0)
        return _expand(out, env)

    return run_cmp
