"""Scalar backend: compile a typed constraint to a Python closure.

This is the evaluator used by the faithful sequential parser and by the
per-PE code of the simulated machines.  Every access function and
predicate in the language is O(1), matching the paper's requirement that
"constraints may contain any access function or predicate, provided that
it can be evaluated in constant time".

The compiled function receives an :class:`EvalEnv` carrying the role
value(s) under test plus the sentence's category table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, Sequence

from repro.constraints.texpr import (
    EqMode,
    TAnd,
    TCatSet,
    TCmp,
    TConst,
    TEq,
    TExpr,
    TField,
    TNot,
    TOr,
)
from repro.constraints.typing import TypedConstraint


class RoleValueLike(Protocol):
    """The five fields a role value exposes to constraints (all ints)."""

    pos: int
    role: int
    cat: int
    lab: int
    mod: int


@dataclass
class EvalEnv:
    """Bindings for one constraint evaluation.

    Attributes:
        x: role value bound to variable ``x``.
        y: role value bound to ``y`` (``None`` for unary constraints).
        canbe: per-position category sets; ``canbe[0]`` must be the empty
            set (nil modifiee has no categories), ``canbe[p]`` the set of
            category codes word *p* may have.
    """

    x: RoleValueLike
    y: RoleValueLike | None
    canbe: Sequence[frozenset[int]]


ScalarFn = Callable[[EvalEnv], bool]
_ValueFn = Callable[[EvalEnv], int]


def compile_scalar(constraint: TypedConstraint) -> ScalarFn:
    """Compile *constraint* to a closure: env -> "the role value(s) survive"."""
    return _compile_bool(constraint.expr)


def _compile_bool(expr: TExpr) -> ScalarFn:
    if isinstance(expr, TAnd):
        parts = [_compile_bool(part) for part in expr.parts]
        return lambda env: all(part(env) for part in parts)
    if isinstance(expr, TOr):
        parts = [_compile_bool(part) for part in expr.parts]
        return lambda env: any(part(env) for part in parts)
    if isinstance(expr, TNot):
        inner = _compile_bool(expr.part)
        return lambda env: not inner(env)
    if isinstance(expr, TEq):
        return _compile_eq(expr)
    if isinstance(expr, TCmp):
        return _compile_cmp(expr)
    raise TypeError(f"not a boolean expression: {expr!r}")


def _compile_value(expr: TExpr) -> _ValueFn:
    if isinstance(expr, TConst):
        value = expr.value
        return lambda env: value
    if isinstance(expr, TField):
        field = expr.field
        if expr.var == "x":
            return lambda env: getattr(env.x, field)
        return lambda env: getattr(env.y, field)
    raise TypeError(f"not a value expression: {expr!r}")


def _compile_eq(expr: TEq) -> ScalarFn:
    if expr.mode == EqMode.CONST_FALSE:
        return lambda env: False
    if expr.mode in (EqMode.CODE, EqMode.NUMERIC):
        left = _compile_value(expr.left)
        right = _compile_value(expr.right)
        return lambda env: left(env) == right(env)
    if expr.mode == EqMode.CATSET_CODE:
        assert isinstance(expr.left, TCatSet)
        position = _compile_value(expr.left.position)
        code = _compile_value(expr.right)
        return lambda env: code(env) in env.canbe[position(env)]
    if expr.mode == EqMode.CATSET_CATSET:
        assert isinstance(expr.left, TCatSet) and isinstance(expr.right, TCatSet)
        lpos = _compile_value(expr.left.position)
        rpos = _compile_value(expr.right.position)
        return lambda env: bool(env.canbe[lpos(env)] & env.canbe[rpos(env)])
    raise AssertionError(f"unhandled eq mode {expr.mode}")  # pragma: no cover


def _compile_cmp(expr: TCmp) -> ScalarFn:
    left = _compile_value(expr.left)
    right = _compile_value(expr.right)
    guard_left = expr.guard_left
    guard_right = expr.guard_right
    if expr.op == "gt":
        def run_gt(env: EvalEnv) -> bool:
            lv = left(env)
            rv = right(env)
            if (guard_left and lv == 0) or (guard_right and rv == 0):
                return False
            return lv > rv

        return run_gt

    def run_lt(env: EvalEnv) -> bool:
        lv = left(env)
        rv = right(env)
        if (guard_left and lv == 0) or (guard_right and rv == 0):
            return False
        return lv < rv

    return run_lt
