"""The :class:`Constraint` object: parsed, typed, and lazily compiled."""

from __future__ import annotations

from functools import cached_property

from repro.sexpr import parse_one
from repro.sexpr.nodes import SNode
from repro.constraints.scalar import EvalEnv, ScalarFn, compile_scalar
from repro.constraints.symbols import SymbolTable
from repro.constraints.typing import TypedConstraint, type_constraint
from repro.constraints.vector import VectorEnv, VectorFn, compile_vector


class Constraint:
    """One unary or binary CDG constraint.

    A constraint is written as ``(if antecedent consequent)``.  A role
    value (unary) or a pair of role values (binary) *violates* it when the
    antecedent holds but the consequent does not; the compiled forms
    evaluate the *permitted* test, i.e. ``(not antecedent) or consequent``.

    Binary constraints are orientation-sensitive: the parser tests each
    pair both as ``(x=a, y=b)`` and as ``(x=b, y=a)``, matching the paper's
    "applied to O(n^4) pairs of role values".
    """

    def __init__(self, typed: TypedConstraint):
        self._typed = typed

    def __getstate__(self) -> dict:
        # The compiled closures under the cached_properties below are
        # process-local and unpicklable; only the typed form crosses a
        # process boundary (workers recompile lazily on first use).
        return {"_typed": self._typed}

    def __setstate__(self, state: dict) -> None:
        self._typed = state["_typed"]

    # -- construction ----------------------------------------------------

    @classmethod
    def from_sexpr(cls, node: SNode, symbols: SymbolTable, name: str = "") -> "Constraint":
        return cls(type_constraint(node, symbols, name=name))

    @classmethod
    def parse(cls, source: str, symbols: SymbolTable, name: str = "") -> "Constraint":
        """Parse one constraint from s-expression *source*."""
        return cls.from_sexpr(parse_one(source), symbols, name=name)

    # -- metadata ----------------------------------------------------------

    @property
    def name(self) -> str:
        return self._typed.name

    @property
    def source(self) -> str:
        return self._typed.source

    @property
    def arity(self) -> int:
        return self._typed.arity

    @property
    def is_unary(self) -> bool:
        return self._typed.arity == 1

    @property
    def is_binary(self) -> bool:
        return self._typed.arity == 2

    @property
    def typed(self) -> TypedConstraint:
        return self._typed

    # -- compiled forms ----------------------------------------------------

    @cached_property
    def scalar(self) -> ScalarFn:
        """Scalar closure: ``EvalEnv -> bool`` (True = survives)."""
        return compile_scalar(self._typed)

    @cached_property
    def vector(self) -> VectorFn:
        """Vectorized evaluator: ``VectorEnv -> bool ndarray``."""
        return compile_vector(self._typed)

    def permits(self, env: EvalEnv) -> bool:
        """Scalar convenience wrapper."""
        return self.scalar(env)

    def permits_vector(self, env: VectorEnv):
        """Vector convenience wrapper."""
        return self.vector(env)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "unary" if self.is_unary else "binary"
        return f"Constraint({self.name or self.source!r}, {kind})"
