"""Typed intermediate representation for constraint expressions.

The s-expression AST (:mod:`repro.sexpr`) is untyped text; the two
compilation backends (scalar Python closures and vectorized numpy
evaluators) both consume the *typed* tree defined here, so symbol
resolution, arity checking and comparison-mode selection happen exactly
once, in :mod:`repro.constraints.typing`.

Value kinds
-----------

``POSN``
    a word position, 1..n — always a real word, never nil.
``MODV``
    a modifiee value: 0 encodes ``nil``, otherwise a position 1..n.
``LABEL`` / ``CAT`` / ``ROLE``
    interned symbol codes from the grammar's namespaces.
``INT``
    an integer literal from the constraint text.
``NIL``
    the reserved constant ``nil``.
``CATSET``
    the *set* of categories a word at a computed position may have —
    produced by ``(cat (word (mod x)))`` where the modifiee word may be
    lexically ambiguous.  ``eq`` against a ``CATSET`` uses membership
    ("can-be") semantics; this is documented in DESIGN.md as the one
    extension needed to support lexically ambiguous input.
``BOOL``
    a truth value.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union


class Kind(enum.Enum):
    POSN = "posn"
    MODV = "modv"
    LABEL = "label"
    CAT = "cat"
    ROLE = "role"
    INT = "int"
    NIL = "nil"
    CATSET = "catset"
    BOOL = "bool"


#: Kinds whose runtime representation is a plain integer that supports
#: ordinal comparison.  ``MODV`` participates but a value of 0 (nil) makes
#: any ``gt``/``lt`` comparison false, per the paper's "x, y in Integers"
#: side condition.
NUMERIC_KINDS = frozenset({Kind.POSN, Kind.MODV, Kind.INT})

#: Kinds represented as interned symbol codes.
CODE_KINDS = frozenset({Kind.LABEL, Kind.CAT, Kind.ROLE})


TExpr = Union[
    "TConst",
    "TField",
    "TCatSet",
    "TEq",
    "TCmp",
    "TAnd",
    "TOr",
    "TNot",
]


@dataclass(frozen=True)
class TConst:
    """A compile-time constant (resolved symbol code, integer, or nil)."""

    kind: Kind
    value: int


@dataclass(frozen=True)
class TField:
    """A field of a role-value variable: ``(lab x)``, ``(mod y)``, ...

    Attributes:
        kind: the field's value kind.
        var: ``"x"`` or ``"y"``.
        field: one of ``"pos" | "lab" | "mod" | "role" | "cat"``.
    """

    kind: Kind
    var: str
    field: str


@dataclass(frozen=True)
class TCatSet:
    """Category set of the word at a computed position.

    ``position`` is a ``POSN``/``MODV``/``INT`` expression.  When it
    evaluates to 0 (a nil modifiee) the set is empty, so every membership
    test is false.
    """

    position: TExpr

    @property
    def kind(self) -> Kind:
        return Kind.CATSET


class EqMode(enum.Enum):
    """How a ``TEq`` comparison is carried out at runtime."""

    CODE = "code"  # interned-code equality (label/cat/role)
    NUMERIC = "numeric"  # integer equality (pos/mod/int, nil == 0)
    CATSET_CODE = "catset_code"  # cat-code member of category set
    CATSET_CATSET = "catset_catset"  # two category sets intersect
    CONST_FALSE = "const_false"  # statically false (e.g. (eq (pos x) nil))


@dataclass(frozen=True)
class TEq:
    mode: EqMode
    left: TExpr
    right: TExpr

    @property
    def kind(self) -> Kind:
        return Kind.BOOL


@dataclass(frozen=True)
class TCmp:
    """Ordinal comparison ``gt`` / ``lt``.

    ``guard_left`` / ``guard_right`` mark operands of kind ``MODV`` whose
    runtime value must be non-nil (> 0) for the comparison to be true.
    """

    op: str  # "gt" | "lt"
    left: TExpr
    right: TExpr
    guard_left: bool
    guard_right: bool

    @property
    def kind(self) -> Kind:
        return Kind.BOOL


@dataclass(frozen=True)
class TAnd:
    parts: tuple[TExpr, ...]

    @property
    def kind(self) -> Kind:
        return Kind.BOOL


@dataclass(frozen=True)
class TOr:
    parts: tuple[TExpr, ...]

    @property
    def kind(self) -> Kind:
        return Kind.BOOL


@dataclass(frozen=True)
class TNot:
    part: TExpr

    @property
    def kind(self) -> Kind:
        return Kind.BOOL


def variables_used(expr: TExpr) -> frozenset[str]:
    """Return the set of role-value variables referenced by *expr*."""
    if isinstance(expr, TField):
        return frozenset({expr.var})
    if isinstance(expr, TCatSet):
        return variables_used(expr.position)
    if isinstance(expr, (TEq, TCmp)):
        return variables_used(expr.left) | variables_used(expr.right)
    if isinstance(expr, (TAnd, TOr)):
        out: frozenset[str] = frozenset()
        for part in expr.parts:
            out |= variables_used(part)
        return out
    if isinstance(expr, TNot):
        return variables_used(expr.part)
    return frozenset()
