"""The faithful sequential CDG parser (Maruyama's algorithm, section 1.4).

This is the paper's serial baseline: O(k_u * n^2) unary propagation,
O(k_b * n^4) binary propagation, each binary constraint followed by one
consistency-maintenance sweep, and filtering to a fixpoint at the end —
all with explicit Python loops and the scalar constraint closures, so the
measured operation counts are exactly the quantities the paper's
complexity analysis talks about.

It is deliberately slow (that is the point of the baseline — the paper's
own Sparcstation run took 3 minutes for a 7-word sentence); use
:class:`repro.engines.vector.VectorEngine` when you just want parses.
"""

from __future__ import annotations

import numpy as np

from repro.constraints.scalar import EvalEnv
from repro.engines.base import EngineStats, ParserEngine, TraceHook
from repro.network.network import ConstraintNetwork
from repro.pipeline.compiled import CompiledGrammar, compile_grammar
from repro.propagation.consistency import consistency_step_serial
from repro.propagation.filtering import filter_network


class SerialEngine(ParserEngine):
    """Sequential reference implementation.

    Args:
        exhaustive: when True, each binary constraint is tested against
            *every* ordered pair of role values — the full O(n^4) sweep
            per constraint of the paper's complexity analysis (and,
            judging by its 15 s/constraint figure, of the authors' own
            serial implementation).  When False (default) pairs whose
            role values are already dead or whose matrix entry is
            already zero are skipped; the final network is identical
            either way, only the work differs.
    """

    name = "serial"

    def __init__(self, exhaustive: bool = False):
        self.exhaustive = exhaustive

    def run(
        self,
        network: ConstraintNetwork,
        *,
        compiled: CompiledGrammar | None = None,
        filter_limit: int | None = None,
        trace: TraceHook | None = None,
    ) -> EngineStats:
        compiled = compiled or compile_grammar(network.grammar)
        # The oracle's faithfulness *is* byte-level mutation: flip the
        # network to its writable boolean view for the explicit loops,
        # and hand back a packed network no matter how we exit.
        network.materialize_bool()
        try:
            stats = EngineStats(processors=1)
            env = EvalEnv(x=None, y=None, canbe=network.canbe_sets)  # type: ignore[arg-type]

            # -- unary propagation ------------------------------------------
            for constraint in compiled.unary:
                permits = constraint.scalar
                dead = []
                for index in np.nonzero(network.alive)[0]:
                    env.x = network.role_values[index]
                    stats.unary_checks += 1
                    if not permits(env):
                        dead.append(index)
                network.kill(np.asarray(dead, dtype=np.int64))
                stats.role_values_killed += len(dead)
                if trace:
                    trace(f"unary:{constraint.name}", network)
            if trace:
                trace("unary-done", network)

            # -- binary propagation, one consistency sweep per constraint ----
            for constraint in compiled.binary:
                permits = constraint.scalar
                candidates = (
                    np.arange(network.nv) if self.exhaustive else np.nonzero(network.alive)[0]
                )
                zeroed = 0
                for a in candidates:
                    rv_a = network.role_values[a]
                    role_a = network.role_index[a]
                    for b in candidates:
                        if network.role_index[b] == role_a:
                            continue
                        stats.pair_checks += 1
                        if not self.exhaustive and not network.matrix[a, b]:
                            continue
                        env.x = rv_a
                        env.y = network.role_values[b]
                        if not permits(env):
                            if network.matrix[a, b]:
                                zeroed += 2
                            network.matrix[a, b] = False
                            network.matrix[b, a] = False
                stats.matrix_entries_zeroed += zeroed
                if trace:
                    trace(f"binary:{constraint.name}", network)

                killed = consistency_step_serial(network)
                stats.role_values_killed += killed
                stats.consistency_passes += 1
                if trace:
                    trace(f"consistency:{constraint.name}", network)

            # -- filtering ----------------------------------------------------

            def counting_step(net: ConstraintNetwork) -> int:
                killed = consistency_step_serial(net)
                stats.role_values_killed += killed
                stats.consistency_passes += 1
                return killed

            stats.filtering_iterations = filter_network(network, counting_step, limit=filter_limit)
            if trace:
                trace("filtering-done", network)
            # Report the working representation's footprint before run()'s
            # finally-repack folds it back to packed words.
            stats.extra["network_bytes"] = network.state_nbytes()
            return stats
        finally:
            network.repack()
