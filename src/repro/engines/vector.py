"""The numpy data-parallel CDG parser.

This engine is the repository's stand-in for SIMD execution (see
DESIGN.md): every constraint is evaluated over *all* role values — or all
O(n^2) x O(n^2) pairs — in one broadcast numpy expression, mirroring the
ACU broadcasting one instruction to every PE.  Consistency maintenance is
the masked matrix product from :mod:`repro.propagation.consistency`,
which is the same OR-along-rows / AND-across-arcs dataflow the MasPar
performs with ``scanOr``/``scanAnd`` (Figures 10 and 12).

Results are bit-identical to :class:`repro.engines.serial.SerialEngine`;
only the wall-clock differs (by orders of magnitude, which is Table
RES-T3's point).
"""

from __future__ import annotations

import numpy as np

from repro.constraints.vector import VectorEnv
from repro.engines.base import EngineStats, ParserEngine, TraceHook
from repro.network.network import ConstraintNetwork
from repro.propagation.consistency import consistency_step_vector
from repro.propagation.filtering import filter_network


class VectorEngine(ParserEngine):
    """Vectorized (numpy broadcast) implementation."""

    name = "vector"

    def run(
        self,
        network: ConstraintNetwork,
        *,
        filter_limit: int | None = None,
        trace: TraceHook | None = None,
    ) -> EngineStats:
        stats = EngineStats()

        # -- unary propagation: one vector evaluation per constraint -----
        unary_env = VectorEnv(x=network.unary_fields(), y=None, canbe=network.canbe_array)
        for constraint in network.grammar.unary_constraints:
            permitted = constraint.vector(unary_env)
            dead = np.nonzero(network.alive & ~permitted)[0]
            stats.unary_checks += int(network.alive.sum())
            network.kill(dead)
            stats.role_values_killed += len(dead)
            if trace:
                trace(f"unary:{constraint.name}", network)
        if trace:
            trace("unary-done", network)

        # -- binary propagation: one (NV, NV) evaluation per constraint --
        x_fields, y_fields = network.pair_fields()
        pair_env = VectorEnv(x=x_fields, y=y_fields, canbe=network.canbe_array)
        for constraint in network.grammar.binary_constraints:
            permitted = constraint.vector(pair_env)
            stats.pair_checks += network.nv * network.nv
            stats.matrix_entries_zeroed += network.apply_pair_mask(permitted)
            if trace:
                trace(f"binary:{constraint.name}", network)

            killed = consistency_step_vector(network)
            stats.role_values_killed += killed
            stats.consistency_passes += 1
            if trace:
                trace(f"consistency:{constraint.name}", network)

        # -- filtering ----------------------------------------------------

        def counting_step(net: ConstraintNetwork) -> int:
            killed = consistency_step_vector(net)
            stats.role_values_killed += killed
            stats.consistency_passes += 1
            return killed

        stats.filtering_iterations = filter_network(network, counting_step, limit=filter_limit)
        if trace:
            trace("filtering-done", network)
        return stats
